#include "ml/cross_validation.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace drapid {
namespace ml {

std::vector<int> stratified_folds(const Dataset& data, int k, Rng& rng) {
  return stratified_folds(data.labels(), data.num_classes(), k, rng);
}

std::vector<int> stratified_folds(const std::vector<int>& labels,
                                  std::size_t num_classes, int k, Rng& rng) {
  if (k < 2) throw std::invalid_argument("need at least 2 folds");
  std::vector<int> folds(labels.size(), 0);
  // Shuffle within each class, then deal members round-robin across folds.
  // Each class starts dealing where the previous one stopped: dealing every
  // class from fold 0 hands every class's remainder to the low folds, which
  // systematically over-fills fold 0 (over-filling is what breaks the
  // stratified size guarantee |fold| ∈ {⌊n/k⌋, ⌈n/k⌉}).
  std::size_t start = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == static_cast<int>(c)) members.push_back(i);
    }
    rng.shuffle(members);
    for (std::size_t m = 0; m < members.size(); ++m) {
      folds[members[m]] =
          static_cast<int>((start + m) % static_cast<std::size_t>(k));
    }
    start = (start + members.size()) % static_cast<std::size_t>(k);
  }
  return folds;
}

std::vector<std::size_t> rows_in_fold(const std::vector<int>& folds, int fold,
                                      bool in_fold) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < folds.size(); ++i) {
    if ((folds[i] == fold) == in_fold) rows.push_back(i);
  }
  return rows;
}

CvResult cross_validate(
    const Dataset& data, int k,
    const std::function<std::unique_ptr<Classifier>()>& factory, Rng& rng,
    const TrainTransform& transform, std::vector<int>* out_predictions,
    const CvOptions& options) {
  CvResult result;
  result.pooled = ConfusionMatrix(data.num_classes());
  if (out_predictions) out_predictions->assign(data.num_instances(), -1);
  const auto folds = stratified_folds(data, k, rng);
  // Per-fold RNG streams drawn up front: each fold's transform sees the
  // same stream whether folds run serially or on any number of workers.
  std::vector<Rng> fold_rngs;
  fold_rngs.reserve(static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) fold_rngs.push_back(rng.split());

  result.folds.resize(static_cast<std::size_t>(k));
  const auto run_fold = [&](std::size_t fi) {
    const int f = static_cast<int>(fi);
    obs::ScopedSpan fold_span(obs::global_tracer(), "cv.fold",
                              std::to_string(f), "ml");
    FoldResult& fold_result = result.folds[fi];
    fold_result.confusion = ConfusionMatrix(data.num_classes());
    Dataset train = data.subset(rows_in_fold(folds, f, false));
    const auto test_rows = rows_in_fold(folds, f, true);
    const Dataset test = data.subset(test_rows);
    if (transform) {
      Stopwatch transform_watch;
      train = transform(train, fold_rngs[fi]);
      fold_result.transform_seconds = transform_watch.elapsed_seconds();
    }

    auto classifier = factory();
    Stopwatch train_watch;
    classifier->train(train);
    fold_result.train_seconds = train_watch.elapsed_seconds();

    Stopwatch test_watch;
    const std::vector<int> predicted = classifier->predict_batch(test);
    for (std::size_t i = 0; i < test.num_instances(); ++i) {
      fold_result.confusion.add(test.label(i), predicted[i]);
      // Test rows are disjoint across folds, so parallel folds write
      // disjoint slots.
      if (out_predictions) (*out_predictions)[test_rows[i]] = predicted[i];
    }
    fold_result.test_seconds = test_watch.elapsed_seconds();
    fold_span.arg("transform_seconds", fold_result.transform_seconds);
    fold_span.arg("train_seconds", fold_result.train_seconds);
    fold_span.arg("test_seconds", fold_result.test_seconds);
  };

  const std::size_t fold_threads = options.fold_threads();
  if (fold_threads > 1 && k > 1) {
    ThreadPool pool(fold_threads);
    pool.parallel_for(static_cast<std::size_t>(k), run_fold);
  } else {
    for (std::size_t fi = 0; fi < static_cast<std::size_t>(k); ++fi) {
      run_fold(fi);
    }
  }

  // Reduce in fold order after the barrier: totals and the pooled matrix
  // come out identical for every thread count.
  for (const FoldResult& fold_result : result.folds) {
    result.pooled.merge(fold_result.confusion);
    result.total_train_seconds += fold_result.train_seconds;
    result.total_test_seconds += fold_result.test_seconds;
    result.total_transform_seconds += fold_result.transform_seconds;
  }
  return result;
}

}  // namespace ml
}  // namespace drapid
