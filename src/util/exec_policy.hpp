// One execution policy for every parallelism knob in the system.
//
// Before PR 7 the repo had three independent ways to say "how parallel":
// SinglePulseSearchParams::threads for the DM sweep, CvOptions::threads for
// fold-parallel cross-validation, and EngineConfig::worker_threads (plus raw
// pool sizes in benches) for the dataflow engine. ExecPolicy collapses them
// into one struct — which backend runs the work, how many worker *processes*
// the process backend forks, and how many pool *threads* each worker (or the
// single local process) uses. The legacy knobs survive as deprecation shims:
// a zero field defers to the old flag, so existing call sites and CLI flags
// keep their exact behavior.
//
// Lives in util (not dataflow) because the dedisp and ml layers consume it
// without depending on the engine.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace drapid {

/// Which executor implementation runs stage tasks.
enum class ExecBackend {
  kLocal,    ///< in-process work-stealing pool (the default; PR 3 scheduler)
  kProcess,  ///< forked worker processes shuffling over Unix-domain sockets
};

inline const char* exec_backend_name(ExecBackend backend) {
  return backend == ExecBackend::kProcess ? "process" : "local";
}

/// Parses "local" / "process"; throws std::runtime_error on anything else.
inline ExecBackend parse_exec_backend(const std::string& name) {
  if (name == "local") return ExecBackend::kLocal;
  if (name == "process") return ExecBackend::kProcess;
  throw std::runtime_error("unknown execution backend: '" + name +
                           "' (expected local or process)");
}

/// Worker lifetime for the process backend.
enum class PoolMode {
  kJob,    ///< fork once, keep workers (and their partitions) across stages
  kStage,  ///< fork-per-stage, ship every output up (the PR 7 oracle path)
};

inline const char* pool_mode_name(PoolMode mode) {
  return mode == PoolMode::kStage ? "stage" : "job";
}

/// Parses "job" / "stage"; throws std::runtime_error on anything else.
inline PoolMode parse_pool_mode(const std::string& name) {
  if (name == "job") return PoolMode::kJob;
  if (name == "stage") return PoolMode::kStage;
  throw std::runtime_error("unknown worker pool mode: '" + name +
                           "' (expected job or stage)");
}

struct ExecPolicy {
  ExecBackend backend = ExecBackend::kLocal;
  /// Worker processes for the process backend. 0 = derive from context
  /// (the engine uses its modeled executor count).
  std::size_t workers = 0;
  /// In-process pool threads per worker. 0 = defer to the legacy knob the
  /// call site used before ExecPolicy existed (its deprecation shim).
  std::size_t threads_per_worker = 0;
  /// Process-backend worker lifetime: a job-lifetime pool holding partitions
  /// resident across stages (default), or the fork-per-stage oracle.
  PoolMode pool = PoolMode::kJob;

  static ExecPolicy local(std::size_t threads) {
    return {ExecBackend::kLocal, 0, threads, PoolMode::kJob};
  }
  static ExecPolicy process(std::size_t workers,
                            std::size_t threads_per_worker = 0,
                            PoolMode pool = PoolMode::kJob) {
    return {ExecBackend::kProcess, workers, threads_per_worker, pool};
  }

  /// The effective pool-thread count: this policy's threads_per_worker, or
  /// the legacy flag value when unset. Shim direction is new-wins: setting
  /// threads_per_worker overrides whatever the old knob says.
  std::size_t resolve_threads(std::size_t legacy) const {
    return threads_per_worker != 0 ? threads_per_worker : legacy;
  }
  /// The effective process-worker count (`fallback` when unset).
  std::size_t resolve_workers(std::size_t fallback) const {
    return workers != 0 ? workers : fallback;
  }
};

}  // namespace drapid
