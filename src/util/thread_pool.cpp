#include "util/thread_pool.hpp"

#include <algorithm>
#include <array>
#include <exception>
#include <utility>

namespace drapid {

namespace {

/// Which pool (if any) owns the current thread, and its worker index there.
/// Lets enqueue() take the lock-free owner-push path and lets nested
/// parallel_for help from the right deque.
struct WorkerTls {
  const void* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerTls tls_worker;

}  // namespace

// --- Task representation -----------------------------------------------------

struct ThreadPool::Task {
  virtual ~Task() = default;
  /// Must not throw: closure errors are captured in the future, loop errors
  /// in the loop's join state.
  virtual void run(ThreadPool& pool) = 0;
};

struct ThreadPool::ClosureTask final : Task {
  explicit ClosureTask(std::function<void()> fn) : work(std::move(fn)) {}
  std::packaged_task<void()> work;
  void run(ThreadPool&) override { work(); }  // packaged_task captures throws
};

/// Join-side state of one parallel_for. Chunks are claimed from `next`;
/// completion is reported through `remaining` — lock-free except for the
/// last chunk, which takes `mutex` once to publish completion to a parked
/// caller. Heap-shared so a stale ticket executed after the caller returned
/// finds an exhausted counter instead of a dead stack frame.
struct ThreadPool::Loop {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> canceled{false};
  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr first_error;
};

/// One queued invitation for a worker to join a loop. parallel_for enqueues
/// at most thread_count() of these regardless of how many chunks the loop
/// has — the batching that replaces the old one-queue-entry-per-chunk plan.
struct ThreadPool::TicketTask final : Task {
  explicit TicketTask(std::shared_ptr<Loop> l) : loop(std::move(l)) {}
  std::shared_ptr<Loop> loop;
  void run(ThreadPool& pool) override { pool.run_loop(*loop); }
};

// --- Per-worker Chase-Lev-style deque ---------------------------------------

/// Fixed-capacity work-stealing deque. The owner pushes/pops the bottom end
/// without locks; thieves CAS the top end. Capacity overflow (push returns
/// false) falls back to the injection queue — with at most thread_count()
/// tickets per loop plus submits, 1024 slots are never the limit in
/// practice. All synchronization is through atomics (no standalone fences,
/// which ThreadSanitizer cannot model): the owner publishes a task with a
/// release store of `bottom`, and a thief's acquire load of `bottom` makes
/// the task's bytes visible before its CAS claims the slot.
struct ThreadPool::Worker {
  static constexpr std::size_t kCapacity = 1024;  // power of two
  static constexpr std::int64_t kMask = static_cast<std::int64_t>(kCapacity) - 1;

  alignas(64) std::atomic<std::int64_t> top{0};
  alignas(64) std::atomic<std::int64_t> bottom{0};
  std::array<std::atomic<Task*>, kCapacity> slots{};

  /// Owner only. False when full (caller reroutes to the injection queue).
  bool push(Task* task) {
    const std::int64_t b = bottom.load(std::memory_order_relaxed);
    const std::int64_t t = top.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    slots[b & kMask].store(task, std::memory_order_relaxed);
    bottom.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only.
  Task* pop() {
    const std::int64_t b = bottom.load(std::memory_order_relaxed) - 1;
    bottom.store(b, std::memory_order_seq_cst);
    std::int64_t t = top.load(std::memory_order_seq_cst);
    if (t <= b) {
      Task* task = slots[b & kMask].load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
          task = nullptr;  // a thief won
        }
        bottom.store(b + 1, std::memory_order_relaxed);
      }
      return task;
    }
    bottom.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }

  /// Any thread.
  Task* steal() {
    std::int64_t t = top.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task = slots[t & kMask].load(std::memory_order_relaxed);
    if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
      return nullptr;  // lost the race; caller re-scans
    }
    return task;
  }

  bool looks_empty() const {
    return top.load(std::memory_order_acquire) >=
           bottom.load(std::memory_order_acquire);
  }
};

// --- Pool lifecycle ----------------------------------------------------------

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_seq_cst);
  {
    // Pair with the waiter's predicate check so no worker sleeps through
    // the stop signal.
    std::lock_guard lock(idle_mutex_);
  }
  idle_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
  // Run anything still queued (e.g. tasks submitted while the pool was
  // draining) on this thread so every future completes.
  for (auto& worker : workers_) {
    while (Task* task = worker->steal()) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      task->run(*this);
      delete task;
    }
  }
  for (;;) {
    Task* task = nullptr;
    {
      std::lock_guard lock(injection_mutex_);
      if (injection_.empty()) break;
      task = injection_.front();
      injection_.pop_front();
    }
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    task->run(*this);
    delete task;
  }
}

std::size_t ThreadPool::self_index() const {
  return tls_worker.pool == this ? tls_worker.index : kNoWorker;
}

// --- Enqueue / wakeup --------------------------------------------------------

void ThreadPool::enqueue(Task* task) {
  const std::size_t self = self_index();
  if (self == kNoWorker || !workers_[self]->push(task)) {
    std::lock_guard lock(injection_mutex_);
    injection_.push_back(task);
  }
  pending_.fetch_add(1, std::memory_order_seq_cst);
  wake_workers();
}

void ThreadPool::wake_workers() {
  if (idle_waiters_.load(std::memory_order_seq_cst) > 0) {
    // Taking the mutex orders this notify against the waiter's predicate
    // check, closing the check-then-sleep window.
    std::lock_guard lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

// --- Find / run --------------------------------------------------------------

ThreadPool::Task* ThreadPool::find_task(std::size_t self) {
  if (self != kNoWorker) {
    if (Task* task = workers_[self]->pop()) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      return task;
    }
  }
  {
    std::lock_guard lock(injection_mutex_);
    if (!injection_.empty()) {
      Task* task = injection_.front();
      injection_.pop_front();
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      return task;
    }
  }
  const std::size_t count = workers_.size();
  for (std::size_t round = 0; round < 2; ++round) {
    for (std::size_t offset = 1; offset <= count; ++offset) {
      const std::size_t victim =
          (self == kNoWorker ? offset - 1 : (self + offset) % count);
      if (victim == self || victim >= count) continue;
      if (Task* task = workers_[victim]->steal()) {
        pending_.fetch_sub(1, std::memory_order_seq_cst);
        steals_.fetch_add(1, std::memory_order_relaxed);
        return task;
      }
    }
  }
  return nullptr;
}

bool ThreadPool::run_one(std::size_t self) {
  Task* task = find_task(self);
  if (!task) return false;
  task->run(*this);
  delete task;
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker = {this, index};
  for (;;) {
    if (run_one(index)) continue;
    std::unique_lock lock(idle_mutex_);
    if (stopping_.load(std::memory_order_seq_cst)) return;
    if (pending_.load(std::memory_order_seq_cst) > 0) continue;  // re-scan
    idle_waiters_.fetch_add(1, std::memory_order_seq_cst);
    parks_.fetch_add(1, std::memory_order_relaxed);
    idle_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_seq_cst) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    idle_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    if (stopping_.load(std::memory_order_seq_cst)) return;
  }
}

// --- submit / parallel_for ---------------------------------------------------

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto* closure = new ClosureTask(std::move(task));
  std::future<void> future = closure->work.get_future();
  enqueue(closure);
  return future;
}

void ThreadPool::run_loop(Loop& loop) {
  for (;;) {
    const std::size_t begin =
        loop.next.fetch_add(loop.grain, std::memory_order_relaxed);
    if (begin >= loop.n) return;
    const std::size_t end = std::min(begin + loop.grain, loop.n);
    if (!loop.canceled.load(std::memory_order_relaxed)) {
      try {
        for (std::size_t i = begin; i < end; ++i) (*loop.fn)(i);
      } catch (...) {
        std::lock_guard guard(loop.mutex);
        if (!loop.first_error) loop.first_error = std::current_exception();
        loop.canceled.store(true, std::memory_order_relaxed);
      }
    }
    finish_chunk(loop);
  }
}

void ThreadPool::finish_chunk(Loop& loop) {
  if (loop.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last chunk: publish completion under the join mutex so a caller
    // between its predicate check and its sleep cannot miss the wakeup.
    { std::lock_guard guard(loop.mutex); }
    loop.done.notify_all();
  } else {
    fastpath_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  const std::size_t chunks = std::min(n, thread_count() * 4);
  const std::size_t grain = (n + chunks - 1) / chunks;
  const std::size_t num_chunks = (n + grain - 1) / grain;

  auto loop = std::make_shared<Loop>();
  loop->fn = &fn;
  loop->n = n;
  loop->grain = grain;
  loop->remaining.store(num_chunks, std::memory_order_relaxed);

  // Batched enqueue: one ticket per worker that could usefully join, not
  // one queue entry per chunk. A single-chunk loop runs inline for free.
  if (num_chunks > 1) {
    const std::size_t tickets = std::min(thread_count(), num_chunks - 1);
    for (std::size_t i = 0; i < tickets; ++i) {
      enqueue(new TicketTask(loop));
    }
  }

  // The caller claims chunks of its own loop directly — this is what makes
  // nesting deadlock-free on any pool size — then helps with other queued
  // work, and only parks when nothing is runnable anywhere.
  run_loop(*loop);
  const std::size_t self = self_index();
  while (loop->remaining.load(std::memory_order_acquire) != 0) {
    if (run_one(self)) continue;
    std::unique_lock lock(loop->mutex);
    if (loop->remaining.load(std::memory_order_acquire) != 0) {
      parks_.fetch_add(1, std::memory_order_relaxed);
      loop->done.wait(lock, [&loop] {
        return loop->remaining.load(std::memory_order_acquire) == 0;
      });
    }
  }
  // Take the error OUT of the loop before rethrowing: a stale ticket may
  // destroy the Loop later on a worker thread, and it must not perform the
  // last release of an exception object this caller is still inspecting —
  // exception_ptr's refcount lives in uninstrumented libstdc++, so
  // ThreadSanitizer cannot see the ordering that release would ride on.
  std::exception_ptr error;
  {
    std::lock_guard guard(loop->mutex);
    error = std::move(loop->first_error);
    loop->first_error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

SchedulerStats ThreadPool::stats() const {
  SchedulerStats stats;
  stats.tasks_stolen = steals_.load(std::memory_order_relaxed);
  stats.parks = parks_.load(std::memory_order_relaxed);
  stats.fastpath_completions = fastpath_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace drapid
