// Rule learners: PART (rule + tree) and JRip (RIPPER-style).
//
// PART (Frank & Witten 1998) repeatedly builds a decision tree on the
// not-yet-covered instances, turns the leaf covering the most of them into a
// rule, removes what it covers, and repeats — "obtains rules from partial
// decision trees".
//
// JRip follows RIPPER (Cohen 1995): classes are processed from rarest to
// most frequent; for each, rules are grown greedily by adding the
// (feature, threshold, direction) condition with the best FOIL gain until
// the rule is (nearly) pure, as long as new rules keep useful precision.
// The most frequent class becomes the default. (The REP pruning and
// optimization passes of full RIPPER are omitted; they affect rule-set size,
// not the relative training-time behaviour these experiments measure.)
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/tree.hpp"

namespace drapid {
namespace ml {

/// One conjunctive rule.
struct Rule {
  struct Condition {
    int feature = -1;
    double threshold = 0.0;
    bool less_equal = true;
  };
  std::vector<Condition> conditions;
  int label = 0;

  bool matches(std::span<const double> x) const;
};

struct PartParams {
  TreeParams tree{.max_depth = 12};
  std::size_t max_rules = 200;
};

class PartClassifier : public Classifier {
 public:
  explicit PartClassifier(PartParams params = {}, std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "PART"; }

  const std::vector<Rule>& rules() const { return rules_; }
  int default_label() const { return default_label_; }

 private:
  PartParams params_;
  std::uint64_t seed_;
  std::vector<Rule> rules_;
  int default_label_ = 0;
};

struct JripParams {
  /// Candidate thresholds examined per feature when growing a condition.
  std::size_t threshold_candidates = 12;
  /// Stop growing a rule when its precision on the growing set reaches this.
  double target_purity = 0.98;
  /// Discard rules whose precision falls below this.
  double min_precision = 0.6;
  /// Minimum positives a rule must cover to be kept.
  std::size_t min_cover = 2;
  std::size_t max_conditions_per_rule = 8;
  std::size_t max_rules_per_class = 40;
};

class JripClassifier : public Classifier {
 public:
  explicit JripClassifier(JripParams params = {}, std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "JRip"; }

  const std::vector<Rule>& rules() const { return rules_; }
  int default_label() const { return default_label_; }

 private:
  JripParams params_;
  std::uint64_t seed_;
  std::vector<Rule> rules_;
  int default_label_ = 0;
};

}  // namespace ml
}  // namespace drapid
