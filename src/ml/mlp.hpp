// MPN — multilayer perceptron (the Table 5 artificial neural network).
//
// One sigmoid hidden layer, one-hot sigmoid outputs trained by
// backpropagation with momentum on standardized inputs — Weka's
// MultilayerPerceptron architecture with its 'a' default hidden size
// ((#features + #classes) / 2). Training cost scales with
// #features × hidden × epochs, which is why feature selection cuts MPN
// training times so sharply in Figure 6(b).
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace drapid {
namespace ml {

struct MlpParams {
  /// Hidden units; 0 = Weka's 'a' rule: (#features + #classes) / 2.
  std::size_t hidden = 0;
  std::size_t epochs = 60;
  double learning_rate = 0.3;  ///< Weka default
  double momentum = 0.2;       ///< Weka default
};

class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(MlpParams params = {}, std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "MPN"; }

  std::size_t hidden_units() const { return hidden_; }
  /// Weight updates applied during the last train() — the work metric
  /// behind training time.
  std::size_t weight_updates() const { return weight_updates_; }

 private:
  MlpParams params_;
  std::uint64_t seed_;
  std::size_t inputs_ = 0, hidden_ = 0, outputs_ = 0;
  std::vector<double> mean_, scale_;
  // w1: hidden × (inputs+1) with bias; w2: outputs × (hidden+1).
  std::vector<double> w1_, w2_;
  std::size_t weight_updates_ = 0;

  void forward(std::span<const double> z, std::vector<double>& hidden_out,
               std::vector<double>& output) const;
};

}  // namespace ml
}  // namespace drapid
