// Stratified k-fold cross-validation (the paper's evaluation protocol).
//
// The paper divides each benchmark into six folds — one reserved for feature
// selection, the other five for 5-fold cross-validation (§6.2). Folds are
// stratified so each preserves the class distribution, which matters at the
// paper's 0.05 % positive rate.
//
// Folds are independent, so cross_validate can run them on a work-stealing
// thread pool (CvOptions::threads). Results are identical for every thread
// count: fold membership and each fold's transform RNG stream are drawn up
// front, folds write only fold-local state, and totals are reduced in fold
// order after all folds complete.
#pragma once

#include <cstdint>
#include <functional>

#include "ml/classifier.hpp"
#include "ml/eval.hpp"
#include "util/exec_policy.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {

/// Assigns every instance a fold in [0, k), stratified by class. The
/// starting fold rotates across classes, so the odd remainder members of
/// successive classes land on different folds instead of all piling onto
/// fold 0 (which systematically inflated fold 0 — and deflated fold k-1 —
/// on every class whose size is not a multiple of k).
std::vector<int> stratified_folds(const Dataset& data, int k, Rng& rng);

/// Same, over a bare label vector with `num_classes` classes — lets callers
/// stratify on a different label space than the dataset's (e.g. the binary
/// collapse, so fold membership stays identical across ALM schemes).
std::vector<int> stratified_folds(const std::vector<int>& labels,
                                  std::size_t num_classes, int k, Rng& rng);

/// Row indices belonging (or not) to fold `fold`.
std::vector<std::size_t> rows_in_fold(const std::vector<int>& folds, int fold,
                                      bool in_fold);

struct FoldResult {
  ConfusionMatrix confusion{1};
  double train_seconds = 0.0;
  double test_seconds = 0.0;
  /// Time spent in the TrainTransform hook (SMOTE), separated from training
  /// proper so imbalance-treatment cost is visible on its own.
  double transform_seconds = 0.0;
};

struct CvResult {
  std::vector<FoldResult> folds;
  /// Confusion across all folds.
  ConfusionMatrix pooled{1};
  double total_train_seconds = 0.0;
  double total_test_seconds = 0.0;
  double total_transform_seconds = 0.0;

  BinaryScores pooled_binary() const {
    return pooled.collapse_nonzero_positive();
  }
};

/// Optional hook applied to each training fold before fitting (the SMOTE
/// path); receives the fold dataset plus a fold-local RNG stream (drawn up
/// front from the CV RNG, so results do not depend on fold execution order)
/// and must return the dataset to train on.
using TrainTransform = std::function<Dataset(const Dataset&, Rng&)>;

struct CvOptions {
  /// Deprecated shim for exec: worker threads for fold evaluation; 1 =
  /// serial. Ignored when exec.threads_per_worker is set.
  std::size_t threads = 1;
  /// Execution policy for fold evaluation; folds always run in-process, so
  /// only threads_per_worker matters here.
  ExecPolicy exec;

  /// Pool width after the deprecation shim. Any value yields byte-identical
  /// results.
  std::size_t fold_threads() const { return exec.resolve_threads(threads); }
};

/// Runs k-fold CV with a fresh classifier per fold from `factory`; fold
/// scoring uses the classifier's batched predict path.
/// `out_predictions`, if non-null, receives each instance's predicted class
/// (every row is tested exactly once across the k folds) — the RQ4 analysis
/// of hard-to-classify instances builds on this.
CvResult cross_validate(const Dataset& data, int k,
                        const std::function<std::unique_ptr<Classifier>()>& factory,
                        Rng& rng, const TrainTransform& transform = nullptr,
                        std::vector<int>* out_predictions = nullptr,
                        const CvOptions& options = {});

}  // namespace ml
}  // namespace drapid
