// Figure 4 (RQ1, RQ2): elapsed time for single-pulse identification.
//
// The paper processed a 10.2 GB PALFA SPE subset (1.9 M clusters) on a
// 15-data-node Spark/YARN cluster with 1, 5, 10, 15 and 20 executors, and
// compared against a multithreaded RAPID on an i7 workstation with the same
// thread counts. This bench regenerates the experiment at a configurable
// scale: the synthetic PALFA data is *really* processed by both
// implementations; elapsed times for the paper's hardware come from the
// cluster cost model priced with each run's measured work (see
// DESIGN.md §1 for why — the build machine has one core).
//
// Expected shape (paper §6.1):
//   * D-RAPID's knee at 5 executors, asymptotic improvement beyond;
//   * a cliff at 1 executor (the dataset no longer fits executor memory and
//     spills — really spills — to disk);
//   * D-RAPID (≥5 executors) finishing in roughly 22–37 % of the
//     multithreaded time, i.e. a speedup of up to ~5×.
#include <iostream>

#include "dataflow/cluster_model.hpp"
#include "dataflow/obs_bridge.hpp"
#include "drapid/pipeline.hpp"
#include "obs/bench.hpp"
#include "rapid/multithreaded.hpp"
#include "util/stats.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  obs::BenchOptions bench(
      "bench_fig4_identification", argc, argv,
      {{"observations", "64"}, {"paper-bytes", "10951518822"}},  // 10.2 GB
      "Figure 4: D-RAPID vs multithreaded RAPID elapsed-time model.");
  if (bench.help()) return 0;
  const Options& opts = bench.opts();
  std::cout << "=== Figure 4: D-RAPID vs multithreaded RAPID ===\n";

  // Stage 1-2: synthetic PALFA subset.
  // Many short pointings: D-RAPID's parallelism is keyed by observation, so
  // the workload must span many beams (as the paper's PALFA subset did).
  PipelineConfig config;
  config.survey = SurveyConfig::palfa();
  config.survey.obs_length_s = 30.0;
  config.num_observations =
      static_cast<std::size_t>(bench.scaled(opts.integer("observations")));
  config.visibility = 0.015;
  config.seed = static_cast<std::uint64_t>(opts.integer("seed"));
  const PipelineData data = prepare_pipeline_data(config);

  const auto sizes = data.cluster_sizes();
  const Summary size_summary = summarize(sizes);
  std::cout << "\ntest set: " << data.total_spes << " SPEs ("
            << data.data_csv.size() / (1 << 20) << " MB), "
            << data.clusters.size() << " clusters\n"
            << "cluster sizes: min=" << size_summary.min
            << " median=" << size_summary.median
            << " max=" << size_summary.max
            << "  (paper: <5 ... 3,500, median 19)\n\n";

  BlockStore store(15, /*block_size=*/256 << 10);
  store.put("palfa.data.csv", data.data_csv);
  store.put("palfa.clusters.csv", data.cluster_csv);

  // Multithreaded baseline: really run it, then price the measured
  // per-cluster work on the paper's workstation for each thread count.
  std::vector<RapidWorkItem> items;
  for (const auto& obs : data.observations) {
    const auto clustering =
        dbscan_cluster(obs.data, *config.survey.grid, config.dbscan);
    auto obs_items = make_work_items(obs.data, clustering);
    items.insert(items.end(), std::make_move_iterator(obs_items.begin()),
                 std::make_move_iterator(obs_items.end()));
  }
  RapidRunStats mt_stats;
  const auto mt_results = run_rapid_multithreaded(
      items, config.drapid.rapid, *config.survey.grid,
      static_cast<std::size_t>(opts.integer("threads")), &mt_stats);
  (void)mt_results;

  // Everything below prices the *measured* work at the paper's data volume
  // (10.2 GB): small synthetic runs are fixed-overhead-dominated in any
  // dataflow system, so the per-task counters are extrapolated linearly to
  // the paper's scale before scheduling (see DESIGN.md, substitution table).
  const double scale = opts.number("paper-bytes") /
                       static_cast<double>(data.data_csv.size());
  std::cout << "pricing measured work at paper scale: x"
            << format_number(scale, 1) << " (10.2 GB equivalent)\n";

  // Multithreaded task profile: the baseline must also *parse* the whole
  // CSV (one chunk task per block, same per-record/per-byte cost as
  // D-RAPID's load stage), then group + search each cluster. The measured
  // profile is replicated `scale` times so the scheduler sees the
  // paper-scale workload (~1.9 M clusters).
  std::vector<std::size_t> task_costs;
  const auto replicas =
      std::max<std::size_t>(1, static_cast<std::size_t>(scale + 0.5));
  task_costs.reserve((items.size() + 64) * replicas);
  const std::size_t parse_chunks = 64;
  const std::size_t parse_units =
      data.total_spes + data.data_csv.size() / 32;
  for (std::size_t r = 0; r < replicas; ++r) {
    for (std::size_t c = 0; c < parse_chunks; ++c) {
      task_costs.push_back(parse_units / parse_chunks);
    }
    for (const auto& item : items) {
      task_costs.push_back(16 + 2 * item.events.size());
    }
  }
  const auto paper_bytes =
      static_cast<std::size_t>(opts.number("paper-bytes"));

  const std::vector<std::size_t> points = {1, 5, 10, 15, 20};
  Series drapid_series{"D-RAPID (modeled s)", {}};
  Series rapid_series{"RAPID-MT (modeled s)", {}};
  Series spill_series{"D-RAPID spill (MB)", {}};
  Series wall_series{"D-RAPID wall on this host (s)", {}};
  std::size_t drapid_pulses = 0;

  for (std::size_t executors : points) {
    EngineConfig engine_config;
    engine_config.num_executors = executors;
    engine_config.cores_per_executor = 2;
    engine_config.exec = bench.exec_policy();
    engine_config.partitions_per_core = 8;
    // The paper's memory ratio: one executor holds ~1/4 of the dataset
    // (2,560 MB vs 10.2 GB), so 1 executor spills and 5+ do not.
    engine_config.executor_memory_bytes = data.data_csv.size() / 4 + 1;
    Engine engine(engine_config);
    const auto result =
        run_drapid(engine, store, "palfa.data.csv", "palfa.clusters.csv", "",
                   *config.survey.grid, config.drapid);
    drapid_pulses = result.records.size();

    const auto cluster_sim = simulate_cluster(
        scale_metrics(result.metrics, scale),
        ClusterSpec::paper_beowulf(executors));
    drapid_series.values.push_back(cluster_sim.total_seconds);
    spill_series.values.push_back(
        static_cast<double>(result.metrics.total_spill_bytes()) / (1 << 20));
    wall_series.values.push_back(result.wall_seconds);

    const auto ws_sim = simulate_workstation(
        task_costs, paper_bytes, paper_bytes,
        ClusterSpec::paper_workstation(), executors /* thread count */);
    rapid_series.values.push_back(ws_sim.total_seconds);

    bench.report().add_job(make_job_report(
        "executors=" + std::to_string(executors), result.metrics,
        result.replica_failovers));
    obs::Json row = obs::Json::object();
    row.set("executors", static_cast<std::int64_t>(executors));
    row.set("drapid_modeled_seconds", cluster_sim.total_seconds);
    row.set("rapid_mt_modeled_seconds", ws_sim.total_seconds);
    row.set("spill_bytes",
            static_cast<std::int64_t>(result.metrics.total_spill_bytes()));
    row.set("wall_seconds", result.wall_seconds);
    // Measured-vs-modeled makespan: stage wall clocks stamped by the engine
    // (genuinely concurrent under --backend=process) against the priced
    // schedule. The ratio should hold steady across backends/workers.
    const auto makespan = validate_makespan(result.metrics, cluster_sim);
    row.set("backend", exec_backend_name(engine_config.exec.backend));
    row.set("pool", pool_mode_name(engine_config.exec.pool));
    row.set("measured_stage_seconds", makespan.measured_seconds);
    row.set("modeled_over_measured", makespan.ratio);
    row.set("records", static_cast<std::int64_t>(result.records.size()));
    bench.report().add_result(std::move(row));
  }

  std::vector<std::string> x_labels;
  for (auto p : points) x_labels.push_back(std::to_string(p));
  std::cout << render_series("executors/threads", x_labels,
                             {drapid_series, rapid_series, spill_series,
                              wall_series});

  std::cout << "\nresults agree: multithreaded found " << mt_stats.pulses_found
            << " pulses, D-RAPID found " << drapid_pulses << "\n";
  // Headline ratios (RQ2): D-RAPID time as a fraction of multithreaded.
  std::vector<std::vector<std::string>> ratio_rows;
  ratio_rows.push_back({"executors", "D-RAPID/RAPID-MT", "speedup"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double ratio = drapid_series.values[i] / rapid_series.values[i];
    ratio_rows.push_back({std::to_string(points[i]),
                          format_number(ratio * 100.0, 1) + "%",
                          format_number(1.0 / ratio, 2) + "x"});
  }
  std::cout << '\n' << render_table(ratio_rows)
            << "\n(paper: 22%-37% for >=5 executors, i.e. up to ~5x; 1 "
               "executor slower than multithreaded due to spill)\n";

  // Recovery-overhead experiment: rerun the spilling 1-executor
  // configuration while injecting task kills, spill damage, and one dead
  // data node at increasing rates. Fault decisions are monotone in the
  // rate (a fault at rate r is also injected at every r' > r), so the
  // modeled makespan must grow with the rate while the output stays
  // byte-identical — recovery is overhead, never data loss.
  const double fault_rate = bench.fault_rate();
  if (fault_rate > 0.0) {
    std::cout << "\n=== Recovery overhead under faults (1 executor) ===\n";
    const std::vector<double> rates = {0.0, fault_rate / 4, fault_rate / 2,
                                       fault_rate};
    std::vector<std::vector<std::string>> fault_rows;
    fault_rows.push_back({"fault_rate", "retries", "recomputed", "failovers",
                          "modeled_s", "overhead"});
    std::string baseline_output;
    double baseline_s = 0.0, prev_s = -1.0;
    bool monotone = true, identical = true;
    for (const double rate : rates) {
      // Fresh store per run: dead nodes marked by one run must not leak
      // into the next.
      BlockStore fault_store(15, /*block_size=*/256 << 10);
      fault_store.put("palfa.data.csv", data.data_csv);
      fault_store.put("palfa.clusters.csv", data.cluster_csv);
      EngineConfig engine_config;
      engine_config.num_executors = 1;
      engine_config.cores_per_executor = 2;
      engine_config.exec = bench.exec_policy();
      engine_config.partitions_per_core = 8;
      engine_config.executor_memory_bytes = data.data_csv.size() / 4 + 1;
      engine_config.faults.seed =
          static_cast<std::uint64_t>(opts.integer("seed"));
      engine_config.faults.task_failure_rate = rate;
      engine_config.faults.spill_fault_rate = rate;
      if (rate > 0.0) engine_config.faults.dead_nodes = {3};
      Engine engine(engine_config);
      const auto result =
          run_drapid(engine, fault_store, "palfa.data.csv",
                     "palfa.clusters.csv", "ml", *config.survey.grid,
                     config.drapid);
      const std::string& output = fault_store.get("ml");
      if (rate == 0.0) {
        baseline_output = output;
      } else if (output != baseline_output) {
        identical = false;
      }
      bench.report().add_job(make_job_report(
          "fault_rate=" + format_number(rate, 4), result.metrics,
          result.replica_failovers));
      const auto sim = simulate_cluster(scale_metrics(result.metrics, scale),
                                        ClusterSpec::paper_beowulf(1));
      if (rate == 0.0) baseline_s = sim.total_seconds;
      if (sim.total_seconds <= prev_s) monotone = false;
      prev_s = sim.total_seconds;
      fault_rows.push_back(
          {format_number(rate, 4),
           std::to_string(result.metrics.total_retries()),
           std::to_string(result.partitions_recovered),
           std::to_string(result.replica_failovers),
           format_number(sim.total_seconds, 1),
           "+" + format_number((sim.total_seconds / baseline_s - 1.0) * 100.0,
                               1) +
               "%"});
    }
    std::cout << render_table(fault_rows) << '\n'
              << "output byte-identical across fault rates: "
              << (identical ? "yes" : "NO — RECOVERY IS BROKEN") << '\n'
              << "makespan strictly increasing with fault rate: "
              << (monotone ? "yes" : "NO") << '\n';
    bench.report().add_metric("fault_output_identical", identical);
    bench.report().add_metric("fault_makespan_monotone", monotone);
  }
  bench.report().add_metric("mt_pulses_found",
                            static_cast<std::int64_t>(mt_stats.pulses_found));
  bench.report().add_metric("drapid_pulses_found",
                            static_cast<std::int64_t>(drapid_pulses));
  bench.finish();
  return 0;
}
