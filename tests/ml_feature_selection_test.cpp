#include "ml/feature_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/discretize.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {
namespace {

/// Dataset where feature 0 determines the class, feature 1 is weakly
/// informative, feature 2 is pure noise.
Dataset informative_dataset(std::size_t n = 600, std::uint64_t seed = 7) {
  Dataset d({"strong", "weak", "noise"}, {"a", "b"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    const double strong = y == 1 ? rng.normal(4.0, 0.5) : rng.normal(0.0, 0.5);
    const double weak = y == 1 ? rng.normal(1.0, 2.0) : rng.normal(0.0, 2.0);
    const double noise = rng.normal(0.0, 1.0);
    d.add(std::vector<double>{strong, weak, noise}, y);
  }
  return d;
}

TEST(Discretize, EqualFrequencyCutsAreIncreasing) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.lognormal(0, 1));
  const auto cuts = equal_frequency_cuts(values, 10);
  ASSERT_GE(cuts.size(), 5u);
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    ASSERT_LT(cuts[i - 1], cuts[i]);
  }
  // Bins should hold roughly equal mass.
  const auto bins = apply_cuts(values, cuts);
  std::vector<std::size_t> counts(cuts.size() + 1, 0);
  for (auto b : bins) ++counts[b];
  for (std::size_t b = 1; b < counts.size(); ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]), 50.0, 30.0);
  }
}

TEST(Discretize, ConstantFeatureHasNoCuts) {
  std::vector<double> values(100, 3.14);
  EXPECT_TRUE(equal_frequency_cuts(values, 10).empty());
  const auto bins = apply_cuts(values, {});
  for (auto b : bins) EXPECT_EQ(b, 0u);
}

TEST(Discretize, ContingencyTableSumsToN) {
  std::vector<std::size_t> bins{0, 1, 1, 2, 0};
  std::vector<int> labels{0, 0, 1, 1, 1};
  const auto table = contingency_table(bins, labels, 3, 2);
  std::size_t total = 0;
  for (const auto& row : table) {
    for (auto c : row) total += c;
  }
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(table[1][0], 1u);
  EXPECT_EQ(table[1][1], 1u);
}

TEST(FilterNames, AllFiveFromTable4) {
  EXPECT_EQ(all_filter_methods().size(), 5u);
  EXPECT_EQ(filter_name(FilterMethod::kInfoGain), "InfoGain");
  EXPECT_EQ(filter_abbreviation(FilterMethod::kInfoGain), "IG");
  EXPECT_EQ(filter_abbreviation(FilterMethod::kGainRatio), "GR");
  EXPECT_EQ(filter_abbreviation(FilterMethod::kSymmetricalUncertainty), "SU");
  EXPECT_EQ(filter_abbreviation(FilterMethod::kCorrelation), "Cor");
  EXPECT_EQ(filter_abbreviation(FilterMethod::kOneR), "1R");
}

class EveryFilter : public ::testing::TestWithParam<FilterMethod> {};

TEST_P(EveryFilter, RanksStrongAboveNoise) {
  const Dataset d = informative_dataset();
  const auto scores = score_features(d, GetParam());
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[0], scores[2])
      << filter_name(GetParam()) << " failed to beat noise";
  // The strong feature must rank first.
  const auto top = top_k_features(d, GetParam(), 1);
  EXPECT_EQ(top[0], 0u);
}

TEST_P(EveryFilter, ScoresAreFiniteAndNonNegativeish) {
  const Dataset d = informative_dataset(200, 13);
  for (double s : score_features(d, GetParam())) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Table4, EveryFilter,
                         ::testing::ValuesIn(all_filter_methods()),
                         [](const auto& info) {
                           return filter_name(info.param);
                         });

TEST(TopK, ReturnsKDistinctIndicesInRankOrder) {
  const Dataset d = informative_dataset();
  const auto top = top_k_features(d, FilterMethod::kInfoGain, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_NE(top[0], top[1]);
  const auto scores = score_features(d, FilterMethod::kInfoGain);
  EXPECT_GE(scores[top[0]], scores[top[1]]);
}

TEST(TopK, KLargerThanFeaturesReturnsAll) {
  const Dataset d = informative_dataset(100, 3);
  EXPECT_EQ(top_k_features(d, FilterMethod::kOneR, 99).size(), 3u);
}

TEST(InfoGain, PerfectPredictorGetsFullClassEntropy) {
  Dataset d({"perfect"}, {"a", "b"});
  for (int i = 0; i < 50; ++i) {
    d.add(std::vector<double>{0.0}, 0);
    d.add(std::vector<double>{1.0}, 1);
  }
  const auto scores = score_features(d, FilterMethod::kInfoGain);
  EXPECT_NEAR(scores[0], 1.0, 1e-9);  // H(Y) = 1 bit, fully explained
}

}  // namespace
}  // namespace ml
}  // namespace drapid
