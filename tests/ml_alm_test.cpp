#include "ml/alm.hpp"

#include <gtest/gtest.h>

namespace drapid {
namespace ml {
namespace {

TEST(AlmSchemes, AllFiveFromTable3) {
  const auto& schemes = all_alm_schemes();
  ASSERT_EQ(schemes.size(), 5u);
  EXPECT_EQ(alm_scheme_name(AlmScheme::kBinary), "2");
  EXPECT_EQ(alm_scheme_name(AlmScheme::kFourStar), "4*");
  EXPECT_EQ(alm_scheme_name(AlmScheme::kFour), "4");
  EXPECT_EQ(alm_scheme_name(AlmScheme::kSeven), "7");
  EXPECT_EQ(alm_scheme_name(AlmScheme::kEight), "8");
}

TEST(AlmSchemes, ClassCountsMatchNames) {
  EXPECT_EQ(alm_class_names(AlmScheme::kBinary).size(), 2u);
  EXPECT_EQ(alm_class_names(AlmScheme::kFourStar).size(), 4u);
  EXPECT_EQ(alm_class_names(AlmScheme::kFour).size(), 4u);
  EXPECT_EQ(alm_class_names(AlmScheme::kSeven).size(), 7u);
  EXPECT_EQ(alm_class_names(AlmScheme::kEight).size(), 8u);
  for (AlmScheme s : all_alm_schemes()) {
    EXPECT_EQ(alm_class_names(s)[0], "NonPulsar");
  }
}

TEST(AlmLabel, NonPulsarIsAlwaysClassZero) {
  for (AlmScheme s : all_alm_schemes()) {
    EXPECT_EQ(alm_label(s, false, false, 50.0, 10.0, 30.0), 0);
    EXPECT_EQ(alm_label(s, false, false, 200.0, 3.0, 6.0), 0);
  }
}

TEST(AlmLabel, BinaryCollapsesAllPositives) {
  EXPECT_EQ(alm_label(AlmScheme::kBinary, true, false, 50.0, 10.0, 30.0), 1);
  EXPECT_EQ(alm_label(AlmScheme::kBinary, true, true, 200.0, 3.0, 6.0), 1);
}

TEST(AlmLabel, Table2DistanceThresholds) {
  // SNRPeakDM: [0,100) near, [100,175) mid, [175,inf) far.
  const auto& names = alm_class_names(AlmScheme::kFour);
  EXPECT_EQ(names[alm_label(AlmScheme::kFour, true, false, 99.9, 5, 10)],
            "Near");
  EXPECT_EQ(names[alm_label(AlmScheme::kFour, true, false, 100.0, 5, 10)],
            "Mid");
  EXPECT_EQ(names[alm_label(AlmScheme::kFour, true, false, 174.9, 5, 10)],
            "Mid");
  EXPECT_EQ(names[alm_label(AlmScheme::kFour, true, false, 175.0, 5, 10)],
            "Far");
}

TEST(AlmLabel, Table2StrengthThreshold) {
  // AvgSNR: [0,8] weak, (8,inf) strong — 8.0 itself is weak.
  const auto& names = alm_class_names(AlmScheme::kSeven);
  EXPECT_EQ(names[alm_label(AlmScheme::kSeven, true, false, 50, 8.0, 10)],
            "NearWeak");
  EXPECT_EQ(names[alm_label(AlmScheme::kSeven, true, false, 50, 8.01, 10)],
            "NearStrong");
  EXPECT_EQ(names[alm_label(AlmScheme::kSeven, true, false, 150, 7.0, 10)],
            "MidWeak");
  EXPECT_EQ(names[alm_label(AlmScheme::kSeven, true, false, 300, 12.0, 20)],
            "FarStrong");
}

TEST(AlmLabel, SchemeEightSeparatesRrats) {
  const auto& names = alm_class_names(AlmScheme::kEight);
  EXPECT_EQ(names[alm_label(AlmScheme::kEight, true, true, 50, 12, 20)],
            "RRAT");
  // Same features, not an RRAT: falls into the grid classes.
  EXPECT_EQ(names[alm_label(AlmScheme::kEight, true, false, 50, 12, 20)],
            "NearStrong");
  // Scheme 7 folds RRATs into the grid instead.
  EXPECT_EQ(alm_class_names(
                AlmScheme::kSeven)[alm_label(AlmScheme::kSeven, true, true,
                                             50, 12, 20)],
            "NearStrong");
}

TEST(AlmLabel, FourStarUsesVisualBrightness) {
  const auto& names = alm_class_names(AlmScheme::kFourStar);
  EXPECT_EQ(names[alm_label(AlmScheme::kFourStar, true, false, 50, 6, 10.0)],
            "Pulsar");
  EXPECT_EQ(names[alm_label(AlmScheme::kFourStar, true, false, 50, 6, 25.0)],
            "VeryBrightPulsar");
  EXPECT_EQ(names[alm_label(AlmScheme::kFourStar, true, true, 50, 6, 10.0)],
            "RRAT");
}

TEST(AlmLabel, EveryLabelIsInRange) {
  for (AlmScheme s : all_alm_schemes()) {
    const auto n = static_cast<int>(alm_class_names(s).size());
    for (double dm : {10.0, 120.0, 500.0}) {
      for (double snr : {5.0, 9.0, 30.0}) {
        for (bool rrat : {false, true}) {
          const int label = alm_label(s, true, rrat, dm, snr, snr * 2);
          EXPECT_GE(label, 1);
          EXPECT_LT(label, n);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ml
}  // namespace drapid
