// Thread-safe span tracer for the execution layers.
//
// A span is one timed, named interval on one thread; RAII ScopedSpans nest
// naturally (the engine's stage span encloses its task spans, a lineage
// recomputation's stages nest inside the task that triggered them). Each
// thread records into its own buffer, so the hot path takes one uncontended
// mutex and never blocks another thread; buffers are merged at export time.
//
// Tracing is off by default and ScopedSpan's constructor is a single relaxed
// atomic load when disabled, so instrumented code paths (every engine task)
// stay effectively free until a bench passes --trace-out. Timestamps come
// from a steady clock relative to the tracer's construction; simulated-time
// results from the ClusterModel can be attached as instant-event or span
// args (see chrome_trace.hpp for the exporter).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace drapid {
namespace obs {

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',   ///< span opened
    kEnd = 'E',     ///< span closed (matches the innermost open kBegin)
    kInstant = 'i'  ///< point event (retries, failovers, annotations)
  };
  Phase phase = Phase::kInstant;
  std::string name;      ///< empty for kEnd (the matching kBegin names it)
  std::string category;
  std::int64_t ts_ns = 0;  ///< relative to the tracer's construction
  std::uint32_t tid = 0;   ///< tracer-local thread id, 1-based
  Json args;               ///< object or null
};

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Caps each thread's buffer; events past the cap are dropped (and
  /// counted), so tracing a long benchmark loop cannot exhaust memory.
  void set_max_events_per_thread(std::size_t cap);

  /// Records span open/close on the calling thread. Unlike instant(), these
  /// do NOT check enabled(): ScopedSpan performs the check once at
  /// construction so a span that began is always closed (balance holds even
  /// if the tracer is disabled mid-span). `detail` is appended to the span
  /// name as ":detail" when non-empty.
  void begin_span(std::string_view name, std::string_view detail = {},
                  std::string_view category = {});
  void end_span(Json args = Json());

  /// Records a point event if tracing is enabled.
  void instant(std::string_view name, Json args = Json(),
               std::string_view category = {});

  std::int64_t now_ns() const;

  /// All recorded events: per-thread buffers concatenated in thread
  /// first-use order; within one thread, record order (which for spans is
  /// open/close order — balanced and strictly nested by construction).
  std::vector<TraceEvent> events() const;

  /// Spans currently open across all threads (0 once all ScopedSpans have
  /// unwound — the balance invariant the tests assert).
  std::size_t open_spans() const;

  /// Events dropped because a thread hit the buffer cap.
  std::size_t dropped_events() const;

  void clear();

  struct ThreadBuffer;  ///< opaque; public only for the thread-local cache

 private:
  ThreadBuffer& local_buffer();

  const std::uint64_t id_;  ///< process-unique, for the thread-local cache
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> max_events_per_thread_{1u << 20};
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span handle. Checks enabled() once at construction; every method is
/// a no-op on an inactive span, so instrumented code needs no branches.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string_view name,
             std::string_view detail = {}, std::string_view category = {})
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_) tracer_->begin_span(name, detail, category);
  }
  ~ScopedSpan() {
    if (tracer_) tracer_->end_span(std::move(args_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }

  /// Attaches an argument reported with the span's close event.
  void arg(std::string key, Json value) {
    if (tracer_) args_.set(std::move(key), std::move(value));
  }

 private:
  Tracer* tracer_;
  Json args_;
};

/// The process-wide tracer the engine and benches share (disabled until a
/// bench passes --trace-out). Never destroyed before trace export because
/// benches export before returning from main.
Tracer& global_tracer();

}  // namespace obs
}  // namespace drapid
