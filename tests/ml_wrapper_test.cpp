#include "ml/wrapper_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {
namespace {

/// Two informative features (x0, x1 jointly determine the class) buried in
/// noise columns.
Dataset xor_with_noise(std::size_t n, std::size_t noise_features,
                       std::uint64_t seed) {
  std::vector<std::string> names{"x0", "x1"};
  for (std::size_t f = 0; f < noise_features; ++f) {
    names.push_back("n" + std::to_string(f));
  }
  Dataset d(std::move(names), {"a", "b"});
  Rng rng(seed);
  std::vector<double> x(2 + noise_features);
  for (std::size_t i = 0; i < n; ++i) {
    const bool b0 = rng.chance(0.5);
    const bool b1 = rng.chance(0.5);
    x[0] = (b0 ? 1.0 : 0.0) + rng.normal(0.0, 0.15);
    x[1] = (b1 ? 1.0 : 0.0) + rng.normal(0.0, 0.15);
    for (std::size_t f = 0; f < noise_features; ++f) {
      x[2 + f] = rng.normal();
    }
    d.add(x, (b0 != b1) ? 1 : 0);
  }
  return d;
}

std::function<std::unique_ptr<Classifier>()> tree_factory() {
  return [] { return std::make_unique<DecisionTree>(TreeParams{}, 1); };
}

TEST(WrapperSelection, FindsBothXorFeatures) {
  // Whether greedy selection escapes the XOR plateau is sensitive to the
  // exact CV fold draw; this seed finds the pair under the rotated
  // stratified dealing (fold starts rotate across classes).
  const Dataset d = xor_with_noise(400, 6, 2);
  WrapperParams params;
  params.max_features = 4;
  const auto result = wrapper_forward_selection(d, tree_factory(), params);
  // Both informative features must be selected (a filter scoring features
  // one at a time would miss them — XOR has zero marginal signal).
  ASSERT_GE(result.features.size(), 2u);
  const bool has0 = std::find(result.features.begin(), result.features.end(),
                              0u) != result.features.end();
  const bool has1 = std::find(result.features.begin(), result.features.end(),
                              1u) != result.features.end();
  EXPECT_TRUE(has0);
  EXPECT_TRUE(has1);
  // Greedy trees cannot fully exploit XOR (the first split has ~zero gain),
  // so the absolute score stays modest — the point is that the *wrapper*
  // still identifies the interacting pair, which no single-feature filter
  // can.
  EXPECT_GT(result.scores.back(), 0.6);
}

TEST(WrapperSelection, ScoresAreNonDecreasing) {
  const Dataset d = xor_with_noise(300, 4, 7);
  const auto result = wrapper_forward_selection(d, tree_factory(), {});
  for (std::size_t i = 1; i < result.scores.size(); ++i) {
    EXPECT_GE(result.scores[i], result.scores[i - 1]);
  }
}

TEST(WrapperSelection, RespectsMaxFeatures) {
  const Dataset d = xor_with_noise(300, 8, 11);
  WrapperParams params;
  params.max_features = 2;
  params.min_improvement = -1.0;  // never stop early
  const auto result = wrapper_forward_selection(d, tree_factory(), params);
  EXPECT_LE(result.features.size(), 2u);
}

TEST(WrapperSelection, CountsItsTrainings) {
  const Dataset d = xor_with_noise(200, 3, 13);
  WrapperParams params;
  params.max_features = 2;
  params.folds = 3;
  const auto result = wrapper_forward_selection(d, tree_factory(), params);
  // Each candidate evaluation costs `folds` trainings; at least one full
  // sweep over 5 features happened.
  EXPECT_GE(result.trainings, 15u);
}

TEST(WrapperSelection, SelectedIndicesAreUnique) {
  const Dataset d = xor_with_noise(250, 5, 17);
  const auto result = wrapper_forward_selection(d, tree_factory(), {});
  auto sorted = result.features;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace ml
}  // namespace drapid
