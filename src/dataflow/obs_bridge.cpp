#include "dataflow/obs_bridge.hpp"

#include <utility>

namespace drapid {

namespace {

bool ends_with(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Spill recovery books the failed read as an extra attempt on the
// ":materialize" task and the recomputation into a ":recover" stage; extra
// attempts on either are lineage recoveries, not task-launch retries.
bool is_recover_stage(const std::string& name) {
  return ends_with(name, ":materialize") || ends_with(name, ":recover");
}

}  // namespace

obs::JobReport make_job_report(std::string label, const JobMetrics& metrics,
                               std::size_t replica_failovers) {
  obs::JobReport job;
  job.label = std::move(label);
  for (const StageMetrics& stage : metrics.stages) {
    obs::StageReport row;
    row.name = stage.name;
    row.tasks = stage.tasks.size();
    row.records_in = stage.total_records_in();
    row.bytes_in = stage.total_bytes_in();
    row.shuffle_bytes = stage.total_shuffle_bytes();
    row.spill_bytes = stage.total_spill_bytes();
    row.compute_cost = static_cast<double>(stage.total_compute_cost());
    row.retries = stage.total_retries();
    row.retry_cost = static_cast<double>(stage.total_retry_cost());
    row.tasks_stolen = stage.tasks_stolen;
    row.parks = stage.parks;
    row.fastpath_completions = stage.fastpath_completions;
    row.workers_used = stage.workers_used;
    row.worker_deaths = stage.worker_deaths;
    row.ipc_bytes = stage.ipc_bytes;
    row.pool_reuses = stage.pool_reuses;
    row.resident_bytes = stage.resident_bytes;
    row.worker_respawns = stage.worker_respawns;
    row.wall_seconds = stage.wall_seconds;
    if (stage.worker_deaths > 0) {
      obs::ObsEvent event;
      event.kind = "worker_death";
      event.stage = stage.name;
      event.count = static_cast<std::int64_t>(stage.worker_deaths);
      job.events.push_back(std::move(event));
    }
    if (stage.worker_respawns > 0) {
      obs::ObsEvent event;
      event.kind = "worker_respawn";
      event.stage = stage.name;
      event.count = static_cast<std::int64_t>(stage.worker_respawns);
      job.events.push_back(std::move(event));
    }
    for (const TaskMetrics& task : stage.tasks) {
      row.records_out += task.records_out;
      row.bytes_out += task.bytes_out;
      if (task.attempts > 1) {
        obs::ObsEvent event;
        // A recover stage's "extra attempts" are lineage recomputations of
        // spilled partitions, not task-launch retries.
        event.kind = is_recover_stage(stage.name) ? "recover" : "retry";
        event.stage = stage.name;
        event.partition = static_cast<std::int64_t>(task.partition);
        event.count = static_cast<std::int64_t>(task.attempts - 1);
        job.events.push_back(std::move(event));
      }
    }
    job.stages.push_back(std::move(row));
  }
  if (replica_failovers > 0) {
    obs::ObsEvent event;
    event.kind = "failover";
    event.count = static_cast<std::int64_t>(replica_failovers);
    job.events.push_back(std::move(event));
  }
  return job;
}

}  // namespace drapid
