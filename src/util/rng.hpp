// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in the library (survey simulator, SMOTE, random
// forests, MLP initialization, cross-validation shuffles) draws from a Rng
// seeded explicitly by the caller, so every experiment in the paper
// reproduction is bit-reproducible run to run. The generator is xoshiro256**
// seeded via splitmix64, following the reference implementations by Blackman
// and Vigna.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace drapid {

/// xoshiro256** engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Derives an independent child generator; used to give each parallel
  /// worker / tree / fold its own stream without sharing state.
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (polar form avoided for determinism
  /// simplicity; the trig form consumes exactly two uniforms per pair).
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (events per unit).
  double exponential(double rate) {
    double u = 0.0;
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  std::uint64_t poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda > 64.0) {
      const double v = normal(lambda, std::sqrt(lambda));
      return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-lambda);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    const auto n = items.size();
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace drapid
