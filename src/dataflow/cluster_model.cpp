#include "dataflow/cluster_model.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace drapid {

ClusterSpec ClusterSpec::paper_beowulf(std::size_t num_executors) {
  ClusterSpec spec;
  spec.name = "beowulf-15";
  spec.node.name = "i5-3470/core2duo-mix";
  spec.node.clock_ghz = 3.2;
  spec.node.physical_cores = 4;
  spec.node.smt_throughput = 1.0;  // no hyperthreading on these parts
  spec.node.memory_gb = 8.0;
  spec.node.disk_mbps = 120.0;
  spec.node.net_mbps = 110.0;
  spec.num_executors = num_executors;
  spec.cores_per_executor = 2;
  spec.executor_memory_mb = 2560.0;
  return spec;
}

MachineSpec ClusterSpec::paper_workstation() {
  MachineSpec m;
  m.name = "i7-7800K@4.5GHz";
  m.clock_ghz = 4.5;
  m.physical_cores = 6;
  m.smt_throughput = 1.25;
  m.memory_gb = 16.0;
  m.disk_mbps = 180.0;  // SATA-era workstation storage
  m.net_mbps = 110.0;
  return m;
}

namespace {

/// Earliest-available-slot list scheduling; returns the makespan given each
/// task's duration in seconds.
double list_schedule(const std::vector<double>& durations, std::size_t slots) {
  if (durations.empty()) return 0.0;
  slots = std::max<std::size_t>(1, slots);
  std::priority_queue<double, std::vector<double>, std::greater<>> available;
  for (std::size_t s = 0; s < slots; ++s) available.push(0.0);
  double makespan = 0.0;
  for (double d : durations) {
    const double start = available.top();
    available.pop();
    const double finish = start + d;
    available.push(finish);
    makespan = std::max(makespan, finish);
  }
  return makespan;
}

}  // namespace

SimResult simulate_cluster(const JobMetrics& job, const ClusterSpec& spec) {
  SimResult result;
  const std::size_t slots =
      std::max<std::size_t>(1, spec.num_executors * spec.cores_per_executor);
  const double unit_s = spec.ns_per_compute_unit * 1e-9 / spec.node.clock_ghz;
  for (const auto& stage : job.stages) {
    // A task transfers over its own node's uplink/disk, shared with the
    // other core(s) of its executor; aggregate bandwidth therefore grows
    // with the executor count (each executor ≈ one node on this testbed).
    const double cores =
        static_cast<double>(std::max<std::size_t>(1, spec.cores_per_executor));
    const double net_bw_per_slot = spec.node.net_mbps * 1e6 / cores;
    const double disk_bw_per_slot = spec.node.disk_mbps * 1e6 / cores;
    std::vector<double> durations;
    durations.reserve(stage.tasks.size());
    for (const auto& task : stage.tasks) {
      // Recovery: each retry reschedules the task (another per-task
      // overhead), waits out an exponentially growing backoff, and repeats
      // the wasted attempts' compute recorded in retry_cost.
      const std::size_t retries = task.attempts > 1 ? task.attempts - 1 : 0;
      const double backoff_s =
          retries == 0 ? 0.0
                       : spec.retry_backoff_ms * 1e-3 *
                             (std::ldexp(1.0, static_cast<int>(retries)) - 1.0);
      durations.push_back(
          spec.per_task_overhead_ms * 1e-3 * (1.0 + retries) + backoff_s +
          static_cast<double>(task.compute_cost) * unit_s +
          static_cast<double>(task.retry_cost) * unit_s +
          static_cast<double>(task.shuffle_bytes) / net_bw_per_slot +
          static_cast<double>(task.spill_bytes) / disk_bw_per_slot);
    }
    const double seconds =
        spec.per_stage_overhead_s + list_schedule(durations, slots);
    result.stages.push_back({stage.name, seconds});
    result.total_seconds += seconds;
  }
  return result;
}

SimResult simulate_workstation(const std::vector<std::size_t>& task_costs,
                               std::size_t input_bytes,
                               std::size_t resident_bytes,
                               const MachineSpec& machine, std::size_t threads,
                               double ns_per_compute_unit) {
  SimResult result;
  threads = std::max<std::size_t>(1, threads);
  // Oversubscription: beyond physical cores (+SMT headroom) extra threads
  // add no throughput, so scale each task's effective duration.
  const double effective_parallelism =
      std::min(static_cast<double>(threads),
               static_cast<double>(machine.physical_cores) *
                   machine.smt_throughput);
  const double slowdown = static_cast<double>(threads) / effective_parallelism;
  const double unit_s = ns_per_compute_unit * 1e-9 / machine.clock_ghz;

  const double scan_s =
      static_cast<double>(input_bytes) / (machine.disk_mbps * 1e6);
  result.stages.push_back({"scan-input", scan_s});

  // Memory pressure: the portion of the working set beyond RAM swaps in and
  // out once, at disk speed.
  const double ram_bytes = machine.memory_gb * 1e9;
  double swap_s = 0.0;
  if (static_cast<double>(resident_bytes) > ram_bytes) {
    swap_s = 2.0 * (static_cast<double>(resident_bytes) - ram_bytes) /
             (machine.disk_mbps * 1e6);
  }
  if (swap_s > 0.0) result.stages.push_back({"swap", swap_s});

  std::vector<double> durations;
  durations.reserve(task_costs.size());
  for (std::size_t cost : task_costs) {
    durations.push_back(static_cast<double>(cost) * unit_s * slowdown);
  }
  const double compute_s = list_schedule(durations, threads);
  result.stages.push_back({"search", compute_s});
  result.total_seconds = scan_s + swap_s + compute_s;
  return result;
}


JobMetrics scale_metrics(const JobMetrics& job, double factor) {
  JobMetrics scaled = job;
  const auto mul = [factor](std::size_t v) {
    return static_cast<std::size_t>(static_cast<double>(v) * factor);
  };
  for (auto& stage : scaled.stages) {
    for (auto& task : stage.tasks) {
      task.records_in = mul(task.records_in);
      task.bytes_in = mul(task.bytes_in);
      task.records_out = mul(task.records_out);
      task.bytes_out = mul(task.bytes_out);
      task.shuffle_bytes = mul(task.shuffle_bytes);
      task.spill_bytes = mul(task.spill_bytes);
      task.compute_cost = mul(task.compute_cost);
      // retry_cost is wasted compute, so it scales with data volume;
      // attempts is an event count and does not.
      task.retry_cost = mul(task.retry_cost);
    }
  }
  return scaled;
}

MakespanValidation validate_makespan(const JobMetrics& measured,
                                     const SimResult& modeled) {
  MakespanValidation v;
  v.measured_seconds = measured.total_wall_seconds();
  v.modeled_seconds = modeled.total_seconds;
  v.ratio = v.measured_seconds > 0.0 ? v.modeled_seconds / v.measured_seconds
                                     : 0.0;
  return v;
}

}  // namespace drapid
