// Chrome trace_event exporter + validator.
//
// Converts Tracer events into the JSON format chrome://tracing and Perfetto
// load directly: {"traceEvents": [{"ph": "B"/"E"/"i", "ts": µs, ...}]}.
// The validator walks a parsed trace and checks the span invariants the
// tracer promises (per-thread balance, strict nesting, monotone stacks);
// tools/trace_check and the obs tests share it.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace drapid {
namespace obs {

/// Builds the trace_event document. Events keep their per-thread record
/// order; timestamps are exported in microseconds (Chrome's unit) with
/// sub-µs precision as fractional values.
Json chrome_trace_json(const std::vector<TraceEvent>& events);

/// Writes chrome_trace_json() to `path`; throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::string& path);

/// Checks a parsed trace_event document: traceEvents is an array, every
/// event has a valid phase, and per tid the B/E events are balanced and
/// strictly nested with non-decreasing timestamps along each thread's
/// record order. Returns "" when valid, else a description of the first
/// violation.
std::string validate_chrome_trace(const Json& trace);

}  // namespace obs
}  // namespace drapid
