#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace drapid {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  auto future = packaged->get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Join-side state shared with the chunk tasks. Chunks report completion
  // through `remaining`; the caller both helps drain the queue and waits on
  // `done` — never a blind blocking wait, so nesting cannot deadlock.
  struct Join {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr first_error;
  };
  const std::size_t chunks = std::min(n, thread_count() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  auto join = std::make_shared<Join>();
  join->remaining.store((n + chunk - 1) / chunk, std::memory_order_relaxed);

  {
    std::lock_guard lock(mutex_);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, n);
      queue_.push_back([join, &fn, begin, end] {
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard guard(join->mutex);
          if (!join->first_error) join->first_error = std::current_exception();
        }
        std::lock_guard guard(join->mutex);
        if (join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          join->done.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // Help: run pending tasks (ours or anyone's) while our chunks are still
  // outstanding; once the queue is dry, sleep until the last chunk reports.
  while (join->remaining.load(std::memory_order_acquire) != 0) {
    if (run_one_pending()) continue;
    std::unique_lock lock(join->mutex);
    join->done.wait_for(lock, std::chrono::milliseconds(1), [&join] {
      return join->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (join->first_error) std::rethrow_exception(join->first_error);
}

bool ThreadPool::run_one_pending() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace drapid
