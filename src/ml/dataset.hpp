// Tabular dataset model for the machine-learning substrate (the Weka
// stand-in): numeric feature matrix plus a nominal class column.
//
// Datasets share their feature matrix: copies and subset() views are O(rows)
// index bookkeeping over the same storage, so carving cross-validation folds
// out of a benchmark no longer deep-copies the rows. Mutation (add) is
// copy-on-write — a dataset that shares storage, or views it through a row
// mapping, materializes its own flat copy first. Spans returned by
// instance() stay valid until the dataset is mutated or destroyed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace drapid {
namespace ml {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> feature_names,
          std::vector<std::string> class_names);

  std::size_t num_instances() const { return num_rows_; }
  std::size_t num_features() const { return feature_names_.size(); }
  std::size_t num_classes() const { return class_names_.size(); }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::string>& class_names() const { return class_names_; }

  /// Appends one instance; `x` must have num_features() values and `y` must
  /// be a valid class index (throws std::invalid_argument otherwise).
  /// Copy-on-write: materializes owned storage when shared or viewed.
  void add(std::span<const double> x, int y);

  std::span<const double> instance(std::size_t i) const {
    const std::size_t r = view_ ? rows_[i] : i;
    return {storage_->values.data() + r * num_features(), num_features()};
  }
  int label(std::size_t i) const {
    return storage_->labels[view_ ? rows_[i] : i];
  }
  /// Labels in instance order. By value: a view's labels are assembled
  /// through its row mapping.
  std::vector<int> labels() const;

  /// All values of feature `f` in instance order.
  std::vector<double> feature_column(std::size_t f) const;

  /// Instances per class.
  std::vector<std::size_t> class_counts() const;

  /// New dataset with only the given feature columns (order preserved as
  /// given); class column unchanged. Materializes (rows must stay
  /// contiguous for instance() spans).
  Dataset select_features(const std::vector<std::size_t>& features) const;

  /// View of the given rows (in the given order) over shared storage:
  /// O(rows) bookkeeping, no row copies. Subsetting a view composes the
  /// mappings.
  Dataset subset(const std::vector<std::size_t>& rows) const;

  /// True when this dataset views shared storage through a row mapping
  /// (diagnostics/tests).
  bool is_view() const { return view_; }

 private:
  struct Storage {
    std::vector<double> values;  // row-major, rows × num_features
    std::vector<int> labels;
  };

  /// Ensures exclusively-owned flat storage (the precondition for add).
  void ensure_owned();

  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
  std::shared_ptr<Storage> storage_;
  std::vector<std::uint32_t> rows_;  ///< storage rows viewed (when view_)
  std::size_t num_rows_ = 0;
  bool view_ = false;
};

}  // namespace ml
}  // namespace drapid
