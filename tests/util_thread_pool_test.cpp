#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace drapid {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AtLeastOneThreadEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  auto f = pool.submit([] {});
  f.get();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitPropagatesExceptionViaFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long long> values(10000);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long long> total{0};
  pool.parallel_for(values.size(), [&](std::size_t i) {
    total.fetch_add(values[i]);
  });
  EXPECT_EQ(total.load(), 10000LL * 10001 / 2);
}

}  // namespace
}  // namespace drapid
