// Microbenchmarks for the phase 1–3 substrate: dedispersion, matched-filter
// detection, FFT and folding.
#include <benchmark/benchmark.h>

#include "micro_support.hpp"

#include "dedisp/kernels.hpp"
#include "dedisp/periodicity.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

Filterbank bench_filterbank(std::size_t channels) {
  FilterbankConfig cfg;
  cfg.num_channels = channels;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 10.0;
  Filterbank fb(cfg);
  Rng rng(1);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 3.0, 20.0);
  return fb;
}

void BM_Dedisperse(benchmark::State& state) {
  const auto fb = bench_filterbank(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedisperse(fb, 40.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fb.num_samples()) *
                          state.range(0));
}
BENCHMARK(BM_Dedisperse)->Arg(32)->Arg(128);

void BM_DetectEvents(benchmark::State& state) {
  const auto fb = bench_filterbank(32);
  const auto series = dedisperse(fb, 40.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect_events(series, 40.0, 2.0, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(series.size()));
}
BENCHMARK(BM_DetectEvents);

void BM_FullSinglePulseSearch(benchmark::State& state) {
  const auto fb = bench_filterbank(32);
  const DmGrid grid({{0.0, 100.0, 2.0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(single_pulse_search(fb, grid, {}));
  }
}
BENCHMARK(BM_FullSinglePulseSearch);

void BM_DetectEventsScratch(benchmark::State& state) {
  const auto fb = bench_filterbank(32);
  const auto series = dedisperse(fb, 40.0);
  DetectScratch scratch;
  std::vector<SinglePulseEvent> events;
  for (auto _ : state) {
    events.clear();
    detect_events_into(series, 40.0, 2.0, {}, scratch, events);
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(series.size()));
}
BENCHMARK(BM_DetectEventsScratch);

/// The realistic fine-step slice of a survey plan: 0.01-spaced trials, where
/// shift-plan dedup and scratch reuse actually pay off.
const DmGrid& sweep_grid() {
  static const DmGrid grid = DmGrid::gbt350drift().prefix(10.0);
  return grid;
}

void BM_DmSweep(benchmark::State& state) {
  const auto fb = bench_filterbank(32);
  SinglePulseSearchParams params;
  params.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(single_pulse_search(fb, sweep_grid(), params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sweep_grid().size() *
                                                    fb.num_samples()));
}
BENCHMARK(BM_DmSweep)->Arg(1)->Arg(2);

/// The two-stage subband sweep over the same fine-step workload — the
/// apples-to-apples comparison row for BM_DmSweep (identical detected
/// events, groups picked by the cost model).
void BM_DmSweepSubband(benchmark::State& state) {
  const auto fb = bench_filterbank(32);
  SinglePulseSearchParams params;
  params.method = SweepMethod::kSubband;
  params.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(single_pulse_search(fb, sweep_grid(), params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sweep_grid().size() *
                                                    fb.num_samples()));
}
BENCHMARK(BM_DmSweepSubband)->Arg(1)->Arg(2);

/// The dispatched accumulation kernel on a dedispersion-sized row — the
/// inner loop both sweep methods and the streaming path run hottest.
void BM_KernelAccumulate(benchmark::State& state) {
  const std::size_t n = 5000;
  Rng rng(7);
  std::vector<float> in(n);
  for (auto& x : in) x = static_cast<float>(rng.normal());
  std::vector<double> out(n, 0.0);
  for (auto _ : state) {
    kernels::accumulate_f32(out.data(), in.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(kernels::dispatch_name());
}
BENCHMARK(BM_KernelAccumulate);

/// The selection kernel behind robust_stats, on fresh noise every iteration
/// — reusing one array would let the branch predictor memorize the data and
/// overstate std::nth_element by an order of magnitude.
void BM_KernelSelect(benchmark::State& state) {
  const std::size_t n = 5000;
  Rng rng(11);
  std::vector<std::vector<double>> inputs(64);
  for (auto& v : inputs) {
    v.resize(n);
    for (auto& x : v) x = rng.normal();
  }
  std::vector<double> work(n), scratch(n);
  std::size_t next = 0;
  for (auto _ : state) {
    std::copy(inputs[next].begin(), inputs[next].end(), work.begin());
    next = (next + 1) % inputs.size();
    benchmark::DoNotOptimize(
        kernels::select_kth(work.data(), scratch.data(), n, n / 2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(kernels::dispatch_name());
}
BENCHMARK(BM_KernelSelect);

/// The pre-shift-plan formulation — every trial dedispersed and detected
/// independently — kept as the in-tree yardstick for the sweep speedup.
void BM_DmSweepPerTrial(benchmark::State& state) {
  const auto fb = bench_filterbank(32);
  const DmGrid& grid = sweep_grid();
  const SinglePulseSearchParams params;
  for (auto _ : state) {
    std::vector<SinglePulseEvent> events;
    for (std::size_t t = 0; t < grid.size(); ++t) {
      const double dm = grid.dm_at(t);
      const auto series = dedisperse(fb, dm);
      const auto found =
          detect_events(series, dm, fb.config().sample_time_ms, params);
      events.insert(events.end(), found.begin(), found.end());
    }
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size() *
                                                    fb.num_samples()));
}
BENCHMARK(BM_DmSweepPerTrial);

void BM_Fft(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::complex<double>> a(
      static_cast<std::size_t>(state.range(0)));
  for (auto& x : a) x = {rng.normal(), 0.0};
  for (auto _ : state) {
    auto copy = a;
    fft_inplace(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384);

void BM_PeriodicitySearch(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> series(16384);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) * 1e-3;
    series[i] = 2.0 * std::exp(-0.5 * std::pow(
        (std::fmod(t, 0.5) - 0.25) / 0.01, 2.0)) + rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(periodicity_search(series, 1.0));
  }
}
BENCHMARK(BM_PeriodicitySearch);

void BM_Fold(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> series(16384);
  for (auto& v : series) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fold(series, 1.0, 0.5, 64));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(series.size()));
}
BENCHMARK(BM_Fold);

}  // namespace
}  // namespace drapid

DRAPID_MICRO_MAIN("bench_micro_dedisp",
                  "Micro-benchmarks for the dedispersion layer: single-pulse search and periodicity folding.")
