// The §4 PALFA labeling path: crossmatching identified pulses against a
// known-source catalogue by sky position + DM, compared against the exact
// simulator ground truth.
#include <gtest/gtest.h>

#include "drapid/pipeline.hpp"

namespace drapid {
namespace {

TEST(CatalogFromPopulation, CarriesEveryField) {
  PopulationConfig cfg;
  cfg.num_pulsars = 5;
  cfg.num_rrats = 2;
  Rng rng(3);
  const auto sources = draw_population(cfg, rng);
  const auto catalog = catalog_from_population(sources);
  ASSERT_EQ(catalog.size(), 7u);
  for (const auto& src : sources) {
    const auto hit = catalog.find(src.name);
    ASSERT_TRUE(hit.has_value()) << src.name;
    EXPECT_DOUBLE_EQ(hit->ra_deg, src.ra_deg);
    EXPECT_DOUBLE_EQ(hit->dm, src.dm);
    EXPECT_EQ(hit->is_rrat, src.type == SourceType::kRrat);
  }
}

TEST(CatalogLabeling, AgreesWithGroundTruthLabels) {
  EngineConfig engine_config;
  engine_config.num_executors = 3;
  engine_config.worker_threads = 2;
  engine_config.partitions_per_core = 2;
  Engine engine(engine_config);
  BlockStore store(15);
  PipelineConfig pipeline;
  pipeline.survey = SurveyConfig::gbt350drift();
  pipeline.survey.obs_length_s = 50.0;
  pipeline.num_observations = 6;
  pipeline.visibility = 0.10;
  pipeline.seed = 2020;
  const auto run = run_full_pipeline(engine, store, pipeline);
  ASSERT_GT(run.result.records.size(), 50u);

  // Label a copy via the catalogue instead of the simulator truth.
  auto by_catalog = run.result.records;
  const auto catalog = catalog_from_population(run.data.sources);
  label_records_by_catalog(by_catalog, catalog);

  std::size_t truth_pos = 0, catalog_pos = 0, agree = 0;
  for (std::size_t i = 0; i < by_catalog.size(); ++i) {
    const bool t = !run.result.records[i].truth_label.empty();
    const bool c = !by_catalog[i].truth_label.empty();
    truth_pos += t;
    catalog_pos += c;
    agree += (t == c);
  }
  if (truth_pos < 10) GTEST_SKIP() << "seed produced too few positives";
  // Catalogue labeling has no time information, so it can only be a
  // superset-ish approximation of the per-pulse truth — but the two must
  // agree on the vast majority of records.
  EXPECT_GE(agree, by_catalog.size() * 85 / 100)
      << agree << " of " << by_catalog.size() << " (truth " << truth_pos
      << ", catalog " << catalog_pos << ")";
  EXPECT_GT(catalog_pos, 0u);
}

TEST(CatalogLabeling, BlankSkyMatchesNothing) {
  std::vector<MlRecord> records(1);
  records[0].obs.ra_deg = 10.0;
  records[0].obs.dec_deg = 10.0;
  records[0].features.values[kSnrPeakDm] = 50.0;
  SourceCatalog catalog;
  catalog.add({"far-away", 200.0, -20.0, 50.0, 1.0, false});
  label_records_by_catalog(records, catalog);
  EXPECT_TRUE(records[0].truth_label.empty());
}

TEST(CatalogLabeling, RratsGetTheirOwnLabel) {
  std::vector<MlRecord> records(1);
  records[0].obs.ra_deg = 100.0;
  records[0].obs.dec_deg = 5.0;
  records[0].features.values[kSnrPeakDm] = 120.0;
  SourceCatalog catalog;
  catalog.add({"R0001+00", 100.05, 5.02, 121.0, 0.0, true});
  label_records_by_catalog(records, catalog);
  EXPECT_EQ(records[0].truth_label, "rrat");
}

}  // namespace
}  // namespace drapid
