#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/stats.hpp"

namespace drapid {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentOfParentContinuation) {
  Rng parent(99);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 7.0);
    ASSERT_GE(v, 3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(Rng, BelowIsUnbiasedAcrossBuckets) {
  Rng rng(17);
  const std::uint64_t buckets = 7;
  std::vector<int> counts(buckets, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(buckets)];
  for (auto c : counts) {
    EXPECT_NEAR(c, draws / static_cast<int>(buckets), 600);
  }
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(31);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(mean(v), 10.0, 0.05);
  EXPECT_NEAR(stddev(v), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(37);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.exponential(4.0));
  EXPECT_NEAR(mean(v), 0.25, 0.01);
}

TEST(Rng, PoissonMeanMatchesLambdaSmallAndLarge) {
  Rng rng(41);
  for (double lambda : {0.5, 3.0, 20.0, 200.0}) {
    double total = 0.0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
      total += static_cast<double>(rng.poisson(lambda));
    }
    EXPECT_NEAR(total / draws, lambda, std::max(0.05, lambda * 0.05))
        << "lambda=" << lambda;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(43);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(53);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

class BelowBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BelowBounds, NeverReachesBound) {
  Rng rng(GetParam());
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(n), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BelowBounds, ::testing::Values(1, 7, 77, 777));

}  // namespace
}  // namespace drapid
