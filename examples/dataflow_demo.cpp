// The dataflow substrate on its own: a generic keyed-analytics job showing
// the same primitives D-RAPID is built from — block store, KVP RDDs, hash
// partitioning, aggregate-by-key, co-partitioned left outer join, and the
// work metrics the cluster cost model prices.
//
// The job: per-city weather readings joined against a city->region table,
// producing per-city maxima with their region.
//
//   ./examples/dataflow_demo [--rows N]
#include <iostream>
#include <sstream>

#include "dataflow/block_store.hpp"
#include "dataflow/cluster_model.hpp"
#include "dataflow/rdd.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  Options opts(argc, argv, {{"rows", "20000"}});
  const auto rows = static_cast<std::size_t>(opts.integer("rows"));

  // Synthesize a readings file and a regions file in the block store.
  const std::vector<std::string> cities = {"austin", "boston", "chicago",
                                           "denver", "eugene", "fairmont"};
  Rng rng(7);
  std::ostringstream readings;
  for (std::size_t i = 0; i < rows; ++i) {
    readings << cities[rng.below(cities.size())] << ','
             << format_number(rng.normal(15.0, 12.0), 2) << '\n';
  }
  BlockStore store(4, /*block_size=*/16 << 10);
  store.put("readings.csv", readings.str());
  std::cout << "readings.csv: " << store.file_size("readings.csv")
            << " bytes in " << store.blocks("readings.csv").size()
            << " replicated blocks\n";

  EngineConfig config;
  config.num_executors = 4;
  config.worker_threads = 2;
  Engine engine(config);

  // Load: one partition per block chunk.
  const auto chunks = store.line_chunks("readings.csv");
  std::vector<std::pair<std::string, double>> pairs;
  for (const auto& chunk : chunks) {
    std::istringstream in(chunk);
    std::string line;
    while (std::getline(in, line)) {
      const auto comma = line.find(',');
      pairs.emplace_back(line.substr(0, comma),
                         parse_double(line.substr(comma + 1)));
    }
  }
  auto readings_rdd = parallelize(engine, std::move(pairs), chunks.size());

  // Region table as a small co-partitioned RDD.
  std::vector<std::pair<std::string, std::string>> region_pairs = {
      {"austin", "south"},   {"boston", "northeast"}, {"chicago", "midwest"},
      {"denver", "mountain"}, {"eugene", "pacific"},  {"fairmont", "northeast"}};
  const HashPartitioner part{8};
  auto regions = partition_by(
      engine, parallelize(engine, std::move(region_pairs), 2), part);

  // Max temperature per city, laid out with the shared partitioner...
  auto maxima = reduce_by_key(
      engine, readings_rdd,
      [](double a, double b) { return std::max(a, b); }, part);
  // ...so this join shuffles nothing.
  auto joined = left_outer_join(engine, maxima, regions, part);

  std::vector<std::vector<std::string>> table;
  table.push_back({"city", "max_temp", "region"});
  auto all = joined.collect();
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [city, value] : all) {
    table.push_back({city, format_number(value.first, 2),
                     value.second.value_or("<unknown>")});
  }
  std::cout << '\n' << render_table(table);

  std::cout << "\nmeasured work:\n" << engine.metrics().summary();
  const auto sim = simulate_cluster(engine.metrics(),
                                    ClusterSpec::paper_beowulf(4));
  std::cout << "modeled time on a 4-executor beowulf cluster: "
            << format_number(sim.total_seconds, 3) << " s\n";
  std::cout << "join-stage shuffle bytes: ";
  std::size_t join_shuffle = 0;
  for (const auto& s : engine.metrics().stages) {
    if (s.name.rfind("left_outer_join:shuffle", 0) == 0) {
      join_shuffle += s.total_shuffle_bytes();
    }
  }
  std::cout << join_shuffle << " (co-partitioned: expect 0)\n";
  return 0;
}
