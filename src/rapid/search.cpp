#include "rapid/search.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/stats.hpp"

namespace drapid {

std::size_t compute_bin_size(std::size_t n, const RapidParams& params) {
  if (!params.dynamic_bin_size) return std::max<std::size_t>(1, params.static_bin_size);
  if (n < 12) return 1;
  const auto size = static_cast<std::size_t>(
      std::floor(params.weight * std::sqrt(static_cast<double>(n))));
  return std::max<std::size_t>(1, size);
}

namespace {

enum class Trend { kDecreasing, kFlat, kIncreasing };

Trend classify(double slope, double threshold) {
  if (slope < -threshold) return Trend::kDecreasing;
  if (slope > threshold) return Trend::kIncreasing;
  return Trend::kFlat;
}

/// A single pulse being assembled by the trend state machine.
struct PendingPulse {
  std::size_t begin = 0;
  bool has_peak = false;
};

class SearchState {
 public:
  explicit SearchState(std::span<const SinglePulseEvent> events)
      : events_(events) {}

  void begin_new(std::size_t at) { sp_ = PendingPulse{at, false}; }
  void clear() { sp_.reset(); }
  void mark_peak() {
    if (sp_) sp_->has_peak = true;
  }
  bool active() const { return sp_.has_value(); }
  bool has_peak() const { return sp_ && sp_->has_peak; }

  /// Writes the pending pulse covering [sp.begin, end_exclusive); only
  /// pulses that actually crossed a peak are emitted.
  void write(std::size_t end_exclusive) {
    if (!sp_ || !sp_->has_peak || end_exclusive <= sp_->begin) {
      sp_.reset();
      return;
    }
    SinglePulse pulse;
    pulse.begin = sp_->begin;
    pulse.end = end_exclusive;
    pulse.peak = pulse.begin;
    for (std::size_t i = pulse.begin; i < pulse.end; ++i) {
      if (events_[i].snr > events_[pulse.peak].snr) pulse.peak = i;
    }
    results_.push_back(pulse);
    sp_.reset();
  }

  std::vector<SinglePulse>&& take_results() { return std::move(results_); }

 private:
  std::span<const SinglePulseEvent> events_;
  std::optional<PendingPulse> sp_;
  std::vector<SinglePulse> results_;
};

}  // namespace

std::vector<SinglePulse> rapid_search(std::span<const SinglePulseEvent> events,
                                      const RapidParams& params) {
  const std::size_t n = events.size();
  if (n < 2) return {};
  const std::size_t binsize = compute_bin_size(n, params);
  const double m = params.slope_threshold;

  SearchState state(events);
  // b_{n-1} is initialized to 0 (Algorithm 1), i.e. a flat previous trend.
  Trend prev = Trend::kFlat;

  for (std::size_t start = 0; start < n; start += binsize) {
    // Regression window: the bin itself, widened to two points when the bin
    // size is 1 so that the slope "connects the dots" (§5.1.2) instead of
    // degenerating on a single point.
    const std::size_t window = std::max<std::size_t>(binsize, 2);
    const std::size_t end = std::min(start + window, n);
    if (end - start < 2) break;  // a trailing singleton carries no trend
    std::vector<double> x, y;
    x.reserve(end - start);
    y.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      x.push_back(events[i].dm);
      y.push_back(events[i].snr);
    }
    const Trend cur = classify(linear_regression(x, y).slope, m);

    // Trend-transition state machine (Algorithm 1). `start` is the first
    // SPE of the current bin: pulses begin at bin starts and are written
    // covering everything before the bin that triggered the write.
    switch (prev) {
      case Trend::kDecreasing:
        if (cur == Trend::kFlat) {
          // Valley floor: anything without a completed peak restarts here;
          // a completed pulse keeps its trailing plateau.
          if (!state.has_peak()) state.begin_new(start);
        } else if (cur == Trend::kIncreasing) {
          if (state.has_peak()) state.write(start);
          state.begin_new(start);
        }
        // decreasing -> decreasing: keep descending.
        break;
      case Trend::kFlat:
        if (cur == Trend::kDecreasing) {
          if (state.active() && !state.has_peak()) {
            state.mark_peak();  // crest plateau ended; peak crossed
          } else if (!state.active()) {
            state.begin_new(start);  // descending edge of an unseen climb
          }
        } else if (cur == Trend::kFlat) {
          if (state.has_peak()) {
            state.write(start);
            state.begin_new(start);
          } else {
            state.clear();  // flat noise; discard a climb that stalled
          }
        } else {  // increasing
          if (state.has_peak()) state.write(start);
          if (!state.active()) state.begin_new(start);
        }
        break;
      case Trend::kIncreasing:
        if (cur == Trend::kDecreasing) {
          if (!state.active()) state.begin_new(start);
          state.mark_peak();  // sharp peak between the two bins
        } else if (cur == Trend::kFlat) {
          if (!state.active()) state.begin_new(start);
          // crest plateau: peak confirmed when the descent arrives
        } else {
          if (!state.active()) state.begin_new(start);  // still climbing
        }
        break;
    }
    prev = cur;
  }

  // A pulse still descending (or plateaued) at the end of the cluster is
  // complete if its peak was crossed.
  state.write(n);
  return std::move(state.take_results());
}

std::size_t rapid_search_cost(std::size_t cluster_size) {
  // Every SPE enters one regression; constant covers bin setup and the
  // per-cluster dispatch overhead.
  return 16 + cluster_size;
}

}  // namespace drapid
