// SIGPROC .fil I/O: round trip, and the short-read/validation regressions —
// a truncated or zero-channel file must fail with a clear FilterbankError,
// never construct a broken Filterbank or crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dedisp/filterbank.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

namespace fs = std::filesystem;

/// Unique per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("drapid_fil_") + info->test_suite_name() + "_" +
            info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

FilterbankConfig small_config() {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.num_channels = 16;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 1.0;
  return cfg;
}

// Hand-rolled SIGPROC header pieces, for crafting deliberately-broken files.
void put_string(std::string& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out.append(s);
}
void put_int(std::string& out, const std::string& name, std::int32_t v) {
  put_string(out, name);
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_double(std::string& out, const std::string& name, double v) {
  put_string(out, name);
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::string header(std::int32_t nchans, std::int32_t nbits,
                   std::int32_t nifs = 1, double tsamp = 0.002) {
  std::string h;
  put_string(h, "HEADER_START");
  put_int(h, "nchans", nchans);
  put_int(h, "nbits", nbits);
  put_int(h, "nifs", nifs);
  put_double(h, "tsamp", tsamp);
  put_double(h, "fch1", 399.0);
  put_double(h, "foff", -6.25);
  put_string(h, "HEADER_END");
  return h;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string frames(std::size_t count, std::size_t nchans) {
  std::string data;
  for (std::size_t i = 0; i < count * nchans; ++i) {
    const float v = static_cast<float>(i) * 0.25f;
    data.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  return data;
}

TEST(FilterbankIo, RoundTripsDataAndGeometry) {
  TempDir dir;
  FilterbankConfig cfg = small_config();
  Filterbank fb(cfg);
  Rng rng(42);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(0.4, 25.0, 3.0, 10.0);

  const std::string path = dir.file("obs.fil");
  fb.write_fil(path);
  const Filterbank back = Filterbank::read_fil(path);

  ASSERT_EQ(back.num_channels(), fb.num_channels());
  ASSERT_EQ(back.num_samples(), fb.num_samples());
  EXPECT_DOUBLE_EQ(back.config().sample_time_ms, cfg.sample_time_ms);
  for (std::size_t c = 0; c < fb.num_channels(); ++c) {
    // Frequencies follow the file's fch1 + c*foff ladder — equal to the
    // in-memory ladder up to the f64 round trip through the header.
    EXPECT_NEAR(back.channel_freq_mhz(c), fb.channel_freq_mhz(c), 1e-9);
    for (std::size_t s = 0; s < fb.num_samples(); ++s) {
      ASSERT_EQ(back.at(c, s), fb.at(c, s)) << "c=" << c << " s=" << s;
    }
  }
}

TEST(FilterbankIo, MissingFileFails) {
  EXPECT_THROW(Filterbank::read_fil("/nonexistent/no.fil"), FilterbankError);
}

TEST(FilterbankIo, TruncatedHeaderFails) {
  TempDir dir;
  Filterbank fb(small_config());
  const std::string path = dir.file("obs.fil");
  fb.write_fil(path);
  const auto full = static_cast<std::size_t>(fs::file_size(path));
  // Cut the file inside the header at several depths, including mid-token.
  for (std::size_t keep : {0ul, 3ul, 12ul, 17ul, 40ul}) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes(keep, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(keep));
    const std::string cut = dir.file("cut.fil");
    write_file(cut, bytes);
    EXPECT_THROW(Filterbank::read_fil(cut), FilterbankError) << keep;
  }
  ASSERT_GT(full, 40u);
}

TEST(FilterbankIo, TruncatedDataSectionFails) {
  TempDir dir;
  Filterbank fb(small_config());
  const std::string path = dir.file("obs.fil");
  fb.write_fil(path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Chop off half a frame: the byte count stops being a whole number of
  // frames AND contradicts the declared nsamples.
  bytes.resize(bytes.size() - fb.num_channels() * sizeof(float) / 2);
  const std::string cut = dir.file("cut.fil");
  write_file(cut, bytes);
  EXPECT_THROW(Filterbank::read_fil(cut), FilterbankError);

  // Whole frames missing: caught by the nsamples cross-check.
  bytes.resize(bytes.size() - fb.num_channels() * sizeof(float) / 2);
  write_file(cut, bytes);
  EXPECT_THROW(Filterbank::read_fil(cut), FilterbankError);
}

TEST(FilterbankIo, ZeroChannelFileFails) {
  TempDir dir;
  const std::string path = dir.file("zero.fil");
  write_file(path, header(0, 32) + frames(4, 1));
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
  write_file(path, header(-3, 32) + frames(4, 1));
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
}

TEST(FilterbankIo, UnsupportedEncodingsFail) {
  TempDir dir;
  const std::string path = dir.file("bad.fil");
  write_file(path, header(16, 8) + frames(4, 16));  // 8-bit samples
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
  write_file(path, header(16, 32, 2) + frames(4, 16));  // two IFs
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
  write_file(path, header(16, 32, 1, 0.0) + frames(4, 16));  // tsamp == 0
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
}

TEST(FilterbankIo, NotAFilterbankFails) {
  TempDir dir;
  const std::string path = dir.file("not.fil");
  write_file(path, "this is not a filterbank file at all, sorry");
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
  std::string no_start;
  put_string(no_start, "HEADER_END");
  write_file(path, no_start);
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
}

TEST(FilterbankIo, UnknownHeaderKeyFails) {
  TempDir dir;
  std::string h;
  put_string(h, "HEADER_START");
  put_int(h, "nchans", 16);
  put_int(h, "wibble", 7);  // unknown key: value width is unknowable
  put_string(h, "HEADER_END");
  const std::string path = dir.file("unk.fil");
  write_file(path, h + frames(4, 16));
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
}

TEST(FilterbankIo, EmptyDataSectionFails) {
  TempDir dir;
  const std::string path = dir.file("empty.fil");
  write_file(path, header(16, 32));  // header only, zero frames
  EXPECT_THROW(Filterbank::read_fil(path), FilterbankError);
}

TEST(FilterbankIo, ReadBackSearchesLikeTheOriginal) {
  // End to end: a written-and-reloaded filterbank must carry the pulse.
  TempDir dir;
  FilterbankConfig cfg = small_config();
  cfg.obs_length_s = 4.0;
  Filterbank fb(cfg);
  Rng rng(7);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(2.0, 30.0, 5.0, 20.0);
  const std::string path = dir.file("obs.fil");
  fb.write_fil(path);
  const Filterbank back = Filterbank::read_fil(path);
  ASSERT_EQ(back.num_samples(), fb.num_samples());
  // Identical payloads, bit for bit.
  for (std::size_t c = 0; c < fb.num_channels(); ++c) {
    for (std::size_t s = 0; s < fb.num_samples(); ++s) {
      ASSERT_EQ(back.at(c, s), fb.at(c, s));
    }
  }
}

}  // namespace
}  // namespace drapid
