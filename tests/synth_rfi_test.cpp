// Structured RFI scenarios, multi-beam observation generation, SurveyConfig /
// filterbank-geometry validation, and the mitigation precision/recall
// acceptance run against synthetic ground truth.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "synth/filterbank_survey.hpp"
#include "synth/rfi.hpp"
#include "synth/survey.hpp"

namespace drapid {
namespace {

// --- SurveyConfig validation -------------------------------------------------

TEST(SurveyConfigValidation, AllPresetsValidateAndSimulate) {
  for (const SurveyConfig& cfg :
       {SurveyConfig::gbt350drift(), SurveyConfig::palfa(),
        SurveyConfig::fast_crafts(), SurveyConfig::ska_mid()}) {
    EXPECT_NO_THROW(cfg.validate()) << cfg.name;
    ASSERT_NE(cfg.grid, nullptr) << cfg.name;
    SurveySimulator sim(cfg, 3);
    ObservationId id;
    id.dataset = cfg.name;
    const SimulatedObservation obs = sim.simulate(id, {});
    EXPECT_FALSE(obs.data.events.empty()) << cfg.name;
  }
}

TEST(SurveyConfigValidation, RejectsNegativeRate) {
  SurveyConfig cfg = SurveyConfig::gbt350drift();
  cfg.noise_events_per_second = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("noise_events_per_second"),
              std::string::npos);
  }
}

TEST(SurveyConfigValidation, RejectsNonFiniteRate) {
  SurveyConfig cfg = SurveyConfig::palfa();
  cfg.swept_chirps_per_observation =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SurveyConfigValidation, RejectsInvertedFrequencyBounds) {
  SurveyConfig cfg = SurveyConfig::gbt350drift();
  cfg.bandwidth_mhz = 800.0;  // band bottom at 350 - 400 < 0 MHz
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("inverted"), std::string::npos);
  }
}

TEST(SurveyConfigValidation, RejectsNonPositiveGeometry) {
  SurveyConfig cfg = SurveyConfig::gbt350drift();
  cfg.sample_time_ms = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SurveyConfig::gbt350drift();
  cfg.obs_length_s = -5.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SurveyConfigValidation, RejectsInvertedPopulationDmRange) {
  SurveyConfig cfg = SurveyConfig::palfa();
  cfg.population.dm_min = 500.0;
  cfg.population.dm_max = 100.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SurveyConfigValidation, SimulatorConstructorValidates) {
  SurveyConfig cfg = SurveyConfig::gbt350drift();
  cfg.rfi_bursts_per_observation = -0.5;
  EXPECT_THROW(SurveySimulator(cfg, 1), std::invalid_argument);
}

// --- filterbank-geometry validation -----------------------------------------

TEST(FilterbankSurveyValidation, RejectsZeroChannelGeometry) {
  const SurveyConfig cfg = SurveyConfig::gbt350drift();
  Rng rng(1);
  FilterbankSurveyOptions options;
  options.num_channels = 0;
  EXPECT_THROW(
      simulate_filterbank_observation(cfg, ObservationId{}, {}, rng, options),
      std::invalid_argument);
}

TEST(FilterbankSurveyValidation, RejectsZeroSampleGeometry) {
  const SurveyConfig cfg = SurveyConfig::gbt350drift();
  Rng rng(1);
  FilterbankSurveyOptions options;
  options.obs_length_s = 0.0001;  // shorter than one 1 ms sample
  EXPECT_THROW(
      simulate_filterbank_observation(cfg, ObservationId{}, {}, rng, options),
      std::invalid_argument);
  options = FilterbankSurveyOptions{};
  options.sample_time_ms = -1.0;
  EXPECT_THROW(
      simulate_filterbank_observation(cfg, ObservationId{}, {}, rng, options),
      std::invalid_argument);
}

// --- scenario drawing --------------------------------------------------------

TEST(RfiScenario, QuietPresetDrawsNothingAndConsumesNoStream) {
  const SurveyConfig cfg = SurveyConfig::gbt350drift();
  ASSERT_FALSE(cfg.has_structured_rfi());
  Rng touched(42);
  Rng untouched(42);
  const RfiScenario scenario =
      draw_rfi_scenario(cfg, cfg.obs_length_s, touched);
  EXPECT_TRUE(scenario.empty());
  // Poisson(0) must consume no draws: the stream is byte-identical.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(touched.uniform(), untouched.uniform());
  }
}

TEST(RfiScenario, DirtyPresetDrawsAllThreeFamilies) {
  const SurveyConfig cfg = SurveyConfig::ska_mid();
  ASSERT_TRUE(cfg.has_structured_rfi());
  bool periodic = false, carrier = false, chirp = false;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    for (const RfiInstance& inst :
         draw_rfi_scenario(cfg, cfg.obs_length_s, rng).instances) {
      periodic |= inst.family == RfiFamily::kPeriodicBroadband;
      carrier |= inst.family == RfiFamily::kNarrowbandCarrier;
      chirp |= inst.family == RfiFamily::kSweptChirp;
      EXPECT_GE(inst.t_begin_s, 0.0);
      EXPECT_LE(inst.t_end_s, cfg.obs_length_s);
      EXPECT_GT(inst.strength, 0.0);
    }
  }
  EXPECT_TRUE(periodic);
  EXPECT_TRUE(carrier);
  EXPECT_TRUE(chirp);
}

TEST(RfiScenario, SimulateAttachesGroundTruthAndRendersEvents) {
  SurveySimulator sim(SurveyConfig::fast_crafts(), 5);
  ObservationId id;
  id.dataset = "FAST-CRAFTS";
  bool saw_truth = false;
  for (int i = 0; i < 6 && !saw_truth; ++i) {
    id.mjd = 56000.0 + i;
    const SimulatedObservation obs = sim.simulate(id, {});
    saw_truth = !obs.rfi_truth.empty();
  }
  EXPECT_TRUE(saw_truth);
}

TEST(RfiScenario, QuietPresetSimulationHasNoRfiTruth) {
  SurveySimulator sim(SurveyConfig::gbt350drift(), 5);
  const SimulatedObservation obs = sim.simulate(ObservationId{}, {});
  EXPECT_TRUE(obs.rfi_truth.empty());
}

// --- multi-beam generation ---------------------------------------------------

SyntheticSource bright_source() {
  SyntheticSource src;
  src.name = "J0000+00";
  src.type = SourceType::kRrat;
  src.dm = 120.0;
  src.width_ms = 10.0;
  src.median_snr = 20.0;
  src.snr_sigma = 0.1;
  src.emission_rate = 3600.0;  // ~1 burst/s
  return src;
}

TEST(MultiBeam, SourcesAppearOnlyInBeamZero) {
  SurveySimulator sim(SurveyConfig::ska_mid(), 7);
  const MultiBeamObservation pointing =
      sim.simulate_multibeam(ObservationId{}, {bright_source()}, 7);
  ASSERT_EQ(pointing.beams.size(), 7u);
  EXPECT_FALSE(pointing.beams[0].truth.empty());
  for (std::size_t b = 1; b < pointing.beams.size(); ++b) {
    EXPECT_TRUE(pointing.beams[b].truth.empty()) << "beam " << b;
  }
}

TEST(MultiBeam, BeamIdsAreSequential) {
  SurveySimulator sim(SurveyConfig::fast_crafts(), 9);
  ObservationId id;
  id.beam = 3;
  const MultiBeamObservation pointing = sim.simulate_multibeam(id, {}, 4);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(pointing.beams[b].data.id.beam, 3 + static_cast<int>(b));
  }
}

TEST(MultiBeam, SharedRfiEntersMostBeams) {
  SurveySimulator sim(SurveyConfig::ska_mid(), 11);
  MultiBeamObservation pointing;
  ObservationId id;
  for (int i = 0; i < 8; ++i) {
    id.mjd = 56000.0 + i;
    pointing = sim.simulate_multibeam(id, {}, 8, /*shared_rfi_fraction=*/1.0);
    if (!pointing.rfi_truth.empty()) break;
  }
  ASSERT_FALSE(pointing.rfi_truth.empty());
  for (const RfiInstance& inst : pointing.rfi_truth) {
    EXPECT_EQ(inst.beam, RfiInstance::kAllBeams);
  }
  // With 0.92 per-beam inclusion, nearly every beam sees the scenario.
  std::size_t beams_seeing = 0;
  for (const auto& beam : pointing.beams) {
    beams_seeing += !beam.rfi_truth.empty();
  }
  EXPECT_GE(beams_seeing, pointing.beams.size() / 2);
}

TEST(MultiBeam, LocalRfiStaysInOneBeam) {
  SurveySimulator sim(SurveyConfig::ska_mid(), 13);
  MultiBeamObservation pointing;
  ObservationId id;
  for (int i = 0; i < 8; ++i) {
    id.mjd = 56000.0 + i;
    pointing = sim.simulate_multibeam(id, {}, 6, /*shared_rfi_fraction=*/0.0);
    if (!pointing.rfi_truth.empty()) break;
  }
  ASSERT_FALSE(pointing.rfi_truth.empty());
  for (const RfiInstance& inst : pointing.rfi_truth) {
    ASSERT_LT(inst.beam, 6u);
  }
  // Each beam-local instance lands in exactly its owner's rfi_truth.
  for (std::size_t b = 0; b < pointing.beams.size(); ++b) {
    for (const RfiInstance& inst : pointing.beams[b].rfi_truth) {
      EXPECT_EQ(inst.beam, b);
    }
  }
}

TEST(MultiBeam, ZeroBeamsThrows) {
  SurveySimulator sim(SurveyConfig::ska_mid(), 1);
  EXPECT_THROW(sim.simulate_multibeam(ObservationId{}, {}, 0),
               std::invalid_argument);
}

// --- mitigation acceptance: recall and false positives ----------------------

/// A small, dirty survey: structured RFI of all three families over a
/// coarse filterbank, with bright injected sources for recall measurement.
SurveyConfig dirty_config() {
  SurveyConfig cfg = SurveyConfig::ska_mid();
  cfg.name = "dirty-accept";
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.periodic_broadband_per_observation = 3.0;
  cfg.narrowband_carriers_per_observation = 3.0;
  cfg.swept_chirps_per_observation = 1.0;
  cfg.grid = std::make_shared<DmGrid>(DmGrid({{0.0, 80.0, 0.5}}));
  return cfg;
}

std::vector<SyntheticSource> dirty_sources() {
  std::vector<SyntheticSource> sources;
  for (int i = 0; i < 3; ++i) {
    SyntheticSource src = bright_source();
    src.name = "J000" + std::to_string(i);
    src.dm = 20.0 + 15.0 * i;
    src.emission_rate = 1200.0;
    sources.push_back(src);
  }
  return sources;
}

TEST(MitigationAcceptance, DirtySurveyRecallAndFalsePositives) {
  const SurveyConfig cfg = dirty_config();
  FilterbankSurveyOptions options;
  options.num_channels = 32;
  options.sample_time_ms = 2.0;
  options.obs_length_s = 8.0;
  options.keep_undetected_truth = true;
  ObservationId id;
  id.dataset = cfg.name;

  std::size_t truth_total = 0, truth_detected = 0;
  std::size_t fp_off = 0, fp_mitigated = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng_off(seed);
    const SimulatedObservation off = simulate_filterbank_observation(
        cfg, id, dirty_sources(), rng_off, options);
    const DetectionEval eval_off = evaluate_detections(off, options);

    FilterbankSurveyOptions mitigated = options;
    mitigated.rfi.policy = MitigationPolicy::kBoth;
    Rng rng_mit(seed);  // identical observation, mitigated sweep
    const SimulatedObservation mit = simulate_filterbank_observation(
        cfg, id, dirty_sources(), rng_mit, mitigated);
    const DetectionEval eval_mit = evaluate_detections(mit, mitigated);

    truth_total += eval_mit.truth_total;
    truth_detected += eval_mit.truth_detected;
    fp_off += eval_off.events_total - eval_off.events_matched;
    fp_mitigated += eval_mit.events_total - eval_mit.events_matched;
  }
  ASSERT_GT(truth_total, 0u);
  const double recall = static_cast<double>(truth_detected) /
                        static_cast<double>(truth_total);
  EXPECT_GE(recall, 0.9) << truth_detected << " of " << truth_total;
  // The acceptance bar: mitigation measurably cuts false positives.
  EXPECT_LT(fp_mitigated, fp_off) << "off=" << fp_off
                                  << " mitigated=" << fp_mitigated;
}

TEST(MitigationAcceptance, CleanDataOffPolicyIsByteIdentical) {
  // On a clean observation the rfi=off sweep must be unaffected by the
  // mitigation stage existing at all (no rng perturbation, no data copy).
  SurveyConfig cfg = SurveyConfig::gbt350drift();
  cfg.grid = std::make_shared<DmGrid>(DmGrid({{0.0, 60.0, 0.5}}));
  FilterbankSurveyOptions options;
  options.num_channels = 32;
  options.sample_time_ms = 2.0;
  options.obs_length_s = 6.0;
  Rng rng_a(3);
  Rng rng_b(3);
  const auto a = simulate_filterbank_observation(cfg, ObservationId{},
                                                 dirty_sources(), rng_a,
                                                 options);
  FilterbankSurveyOptions off = options;
  off.rfi.policy = MitigationPolicy::kOff;
  const auto b = simulate_filterbank_observation(cfg, ObservationId{},
                                                 dirty_sources(), rng_b, off);
  ASSERT_EQ(a.data.events.size(), b.data.events.size());
  for (std::size_t i = 0; i < a.data.events.size(); ++i) {
    EXPECT_EQ(a.data.events[i].dm, b.data.events[i].dm);
    EXPECT_EQ(a.data.events[i].snr, b.data.events[i].snr);
    EXPECT_EQ(a.data.events[i].time_s, b.data.events[i].time_s);
  }
}

}  // namespace
}  // namespace drapid
