// Run reports and the JobMetrics bridge: schema validation, totals
// consistency against a real engine run, and the TaskContext attempt
// bookkeeping that replaced the bare-partition callback.
#include "dataflow/obs_bridge.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dataflow/engine.hpp"
#include "dataflow/rdd.hpp"

namespace drapid {
namespace {

EngineConfig small_engine() {
  EngineConfig cfg;
  cfg.num_executors = 1;
  cfg.worker_threads = 2;
  cfg.partitions_per_core = 4;
  return cfg;
}

obs::Json report_json(const obs::RunReport& report) {
  return obs::Json::parse(report.to_json().dump(2));
}

TEST(ObsRunReport, ValidatesAndRoundTrips) {
  obs::RunReport report("unit_test");
  report.set_config("scale", 2.0);
  report.set_config("out", "x.json");
  report.add_metric("speedup", 1.5);
  obs::Json row = obs::Json::object();
  row.set("trial", 1);
  report.add_result(std::move(row));
  report.set_wall_seconds(0.25);
  obs::CounterRegistry registry;
  registry.add("widgets", 3);
  registry.set_gauge("load", 0.5);
  report.capture_counters(registry);

  const obs::Json parsed = report_json(report);
  EXPECT_EQ(obs::validate_run_report(parsed), "");
  EXPECT_EQ(parsed.at("tool").as_string(), "unit_test");
  EXPECT_EQ(parsed.at("schema_version").as_int(), obs::RunReport::kSchemaVersion);
  EXPECT_DOUBLE_EQ(parsed.at("config").at("scale").as_double(), 2.0);
  EXPECT_EQ(parsed.at("counters").at("widgets").as_int(), 3);
  EXPECT_EQ(parsed.at("results").size(), 1u);
}

TEST(ObsRunReport, ValidatorRejectsBadDocuments) {
  EXPECT_NE(obs::validate_run_report(obs::Json::parse("[]")), "");
  EXPECT_NE(obs::validate_run_report(obs::Json::parse("{}")), "");

  obs::RunReport report("unit_test");
  obs::Json doc = report_json(report);
  EXPECT_EQ(obs::validate_run_report(doc), "");
  doc.set("schema_version", 999);
  EXPECT_NE(obs::validate_run_report(doc), "");
}

TEST(ObsRunReport, ValidatorChecksJobTotalsAgainstStageRows) {
  obs::JobReport job;
  job.label = "j";
  obs::StageReport stage;
  stage.name = "s";
  stage.tasks = 2;
  stage.records_in = 10;
  job.stages.push_back(stage);
  obs::RunReport report("unit_test");
  report.add_job(job);
  obs::Json doc = report_json(report);
  EXPECT_EQ(obs::validate_run_report(doc), "");

  // Forge the totals object so it disagrees with the stage rows.
  obs::Json& totals = const_cast<obs::Json&>(doc.at("jobs").at(0).at("totals"));
  totals.set("records_in", 11);
  EXPECT_NE(obs::validate_run_report(doc), "");
}

TEST(ObsRunReport, ValidatorRejectsUnknownEventKinds) {
  obs::JobReport job;
  job.label = "j";
  obs::ObsEvent event;
  event.kind = "meteor-strike";
  job.events.push_back(event);
  obs::RunReport report("unit_test");
  report.add_job(job);
  EXPECT_NE(obs::validate_run_report(report_json(report)), "");
}

TEST(ObsRunReport, WriteFileEmitsParseableJson) {
  const std::string path = ::testing::TempDir() + "obs_report_test.json";
  obs::RunReport report("unit_test");
  report.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(obs::validate_run_report(obs::Json::parse(buffer.str())), "");
  std::remove(path.c_str());
}

// ------------------------------------------------------------ the bridge

TEST(ObsBridge, JobReportTotalsMatchEngineMetrics) {
  EngineConfig cfg = small_engine();
  cfg.faults.fail_once_stages = {"work"};
  Engine engine(cfg);

  std::vector<std::pair<std::string, std::string>> data;
  for (int i = 0; i < 40; ++i) {
    data.emplace_back("k" + std::to_string(i % 8), "v" + std::to_string(i));
  }
  auto rdd = parallelize(engine, std::move(data), 4);
  auto counted = map_values(
      engine, rdd, [](const std::string& v) { return v + "!"; }, "work");
  (void)counted;

  const JobMetrics& metrics = engine.metrics();
  const obs::JobReport job = make_job_report("unit", metrics, 2);
  ASSERT_EQ(job.stages.size(), metrics.stages.size());

  std::uint64_t report_records_in = 0, report_retries = 0;
  double report_compute = 0.0;
  for (const auto& stage : job.stages) {
    report_records_in += stage.records_in;
    report_retries += stage.retries;
    report_compute += stage.compute_cost;
  }
  std::size_t engine_records_in = 0;
  for (const auto& stage : metrics.stages) {
    engine_records_in += stage.total_records_in();
  }
  EXPECT_EQ(report_records_in, engine_records_in);
  EXPECT_EQ(report_retries, metrics.total_retries());
  EXPECT_DOUBLE_EQ(report_compute,
                   static_cast<double>(metrics.total_compute_cost()));

  // The injected kill shows up as per-partition retry events, and the
  // replica failover count as one failover event.
  std::int64_t retry_count = 0;
  std::int64_t failover_count = 0;
  for (const auto& event : job.events) {
    if (event.kind == "retry") retry_count += event.count;
    if (event.kind == "failover") failover_count += event.count;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(retry_count), metrics.total_retries());
  EXPECT_EQ(failover_count, 2);

  // And the serialized report passes the shared schema check.
  obs::RunReport report("unit_test");
  report.add_job(job);
  EXPECT_EQ(obs::validate_run_report(report_json(report)), "");
}

// ------------------------------------------------------------ TaskContext

TEST(TaskContext, ReportsStagePartitionAndAttempt) {
  Engine engine(small_engine());
  auto& stage = engine.begin_stage("ctx", 4);
  std::vector<std::atomic<std::size_t>> partitions(4);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    EXPECT_EQ(ctx.stage_name(), "ctx");
    EXPECT_EQ(ctx.attempt(), 0u);
    partitions[ctx.partition()].fetch_add(1);
    ctx.metrics().records_out = ctx.partition() + 1;
  });
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(partitions[p].load(), 1u);
    // metrics() writes land in the engine's own TaskMetrics row.
    EXPECT_EQ(stage.tasks[p].records_out, p + 1);
  }
}

TEST(TaskContext, AttemptMatchesRecordedAttemptsUnderFaults) {
  // Parity with the old out-param path: the attempt index the body observes
  // must be exactly TaskMetrics::attempts - 1 (injected kills burn earlier
  // attempts without running the body).
  EngineConfig cfg = small_engine();
  cfg.faults.fail_once_stages = {"flaky"};
  Engine engine(cfg);
  auto& stage = engine.begin_stage("flaky", 4);
  std::vector<std::atomic<std::size_t>> seen(4);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    seen[ctx.partition()].store(ctx.attempt() + 1);
  });
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(stage.tasks[p].attempts, 2u);
    EXPECT_EQ(seen[p].load(), stage.tasks[p].attempts);
  }
  EXPECT_EQ(stage.total_retries(), 4u);
}

TEST(TaskContext, SpanIsInactiveWhenTracingOff) {
  Engine engine(small_engine());
  auto& stage = engine.begin_stage("quiet", 2);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    EXPECT_FALSE(ctx.span().active());
    ctx.span().arg("ignored", 1);  // must be a harmless no-op
  });
}

TEST(TaskContext, TaskSpansRecordWhenTracerEnabled) {
  obs::Tracer tracer;
  tracer.enable(true);
  EngineConfig cfg = small_engine();
  cfg.tracer = &tracer;
  Engine engine(cfg);
  auto& stage = engine.begin_stage("traced", 3);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    EXPECT_TRUE(ctx.span().active());
    ctx.span().arg("records", 5);
  });
  EXPECT_EQ(tracer.open_spans(), 0u);
  std::size_t task_begins = 0, stage_begins = 0;
  for (const auto& e : tracer.events()) {
    if (e.phase != obs::TraceEvent::Phase::kBegin) continue;
    if (e.name.rfind("task:", 0) == 0) ++task_begins;
    if (e.name.rfind("stage:", 0) == 0) ++stage_begins;
  }
  EXPECT_EQ(stage_begins, 1u);
  EXPECT_EQ(task_begins, 3u);
}

}  // namespace
}  // namespace drapid
