// Microbenchmarks for the ML substrate: each Table 5 learner's training
// cost, the Table 4 filters, and SMOTE.
#include <benchmark/benchmark.h>

#include "micro_support.hpp"

#include "ml/classifier.hpp"
#include "ml/feature_selection.hpp"
#include "ml/smote.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {
namespace {

/// Mildly overlapping blobs: positive classes around distinct centers.
Dataset bench_dataset(std::size_t instances, std::size_t features,
                      std::size_t classes) {
  std::vector<std::string> feature_names, class_names;
  for (std::size_t f = 0; f < features; ++f) {
    feature_names.push_back("f" + std::to_string(f));
  }
  for (std::size_t c = 0; c < classes; ++c) {
    class_names.push_back("c" + std::to_string(c));
  }
  Dataset d(std::move(feature_names), std::move(class_names));
  Rng rng(5);
  std::vector<double> x(features);
  for (std::size_t i = 0; i < instances; ++i) {
    const auto y = static_cast<int>(rng.below(classes));
    for (std::size_t f = 0; f < features; ++f) {
      const double center =
          static_cast<double>((static_cast<std::size_t>(y) * (f + 3)) % 7);
      x[f] = rng.normal(center, 1.2);
    }
    d.add(x, y);
  }
  return d;
}

void train_learner(benchmark::State& state, LearnerType type) {
  const auto d = bench_dataset(static_cast<std::size_t>(state.range(0)), 22,
                               static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto c = make_classifier(type, 1);
    c->train(d);
    benchmark::DoNotOptimize(c->predict(d.instance(0)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

#define DRAPID_LEARNER_BENCH(name, type)                        \
  void BM_Train_##name(benchmark::State& state) {               \
    train_learner(state, type);                                 \
  }                                                             \
  BENCHMARK(BM_Train_##name)->Args({600, 2})->Args({600, 8})

DRAPID_LEARNER_BENCH(J48, LearnerType::kJ48);
DRAPID_LEARNER_BENCH(RF, LearnerType::kRandomForest);
DRAPID_LEARNER_BENCH(PART, LearnerType::kPart);
DRAPID_LEARNER_BENCH(JRip, LearnerType::kJrip);
DRAPID_LEARNER_BENCH(SMO, LearnerType::kSmo);
DRAPID_LEARNER_BENCH(MPN, LearnerType::kMpn);

void BM_FilterScores(benchmark::State& state) {
  const auto d = bench_dataset(2000, 22, 2);
  const auto method = static_cast<FilterMethod>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(score_features(d, method));
  }
  state.SetLabel(filter_name(method));
}
BENCHMARK(BM_FilterScores)->DenseRange(0, 4);

void BM_Smote(benchmark::State& state) {
  auto d = bench_dataset(1000, 22, 2);
  // Make class 1 the minority by dropping most of it.
  std::vector<std::size_t> rows;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    if (d.label(i) == 0 || kept++ < 50) rows.push_back(i);
  }
  const Dataset imbalanced = d.subset(rows);
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(apply_smote(imbalanced, {}, rng));
  }
}
BENCHMARK(BM_Smote);

}  // namespace
}  // namespace ml
}  // namespace drapid

DRAPID_MICRO_MAIN("bench_micro_ml",
                  "Micro-benchmarks for the ML layer: classifier training, feature-selection filters, SMOTE.")
