// Fixed-size worker pool used by the multithreaded RAPID baseline and the
// dataflow engine's executor backend.
//
// The pool mirrors the execution model the paper benchmarks against: a fixed
// number of threads pulling independent tasks from a shared queue. parallel_for
// provides the data-parallel "same operation over every cluster" pattern.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace drapid {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all done.
  /// Work is handed out in contiguous chunks to bound queue overhead; any
  /// exception from fn is rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace drapid
