// StreamingSweep: byte-identical equivalence with the one-shot sweep across
// chunk sizes and thread counts, the chunk-boundary overlap regression (a
// pulse straddling the boundary at every offset), and stream misuse errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dedisp/single_pulse_search.hpp"
#include "dedisp/streaming_sweep.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

FilterbankConfig small_config() {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.num_channels = 32;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 10.0;
  return cfg;
}

Filterbank noisy_filterbank(FilterbankConfig cfg, std::uint64_t seed) {
  Filterbank fb(cfg);
  Rng rng(seed);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 3.0, 20.0);
  return fb;
}

bool events_identical(const std::vector<SinglePulseEvent>& a,
                      const std::vector<SinglePulseEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].dm != b[i].dm || a[i].snr != b[i].snr ||
        a[i].time_s != b[i].time_s || a[i].sample != b[i].sample ||
        a[i].downfact != b[i].downfact) {
      return false;
    }
  }
  return true;
}

std::vector<SinglePulseEvent> stream_in_chunks(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params, std::size_t chunk) {
  StreamingSweep sweep(fb.config(), grid, params);
  const std::size_t total = sweep.total_samples();
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    sweep.push(fb, begin, std::min(chunk, total - begin));
  }
  return sweep.finalize();
}

TEST(StreamingSweep, MatchesOneShotAcrossChunkSizesAndThreads) {
  const Filterbank fb = noisy_filterbank(small_config(), 3);
  const DmGrid grid({{0.0, 10.0, 0.01}, {10.0, 60.0, 0.1}});
  for (std::size_t threads : {1u, 2u, 8u}) {
    SinglePulseSearchParams params;
    params.threads = threads;
    const auto reference = single_pulse_search(fb, grid, params);
    ASSERT_FALSE(reference.empty());
    StreamingSweep probe(fb.config(), grid, params);
    const std::size_t max_shift = probe.max_shift();
    ASSERT_GT(max_shift, 0u);
    for (std::size_t factor : {1u, 2u, 7u}) {
      const auto streamed =
          stream_in_chunks(fb, grid, params, factor * max_shift);
      EXPECT_TRUE(events_identical(streamed, reference))
          << "chunk " << factor << "x max_shift, threads " << threads;
    }
  }
}

TEST(StreamingSweep, MatchesOneShotOnFineStepStridedGrid) {
  const Filterbank fb = noisy_filterbank(small_config(), 11);
  // Fine 0.002 steps make adjacent trials collapse onto shared shift plans;
  // the stride exercises the strided trial walk in the merge.
  const DmGrid grid({{0.0, 8.0, 0.002}});
  SinglePulseSearchParams params;
  params.dm_stride = 3;
  params.threads = 2;
  const auto reference = single_pulse_search(fb, grid, params);
  const auto streamed = stream_in_chunks(fb, grid, params, 777);
  EXPECT_TRUE(events_identical(streamed, reference));
}

TEST(StreamingSweep, RaggedAndSingleSampleChunksMatch) {
  const Filterbank fb = noisy_filterbank(small_config(), 5);
  const DmGrid grid({{30.0, 50.0, 0.5}});
  const SinglePulseSearchParams params;
  const auto reference = single_pulse_search(fb, grid, params);

  // Deliberately ragged pattern: tiny, huge, then odd-sized blocks.
  StreamingSweep sweep(fb.config(), grid, params);
  const std::size_t total = sweep.total_samples();
  const std::size_t sizes[] = {1, 2, 3, 1000, 7, 501};
  std::size_t begin = 0, i = 0;
  while (begin < total) {
    const std::size_t count = std::min(sizes[i++ % 6], total - begin);
    sweep.push(fb, begin, count);
    begin += count;
  }
  EXPECT_TRUE(events_identical(sweep.finalize(), reference));
}

TEST(StreamingSweep, PushFramesMatchesColumnPush) {
  const Filterbank fb = noisy_filterbank(small_config(), 9);
  const DmGrid grid({{35.0, 45.0, 0.25}});
  const SinglePulseSearchParams params;
  const auto reference = single_pulse_search(fb, grid, params);

  // Rebuild the stream from time-major frames (the .fil wire layout).
  StreamingSweep sweep(fb.config(), grid, params);
  const std::size_t channels = fb.num_channels();
  const std::size_t total = sweep.total_samples();
  std::vector<float> frames;
  const std::size_t chunk = 512;
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    const std::size_t count = std::min(chunk, total - begin);
    frames.resize(count * channels);
    for (std::size_t s = 0; s < count; ++s) {
      for (std::size_t c = 0; c < channels; ++c) {
        frames[s * channels + c] = fb.at(c, begin + s);
      }
    }
    sweep.push_frames(frames.data(), count);
  }
  EXPECT_TRUE(events_identical(sweep.finalize(), reference));
}

// The overlap/tail double-count regression: a chunk boundary placed so the
// pulse straddles it at EVERY offset in [0, max_shift]. A per-chunk (or
// repeated) tail normalization rescales the carried samples once per chunk
// they straddle and shifts the detected S/N; the streaming result must stay
// byte-identical to the one-shot sweep at every split position.
TEST(StreamingSweep, PulseStraddlingChunkBoundaryAtEveryOffset) {
  FilterbankConfig cfg = small_config();
  cfg.num_channels = 16;
  cfg.obs_length_s = 6.0;
  Filterbank fb(cfg);
  Rng rng(17);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 4.0, 20.0);

  const DmGrid grid({{38.0, 42.0, 0.5}});
  const SinglePulseSearchParams params;
  const auto reference = single_pulse_search(fb, grid, params);
  ASSERT_FALSE(reference.empty());

  StreamingSweep probe(cfg, grid, params);
  const std::size_t max_shift = probe.max_shift();
  const std::size_t total = probe.total_samples();
  // The brightest event marks the pulse's dedispersed arrival sample.
  const auto peak = std::max_element(
      reference.begin(), reference.end(),
      [](const auto& a, const auto& b) { return a.snr < b.snr; });
  const auto pulse_sample = static_cast<std::size_t>(peak->sample);
  ASSERT_GT(pulse_sample, max_shift);
  ASSERT_LT(pulse_sample + max_shift, total);

  for (std::size_t offset = 0; offset <= max_shift; ++offset) {
    const std::size_t split = pulse_sample - offset + max_shift;
    StreamingSweep sweep(cfg, grid, params);
    sweep.push(fb, 0, split);
    sweep.push(fb, split, total - split);
    ASSERT_TRUE(events_identical(sweep.finalize(), reference))
        << "boundary at pulse offset " << offset;
  }
}

// Subband streaming: the stream accumulates coarse-node partials and
// finalize synthesizes each plan — the result must stay byte-identical to
// the one-shot subband sweep (and hence carry the exact method's event set)
// for any chunking and thread count, while carrying only the subband plan's
// max residual across chunk boundaries instead of the full-band max shift.
TEST(StreamingSweep, SubbandMatchesOneShotSubbandAcrossChunksAndThreads) {
  const Filterbank fb = noisy_filterbank(small_config(), 21);
  const DmGrid grid({{0.0, 10.0, 0.01}, {10.0, 60.0, 0.1}});
  for (std::size_t threads : {1u, 2u, 8u}) {
    SinglePulseSearchParams params;
    params.method = SweepMethod::kSubband;
    params.threads = threads;
    const auto reference = single_pulse_search(fb, grid, params);
    ASSERT_FALSE(reference.empty());
    for (std::size_t chunk : {37u, 512u, 5000u}) {
      const auto streamed = stream_in_chunks(fb, grid, params, chunk);
      EXPECT_TRUE(events_identical(streamed, reference))
          << "chunk " << chunk << ", threads " << threads;
    }
  }
}

TEST(StreamingSweep, SubbandCarryIsMaxResidualNotFullBandShift) {
  const Filterbank fb = noisy_filterbank(small_config(), 23);
  const DmGrid grid({{0.0, 10.0, 0.01}, {10.0, 60.0, 0.1}});
  SinglePulseSearchParams params;
  StreamingSweep exact(fb.config(), grid, params);
  params.method = SweepMethod::kSubband;
  StreamingSweep subband(fb.config(), grid, params);
  // The subband stage only ever looks back by a residual shift, so its
  // overlap carry must be strictly smaller than the exact sweep's full-band
  // max shift on this dispersion-dominated grid.
  ASSERT_GT(exact.max_shift(), 0u);
  EXPECT_LT(subband.max_shift(), exact.max_shift());
  // And it still detects the exact oracle's event set.
  params.method = SweepMethod::kExact;
  const auto oracle = single_pulse_search(fb, grid, params);
  params.method = SweepMethod::kSubband;
  const auto streamed = stream_in_chunks(fb, grid, params, 911);
  EXPECT_TRUE(events_identical(streamed, oracle));
}

TEST(StreamingSweep, SubbandPulseStraddlingEveryBoundaryOffset) {
  // The same overlap/tail regression as the exact path, driven through the
  // subband accumulator: a chunk split at every offset across the pulse.
  FilterbankConfig cfg = small_config();
  cfg.num_channels = 16;
  cfg.obs_length_s = 6.0;
  Filterbank fb(cfg);
  Rng rng(27);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 4.0, 20.0);

  const DmGrid grid({{38.0, 42.0, 0.5}});
  SinglePulseSearchParams params;
  params.method = SweepMethod::kSubband;
  const auto reference = single_pulse_search(fb, grid, params);
  ASSERT_FALSE(reference.empty());

  StreamingSweep probe(cfg, grid, params);
  const std::size_t carry = std::max<std::size_t>(probe.max_shift(), 1);
  const std::size_t total = probe.total_samples();
  const std::size_t pulse_sample = 1500;  // 3.0 s at 2 ms sampling
  for (std::size_t offset = 0; offset <= carry; ++offset) {
    const std::size_t split =
        std::min(pulse_sample - offset + carry, total - 1);
    StreamingSweep sweep(cfg, grid, params);
    sweep.push(fb, 0, split);
    sweep.push(fb, split, total - split);
    ASSERT_TRUE(events_identical(sweep.finalize(), reference))
        << "boundary at pulse offset " << offset;
  }
}

// --- final-chunk edge cases (the ingest bugfix sweep) -----------------------

// An ingester reading fixed-size blocks overshoots on the final one. push()
// clamps the count to the observation's remaining samples instead of
// throwing, and the clamped stream stays byte-identical to the one-shot
// sweep.
TEST(StreamingSweep, OversizedFinalChunkClampsAndMatchesOneShot) {
  const Filterbank fb = noisy_filterbank(small_config(), 31);
  const DmGrid grid({{0.0, 10.0, 0.01}, {10.0, 60.0, 0.1}});
  for (const SweepMethod method : {SweepMethod::kExact, SweepMethod::kSubband}) {
    SinglePulseSearchParams params;
    params.method = method;
    const auto reference = single_pulse_search(fb, grid, params);
    ASSERT_FALSE(reference.empty());

    {  // fixed block size that does not divide the observation
      StreamingSweep sweep(fb.config(), grid, params);
      const std::size_t total = sweep.total_samples();
      const std::size_t block = total / 2 + 7;
      for (std::size_t begin = 0; begin < total; begin += block) {
        sweep.push(fb, begin, block);  // final push overshoots; clamped
      }
      EXPECT_EQ(sweep.samples_pushed(), total);
      EXPECT_TRUE(events_identical(sweep.finalize(), reference))
          << "method " << static_cast<int>(method);
    }
    {  // one absurdly oversized push covers the whole observation
      StreamingSweep sweep(fb.config(), grid, params);
      sweep.push(fb, 0, fb.num_samples() + 12345);
      EXPECT_TRUE(events_identical(sweep.finalize(), reference));
    }
  }
}

TEST(StreamingSweep, ZeroLengthChunksAreNoOps) {
  const Filterbank fb = noisy_filterbank(small_config(), 33);
  const DmGrid grid({{30.0, 50.0, 0.5}});
  const SinglePulseSearchParams params;
  const auto reference = single_pulse_search(fb, grid, params);

  StreamingSweep sweep(fb.config(), grid, params);
  const std::size_t total = sweep.total_samples();
  sweep.push(fb, 0, 0);  // empty first read
  sweep.push(fb, 0, total / 3);
  sweep.push(fb, total / 3, 0);  // empty mid-stream read
  EXPECT_EQ(sweep.samples_pushed(), total / 3);
  sweep.push(fb, total / 3, total - total / 3);
  sweep.push(fb, total, 0);  // empty read at end-of-stream
  sweep.push(fb, total, 999);  // post-completion read clamps to nothing
  EXPECT_EQ(sweep.samples_pushed(), total);
  EXPECT_TRUE(events_identical(sweep.finalize(), reference));
}

// An observation shorter than the grid's max shift: every plan's shifts are
// clamped to the (tiny) sample count, the carry spans the whole observation,
// and the stream must still agree with the one-shot sweep for both methods.
TEST(StreamingSweep, ObservationShorterThanMaxShiftMatchesOneShot) {
  FilterbankConfig cfg = small_config();
  cfg.obs_length_s = 0.25;  // 125 samples at 2 ms
  Filterbank fb(cfg);
  Rng rng(35);
  fb.add_noise(rng, 1.0);

  // DM 500 at 300–400 MHz shifts by far more than 125 samples.
  const DmGrid grid({{400.0, 500.0, 5.0}});
  for (const SweepMethod method : {SweepMethod::kExact, SweepMethod::kSubband}) {
    SinglePulseSearchParams params;
    params.method = method;
    params.snr_threshold = 4.0;
    const auto reference = single_pulse_search(fb, grid, params);
    StreamingSweep probe(cfg, grid, params);
    ASSERT_LE(probe.max_shift(), probe.total_samples());
    for (std::size_t chunk : {1u, 7u, 125u, 1000u}) {
      const auto streamed = stream_in_chunks(fb, grid, params, chunk);
      EXPECT_TRUE(events_identical(streamed, reference))
          << "chunk " << chunk << ", method " << static_cast<int>(method);
    }
  }
}

// First-chunk sizes bracketing the carry length: 1, max_shift - 1,
// max_shift, max_shift + 1 — the offsets where the overlap carry logic has
// historically gone wrong (empty carry, carry one short of full, exactly
// full, and full-plus-one).
TEST(StreamingSweep, FirstChunkBracketsCarryLength) {
  const Filterbank fb = noisy_filterbank(small_config(), 37);
  const DmGrid grid({{0.0, 10.0, 0.01}, {10.0, 60.0, 0.1}});
  for (const SweepMethod method : {SweepMethod::kExact, SweepMethod::kSubband}) {
    SinglePulseSearchParams params;
    params.method = method;
    const auto reference = single_pulse_search(fb, grid, params);
    StreamingSweep probe(fb.config(), grid, params);
    const std::size_t max_shift = probe.max_shift();
    const std::size_t total = probe.total_samples();
    ASSERT_GT(max_shift, 1u);
    ASSERT_LT(max_shift + 1, total);
    for (const std::size_t first :
         {std::size_t{1}, max_shift - 1, max_shift, max_shift + 1}) {
      StreamingSweep sweep(fb.config(), grid, params);
      sweep.push(fb, 0, first);
      sweep.push(fb, first, total - first);
      ASSERT_TRUE(events_identical(sweep.finalize(), reference))
          << "first chunk " << first << " (max_shift " << max_shift
          << "), method " << static_cast<int>(method);
    }
  }
}

TEST(StreamingSweep, RejectsMisuse) {
  const FilterbankConfig cfg = small_config();
  const Filterbank fb = noisy_filterbank(cfg, 3);
  const DmGrid grid({{0.0, 10.0, 0.5}});

  {  // finalize before the observation is complete
    StreamingSweep sweep(cfg, grid);
    sweep.push(fb, 0, 100);
    EXPECT_THROW(sweep.finalize(), std::logic_error);
  }
  {  // push_frames keeps the strict overrun contract: its raw-pointer
     // length is the caller's promise about the buffer, so an overrun is a
     // bug, not a final-chunk overshoot.
    StreamingSweep sweep(cfg, grid);
    std::vector<float> frames((fb.num_samples() + 1) * fb.num_channels());
    EXPECT_THROW(sweep.push_frames(frames.data(), fb.num_samples() + 1),
                 std::invalid_argument);
  }
  {  // non-contiguous block
    StreamingSweep sweep(cfg, grid);
    sweep.push(fb, 0, 10);
    EXPECT_THROW(sweep.push(fb, 20, 10), std::invalid_argument);
  }
  {  // geometry mismatch
    FilterbankConfig other = cfg;
    other.num_channels = 8;
    const Filterbank small(other);
    StreamingSweep sweep(cfg, grid);
    EXPECT_THROW(sweep.push(small, 0, 10), std::invalid_argument);
  }
  {  // finalize twice, push after finalize
    StreamingSweep sweep(cfg, grid);
    sweep.push(fb, 0, fb.num_samples());
    (void)sweep.finalize();
    EXPECT_THROW(sweep.finalize(), std::logic_error);
    EXPECT_THROW(sweep.push(fb, 0, 1), std::logic_error);
  }
}

}  // namespace
}  // namespace drapid
