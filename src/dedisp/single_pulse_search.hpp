// Phases 2–3 of a single-pulse search (§3): dedispersion and matched-filter
// detection — the PRESTO `single_pulse_search.py` stand-in that produces
// the SPE lists the rest of the pipeline consumes.
//
// Dedispersion shifts each filterbank channel by its dispersion delay at a
// trial DM and sums across channels. The summed series is normalized and
// convolved with boxcars of increasing width (matched filtering for pulses
// wider than one sample); every local maximum above the S/N threshold
// becomes a SinglePulseEvent at that trial DM.
//
// The sweep over a whole DM grid runs off a precomputed *shift plan*: the
// per-channel integer shift vector of every (strided) trial is computed up
// front and exact-duplicate vectors are deduplicated — adjacent fine-step
// trials round to identical shifts, so their dedispersed series (and their
// events, which only carry the trial's nominal DM) are computed once per
// unique vector. Unique plans run independently (optionally on a worker
// pool) into reusable per-worker scratch buffers, and per-trial event lists
// are merged back in trial order, so the sweep output is byte-identical to
// the naive one-trial-at-a-time loop at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dedisp/filterbank.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe.hpp"
#include "util/exec_policy.hpp"

namespace drapid {

/// Per-channel integer sample shifts for one trial DM, relative to the
/// highest-frequency channel (channel 0). Shifts are clamped to
/// num_samples(): a channel whose delay pushes it entirely off the end of
/// the observation contributes no samples, and the clamp keeps every vector
/// entry (and the dedup key built from it) bounded.
std::vector<std::uint32_t> dispersion_shifts(const Filterbank& fb, double dm);

/// One unique shift vector and the (strided) grid trials that share it.
struct ShiftPlan {
  std::vector<std::uint32_t> shifts;  ///< per channel, clamped to num_samples
  std::uint32_t max_shift = 0;
  std::vector<std::size_t> trials;    ///< ascending grid trial indices
  /// Channels actually summed by this plan: 0 means "all channels" (the
  /// unmasked fast path); a masked plan stores num_channels - masked here.
  /// Masked channels carry a saturated shift of num_samples — they
  /// contribute no samples and no tail-normalization counts — and the tail
  /// rescale targets this count, so a masked sweep's S/N matches a
  /// filterbank with those channels physically removed.
  std::uint32_t active_channels = 0;
};

/// The deduplicated dedispersion plan for a whole (strided) DM grid.
struct SweepPlan {
  std::vector<ShiftPlan> plans;  ///< in first-trial order
  std::size_t num_trials = 0;    ///< strided trials covered by the plans
  /// plans[] index for each covered trial, in trial order (num_trials long).
  std::vector<std::uint32_t> plan_of_trial;
};

/// Computes every trial's shift vector and groups exact duplicates. With
/// `dm_stride` > 1 only every stride-th trial is planned (the same subset
/// the strided sweep searches).
SweepPlan build_sweep_plan(const Filterbank& fb, const DmGrid& grid,
                           std::size_t dm_stride = 1);

/// Masked variant: channels with `channel_mask[c] != 0` are excluded from
/// every plan by saturating their shift to num_samples (the same "contributes
/// nothing" encoding extreme-DM channels already use), and each plan records
/// the surviving channel count in `active_channels` so the tail
/// normalization rescales against the reduced band. An empty mask is the
/// unmasked plan; a non-empty mask must have one byte per channel. Masking
/// every channel throws — there is nothing left to search.
SweepPlan build_sweep_plan(const Filterbank& fb, const DmGrid& grid,
                           std::size_t dm_stride,
                           const std::vector<std::uint8_t>& channel_mask);

/// Reusable dedispersion workspace: the output series plus the counting
/// buffer the analytic tail normalization uses. Reusing one per worker makes
/// a sweep allocation-free after the first trial.
struct DedispScratch {
  std::vector<double> series;
  std::vector<std::uint32_t> contrib_prefix;
  /// Subband partial-series arena: the worker's block-distinct coarse nodes,
  /// one num_samples-long stripe each (unused by the exact method).
  std::vector<double> group_series;
};

/// Dedisperses one shift plan into scratch.series (resized to
/// fb.num_samples()). Channels accumulate in ascending channel order per
/// sample — the same summation order as dedisperse() — and the tail
/// normalization `contributors` counts are derived analytically from the
/// shift vector instead of per-sample increments.
void dedisperse_plan(const Filterbank& fb, const ShiftPlan& plan,
                     DedispScratch& scratch);

/// Applies the analytic tail normalization for `plan` to a fully-accumulated
/// dedispersed series of `channels` channels: the max_shift-long tail, where
/// shifted channels have run out of data, is rescaled to the full-channel
/// noise level. Must run exactly once per series, after every channel's
/// contribution has been summed — the streaming sweep defers it to finalize
/// so samples inside the chunk-overlap carry region are never rescaled
/// twice. `contrib_prefix` is reusable scratch (overwritten). For a masked
/// plan (`plan.active_channels != 0`) the rescale target is the plan's
/// active channel count, not `channels` — the result matches a filterbank
/// with the masked channels physically removed.
void normalize_tail(const ShiftPlan& plan, std::size_t channels,
                    std::vector<double>& series,
                    std::vector<std::uint32_t>& contrib_prefix);

/// Dedisperses at one trial DM: per-channel integer-sample shifts relative
/// to the highest-frequency channel, summed. The result has num_samples()
/// entries; trailing samples where channels ran out of data are summed over
/// fewer channels and renormalized to keep the noise level uniform.
std::vector<double> dedisperse(const Filterbank& fb, double dm);

/// How the DM sweep dedisperses each unique shift plan.
enum class SweepMethod {
  /// PR 5 shift-plan sweep: every plan accumulates all channels directly.
  /// The verification oracle — byte-identical to seed.
  kExact,
  /// PR 8 two-stage subband sweep (subband_sweep.hpp): coarse-dedisperse
  /// channel groups once per distinct residual pattern, then synthesize
  /// each plan from G offset subband streams. Same detected event set on
  /// every surveyed input; per-sample series differ from exact only by
  /// floating-point regrouping (documented bound).
  kSubband,
};

/// "exact" / "subband" — for CLI flags, span args and error messages.
const char* sweep_method_name(SweepMethod method);

/// Parses "exact" / "subband" (as in `--sweep=`). Throws
/// std::invalid_argument on anything else.
SweepMethod parse_sweep_method(const std::string& name);

/// RFI mitigation ahead of the sweep (rfi_mitigation.hpp holds the stage
/// itself; the knob lives here so it threads through the search params).
enum class MitigationPolicy {
  kOff,          ///< no mitigation — byte-identical to the pre-RFI pipeline
  kZeroDm,       ///< per-sample cross-channel mean subtraction
  kChannelMask,  ///< robust per-channel statistics mask hot channels
  kBoth,         ///< channel mask first, then zero-DM over surviving channels
};

struct RfiMitigationParams {
  MitigationPolicy policy = MitigationPolicy::kOff;
  /// Channel-mask threshold: a channel is masked when its per-channel mean
  /// or variance sits more than this many robust sigmas (median/MAD across
  /// the band) from the cross-channel median.
  double mask_sigma = 6.0;
  /// Hard cap on the masked fraction of the band; when the estimator wants
  /// more, only the worst offenders (highest deviation score) are kept.
  double max_mask_fraction = 0.25;
};

struct SinglePulseSearchParams {
  double snr_threshold = 5.0;
  /// Boxcar widths in samples (PRESTO's downfacts).
  std::vector<int> boxcar_widths = {1, 2, 4, 8, 16, 32};
  /// Trial stride over the grid (1 = every trial; larger = faster scans).
  std::size_t dm_stride = 1;
  /// Deprecated shim for exec: worker threads for the DM sweep (1 = run on
  /// the calling thread). Ignored when exec.threads_per_worker is set.
  std::size_t threads = 1;
  /// Execution policy for the sweep; the DM sweep always runs in-process
  /// (only its pool width applies), so only threads_per_worker matters here.
  ExecPolicy exec;
  /// Dedispersion method. kExact stays the default (and the oracle);
  /// kSubband is the two-stage fast path with identical detected events.
  SweepMethod method = SweepMethod::kExact;
  /// Channel groups for SweepMethod::kSubband: 0 = cost-model auto, else
  /// clamped to [1, channels]. Ignored by kExact.
  std::size_t subband_groups = 0;
  /// RFI mitigation stage ahead of the sweep. kOff runs the pre-mitigation
  /// pipeline untouched (no copy, byte-identical output); anything else
  /// routes through apply_rfi_mitigation (rfi_mitigation.hpp) first.
  RfiMitigationParams rfi;
  /// Per-channel exclusion mask (1 = masked), one byte per channel. Usually
  /// filled in by the mitigation stage; set it explicitly to pin a known
  /// mask — the streaming sweep requires an explicit mask for mask policies
  /// because it cannot estimate one from data it has not seen yet. Empty =
  /// all channels active. Masked channels contribute neither samples nor
  /// tail-normalization counts.
  std::vector<std::uint8_t> channel_mask;

  /// Pool width after the deprecation shim: exec.threads_per_worker if set,
  /// else the legacy `threads` field. Sweep output is byte-identical at any
  /// width.
  std::size_t sweep_threads() const { return exec.resolve_threads(threads); }
};

/// Reusable matched-filter workspace: boxcar prefix sums, the certificate
/// mask, and the median/MAD workspace robust_stats selects in place.
struct DetectScratch {
  std::vector<double> prefix;
  std::vector<double> stats_workspace;
  /// Partition ping-pong buffer for the selection kernel (kernels.hpp).
  std::vector<double> select_scratch;
  /// Per-center certificate bytes for the boxcar-outer threshold scan.
  std::vector<unsigned char> below;
};

/// Robust location/scale of a series: {median, 1.4826 * MAD}. A degenerate
/// series — empty, constant, or fully masked (every sample the same value)
/// — has MAD 0 and returns scale 0.0: there is no noise level to
/// standardize against, and callers must not divide by the scale
/// (detect_events_into reports no events for such a series instead of
/// spraying unbounded S/N). `workspace` and `select_scratch` are reusable
/// buffers (overwritten); the input is untouched.
std::pair<double, double> robust_stats(const std::vector<double>& values,
                                       std::vector<double>& workspace,
                                       std::vector<double>& select_scratch);

/// Matched-filter detection on one dedispersed series: the series is
/// standardized (median/robust sigma), each boxcar width is scanned, and
/// local maxima above threshold are reported with the best width. Events
/// closer than the detecting boxcar width are merged (highest S/N wins).
std::vector<SinglePulseEvent> detect_events(
    const std::vector<double>& series, double dm, double sample_time_ms,
    const SinglePulseSearchParams& params);

/// Same detection, appending to `out` and reusing `scratch` buffers — the
/// allocation-free form the sweep calls once per unique shift plan.
void detect_events_into(const std::vector<double>& series, double dm,
                        double sample_time_ms,
                        const SinglePulseSearchParams& params,
                        DetectScratch& scratch,
                        std::vector<SinglePulseEvent>& out);

namespace detail {

/// The deterministic trial-order merge shared by the one-shot and streaming
/// sweeps: walks the strided trial sequence, stamps each trial's nominal DM
/// into its plan's shared event list, and sorts by (dm, time) — exactly the
/// output a per-trial loop would append. `found` holds one event list per
/// unique plan (detected with the plan's first-trial DM).
std::vector<SinglePulseEvent> merge_plan_events(
    const SweepPlan& sweep, const DmGrid& grid, std::size_t dm_stride,
    const std::vector<std::vector<SinglePulseEvent>>& found);

}  // namespace detail

/// The full phase-2+3 search: one shift-plan sweep over the (strided) grid.
/// Duplicate shift vectors are dedispersed once, unique plans run on
/// `params.threads` workers, and events are merged in trial order — output
/// is sorted by (dm, time) like the survey simulator's SPE lists, ready for
/// DBSCAN + RAPID, and byte-identical to a per-trial loop at any thread
/// count. Emits `dedisp.*` spans and counters through src/obs.
std::vector<SinglePulseEvent> single_pulse_search(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params = {});

}  // namespace drapid
