#include "clustering/dbscan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "synth/survey.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

ObservationData make_obs(std::vector<SinglePulseEvent> events) {
  ObservationData obs;
  obs.id.dataset = "TEST";
  obs.events = std::move(events);
  return obs;
}

SinglePulseEvent spe(double dm, double t, double snr = 6.0) {
  SinglePulseEvent e;
  e.dm = dm;
  e.time_s = t;
  e.snr = snr;
  return e;
}

DmGrid fine_grid() { return DmGrid({{0.0, 100.0, 0.1}}); }

TEST(Dbscan, EmptyObservationYieldsNothing) {
  const auto obs = make_obs({});
  const auto result = dbscan_cluster(obs, fine_grid(), {});
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_TRUE(result.labels.empty());
}

TEST(Dbscan, IsolatedPointsAreNoise) {
  const auto obs = make_obs({spe(10.0, 1.0), spe(50.0, 50.0), spe(90.0, 99.0)});
  const auto result = dbscan_cluster(obs, fine_grid(), {});
  EXPECT_TRUE(result.clusters.empty());
  for (int label : result.labels) EXPECT_EQ(label, -1);
}

TEST(Dbscan, TightGroupFormsOneCluster) {
  std::vector<SinglePulseEvent> events;
  for (int i = 0; i < 10; ++i) events.push_back(spe(10.0 + 0.1 * i, 1.0));
  const auto obs = make_obs(events);
  const auto result = dbscan_cluster(obs, fine_grid(), {});
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].members.size(), 10u);
  for (int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(Dbscan, GroupsFarApartInTimeAreSeparate) {
  std::vector<SinglePulseEvent> events;
  for (int i = 0; i < 8; ++i) events.push_back(spe(10.0 + 0.1 * i, 1.0));
  for (int i = 0; i < 8; ++i) events.push_back(spe(10.0 + 0.1 * i, 50.0));
  const auto obs = make_obs(events);
  DbscanParams params;
  params.merge_time_gap_s = 0.1;
  const auto result = dbscan_cluster(obs, fine_grid(), params);
  EXPECT_EQ(result.clusters.size(), 2u);
}

TEST(Dbscan, MergePassRejoinsFragmentsSplitAlongDm) {
  // One pulse whose middle trials dipped below threshold: two fragments
  // separated by a small DM gap at the same time.
  std::vector<SinglePulseEvent> events;
  for (int i = 0; i < 6; ++i) events.push_back(spe(10.0 + 0.1 * i, 1.0));
  for (int i = 0; i < 6; ++i) events.push_back(spe(11.3 + 0.1 * i, 1.0));
  const auto obs = make_obs(events);
  DbscanParams merged;
  merged.eps_dm_trials = 3.0;  // gap of 7 trials splits the fragments
  const auto with_merge = dbscan_cluster(obs, fine_grid(), merged);
  EXPECT_EQ(with_merge.clusters.size(), 1u);

  DbscanParams unmerged = merged;
  unmerged.merge_fragments = false;
  const auto without = dbscan_cluster(obs, fine_grid(), unmerged);
  EXPECT_EQ(without.clusters.size(), 2u);
}

TEST(Dbscan, LabelsAndMembersAreConsistent) {
  Rng rng(5);
  std::vector<SinglePulseEvent> events;
  for (int g = 0; g < 5; ++g) {
    const double t = g * 10.0;
    const double dm = 10.0 + g * 5.0;
    for (int i = 0; i < 12; ++i) {
      events.push_back(spe(dm + 0.1 * i, t + rng.uniform(-0.01, 0.01)));
    }
  }
  for (int i = 0; i < 20; ++i) {
    events.push_back(spe(rng.uniform(0.0, 99.0), rng.uniform(100.0, 200.0)));
  }
  const auto obs = make_obs(events);
  const auto result = dbscan_cluster(obs, fine_grid(), {});
  ASSERT_EQ(result.labels.size(), obs.events.size());
  std::size_t labelled = 0;
  for (const auto& cluster : result.clusters) {
    std::set<std::size_t> seen;
    for (std::size_t e : cluster.members) {
      ASSERT_LT(e, obs.events.size());
      ASSERT_EQ(result.labels[e], cluster.id);
      ASSERT_TRUE(seen.insert(e).second) << "duplicate member";
    }
    labelled += cluster.members.size();
  }
  // Every non-noise label corresponds to exactly one membership.
  std::size_t non_noise = 0;
  for (int label : result.labels) non_noise += (label >= 0);
  EXPECT_EQ(labelled, non_noise);
  EXPECT_EQ(result.clusters.size(), 5u);
}

TEST(Dbscan, DmSpacingAwareNeighbourhoodClustersCoarseGridPulse) {
  // At high DM the trial spacing is 2.0; a pulse spanning 10 trials covers
  // 20 pc cm^-3. Index-space clustering must still see them as neighbours.
  DmGrid grid({{0.0, 100.0, 0.1}, {100.0, 2000.0, 2.0}});
  std::vector<SinglePulseEvent> events;
  for (int i = 0; i < 10; ++i) events.push_back(spe(1500.0 + 2.0 * i, 3.0));
  const auto obs = make_obs(events);
  const auto result = dbscan_cluster(obs, grid, {});
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].members.size(), 10u);
}

TEST(ClusterRecords, BoundingBoxAndRank) {
  std::vector<SinglePulseEvent> events;
  for (int i = 0; i < 6; ++i) events.push_back(spe(10.0 + 0.1 * i, 1.0, 6.0));
  for (int i = 0; i < 6; ++i) events.push_back(spe(40.0 + 0.1 * i, 9.0, 15.0));
  const auto obs = make_obs(events);
  const auto result = dbscan_cluster(obs, fine_grid(), {});
  ASSERT_EQ(result.clusters.size(), 2u);
  const auto records = make_cluster_records(obs, result);
  ASSERT_EQ(records.size(), 2u);
  const auto& faint = records[0];
  const auto& bright = records[1];
  EXPECT_NEAR(faint.dm_min, 10.0, 1e-9);
  EXPECT_NEAR(faint.dm_max, 10.5, 1e-9);
  EXPECT_EQ(faint.num_spes, 6u);
  EXPECT_EQ(bright.rank, 1);  // brighter cluster ranks first
  EXPECT_EQ(faint.rank, 2);
  EXPECT_NEAR(bright.snr_max, 15.0, 1e-9);
}

TEST(ClusterEvents, SortedByDm) {
  std::vector<SinglePulseEvent> events{spe(12.0, 1.0), spe(10.0, 1.0),
                                       spe(11.0, 1.0), spe(10.5, 1.0),
                                       spe(11.5, 1.0)};
  const auto obs = make_obs(events);
  const auto result = dbscan_cluster(obs, fine_grid(), {});
  ASSERT_EQ(result.clusters.size(), 1u);
  const auto sorted = cluster_events(obs, result.clusters[0]);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_LE(sorted[i - 1].dm, sorted[i].dm);
  }
}

TEST(Dbscan, SimulatedPulsarPulsesBecomeClusters) {
  SurveySimulator sim(SurveyConfig::gbt350drift(), 101);
  SyntheticSource src;
  src.name = "T";
  src.dm = 40.0;
  src.period_s = 10.0;
  src.width_ms = 10.0;
  src.median_snr = 25.0;
  src.snr_sigma = 0.1;
  src.emission_rate = 1.0;
  ObservationId id;
  id.dataset = "GBT350Drift";
  const auto obs = sim.simulate(id, {src});
  ASSERT_GT(obs.truth.size(), 5u);
  const auto result = dbscan_cluster(obs.data, *sim.config().grid, {});
  // Each bright injected pulse should be recoverable as (at least) one
  // cluster whose time span covers it.
  std::size_t found = 0;
  for (const auto& gt : obs.truth) {
    if (gt.peak_snr < 10.0) continue;
    bool hit = false;
    for (const auto& rec : make_cluster_records(obs.data, result)) {
      if (gt.time_s >= rec.time_min - 0.1 && gt.time_s <= rec.time_max + 0.1 &&
          gt.dm >= rec.dm_min - 1.0 && gt.dm <= rec.dm_max + 1.0) {
        hit = true;
        break;
      }
    }
    found += hit;
  }
  std::size_t bright = 0;
  for (const auto& gt : obs.truth) bright += (gt.peak_snr >= 10.0);
  EXPECT_GE(found, bright * 9 / 10) << "bright=" << bright;
}

}  // namespace
}  // namespace drapid
