// Shared main() for the google-benchmark micro suites.
//
// The micro benches speak two flag dialects: google-benchmark's own
// --benchmark_* flags (filter, repetitions, ...) and the suite-wide drapid
// set from obs::BenchOptions (--seed, --json-out, --trace-out, ...).
// DRAPID_MICRO_MAIN splits argv between the two parsers, runs the registered
// benchmarks through a reporter that mirrors every measurement into the run
// report, and exports the report/trace artifacts on exit — so a micro bench
// replaces BENCHMARK_MAIN() with one macro line and gains the same
// observability surface as the table/figure benches.
#pragma once

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/bench.hpp"

namespace drapid {
namespace micro {

/// Console reporter that additionally records each finished run — iteration
/// runs and aggregates alike — as a result row in the bench's RunReport.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(obs::RunReport& report)
      : ConsoleReporter(::isatty(::fileno(stdout)) ? OO_ColorTabular
                                                   : OO_Tabular),
        report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      obs::Json row = obs::Json::object();
      row.set("benchmark", run.benchmark_name());
      row.set("iterations", static_cast<std::int64_t>(run.iterations));
      row.set("real_time", run.GetAdjustedRealTime());
      row.set("cpu_time", run.GetAdjustedCPUTime());
      row.set("time_unit",
              std::string(benchmark::GetTimeUnitString(run.time_unit)));
      report_.add_result(std::move(row));
      // Also surface each benchmark's cpu time as a flat named metric
      // ("time.<benchmark>") so report_diff compares runs per benchmark —
      // the regression gate tools/bench_baseline.sh relies on. With
      // --benchmark_repetitions the repetition runs share a name and the
      // last one wins; the "_mean"/"_median" aggregates keep distinct names.
      report_.add_metric("time." + run.benchmark_name(),
                         obs::Json(run.GetAdjustedCPUTime()));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::RunReport& report_;
};

/// Runs the registered benchmarks with argv split between google-benchmark
/// (--benchmark_* flags) and BenchOptions (everything else).
inline int run_micro_main(const std::string& tool, int argc, char** argv,
                          const std::string& summary) {
  std::vector<char*> gbench_argv = {argv[0]};
  std::vector<const char*> drapid_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmark_", 0) == 0) {
      gbench_argv.push_back(argv[i]);
    } else {
      drapid_argv.push_back(argv[i]);
    }
  }

  obs::BenchOptions bench(tool, static_cast<int>(drapid_argv.size()),
                          drapid_argv.data(), {},
                          summary + "\ngoogle-benchmark --benchmark_* flags "
                                    "pass through unchanged.");
  if (bench.help()) return 0;

  int gbench_argc = static_cast<int>(gbench_argv.size());
  benchmark::Initialize(&gbench_argc, gbench_argv.data());
  if (gbench_argc > 1) {
    // Initialize() leaves unrecognized flags behind; with the argv split
    // above, anything left is a typo in a --benchmark_* flag.
    benchmark::ReportUnrecognizedArguments(gbench_argc, gbench_argv.data());
    return 1;
  }

  CaptureReporter reporter(bench.report());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  bench.finish();
  return 0;
}

}  // namespace micro
}  // namespace drapid

/// Drop-in replacement for BENCHMARK_MAIN(): same registered-benchmark run,
/// plus the shared drapid bench flag set and report/trace export.
#define DRAPID_MICRO_MAIN(tool, summary)                              \
  int main(int argc, char** argv) {                                   \
    return drapid::micro::run_micro_main(tool, argc, argv, summary);  \
  }
