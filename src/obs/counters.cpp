#include "obs/counters.hpp"

namespace drapid {
namespace obs {

CounterRegistry::Counter& CounterRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) return *it->second;
  counters_.emplace_back(name);
  index_[name] = &counters_.back();
  return counters_.back();
}

void CounterRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

std::vector<std::pair<std::string, std::int64_t>>
CounterRegistry::counters_snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(index_.size());
  for (const auto& [name, counter] : index_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>>
CounterRegistry::gauges_snapshot() const {
  std::lock_guard lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

void CounterRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& counter : counters_) {
    counter.value_.store(0, std::memory_order_relaxed);
  }
  gauges_.clear();
}

CounterRegistry& global_counters() {
  static CounterRegistry* registry = new CounterRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace drapid
