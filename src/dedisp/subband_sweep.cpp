#include "dedisp/subband_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <utility>

#include "dedisp/kernels.hpp"
#include "dedisp/rfi_mitigation.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/flat_hash.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace drapid {

namespace {

std::vector<SubbandGroup> make_groups(std::size_t channels,
                                      std::size_t num_groups) {
  std::vector<SubbandGroup> groups(num_groups);
  const std::size_t base = channels / num_groups;
  const std::size_t extra = channels % num_groups;
  std::uint32_t at = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    const std::size_t size = base + (g < extra ? 1 : 0);
    groups[g].begin = at;
    groups[g].end = at + static_cast<std::uint32_t>(size);
    at = groups[g].end;
  }
  return groups;
}

SubbandPlan decompose(const SweepPlan& sweep, std::size_t channels,
                      std::size_t num_samples, std::size_t num_groups) {
  SubbandPlan sub;
  sub.num_plans = sweep.plans.size();
  sub.groups = make_groups(channels, num_groups);
  sub.patterns.resize(num_groups);
  sub.entries.resize(sub.num_plans * num_groups);
  const auto clamp = static_cast<std::uint32_t>(num_samples);

  // Per-group dedup of residual vectors, keyed on raw bytes like
  // build_sweep_plan's shift-vector dedup.
  std::vector<FlatHashMap<std::string, std::uint32_t>> index(num_groups);
  std::string key;
  std::vector<std::uint32_t> residuals;
  for (std::size_t p = 0; p < sub.num_plans; ++p) {
    const auto& shifts = sweep.plans[p].shifts;
    for (std::size_t g = 0; g < num_groups; ++g) {
      const SubbandGroup& group = sub.groups[g];
      std::uint32_t base = clamp;
      for (std::uint32_t c = group.begin; c < group.end; ++c) {
        base = std::min(base, shifts[c]);
      }
      residuals.resize(group.size());
      for (std::uint32_t c = group.begin; c < group.end; ++c) {
        // base is the group's min shift, so residuals never underflow; a
        // residual at the clamp value contributes nothing, matching the
        // clamped full shift exactly.
        const std::uint32_t r = shifts[c] - base;
        residuals[c - group.begin] = r;
        sub.max_residual = std::max(sub.max_residual, r);
      }
      key.assign(reinterpret_cast<const char*>(residuals.data()),
                 residuals.size() * sizeof(std::uint32_t));
      auto [entry, inserted] = index[g].try_emplace(
          key, static_cast<std::uint32_t>(sub.patterns[g].size()));
      if (inserted) {
        sub.patterns[g].push_back(SubbandPattern{residuals});
      }
      sub.entries[p * num_groups + g] = {entry->second, base};
    }
  }
  sub.pattern_base.resize(num_groups + 1);
  sub.pattern_base[0] = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    sub.pattern_base[g + 1] = sub.pattern_base[g] + sub.patterns[g].size();
  }
  sub.total_patterns = sub.pattern_base[num_groups];
  return sub;
}

/// Bytes touched per output sample: a stage-1 channel row costs a float
/// read plus a double read-modify-write (20 B); a plan's stage-2 fused
/// combine reads G doubles and writes one (8G + 16 B with the write and
/// float-rounding slop amortized).
double plan_cost(const SubbandPlan& sub) {
  double stage1 = 0.0;
  for (std::size_t g = 0; g < sub.groups.size(); ++g) {
    stage1 += 20.0 * static_cast<double>(sub.patterns[g].size()) *
              static_cast<double>(sub.groups[g].size());
  }
  const double stage2 =
      static_cast<double>(sub.num_plans) *
      (8.0 * static_cast<double>(sub.groups.size()) + 16.0);
  return stage1 + stage2;
}

}  // namespace

SubbandPlan build_subband_plan(const SweepPlan& sweep, std::size_t channels,
                               std::size_t num_samples, std::size_t groups) {
  if (channels == 0) {
    SubbandPlan empty;
    empty.num_plans = sweep.plans.size();
    empty.pattern_base = {0};
    return empty;
  }
  if (groups > 0) {
    return decompose(sweep, channels, num_samples,
                     std::min(groups, channels));
  }
  // Auto: evaluate a short ladder of candidate group counts and keep the
  // cost-model argmin. Each probe is one hashing pass over plans × channels
  // — negligible next to the sweep itself.
  SubbandPlan best;
  double best_cost = 0.0;
  for (std::size_t g : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{6}, std::size_t{8}, std::size_t{12},
                        std::size_t{16}, std::size_t{24}, std::size_t{32},
                        std::size_t{48}, std::size_t{64}}) {
    if (g > channels) break;
    SubbandPlan candidate = decompose(sweep, channels, num_samples, g);
    const double cost = plan_cost(candidate);
    if (best.groups.empty() || cost < best_cost) {
      best_cost = cost;
      best = std::move(candidate);
    }
  }
  return best;
}

void accumulate_subband_partial(const Filterbank& fb,
                                const SubbandGroup& group,
                                const SubbandPattern& pattern, double* out,
                                std::size_t n) {
  std::fill(out, out + n, 0.0);
  for (std::uint32_t c = group.begin; c < group.end; ++c) {
    const std::uint32_t r = pattern.residuals[c - group.begin];
    if (r >= n) continue;
    kernels::accumulate_f32(out, fb.channel_data(c) + r, n - r);
  }
}

void combine_subband_series(const SubbandPlan& sub, std::size_t plan_index,
                            const double* const* partials, std::size_t n,
                            std::vector<double>& series) {
  series.resize(n);
  const std::size_t num_groups = sub.groups.size();
  // Group g covers output samples [0, n - offset_g); past that its partial
  // has run out of band. Splitting [0, n) at the distinct coverage limits
  // gives segments with a constant active-group set, each combined in one
  // fused pass (ascending group order, like the exact sweep's ascending
  // channel order).
  constexpr std::size_t kMaxStack = 64;
  const double* ptr_stack[kMaxStack];
  std::size_t limit_stack[kMaxStack];
  std::vector<const double*> ptr_heap;
  std::vector<std::size_t> limit_heap;
  const double** ptrs = ptr_stack;
  std::size_t* limits = limit_stack;
  if (num_groups > kMaxStack) {
    ptr_heap.resize(num_groups);
    limit_heap.resize(num_groups);
    ptrs = ptr_heap.data();
    limits = limit_heap.data();
  }
  for (std::size_t g = 0; g < num_groups; ++g) {
    const SubbandEntry& e = sub.entry(plan_index, g);
    const std::size_t offset = e.offset;
    limits[g] = offset < n ? n - offset : 0;
    ptrs[g] = partials[g] + offset;
  }
  std::vector<std::size_t> cuts(limits, limits + num_groups);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  const double* seg_ptrs_stack[kMaxStack];
  std::vector<const double*> seg_ptrs_heap;
  const double** seg_ptrs = seg_ptrs_stack;
  if (num_groups > kMaxStack) {
    seg_ptrs_heap.resize(num_groups);
    seg_ptrs = seg_ptrs_heap.data();
  }
  std::size_t s = 0;
  for (const std::size_t cut : cuts) {
    if (cut <= s) continue;
    std::size_t active = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (limits[g] >= cut) seg_ptrs[active++] = ptrs[g] + s;
    }
    kernels::combine_f64(series.data() + s, seg_ptrs, active, cut - s);
    s = cut;
  }
  if (s < n) std::fill(series.begin() + static_cast<long>(s), series.end(), 0.0);
}

void subband_series(const Filterbank& fb, const SweepPlan& sweep,
                    const SubbandPlan& sub, std::size_t plan_index,
                    DedispScratch& scratch) {
  const std::size_t n = fb.num_samples();
  const std::size_t num_groups = sub.groups.size();
  scratch.group_series.resize(num_groups * n);
  std::vector<const double*> partials(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    double* slot = scratch.group_series.data() + g * n;
    accumulate_subband_partial(
        fb, sub.groups[g],
        sub.patterns[g][sub.entry(plan_index, g).pattern], slot, n);
    partials[g] = slot;
  }
  combine_subband_series(sub, plan_index, partials.data(), n, scratch.series);
  normalize_tail(sweep.plans[plan_index], fb.num_channels(), scratch.series,
                 scratch.contrib_prefix);
}

namespace {

/// A contiguous run of plans processed by one worker: the block's distinct
/// coarse nodes are accumulated into the worker's arena once, then each
/// plan combines + detects. Partials are a deterministic function of the
/// filterbank and the pattern, so the blocking (and thread count) cannot
/// change any plan's series.
struct PlanBlock {
  std::size_t begin = 0;
  std::size_t end = 0;
};

}  // namespace

std::vector<SinglePulseEvent> subband_single_pulse_search(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params) {
  if (params.rfi.policy != MitigationPolicy::kOff) {
    // Route direct calls through the mitigation stage too; it re-enters
    // single_pulse_search with the policy cleared, so pin the method in
    // case the caller reached here without setting it.
    SinglePulseSearchParams routed = params;
    routed.method = SweepMethod::kSubband;
    return detail::mitigated_single_pulse_search(fb, grid, routed);
  }
  auto& tracer = obs::global_tracer();
  obs::ScopedSpan sweep_span(tracer, "dedisp.subband.sweep", {}, "dedisp");
  Stopwatch watch;

  const SweepPlan sweep =
      build_sweep_plan(fb, grid, params.dm_stride, params.channel_mask);
  const SubbandPlan sub = build_subband_plan(
      sweep, fb.num_channels(), fb.num_samples(), params.subband_groups);
  const std::size_t n = fb.num_samples();
  const std::size_t num_groups = sub.groups.size();
  const std::size_t num_plans = sweep.plans.size();

  // Block layout: at least one block per worker, plus enough blocks that a
  // block's worst-case arena (every distinct node) stays within budget.
  const std::size_t sweep_threads = params.sweep_threads();
  constexpr std::size_t kArenaBudgetBytes = std::size_t{256} << 20;
  std::size_t num_blocks = std::max<std::size_t>(1, sweep_threads);
  if (n > 0 && sub.total_patterns > 0) {
    const std::size_t arena_bytes = sub.total_patterns * n * sizeof(double);
    num_blocks = std::max(
        num_blocks, (arena_bytes + kArenaBudgetBytes - 1) / kArenaBudgetBytes);
  }
  num_blocks = std::max<std::size_t>(1, std::min(num_blocks, num_plans));
  std::vector<PlanBlock> blocks(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    blocks[b].begin = num_plans * b / num_blocks;
    blocks[b].end = num_plans * (b + 1) / num_blocks;
  }

  std::vector<std::vector<SinglePulseEvent>> found(num_plans);
  std::atomic<std::int64_t> partials_built{0};
  const auto run_block = [&](std::size_t b) {
    const PlanBlock& block = blocks[b];
    if (block.begin >= block.end) return;
    thread_local DedispScratch dedisp_scratch;
    thread_local DetectScratch detect_scratch;
    thread_local std::vector<std::int32_t> slot_of_node;
    thread_local std::vector<std::uint32_t> node_order;  // flat node ids
    obs::ScopedSpan span(tracer, "dedisp.subband.block", {}, "dedisp");

    // Which coarse nodes does this block need? First-use order keeps the
    // arena walk cache-friendly for the combine loop that follows.
    slot_of_node.assign(sub.total_patterns, -1);
    node_order.clear();
    for (std::size_t p = block.begin; p < block.end; ++p) {
      for (std::size_t g = 0; g < num_groups; ++g) {
        const std::uint32_t flat = static_cast<std::uint32_t>(
            sub.pattern_base[g] + sub.entry(p, g).pattern);
        if (slot_of_node[flat] < 0) {
          slot_of_node[flat] = static_cast<std::int32_t>(node_order.size());
          node_order.push_back(flat);
        }
      }
    }
    // Stage 1: every distinct node once.
    auto& arena = dedisp_scratch.group_series;
    arena.resize(node_order.size() * n);
    for (std::size_t i = 0; i < node_order.size(); ++i) {
      const std::uint32_t flat = node_order[i];
      const std::size_t g = static_cast<std::size_t>(
          std::upper_bound(sub.pattern_base.begin(), sub.pattern_base.end(),
                           static_cast<std::size_t>(flat)) -
          sub.pattern_base.begin() - 1);
      accumulate_subband_partial(fb, sub.groups[g],
                                 sub.patterns[g][flat - sub.pattern_base[g]],
                                 arena.data() + i * n, n);
    }
    partials_built.fetch_add(static_cast<std::int64_t>(node_order.size()),
                             std::memory_order_relaxed);
    // Stage 2 + detection per plan.
    std::vector<const double*> partials(num_groups);
    for (std::size_t p = block.begin; p < block.end; ++p) {
      for (std::size_t g = 0; g < num_groups; ++g) {
        const std::uint32_t flat = static_cast<std::uint32_t>(
            sub.pattern_base[g] + sub.entry(p, g).pattern);
        partials[g] =
            arena.data() +
            static_cast<std::size_t>(slot_of_node[flat]) * n;
      }
      combine_subband_series(sub, p, partials.data(), n,
                             dedisp_scratch.series);
      normalize_tail(sweep.plans[p], fb.num_channels(), dedisp_scratch.series,
                     dedisp_scratch.contrib_prefix);
      detect_events_into(dedisp_scratch.series,
                         grid.dm_at(sweep.plans[p].trials.front()),
                         fb.config().sample_time_ms, params, detect_scratch,
                         found[p]);
    }
    if (span.active()) {
      span.arg("plans", static_cast<std::int64_t>(block.end - block.begin));
      span.arg("nodes", static_cast<std::int64_t>(node_order.size()));
    }
  };
  if (sweep_threads > 1 && num_blocks > 1) {
    ThreadPool pool(sweep_threads);
    pool.parallel_for(num_blocks, run_block);
  } else {
    for (std::size_t b = 0; b < num_blocks; ++b) run_block(b);
  }

  std::vector<SinglePulseEvent> events =
      detail::merge_plan_events(sweep, grid, params.dm_stride, found);

  const double elapsed = watch.elapsed_seconds();
  auto& counters = obs::global_counters();
  counters.add("dedisp.trials", static_cast<std::int64_t>(sweep.num_trials));
  counters.add("dedisp.plans_unique", static_cast<std::int64_t>(num_plans));
  counters.add("dedisp.plan_dedup_hits",
               static_cast<std::int64_t>(sweep.num_trials - num_plans));
  counters.add("dedisp.events", static_cast<std::int64_t>(events.size()));
  counters.add("dedisp.subband.nodes",
               static_cast<std::int64_t>(sub.total_patterns));
  counters.add("dedisp.subband.partials_built",
               partials_built.load(std::memory_order_relaxed));
  counters.add("dedisp.subband.residual_combines",
               static_cast<std::int64_t>(num_plans * num_groups));
  counters.set_gauge("dedisp.subband.groups",
                     static_cast<double>(num_groups));
  const double samples = static_cast<double>(num_plans * n);
  if (elapsed > 0.0) {
    counters.set_gauge("dedisp.samples_per_s", samples / elapsed);
  }
  if (sweep_span.active()) {
    sweep_span.arg("trials", static_cast<std::int64_t>(sweep.num_trials));
    sweep_span.arg("plans_unique", static_cast<std::int64_t>(num_plans));
    sweep_span.arg("groups", static_cast<std::int64_t>(num_groups));
    sweep_span.arg("nodes", static_cast<std::int64_t>(sub.total_patterns));
    sweep_span.arg("max_residual",
                   static_cast<std::int64_t>(sub.max_residual));
    sweep_span.arg("events", static_cast<std::int64_t>(events.size()));
    sweep_span.arg("threads", static_cast<std::int64_t>(sweep_threads));
    sweep_span.arg("kernel", kernels::dispatch_name());
  }
  return events;
}

}  // namespace drapid
