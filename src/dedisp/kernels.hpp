// Runtime-dispatched SIMD kernels for the dedispersion hot loops (PR 8).
//
// The DM sweep spends its time in four tight loops: the float→double
// accumulation that sums shifted channel rows, the double→double accumulation
// that combines subband partials, the selection passes behind the
// median/MAD standardization in robust_stats, and the threshold-certificate
// scan of detect_events_into. Each one gets a hand-vectorized AVX2
// implementation here, selected once at process start via CPUID with a
// portable scalar fallback.
//
// Every kernel is *exact*: the elementwise kernels (accumulate, abs
// deviation, certificate compare) do the same operation per element in the
// same order as the scalar loop, and select_kth returns the k-th smallest
// element of the array — a value that does not depend on the selection
// algorithm. So the AVX2 and scalar paths produce bit-identical results, and
// the scalar path is bit-identical to the pre-kernel seed code. (The subband
// sweep's bounded series error comes from *regrouping* channel sums, not
// from these kernels — see subband_sweep.hpp.)
//
// Dispatch: AVX2 is used when the CPU reports it and the environment does
// not say otherwise; `DRAPID_FORCE_SCALAR=1` pins the scalar path (the CI
// job for non-AVX2 hosts runs the dedisp suites this way). Tests can also
// call the `scalar::` / `avx2::` entry points directly to compare paths
// in one process.
#pragma once

#include <cstddef>

namespace drapid {
namespace kernels {

/// True when the CPU supports AVX2 (CPUID, cached).
bool avx2_supported();

/// True when the dispatched entry points below use the AVX2 path:
/// avx2_supported() and DRAPID_FORCE_SCALAR is not "1" in the environment
/// (checked once, at first use).
bool using_avx2();

/// "avx2" or "scalar" — the dispatch choice, for counters and span args.
const char* dispatch_name();

// --- dispatched entry points ------------------------------------------------

/// out[i] += in[i] for i in [0, n): the dedispersion accumulation inner loop
/// (shifted float channel row into the double series).
void accumulate_f32(double* out, const float* in, std::size_t n);

/// out[i] += in[i] for i in [0, n): the subband combine inner loop (shifted
/// double partial series into the double series).
void accumulate_f64(double* out, const double* in, std::size_t n);

/// out[i] = in[0][i] + in[1][i] + ... + in[ngroups-1][i] (assignment, not
/// accumulation) for i in [0, n): the fused subband combine. Summing G
/// streams in one pass reads 8 bytes per stream element instead of the
/// 24 bytes per element of G separate read-modify-write passes. ngroups == 0
/// zero-fills. The addition order is ascending stream index per element —
/// identical across the scalar and AVX2 paths (lanes are independent).
void combine_f64(double* out, const double* const* in, std::size_t ngroups,
                 std::size_t n);

/// out[i] = |in[i] - center| for i in [0, n): the deviation pass between
/// the median and MAD selections of robust_stats, fused with the workspace
/// refill (select_kth consumed the previous fill). in and out may alias.
void abs_deviation(double* out, const double* in, std::size_t n,
                   double center);

/// Returns the k-th smallest element of v[0..n) (0-based; k < n, n > 0).
/// CONSUMES v and scratch (same length n): the AVX2 path partitions
/// out-of-place between the two buffers, so afterwards neither holds a
/// permutation of the input — refill before reuse. Exact selection: the
/// result is the element that would be at index k after a full sort,
/// identical for every implementation — this replaces std::nth_element in
/// robust_stats, where branch mispredictions on noise-like data made it the
/// detection stage's largest cost.
double select_kth(double* v, double* scratch, std::size_t n, std::size_t k);

/// below[c] &= (prefix[c + ahead] - prefix[c - back] < bound) for c in
/// [begin, end): one boxcar's contribution to the division-free threshold
/// certificate of detect_events_into. Callers pass begin >= back and
/// end + ahead <= prefix length.
void certify_below(const double* prefix, std::size_t begin, std::size_t end,
                   std::size_t back, std::size_t ahead, double bound,
                   unsigned char* below);

// --- direct paths (for tests and the dispatcher) ----------------------------

namespace scalar {
void accumulate_f32(double* out, const float* in, std::size_t n);
void accumulate_f64(double* out, const double* in, std::size_t n);
void combine_f64(double* out, const double* const* in, std::size_t ngroups,
                 std::size_t n);

void abs_deviation(double* out, const double* in, std::size_t n,
                   double center);
double select_kth(double* v, double* scratch, std::size_t n, std::size_t k);
void certify_below(const double* prefix, std::size_t begin, std::size_t end,
                   std::size_t back, std::size_t ahead, double bound,
                   unsigned char* below);
}  // namespace scalar

/// Only callable when avx2_supported(); the dispatcher never routes here
/// otherwise, and tests must check before comparing paths.
namespace avx2 {
void accumulate_f32(double* out, const float* in, std::size_t n);
void accumulate_f64(double* out, const double* in, std::size_t n);
void combine_f64(double* out, const double* const* in, std::size_t ngroups,
                 std::size_t n);

void abs_deviation(double* out, const double* in, std::size_t n,
                   double center);
double select_kth(double* v, double* scratch, std::size_t n, std::size_t k);
void certify_below(const double* prefix, std::size_t begin, std::size_t end,
                   std::size_t back, std::size_t ahead, double bound,
                   unsigned char* below);
}  // namespace avx2

}  // namespace kernels
}  // namespace drapid
