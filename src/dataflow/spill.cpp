#include "dataflow/spill.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace drapid {

namespace {

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

}  // namespace

CachedStringRdd::CachedStringRdd(Engine& engine, StringRdd rdd,
                                 const std::string& name)
    : engine_(engine), name_(name) {
  bytes_ = rdd.estimated_bytes();
  partitioner_id_ = rdd.partitioner_id;
  auto& stage = engine_.begin_stage(name_ + ":cache", rdd.num_partitions());
  if (bytes_ <= engine_.config().total_memory_bytes()) {
    in_memory_ = std::move(rdd);
    for (std::size_t p = 0; p < in_memory_.num_partitions(); ++p) {
      stage.tasks[p].records_in = in_memory_.partitions[p].size();
    }
    return;
  }
  spilled_ = true;
  files_.resize(rdd.num_partitions());
  engine_.pool().parallel_for(rdd.num_partitions(), [&](std::size_t p) {
    files_[p] = engine_.next_spill_path();
    std::ofstream out(files_[p], std::ios::binary);
    if (!out) throw std::runtime_error("cannot open spill file " + files_[p]);
    auto& task = stage.tasks[p];
    write_u64(out, rdd.partitions[p].size());
    for (const auto& [k, v] : rdd.partitions[p]) {
      write_u64(out, k.size());
      out.write(k.data(), static_cast<std::streamsize>(k.size()));
      write_u64(out, v.size());
      out.write(v.data(), static_cast<std::streamsize>(v.size()));
      task.spill_bytes += k.size() + v.size() + 16;
    }
    task.records_in = rdd.partitions[p].size();
    if (!out) throw std::runtime_error("spill write failed: " + files_[p]);
    rdd.partitions[p].clear();
    rdd.partitions[p].shrink_to_fit();
  });
}

CachedStringRdd::StringRdd CachedStringRdd::materialize() {
  if (!spilled_) return in_memory_;
  StringRdd rdd;
  rdd.partitions.resize(files_.size());
  rdd.partitioner_id = partitioner_id_;
  auto& stage = engine_.begin_stage(name_ + ":materialize", files_.size());
  engine_.pool().parallel_for(files_.size(), [&](std::size_t p) {
    std::ifstream in(files_[p], std::ios::binary);
    if (!in) throw std::runtime_error("cannot reopen spill file " + files_[p]);
    auto& task = stage.tasks[p];
    const std::uint64_t count = read_u64(in);
    rdd.partitions[p].reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string k(read_u64(in), '\0');
      in.read(k.data(), static_cast<std::streamsize>(k.size()));
      std::string v(read_u64(in), '\0');
      in.read(v.data(), static_cast<std::streamsize>(v.size()));
      task.spill_bytes += k.size() + v.size() + 16;
      rdd.partitions[p].emplace_back(std::move(k), std::move(v));
    }
    if (!in) throw std::runtime_error("spill read failed: " + files_[p]);
    task.records_out = rdd.partitions[p].size();
  });
  return rdd;
}

}  // namespace drapid
