#include "dedisp/periodicity.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "util/stats.hpp"

namespace drapid {

void fft_inplace(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0) {
    throw std::invalid_argument("FFT size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * 3.14159265358979323846 /
                         static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<double> power_spectrum(const std::vector<double>& series) {
  if (series.empty()) return {};
  std::size_t n = 1;
  while (n < series.size()) n <<= 1;
  const double m = mean(series);
  std::vector<std::complex<double>> a(n, {0.0, 0.0});
  for (std::size_t i = 0; i < series.size(); ++i) a[i] = series[i] - m;
  fft_inplace(a);
  std::vector<double> power;
  power.reserve(n / 2);
  for (std::size_t k = 1; k <= n / 2; ++k) {
    power.push_back(std::norm(a[k]));
  }
  return power;
}

std::vector<PeriodicityCandidate> periodicity_search(
    const std::vector<double>& series, double sample_time_ms,
    const PeriodicitySearchParams& params) {
  std::vector<PeriodicityCandidate> candidates;
  const auto power = power_spectrum(series);
  if (power.empty()) return candidates;
  std::size_t padded = 1;
  while (padded < series.size()) padded <<= 1;
  const double dt_s = sample_time_ms * 1e-3;
  const double df_hz = 1.0 / (static_cast<double>(padded) * dt_s);

  // Normalize against the typical (median) spectral power so snr is in
  // units of the noise floor; chi^2_2 noise makes median ≈ 0.69 mean.
  std::vector<double> sorted = power;
  std::nth_element(sorted.begin(), sorted.begin() +
                   static_cast<long>(sorted.size() / 2), sorted.end());
  const double floor = std::max(1e-12, sorted[sorted.size() / 2] / 0.693);

  const auto min_bin = static_cast<std::size_t>(
      std::max(1.0, params.min_frequency_hz / df_hz));

  // Harmonic summing: for each fundamental bin, sum power at k·f for
  // k = 1..H; significance normalizes by sqrt(H) (incoherent sum).
  for (std::size_t bin = min_bin; bin < power.size(); ++bin) {
    double best_snr = 0.0;
    int best_h = 1;
    double summed = 0.0;
    int h = 0;
    for (int stage = 1; stage <= params.max_harmonics; stage *= 2) {
      for (; h < stage; ++h) {
        const std::size_t hb = bin * static_cast<std::size_t>(h + 1) - 1;
        if (hb < power.size()) summed += power[hb];
      }
      // Excess of the summed power over its noise expectation (H·floor),
      // in units of the sum's standard deviation (√H·floor for χ²₂ bins).
      const double snr = (summed - static_cast<double>(stage) * floor) /
                         (std::sqrt(static_cast<double>(stage)) * floor);
      if (snr > best_snr) {
        best_snr = snr;
        best_h = stage;
      }
    }
    if (best_snr < params.snr_threshold) continue;
    PeriodicityCandidate cand;
    cand.frequency_hz = static_cast<double>(bin + 1) * df_hz;
    cand.period_s = 1.0 / cand.frequency_hz;
    cand.snr = best_snr;
    cand.harmonics = best_h;
    candidates.push_back(cand);
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.snr > b.snr; });

  // Harmonic de-duplication: drop candidates whose frequency is (nearly) an
  // integer multiple or fraction of a stronger one.
  std::vector<PeriodicityCandidate> unique;
  for (const auto& cand : candidates) {
    bool related = false;
    for (const auto& kept : unique) {
      const double ratio = cand.frequency_hz / kept.frequency_hz;
      const double r = ratio >= 1.0 ? ratio : 1.0 / ratio;
      // Tolerance covers bin-quantization error on both frequencies.
      if (std::abs(r - std::round(r)) < 0.05) {
        related = true;
        break;
      }
    }
    if (!related) unique.push_back(cand);
    if (unique.size() >= params.max_candidates) break;
  }
  return unique;
}

std::vector<double> fold(const std::vector<double>& series,
                         double sample_time_ms, double period_s,
                         std::size_t bins) {
  if (bins == 0 || period_s <= 0.0) {
    throw std::invalid_argument("fold needs bins > 0 and a positive period");
  }
  std::vector<double> profile(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  const double dt_s = sample_time_ms * 1e-3;
  for (std::size_t s = 0; s < series.size(); ++s) {
    const double phase =
        std::fmod(static_cast<double>(s) * dt_s, period_s) / period_s;
    const auto bin = std::min(
        bins - 1, static_cast<std::size_t>(phase * static_cast<double>(bins)));
    profile[bin] += series[s];
    ++counts[bin];
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] > 0) profile[b] /= static_cast<double>(counts[b]);
  }
  return profile;
}

double profile_significance(const std::vector<double>& profile) {
  if (profile.size() < 4) return 0.0;
  const double peak = *std::max_element(profile.begin(), profile.end());
  // Off-pulse statistics: exclude the top quartile of bins so a strong
  // pulse does not inflate its own baseline noise estimate.
  std::vector<double> sorted(profile.begin(), profile.end());
  std::sort(sorted.begin(), sorted.end());
  const std::span<const double> off(sorted.data(), sorted.size() * 3 / 4);
  const double m = mean(off);
  const double sd = stddev(off, /*sample=*/false);
  return sd > 1e-12 ? (peak - m) / sd : 0.0;
}

}  // namespace drapid
