// Synthetic source population: pulsars and rotating radio transients (RRATs).
//
// Stand-in for the paper's labeled real-world sources (48 GBT350Drift pulsars,
// 98 PALFA pulsars/RRATs). Each source carries the physical parameters that
// shape its single pulses: true DM, rotation period, pulse width, and a pulse
// brightness distribution. Pulsars emit a pulse every rotation with strongly
// modulated amplitude; RRATs emit sporadically (McLaughlin et al. 2006).
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace drapid {

enum class SourceType { kPulsar, kRrat };

/// One synthetic emitter.
struct SyntheticSource {
  std::string name;         ///< catalogue-style name, e.g. "J1900+0613"
  SourceType type = SourceType::kPulsar;
  double ra_deg = 0.0;      ///< sky position (right ascension)
  double dec_deg = 0.0;     ///< sky position (declination)
  double dm = 0.0;          ///< true dispersion measure (pc cm⁻³)
  double period_s = 1.0;    ///< rotation period
  double width_ms = 10.0;   ///< intrinsic pulse width (full width)
  /// Median peak S/N of detectable pulses at the true DM. Individual pulses
  /// scatter log-normally around this.
  double median_snr = 8.0;
  /// log-normal sigma of pulse-to-pulse brightness modulation.
  double snr_sigma = 0.35;
  /// For pulsars: fraction of rotations yielding a detectable pulse.
  /// For RRATs: expected detectable bursts per hour.
  double emission_rate = 0.5;
};

/// Parameter ranges for drawing a population; survey presets fill these in.
struct PopulationConfig {
  std::size_t num_pulsars = 10;
  std::size_t num_rrats = 2;
  double dm_min = 5.0;
  double dm_max = 500.0;
  /// log10(period/s) is drawn uniformly in [log_period_min, log_period_max].
  double log_period_min = -1.3;  // ~50 ms
  double log_period_max = 0.7;   // ~5 s
  /// Pulse width as a fraction of period (drawn log-uniform in this range).
  double duty_min = 0.01;
  double duty_max = 0.05;
  /// Median-SNR distribution (log-normal parameters of the underlying
  /// normal); offset above the detection threshold.
  double snr_mu = 2.2;
  double snr_sigma = 0.55;
};

/// Draws a reproducible population from `config` using `rng`.
std::vector<SyntheticSource> draw_population(const PopulationConfig& config,
                                             Rng& rng);

}  // namespace drapid
