// D-RAPID driver — the paper's contribution (Figure 3), on the mini-Spark
// engine instead of Spark-on-YARN.
//
// Stage 1/2: the SPE "data file" and the "cluster file" are read from the
//   block store in line-aligned chunks, stripped of headers, and turned into
//   key-value-pair RDDs keyed by the concatenated observation descriptors
//   (dataset | MJD | sky position | beam).
// Stage 3: both KVPRDDs are hash-partitioned identically so matching keys
//   are colocated, aggregated by key so the join sees one pair per key per
//   side, then left-outer-joined; the search phase runs Algorithm 1 on every
//   cluster against its colocated SPE data and writes the identified pulses'
//   feature vectors back to the block store as an ML file.
//
// The two optimizations of Figure 3 can be disabled independently
// (DrapidConfig::copartition / aggregate_before_join) for the ablation
// benchmarks; the engine's metrics expose the shuffle-byte difference.
#pragma once

#include <string>
#include <vector>

#include "dataflow/block_store.hpp"
#include "dataflow/engine.hpp"
#include "rapid/features.hpp"
#include "rapid/search.hpp"
#include "spe/dm_grid.hpp"

namespace drapid {

struct DrapidConfig {
  RapidParams rapid;
  /// Partitions for the shared hash partitioner; 0 = engine default
  /// (cores × partitions_per_core, the paper's 32-per-core scheme).
  std::size_t num_partitions = 0;
  /// Pre-partition both inputs with the shared partitioner before joining
  /// (Figure 3 "Partition" phase). Off = the join shuffles on its own.
  bool copartition = true;
  /// Aggregate duplicate keys per side before the join (Figure 3
  /// "Aggregate" phase). Off = the join multiplies duplicate keys.
  bool aggregate_before_join = true;
};

struct DrapidResult {
  /// Identified pulses, sorted by (observation, cluster, pulse index).
  std::vector<MlRecord> records;
  /// Measured work of this run (copied out of the engine).
  JobMetrics metrics;
  std::size_t clusters_searched = 0;
  std::size_t spes_scanned = 0;
  /// Spill partitions of the cached SPE RDD recomputed from lineage after
  /// their on-disk copy failed validation (0 in a fault-free run).
  std::size_t partitions_recovered = 0;
  /// Block reads served by a non-primary replica (dead-node failover).
  std::size_t replica_failovers = 0;
  double wall_seconds = 0.0;
};

/// Runs the full D-RAPID job: reads `data_file` and `cluster_file` from the
/// store, writes the ML file to `output_file` (empty = skip writing), and
/// returns the identified pulses plus the measured work.
DrapidResult run_drapid(Engine& engine, BlockStore& store,
                        const std::string& data_file,
                        const std::string& cluster_file,
                        const std::string& output_file, const DmGrid& grid,
                        const DrapidConfig& config);

}  // namespace drapid
