#include "spe/dm_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drapid {

DmGrid::DmGrid(std::vector<DmPlanSegment> plan) : plan_(std::move(plan)) {
  if (plan_.empty()) throw std::invalid_argument("empty dedispersion plan");
  double expected_begin = plan_.front().dm_begin;
  for (const auto& seg : plan_) {
    if (seg.step <= 0.0) {
      throw std::invalid_argument("dedispersion plan step must be positive");
    }
    if (seg.dm_end <= seg.dm_begin) {
      throw std::invalid_argument("dedispersion plan segment must ascend");
    }
    if (std::abs(seg.dm_begin - expected_begin) > 1e-9) {
      throw std::invalid_argument("dedispersion plan segments must be contiguous");
    }
    expected_begin = seg.dm_end;
  }
  for (const auto& seg : plan_) {
    segment_first_index_.push_back(trials_.size());
    // Use an integer counter rather than repeated addition so long fine-step
    // segments do not accumulate floating-point drift.
    const auto count = static_cast<std::size_t>(
        std::ceil((seg.dm_end - seg.dm_begin) / seg.step - 1e-9));
    for (std::size_t i = 0; i < count; ++i) {
      trials_.push_back(seg.dm_begin + static_cast<double>(i) * seg.step);
    }
  }
  if (trials_.empty()) throw std::invalid_argument("dedispersion plan has no trials");
}

std::size_t DmGrid::index_of(double dm) const {
  const auto it = std::lower_bound(trials_.begin(), trials_.end(), dm);
  if (it == trials_.begin()) return 0;
  if (it == trials_.end()) return trials_.size() - 1;
  const auto hi = static_cast<std::size_t>(it - trials_.begin());
  const std::size_t lo = hi - 1;
  return (dm - trials_[lo] <= trials_[hi] - dm) ? lo : hi;
}

DmGrid DmGrid::prefix(double dm_end) const {
  // Slice the materialized trial list directly instead of re-deriving
  // per-segment counts through the ceil(… - 1e-9) formula: when dm_end lands
  // within that epsilon of a trial value (e.g. exactly one ulp above the
  // trial, as happens when a caller computes an edge from dm_at()), the
  // re-derived count dropped the last trial strictly below dm_end — an
  // off-by-one at the clip edge. lower_bound on the trial values themselves
  // makes "every trial < dm_end" exact by construction.
  const auto cut = std::lower_bound(trials_.begin(), trials_.end(), dm_end);
  const auto count = static_cast<std::size_t>(cut - trials_.begin());
  if (count == 0) {
    throw std::invalid_argument("dedispersion plan prefix is empty");
  }
  DmGrid out(*this);
  out.trials_.resize(count);
  out.plan_.clear();
  out.segment_first_index_.clear();
  for (std::size_t seg = 0;
       seg < plan_.size() && segment_first_index_[seg] < count; ++seg) {
    DmPlanSegment part = plan_[seg];
    part.dm_end = std::min(part.dm_end, dm_end);
    out.plan_.push_back(part);
    out.segment_first_index_.push_back(segment_first_index_[seg]);
  }
  return out;
}

double DmGrid::spacing_at(double dm) const {
  for (const auto& seg : plan_) {
    if (dm < seg.dm_end) return seg.step;
  }
  return plan_.back().step;
}

DmGrid DmGrid::gbt350drift() {
  // 350 MHz drift scan: sensitive to nearby pulsars, searched to DM ~ 1000.
  return DmGrid({
      {0.0, 30.0, 0.01},
      {30.0, 100.0, 0.03},
      {100.0, 300.0, 0.10},
      {300.0, 500.0, 0.30},
      {500.0, 700.0, 0.50},
      {700.0, 1000.0, 2.00},
  });
}

DmGrid DmGrid::palfa() {
  // 1.4 GHz Galactic-plane survey: deeper DM range, same spacing envelope.
  return DmGrid({
      {0.0, 25.0, 0.01},
      {25.0, 120.0, 0.05},
      {120.0, 330.0, 0.10},
      {330.0, 600.0, 0.30},
      {600.0, 1200.0, 1.00},
      {1200.0, 2400.0, 2.00},
  });
}

DmGrid DmGrid::fast_crafts() {
  // FAST/CRAFTS drift scan (1.05–1.45 GHz): the 19-beam receiver's
  // single-pulse backend searches nearby and Galactic sources with fine
  // steps, out to 1500 where extragalactic bursts live.
  return DmGrid({
      {0.0, 30.0, 0.01},
      {30.0, 100.0, 0.05},
      {100.0, 500.0, 0.10},
      {500.0, 1000.0, 0.50},
      {1000.0, 1500.0, 1.00},
  });
}

DmGrid DmGrid::ska_mid() {
  // SKA-Mid band 2: widest band and deepest DM range of the presets;
  // coarse 2.0 steps carry the top half where smearing dominates anyway.
  return DmGrid({
      {0.0, 40.0, 0.01},
      {40.0, 150.0, 0.05},
      {150.0, 600.0, 0.20},
      {600.0, 1500.0, 0.50},
      {1500.0, 3000.0, 2.00},
  });
}

}  // namespace drapid
