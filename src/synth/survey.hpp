// Synthetic sky-survey generator — the stand-in for GBT350Drift and PALFA.
//
// Generates the output of phases 1–3 of a single-pulse search (the paper's
// "raw data"): for each observation, a list of single pulse events across the
// survey's trial-DM grid, containing
//   * real single pulses from injected pulsars/RRATs, whose SNR-vs-DM shape
//     follows the Cordes & McLaughlin degradation curve (a peak at the true
//     DM) and whose DM-vs-time shape follows residual dispersion delays;
//   * broadband RFI bursts (flat SNR across wide DM ranges — no peak);
//   * low-DM terrestrial junk;
//   * threshold-crossing noise events.
// Unlike the real surveys, the simulator returns exact ground truth for every
// injected pulse, which is what the classification benchmarks label with.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "spe/catalog.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe_io.hpp"
#include "synth/population.hpp"
#include "synth/rfi.hpp"
#include "util/rng.hpp"

namespace drapid {

/// Observing setup and nuisance rates for one survey.
struct SurveyConfig {
  std::string name;
  double center_freq_mhz = 350.0;
  double bandwidth_mhz = 100.0;
  double obs_length_s = 140.0;
  double sample_time_ms = 0.0819;  ///< native sampling
  double snr_threshold = 5.0;      ///< single-pulse search detection threshold
  /// Rate of spurious threshold crossings (events per second, whole grid).
  double noise_events_per_second = 25.0;
  /// Expected broadband RFI bursts per observation.
  double rfi_bursts_per_observation = 0.8;
  /// Rate of low-DM (terrestrial) junk events per second.
  double low_dm_events_per_second = 4.0;
  /// Expected localized noise clumps per observation — clusters of
  /// near-threshold events that DBSCAN groups and RAPID sometimes mistakes
  /// for faint pulses. These are the survey's "negative examples of single
  /// pulses from noise" (§4).
  double noise_clumps_per_observation = 40.0;
  /// Expected pulse-mimicking RFI artifacts per observation: peaked SNR
  /// structure in DM without the Cordes shape (sweeping/periodic RFI) —
  /// the "negative examples ... from RFI".
  double peaked_rfi_per_observation = 10.0;
  /// Structured RFI families (rfi.hpp): expected instances per observation.
  /// All three render into both the event-level simulator and the raw
  /// filterbank path, each with ground-truth labels. All default to 0, so
  /// presets predating them generate byte-identical output.
  double periodic_broadband_per_observation = 0.0;
  double narrowband_carriers_per_observation = 0.0;
  double swept_chirps_per_observation = 0.0;
  /// Upper bound on SPEs one pulse contributes. Real search pipelines bound
  /// the DM window they associate with a detection; without a cap, a bright
  /// low-DM pulse at 1.4 GHz (where the Cordes response is very wide) can
  /// emit tens of thousands of trials' worth of events.
  std::size_t max_spes_per_pulse = 1200;
  /// Beam radius for position-based visibility (degrees).
  double beam_radius_deg = 0.3;
  PopulationConfig population;
  std::shared_ptr<const DmGrid> grid;

  /// GBT 350 MHz drift-scan preset (Boyles et al. 2013): low frequency,
  /// 100 MHz band, short drift observations, nearby-pulsar population.
  static SurveyConfig gbt350drift();

  /// PALFA preset (Cordes et al. 2006): 1.4 GHz, 300 MHz band, Galactic
  /// plane, deeper DM distribution.
  static SurveyConfig palfa();

  /// FAST/CRAFTS drift-scan preset (You et al. 2021): 1.05–1.45 GHz,
  /// 19-beam receiver, very high sensitivity, moderate structured RFI
  /// (satellites and aviation over a radio-quiet site).
  static SurveyConfig fast_crafts();

  /// SKA-Mid band-2 preset (Bhat et al. 2022 methodology study): 800 MHz
  /// band, deep DM grid, heavy structured RFI — the stress preset for the
  /// mitigation stage.
  static SurveyConfig ska_mid();

  /// Any structured RFI family enabled?
  bool has_structured_rfi() const {
    return periodic_broadband_per_observation > 0.0 ||
           narrowband_carriers_per_observation > 0.0 ||
           swept_chirps_per_observation > 0.0;
  }

  /// Rejects unusable configurations with std::invalid_argument naming the
  /// offending field: non-positive/non-finite geometry (band, observation
  /// length, sampling), an inverted band (bandwidth wider than twice the
  /// center frequency puts the band bottom below 0 MHz), negative or
  /// non-finite rates, and an inverted population DM range. Called by
  /// SurveySimulator and the filterbank path, so bad values fail loudly at
  /// construction instead of silently flowing into generation.
  void validate() const;
};

/// One injected (ground-truth) pulse.
struct GroundTruthPulse {
  std::string source_name;
  SourceType type = SourceType::kPulsar;
  double time_s = 0.0;    ///< arrival time at the true DM
  double dm = 0.0;        ///< the source's true DM
  double peak_snr = 0.0;  ///< brightest SPE actually emitted
  double width_ms = 0.0;
  std::uint32_t num_spes = 0;  ///< SPEs this pulse contributed
};

/// Simulator output for one observation.
struct SimulatedObservation {
  ObservationData data;                 ///< SPEs, sorted by (dm, time)
  std::vector<GroundTruthPulse> truth;  ///< injected pulses with ≥ 1 SPE
  /// Ground-truth structured interference rendered into this observation
  /// (empty unless the config enables structured RFI families).
  std::vector<RfiInstance> rfi_truth;
};

/// One multi-beam pointing: `beams.size()` observations sharing a sky.
/// Shared-sky interference (RfiInstance::kAllBeams) lands in every beam
/// with per-beam jitter; beam-local RFI and noise are drawn independently
/// per beam; astrophysical sources appear only in the on-source beam 0 —
/// exactly the asymmetry multi-beam coincidence rejection keys on.
struct MultiBeamObservation {
  std::vector<SimulatedObservation> beams;
  std::vector<RfiInstance> rfi_truth;  ///< shared + beam-local instances
};

/// Builds the known-source catalogue for a synthetic population — the
/// ATNF/RRATalog equivalent the paper crossmatches against (§4).
SourceCatalog catalog_from_population(
    const std::vector<SyntheticSource>& sources);

class SurveySimulator {
 public:
  /// Deterministic for a given (config, seed) pair.
  SurveySimulator(SurveyConfig config, std::uint64_t seed);

  const SurveyConfig& config() const { return config_; }

  /// Draws a source population from the survey's PopulationConfig.
  std::vector<SyntheticSource> draw_sources();

  /// Simulates one observation. `visible` lists the sources inside this
  /// beam (often empty — most pointings see no pulsar).
  SimulatedObservation simulate(const ObservationId& id,
                                const std::vector<SyntheticSource>& visible);

  /// Convenience: simulates `count` observations. Each pointing targets a
  /// random source with probability min(1, visibility × #sources) — so
  /// `visibility` keeps its meaning of "chance a given source is observed"
  /// — and otherwise points at blank sky; the sources actually in beam are
  /// then selected *by position* (within beam_radius_deg), so catalogue
  /// crossmatching agrees with the injected truth.
  std::vector<SimulatedObservation> simulate_many(
      std::size_t count, const std::vector<SyntheticSource>& sources,
      double visibility);

  /// Simulates one multi-beam pointing of `num_beams` beams (id.beam + b
  /// for beam b). Structured RFI is drawn once for the pointing: with
  /// probability `shared_rfi_fraction` an instance enters every beam
  /// (per-beam S/N jitter, occasional dropout), otherwise it stays local to
  /// one random beam. `visible` sources land in beam 0 only. Each beam also
  /// gets independent noise, clumps, and pulse-mimicking artifacts.
  MultiBeamObservation simulate_multibeam(
      const ObservationId& id, const std::vector<SyntheticSource>& visible,
      std::size_t num_beams, double shared_rfi_fraction = 0.7);

 private:
  void inject_pulse(const SyntheticSource& src, double t0, double snr0,
                    std::vector<SinglePulseEvent>& events,
                    std::vector<GroundTruthPulse>& truth);
  void inject_sources(const std::vector<SyntheticSource>& visible,
                      std::vector<SinglePulseEvent>& events,
                      std::vector<GroundTruthPulse>& truth);
  void add_noise(std::vector<SinglePulseEvent>& events);
  void add_rfi(std::vector<SinglePulseEvent>& events);
  void add_noise_clumps(std::vector<SinglePulseEvent>& events);
  void add_peaked_rfi(std::vector<SinglePulseEvent>& events);

  SurveyConfig config_;
  Rng rng_;
};

}  // namespace drapid
