// Automatically Labeled Multiclass (ALM) classification — paper §5.2.2,
// Tables 2 and 3.
//
// Instead of a human sorting positive examples into visual categories (the
// [10] approach, scheme 4*), ALM discretizes two extracted features:
//   SNRPeakDM — DM of the brightest SPE — a proxy for source distance:
//       [0, 100) near, [100, 175) mid, [175, ∞) far;
//   AvgSNR   — mean brightness: [0, 8] weak, (8, ∞) strong;
// and combines the bins into class labels. Scheme 8 additionally keeps
// RRATs as their own class so rare events stay learnable.
#pragma once

#include <string>
#include <vector>

namespace drapid {
namespace ml {

enum class AlmScheme {
  kBinary,    ///< scheme "2": Non-pulsar, Pulsar
  kFourStar,  ///< scheme "4*": visual classes from [10] (Pulsar, Very Bright, RRAT)
  kFour,      ///< scheme "4": Non-pulsar, Near, Mid, Far
  kSeven,     ///< scheme "7": Non-pulsar + {Near,Mid,Far} × {Weak,Strong}
  kEight,     ///< scheme "8": scheme 7 + RRAT
};

const std::vector<AlmScheme>& all_alm_schemes();
std::string alm_scheme_name(AlmScheme scheme);  // "2", "4*", "4", "7", "8"

/// Class names; index 0 is always "NonPulsar".
const std::vector<std::string>& alm_class_names(AlmScheme scheme);

/// Table 2 thresholds.
inline constexpr double kNearMidDmThreshold = 100.0;
inline constexpr double kMidFarDmThreshold = 175.0;
inline constexpr double kWeakStrongSnrThreshold = 8.0;
/// Scheme 4*'s "Very Bright Pulsar" visual threshold (reconstructed; [10]
/// sorted by eye — we use peak SNR).
inline constexpr double kVeryBrightSnrMax = 20.0;

/// Labels one instance under `scheme`.
///   is_pulsar — ground truth: the instance is a real single pulse
///   is_rrat   — the source is an RRAT (implies is_pulsar)
///   snr_peak_dm, avg_snr, snr_max — the extracted features Table 2 uses
/// Returns a class index into alm_class_names(scheme); 0 = NonPulsar.
int alm_label(AlmScheme scheme, bool is_pulsar, bool is_rrat,
              double snr_peak_dm, double avg_snr, double snr_max);

}  // namespace ml
}  // namespace drapid
