#include "dataflow/ipc/wire.hpp"

#include "util/checksum.hpp"

namespace drapid::ipc {

namespace {

// magic, kind, partition, error_kind, nine TaskMetrics counters,
// payload_len.
constexpr std::size_t kHeaderWords = 14;
constexpr std::size_t kHeaderBytes = kHeaderWords * sizeof(std::uint64_t);

std::uint64_t read_u64(const char* data) {
  std::uint64_t v;
  std::memcpy(&v, data, sizeof(v));
  return v;
}

}  // namespace

namespace {

void put_header(WireWriter& w, const TaskFrame& frame,
                std::uint64_t payload_len) {
  w.put_u64(kWireMagic);
  w.put_u64(static_cast<std::uint64_t>(frame.kind));
  w.put_u64(frame.partition);
  w.put_u64(static_cast<std::uint64_t>(frame.error_kind));
  w.put_u64(frame.metrics.records_in);
  w.put_u64(frame.metrics.bytes_in);
  w.put_u64(frame.metrics.records_out);
  w.put_u64(frame.metrics.bytes_out);
  w.put_u64(frame.metrics.shuffle_bytes);
  w.put_u64(frame.metrics.spill_bytes);
  w.put_u64(frame.metrics.compute_cost);
  w.put_u64(frame.metrics.attempts);
  w.put_u64(frame.metrics.retry_cost);
  w.put_u64(payload_len);
}

}  // namespace

std::string encode_frame(const TaskFrame& frame) {
  WireWriter w;
  put_header(w, frame, frame.payload.size());
  w.put_bytes(frame.payload.data(), frame.payload.size());
  // Checksum covers every byte after the magic: header words + payload.
  const std::string& bytes = w.buffer();
  const std::uint64_t checksum =
      checksum_fold(kChecksumSeed, bytes.data() + sizeof(std::uint64_t),
                    bytes.size() - sizeof(std::uint64_t));
  w.put_u64(checksum);
  return w.take();
}

FrameParts encode_frame_parts(const TaskFrame& frame, const FrameSpan* spans,
                              std::size_t num_spans) {
  std::uint64_t payload_len = 0;
  for (std::size_t i = 0; i < num_spans; ++i) payload_len += spans[i].size;
  WireWriter w;
  put_header(w, frame, payload_len);
  FrameParts parts;
  parts.header = w.take();
  // checksum_fold chains: folding the header tail, then each span in order,
  // equals folding the equivalent contiguous frame in one call.
  std::uint64_t checksum =
      checksum_fold(kChecksumSeed, parts.header.data() + sizeof(std::uint64_t),
                    parts.header.size() - sizeof(std::uint64_t));
  for (std::size_t i = 0; i < num_spans; ++i) {
    checksum = checksum_fold(checksum, spans[i].data, spans[i].size);
  }
  WireWriter t;
  t.put_u64(checksum);
  parts.trailer = t.take();
  return parts;
}

DecodeStatus try_decode_frame(const char* data, std::size_t size,
                              TaskFrame& out, std::size_t& consumed) {
  if (size < sizeof(std::uint64_t)) return DecodeStatus::kIncomplete;
  if (read_u64(data) != kWireMagic) return DecodeStatus::kCorrupt;
  if (size < kHeaderBytes) return DecodeStatus::kIncomplete;

  const std::uint64_t kind = read_u64(data + 1 * sizeof(std::uint64_t));
  const std::uint64_t error_kind = read_u64(data + 3 * sizeof(std::uint64_t));
  const std::uint64_t payload_len =
      read_u64(data + (kHeaderWords - 1) * sizeof(std::uint64_t));
  // Reject absurd claims before waiting on them: a flipped length bit must
  // surface as corruption now, not as a coordinator hung on a read.
  if (kind > kMaxFrameKind ||
      error_kind > static_cast<std::uint64_t>(WireErrorKind::kTaskFailure) ||
      payload_len > kMaxWirePayload) {
    return DecodeStatus::kCorrupt;
  }

  const std::size_t total =
      kHeaderBytes + static_cast<std::size_t>(payload_len) +
      sizeof(std::uint64_t);
  if (size < total) return DecodeStatus::kIncomplete;

  const std::uint64_t stored =
      read_u64(data + total - sizeof(std::uint64_t));
  const std::uint64_t computed = checksum_fold(
      kChecksumSeed, data + sizeof(std::uint64_t),
      total - 2 * sizeof(std::uint64_t));
  if (stored != computed) return DecodeStatus::kCorrupt;

  WireReader r(data, total - sizeof(std::uint64_t));
  r.get_u64();  // magic
  out.kind = static_cast<FrameKind>(r.get_u64());
  out.partition = r.get_u64();
  out.error_kind = static_cast<WireErrorKind>(r.get_u64());
  out.metrics = TaskMetrics{};
  out.metrics.partition = static_cast<std::size_t>(out.partition);
  out.metrics.records_in = static_cast<std::size_t>(r.get_u64());
  out.metrics.bytes_in = static_cast<std::size_t>(r.get_u64());
  out.metrics.records_out = static_cast<std::size_t>(r.get_u64());
  out.metrics.bytes_out = static_cast<std::size_t>(r.get_u64());
  out.metrics.shuffle_bytes = static_cast<std::size_t>(r.get_u64());
  out.metrics.spill_bytes = static_cast<std::size_t>(r.get_u64());
  out.metrics.compute_cost = static_cast<std::size_t>(r.get_u64());
  out.metrics.attempts = static_cast<std::size_t>(r.get_u64());
  out.metrics.retry_cost = static_cast<std::size_t>(r.get_u64());
  r.get_u64();  // payload_len, already validated
  out.payload.assign(r.get_bytes(static_cast<std::size_t>(payload_len)),
                     static_cast<std::size_t>(payload_len));
  consumed = total;
  return DecodeStatus::kOk;
}

}  // namespace drapid::ipc
