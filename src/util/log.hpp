// Leveled, thread-safe logging to stderr.
//
// Kept deliberately small: benches and examples narrate pipeline stages
// (Figure 2/3 of the paper) through this logger; tests silence it.
#pragma once

#include <sstream>
#include <string>

namespace drapid {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets/gets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line ("[level] message") if level passes the
/// threshold. Thread-safe (one lock per line).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace drapid
