#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace drapid {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AtLeastOneThreadEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  auto f = pool.submit([] {});
  f.get();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitPropagatesExceptionViaFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

// Regression: parallel_for used to deadlock when called from inside a pool
// task (the lone worker blocked waiting for chunks only it could run). The
// waiting caller now helps drain the queue, so nesting completes even on a
// one-thread pool.
TEST(ThreadPool, NestedParallelForOnOneThreadPoolCompletes) {
  ThreadPool pool(1);
  std::atomic<int> inner_hits{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_hits.fetch_add(1); });
  });
  EXPECT_EQ(inner_hits.load(), 4 * 8);
}

TEST(ThreadPool, ParallelForInsideSubmittedTaskCompletes) {
  ThreadPool pool(1);
  std::atomic<int> hits{0};
  auto f = pool.submit([&] {
    pool.parallel_for(16, [&](std::size_t) { hits.fetch_add(1); });
  });
  f.get();
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(2,
                                 [&](std::size_t) {
                                   pool.parallel_for(4, [](std::size_t i) {
                                     if (i == 3) {
                                       throw std::runtime_error("inner");
                                     }
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long long> values(10000);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long long> total{0};
  pool.parallel_for(values.size(), [&](std::size_t i) {
    total.fetch_add(values[i]);
  });
  EXPECT_EQ(total.load(), 10000LL * 10001 / 2);
}

}  // namespace
}  // namespace drapid
