#include "ml/eval.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace drapid {
namespace ml {
namespace {

TEST(BinaryScores, PaperEquations) {
  BinaryScores s;
  s.tp = 90;
  s.fn = 10;   // Recall = 90/100
  s.fp = 30;   // Precision = 90/120
  s.tn = 900;
  EXPECT_DOUBLE_EQ(s.recall(), 0.9);
  EXPECT_DOUBLE_EQ(s.precision(), 0.75);
  const double f = 2 * 0.75 * 0.9 / (0.75 + 0.9);
  EXPECT_DOUBLE_EQ(s.f_measure(), f);
}

TEST(BinaryScores, DegenerateCasesAreZero) {
  BinaryScores s;
  EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.precision(), 0.0);
  EXPECT_DOUBLE_EQ(s.f_measure(), 0.0);
}

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix m(3);
  m.add(0, 0);
  m.add(0, 1);
  m.add(1, 1);
  m.add(2, 2);
  m.add(2, 2);
  EXPECT_EQ(m.total(), 5u);
  EXPECT_EQ(m.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 4.0 / 5.0);
}

TEST(ConfusionMatrix, PerClassScores) {
  ConfusionMatrix m(2);
  for (int i = 0; i < 8; ++i) m.add(1, 1);  // tp
  for (int i = 0; i < 2; ++i) m.add(1, 0);  // fn
  for (int i = 0; i < 4; ++i) m.add(0, 1);  // fp
  for (int i = 0; i < 6; ++i) m.add(0, 0);  // tn
  EXPECT_DOUBLE_EQ(m.recall(1), 0.8);
  EXPECT_DOUBLE_EQ(m.precision(1), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(m.recall(0), 0.6);
}

TEST(ConfusionMatrix, RejectsBadIndicesAndSizes) {
  ConfusionMatrix m(2);
  EXPECT_THROW(m.add(2, 0), std::invalid_argument);
  EXPECT_THROW(m.add(0, -1), std::invalid_argument);
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
  ConfusionMatrix other(3);
  EXPECT_THROW(m.merge(other), std::invalid_argument);
}

TEST(ConfusionMatrix, MergeAddsCellwise) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(0, 0);
  b.add(1, 0);
  a.merge(b);
  EXPECT_EQ(a.count(0, 0), 2u);
  EXPECT_EQ(a.count(1, 0), 1u);
}

TEST(ConfusionMatrix, CollapseMulticlassToBinary) {
  // 3 positive classes (1..3), class 0 negative — the ALM comparison path.
  ConfusionMatrix m(4);
  m.add(1, 1);  // tp (exact)
  m.add(1, 2);  // tp under collapse: wrong subclass but still "pulsar"
  m.add(2, 0);  // fn
  m.add(0, 3);  // fp
  m.add(0, 0);  // tn
  const BinaryScores s = m.collapse_nonzero_positive();
  EXPECT_EQ(s.tp, 2u);
  EXPECT_EQ(s.fn, 1u);
  EXPECT_EQ(s.fp, 1u);
  EXPECT_EQ(s.tn, 1u);
  EXPECT_DOUBLE_EQ(s.recall(), 2.0 / 3.0);
}

TEST(ConfusionMatrix, CollapseWithExplicitMask) {
  ConfusionMatrix m(3);
  m.add(2, 1);
  std::vector<bool> positive{false, false, true};
  const BinaryScores s = m.collapse(positive);
  EXPECT_EQ(s.fn, 1u);  // actual positive predicted negative
  EXPECT_THROW(m.collapse({true}), std::invalid_argument);
}

TEST(ConfusionMatrix, ToStringShowsClassNames) {
  ConfusionMatrix m(2);
  m.add(0, 1);
  const auto text = m.to_string({"NonPulsar", "Pulsar"});
  EXPECT_NE(text.find("NonPulsar"), std::string::npos);
  EXPECT_NE(text.find("Pulsar"), std::string::npos);
}

}  // namespace
}  // namespace ml
}  // namespace drapid
