#include "clustering/dbscan.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

namespace drapid {

namespace {

/// Point view of one SPE in clustering space.
struct Point {
  double time = 0.0;
  double trial = 0.0;  // DM position in trial-index units
  std::size_t event_index = 0;
};

/// Neighbour finder over points sorted by time: binary-search the time
/// window, then filter on the elliptical neighbourhood.
class NeighbourIndex {
 public:
  NeighbourIndex(std::vector<Point> points, const DbscanParams& params)
      : points_(std::move(points)), params_(params) {
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) { return a.time < b.time; });
  }

  const std::vector<Point>& points() const { return points_; }

  /// Indices (into points()) within the ε-neighbourhood of points()[i],
  /// including i itself.
  void neighbours_of(std::size_t i, std::vector<std::size_t>& out) const {
    out.clear();
    const Point& p = points_[i];
    const double t_lo = p.time - params_.eps_time_s;
    const double t_hi = p.time + params_.eps_time_s;
    auto lo = std::lower_bound(
        points_.begin(), points_.end(), t_lo,
        [](const Point& a, double t) { return a.time < t; });
    for (auto it = lo; it != points_.end() && it->time <= t_hi; ++it) {
      const double dt = (it->time - p.time) / params_.eps_time_s;
      const double dd = (it->trial - p.trial) / params_.eps_dm_trials;
      if (dt * dt + dd * dd <= 1.0) {
        out.push_back(static_cast<std::size_t>(it - points_.begin()));
      }
    }
  }

 private:
  std::vector<Point> points_;
  const DbscanParams& params_;
};

struct Fragment {
  std::vector<std::size_t> event_indices;
  double trial_min = 0.0, trial_max = 0.0;
  double time_centroid = 0.0;
};

/// Union-find for the fragment merge pass.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ClusteringResult dbscan_cluster(const ObservationData& obs, const DmGrid& grid,
                                const DbscanParams& params) {
  ClusteringResult result;
  result.labels.assign(obs.events.size(), -1);
  if (obs.events.empty()) return result;

  std::vector<Point> points;
  points.reserve(obs.events.size());
  for (std::size_t i = 0; i < obs.events.size(); ++i) {
    points.push_back(Point{obs.events[i].time_s,
                           static_cast<double>(grid.index_of(obs.events[i].dm)),
                           i});
  }
  NeighbourIndex index(std::move(points), params);
  const auto& pts = index.points();

  // Standard DBSCAN: -2 = unvisited, -1 = noise, >=0 = cluster id.
  std::vector<int> label(pts.size(), -2);
  std::vector<std::size_t> neighbours, expansion;
  int next_cluster = 0;
  std::vector<Fragment> fragments;

  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (label[i] != -2) continue;
    index.neighbours_of(i, neighbours);
    if (neighbours.size() < params.min_pts) {
      label[i] = -1;
      continue;
    }
    const int cid = next_cluster++;
    label[i] = cid;
    std::deque<std::size_t> queue(neighbours.begin(), neighbours.end());
    Fragment frag;
    frag.event_indices.push_back(pts[i].event_index);
    double time_sum = pts[i].time;
    frag.trial_min = frag.trial_max = pts[i].trial;
    while (!queue.empty()) {
      const std::size_t j = queue.front();
      queue.pop_front();
      if (label[j] == -1) label[j] = cid;  // border point adopted
      if (label[j] != -2) continue;
      label[j] = cid;
      frag.event_indices.push_back(pts[j].event_index);
      time_sum += pts[j].time;
      frag.trial_min = std::min(frag.trial_min, pts[j].trial);
      frag.trial_max = std::max(frag.trial_max, pts[j].trial);
      index.neighbours_of(j, expansion);
      if (expansion.size() >= params.min_pts) {
        queue.insert(queue.end(), expansion.begin(), expansion.end());
      }
    }
    frag.time_centroid =
        time_sum / static_cast<double>(frag.event_indices.size());
    fragments.push_back(std::move(frag));
  }

  // Merge pass: rejoin fragments split by processing artifacts — close in
  // time, with only a small gap along the DM grid.
  DisjointSets sets(fragments.size());
  if (params.merge_fragments) {
    for (std::size_t a = 0; a < fragments.size(); ++a) {
      for (std::size_t b = a + 1; b < fragments.size(); ++b) {
        const Fragment& fa = fragments[a];
        const Fragment& fb = fragments[b];
        if (std::abs(fa.time_centroid - fb.time_centroid) >
            params.merge_time_gap_s) {
          continue;
        }
        const double gap = std::max(fa.trial_min, fb.trial_min) -
                           std::min(fa.trial_max, fb.trial_max);
        if (gap <= params.merge_dm_gap_trials) sets.unite(a, b);
      }
    }
  }

  // Emit merged clusters with dense ids, in order of first appearance.
  std::vector<int> root_to_cluster(fragments.size(), -1);
  for (std::size_t f = 0; f < fragments.size(); ++f) {
    const std::size_t root = sets.find(f);
    if (root_to_cluster[root] == -1) {
      root_to_cluster[root] = static_cast<int>(result.clusters.size());
      result.clusters.push_back(SpeCluster{root_to_cluster[root], {}});
    }
    auto& members =
        result.clusters[static_cast<std::size_t>(root_to_cluster[root])]
            .members;
    members.insert(members.end(), fragments[f].event_indices.begin(),
                   fragments[f].event_indices.end());
  }
  for (auto& cluster : result.clusters) {
    std::sort(cluster.members.begin(), cluster.members.end());
    for (std::size_t e : cluster.members) result.labels[e] = cluster.id;
  }
  return result;
}

std::vector<ClusterRecord> make_cluster_records(
    const ObservationData& obs, const ClusteringResult& result) {
  std::vector<ClusterRecord> records;
  records.reserve(result.clusters.size());
  for (const auto& cluster : result.clusters) {
    ClusterRecord rec;
    rec.obs = obs.id;
    rec.cluster_id = cluster.id;
    rec.num_spes = static_cast<std::uint32_t>(cluster.members.size());
    bool first = true;
    for (std::size_t e : cluster.members) {
      const auto& spe = obs.events[e];
      if (first) {
        rec.dm_min = rec.dm_max = spe.dm;
        rec.time_min = rec.time_max = spe.time_s;
        rec.snr_max = spe.snr;
        first = false;
      } else {
        rec.dm_min = std::min(rec.dm_min, spe.dm);
        rec.dm_max = std::max(rec.dm_max, spe.dm);
        rec.time_min = std::min(rec.time_min, spe.time_s);
        rec.time_max = std::max(rec.time_max, spe.time_s);
        rec.snr_max = std::max(rec.snr_max, spe.snr);
      }
    }
    records.push_back(rec);
  }
  // ClusterRank: 1 = brightest by SNR max (Table 1).
  std::vector<std::size_t> order(records.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return records[a].snr_max > records[b].snr_max;
  });
  for (std::size_t r = 0; r < order.size(); ++r) {
    records[order[r]].rank = static_cast<int>(r + 1);
  }
  return records;
}

std::vector<SinglePulseEvent> cluster_events(const ObservationData& obs,
                                             const SpeCluster& cluster) {
  std::vector<SinglePulseEvent> events;
  events.reserve(cluster.members.size());
  for (std::size_t e : cluster.members) events.push_back(obs.events[e]);
  std::sort(events.begin(), events.end(),
            [](const SinglePulseEvent& a, const SinglePulseEvent& b) {
              if (a.dm != b.dm) return a.dm < b.dm;
              return a.time_s < b.time_s;
            });
  return events;
}

}  // namespace drapid
