#include "spe/spe_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace drapid {
namespace {

ObservationId obs(const std::string& dataset, int beam) {
  ObservationId id;
  id.dataset = dataset;
  id.mjd = 56000.5;
  id.ra_deg = 180.0;
  id.dec_deg = -30.25;
  id.beam = beam;
  return id;
}

std::vector<SinglePulseEvent> sample_events() {
  return {{12.5, 6.1, 100.001, 12345, 2},
          {12.6, 7.3, 100.002, 12346, 4},
          {13.0, 5.2, 200.5, 98765, 1}};
}

TEST(SinglepulseFormat, RoundTripsThroughStream) {
  std::stringstream io;
  write_singlepulse(io, sample_events());
  const auto back = read_singlepulse(io);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_NEAR(back[0].dm, 12.5, 1e-9);
  EXPECT_NEAR(back[1].snr, 7.3, 1e-9);
  EXPECT_EQ(back[2].sample, 98765);
  EXPECT_EQ(back[1].downfact, 4);
}

TEST(SinglepulseFormat, HeaderIsCommented) {
  std::stringstream io;
  write_singlepulse(io, {});
  EXPECT_EQ(io.str()[0], '#');
  io.seekg(0);
  EXPECT_TRUE(read_singlepulse(io).empty());
}

TEST(SinglepulseFormat, MalformedRowThrows) {
  std::istringstream in("1.0 2.0 three 4 5\n");
  EXPECT_THROW(read_singlepulse(in), std::runtime_error);
}

TEST(DataFile, RowRoundTrip) {
  const ObservationId id = obs("PALFA", 2);
  const SinglePulseEvent e{42.75, 9.5, 1234.56789, 777, 8};
  ObservationId id2;
  SinglePulseEvent e2;
  parse_data_row(format_data_row(id, e), id2, e2);
  EXPECT_EQ(id2, id);
  EXPECT_NEAR(e2.dm, e.dm, 1e-6);
  EXPECT_NEAR(e2.snr, e.snr, 1e-6);
  EXPECT_NEAR(e2.time_s, e.time_s, 1e-6);
  EXPECT_EQ(e2.sample, e.sample);
  EXPECT_EQ(e2.downfact, e.downfact);
}

TEST(DataFile, WrongColumnCountThrows) {
  ObservationId id;
  SinglePulseEvent e;
  EXPECT_THROW(parse_data_row({"a", "b"}, id, e), std::runtime_error);
}

TEST(DataFile, GroupsRowsBackIntoObservations) {
  std::vector<ObservationData> original;
  original.push_back({obs("PALFA", 0), sample_events()});
  original.push_back({obs("PALFA", 1), {sample_events()[0]}});
  std::stringstream io;
  write_data_file(io, original);
  const auto back = read_data_file(io);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, original[0].id);
  EXPECT_EQ(back[0].events.size(), 3u);
  EXPECT_EQ(back[1].id, original[1].id);
  EXPECT_EQ(back[1].events.size(), 1u);
}

TEST(DataFile, InterleavedRowsStillGroup) {
  // Rows from two observations interleaved, as after a distributed write.
  std::stringstream io;
  io << kDataFileHeader << '\n';
  const auto a = obs("GBT350Drift", 0);
  const auto b = obs("GBT350Drift", 1);
  const auto events = sample_events();
  io << format_csv_row(format_data_row(a, events[0])) << '\n';
  io << format_csv_row(format_data_row(b, events[1])) << '\n';
  io << format_csv_row(format_data_row(a, events[2])) << '\n';
  const auto back = read_data_file(io);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].events.size(), 2u);
  EXPECT_EQ(back[1].events.size(), 1u);
}

TEST(ClusterFile, RowRoundTrip) {
  ClusterRecord rec;
  rec.obs = obs("PALFA", 5);
  rec.cluster_id = 17;
  rec.num_spes = 230;
  rec.dm_min = 10.0;
  rec.dm_max = 15.5;
  rec.time_min = 99.5;
  rec.time_max = 100.5;
  rec.snr_max = 14.7;
  rec.rank = 3;
  const ClusterRecord back = parse_cluster_row(format_cluster_row(rec));
  EXPECT_EQ(back.obs, rec.obs);
  EXPECT_EQ(back.cluster_id, rec.cluster_id);
  EXPECT_EQ(back.num_spes, rec.num_spes);
  EXPECT_NEAR(back.dm_max, rec.dm_max, 1e-6);
  EXPECT_NEAR(back.snr_max, rec.snr_max, 1e-6);
  EXPECT_EQ(back.rank, rec.rank);
}

TEST(ClusterFile, FileRoundTrip) {
  std::vector<ClusterRecord> clusters(3);
  for (int i = 0; i < 3; ++i) {
    clusters[static_cast<std::size_t>(i)].obs = obs("PALFA", i);
    clusters[static_cast<std::size_t>(i)].cluster_id = i;
    clusters[static_cast<std::size_t>(i)].num_spes =
        static_cast<std::uint32_t>(10 * (i + 1));
  }
  std::stringstream io;
  write_cluster_file(io, clusters);
  const auto back = read_cluster_file(io);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[2].num_spes, 30u);
  EXPECT_EQ(back[1].obs.beam, 1);
}

TEST(ClusterFile, WrongColumnCountThrows) {
  EXPECT_THROW(parse_cluster_row({"x"}), std::runtime_error);
}

}  // namespace
}  // namespace drapid
