// Tabular dataset model for the machine-learning substrate (the Weka
// stand-in): numeric feature matrix plus a nominal class column.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace drapid {
namespace ml {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> feature_names,
          std::vector<std::string> class_names);

  std::size_t num_instances() const { return labels_.size(); }
  std::size_t num_features() const { return feature_names_.size(); }
  std::size_t num_classes() const { return class_names_.size(); }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::string>& class_names() const { return class_names_; }

  /// Appends one instance; `x` must have num_features() values and `y` must
  /// be a valid class index (throws std::invalid_argument otherwise).
  void add(std::span<const double> x, int y);

  std::span<const double> instance(std::size_t i) const;
  int label(std::size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }

  /// All values of feature `f` in instance order.
  std::vector<double> feature_column(std::size_t f) const;

  /// Instances per class.
  std::vector<std::size_t> class_counts() const;

  /// New dataset with only the given feature columns (order preserved as
  /// given); class column unchanged.
  Dataset select_features(const std::vector<std::size_t>& features) const;

  /// New dataset with only the given rows.
  Dataset subset(const std::vector<std::size_t>& rows) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
  std::vector<double> values_;  // row-major, num_instances × num_features
  std::vector<int> labels_;
};

}  // namespace ml
}  // namespace drapid
