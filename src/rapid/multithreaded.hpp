// Multithreaded RAPID — the paper's baseline implementation (§6.1, RQ2).
//
// The same Algorithm 1 search as D-RAPID, parallelized with a fixed worker
// pool on one machine: the work queue holds (cluster record, cluster SPEs)
// items, each worker repeatedly takes an item and searches it. The paper's
// Figure 4 compares this (1–20 threads on an i7 workstation) against
// D-RAPID (1–20 executors on the Spark/YARN cluster).
#pragma once

#include <cstddef>
#include <vector>

#include "clustering/dbscan.hpp"
#include "rapid/features.hpp"
#include "rapid/search.hpp"

namespace drapid {

/// One unit of search work: a cluster and its SPEs (DM-sorted).
struct RapidWorkItem {
  ClusterRecord record;
  std::vector<SinglePulseEvent> events;
};

/// One identified pulse with its provenance and features.
struct IdentifiedPulse {
  ClusterRecord cluster;
  SinglePulse pulse;
  int pulse_rank = 0;  ///< 1 = brightest peak in its cluster
  PulseFeatures features;
};

/// Aggregate work/result statistics for a run (feeds the cluster cost model
/// and the Figure 4 harness).
struct RapidRunStats {
  std::size_t clusters_processed = 0;
  std::size_t spes_scanned = 0;
  std::size_t pulses_found = 0;
  double wall_seconds = 0.0;
};

/// Builds work items for one observation from its clustering result.
std::vector<RapidWorkItem> make_work_items(const ObservationData& obs,
                                           const ClusteringResult& clusters);

/// Searches one work item: runs Algorithm 1, ranks the pulses by SNRMax,
/// extracts features.
std::vector<IdentifiedPulse> search_work_item(const RapidWorkItem& item,
                                              const RapidParams& params,
                                              const DmGrid& grid);

/// Runs the multithreaded baseline over `items` with `threads` workers.
/// Results are returned in item order (deterministic regardless of thread
/// count). `stats`, if non-null, receives the work metrics.
std::vector<IdentifiedPulse> run_rapid_multithreaded(
    const std::vector<RapidWorkItem>& items, const RapidParams& params,
    const DmGrid& grid, std::size_t threads, RapidRunStats* stats = nullptr);

}  // namespace drapid
