#include "ml/tree.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace drapid {
namespace ml {

namespace {

double entropy(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

int majority(const std::vector<std::size_t>& counts) {
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double score = 0.0;
};

}  // namespace

namespace {

/// Argsort of `vals` into `ord`: LSD radix over the monotone bit pattern of
/// each double (sign-flipped IEEE-754 orders like the value). Radix passes
/// are stable and rows start in ascending order, so ties end up broken by
/// row index — and byte passes shared by every key (high exponent bytes of
/// same-magnitude data) are skipped outright. ~3× a comparison sort here.
/// The only ordering difference from operator<: -0.0 sorts strictly before
/// +0.0 instead of tying — irrelevant to the grown tree, which only looks
/// at value (in)equality between neighbours, where -0.0 == +0.0 still.
void radix_argsort(const double* vals, std::size_t n, std::uint32_t* ord,
                   std::uint64_t* k, std::uint64_t* k2, std::uint32_t* a,
                   std::uint32_t* b) {
  std::uint32_t hist[8][256];
  std::memset(hist, 0, sizeof hist);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t u = std::bit_cast<std::uint64_t>(vals[i]);
    u = (u >> 63) ? ~u : (u | 0x8000000000000000ull);
    k[i] = u;
    a[i] = static_cast<std::uint32_t>(i);
    for (int p = 0; p < 8; ++p) ++hist[p][(u >> (8 * p)) & 0xFF];
  }
  for (int p = 0; p < 8; ++p) {
    const std::uint32_t* h = hist[p];
    // One bucket holding everything means every key shares this byte.
    if (h[(k[0] >> (8 * p)) & 0xFF] == n) continue;
    std::uint32_t ofs[256];
    std::uint32_t sum = 0;
    for (int v = 0; v < 256; ++v) {
      ofs[v] = sum;
      sum += h[v];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t u = k[i];
      const std::uint32_t pos = ofs[(u >> (8 * p)) & 0xFF]++;
      k2[pos] = u;
      b[pos] = a[i];
    }
    std::swap(k, k2);
    std::swap(a, b);
  }
  std::copy(a, a + n, ord);
}

/// Fills `values` column-major (d × rows) and, per feature, `order` with the
/// rows argsorted ascending by value (ties by row index: a deterministic
/// total order). Which of two equal values comes first never affects the
/// grown tree — every split candidate sits on a value boundary, so the
/// prefix counts at candidate positions are tie-order independent.
void argsort_columns(const Dataset& data, std::vector<double>& values,
                     std::vector<std::uint32_t>& order) {
  const std::size_t rows = data.num_instances();
  const std::size_t d = data.num_features();
  values.resize(d * rows);
  order.resize(d * rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto x = data.instance(i);
    for (std::size_t f = 0; f < d; ++f) values[f * rows + i] = x[f];
  }
  std::vector<std::uint64_t> keys(2 * rows);
  std::vector<std::uint32_t> idx(2 * rows);
  for (std::size_t f = 0; f < d; ++f) {
    radix_argsort(values.data() + f * rows, rows, order.data() + f * rows,
                  keys.data(), keys.data() + rows, idx.data(),
                  idx.data() + rows);
  }
}

}  // namespace

PresortedColumns::PresortedColumns(const Dataset& data)
    : rows_(data.num_instances()) {
  argsort_columns(data, values_, order_);
}

/// Per-train scratch: column-major values and mutable per-feature orderings
/// over the tree's own row set ("slots"), plus reusable partition buffers.
/// A node owns the slice [lo, hi) of every feature's order array; splitting
/// stably partitions each slice in place around the chosen threshold.
struct DecisionTree::TrainContext {
  std::size_t n = 0;                  // slots (distinct training rows)
  std::size_t d = 0;                  // features
  std::vector<int> labels;            // per slot
  std::vector<double> values;         // d × n, column-major by slot
  std::vector<std::uint32_t> order;   // d × n, sorted slots per feature
  /// Instance multiplicity per slot; empty = every slot counts once. The
  /// bootstrap path compresses its sample to distinct rows with weights.
  std::vector<std::uint32_t> weights;
  std::size_t num_classes = 0;
  // Scratch reused across nodes (a node finishes with all of these before
  // recursing, so children may clobber them freely).
  std::vector<char> goes_left;        // per slot
  std::vector<std::uint32_t> part;    // right-side partition buffer
  std::vector<std::size_t> features;  // candidate features per node
  std::vector<std::size_t> counts;
  std::vector<std::size_t> left_counts;
  // Per-node split-info memo, keyed by left size nl (the node size is fixed
  // while a node scans, so nl determines split info). Stamps make the reset
  // per node O(1); values are computed with the exact arithmetic of the
  // unmemoized form, so memoization cannot move a single bit.
  std::vector<double> split_info;
  std::vector<std::uint32_t> split_info_stamp;
  std::uint32_t node_stamp = 0;
  // Entropy-term memo for this train; see term_memo_for(). Never resized
  // while a build is running, so the raw pointer stays valid.
  double* term = nullptr;
  std::size_t term_memo_side = 0;
};

namespace {

constexpr std::size_t kTermMemoMaxSide = 512;

/// Process-lifetime memo of the entropy term p·log2(p) for p = cnt/side,
/// triangular-indexed by its two integer inputs for sides up to
/// kTermMemoMaxSide (larger sides — only the shallowest levels of large
/// trees — compute directly). The term is a pure function of two integers,
/// so entries stay valid forever: across nodes, trees, and trains. Unset
/// entries hold NaN (the term itself is always finite); no generation
/// counters, no per-train clearing. Thread-local so forest worker threads
/// each warm their own copy without sharing.
double* term_memo_for(std::size_t side) {
  thread_local std::vector<double> memo;
  const std::size_t need = (side + 1) * (side + 2) / 2;
  if (memo.size() < need) {
    memo.resize(need, std::numeric_limits<double>::quiet_NaN());
  }
  return memo.data();
}

}  // namespace

DecisionTree::DecisionTree(TreeParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void DecisionTree::train(const Dataset& data) {
  if (data.num_instances() == 0) {
    throw std::invalid_argument("cannot train a tree on an empty dataset");
  }
  TrainContext ctx;
  ctx.n = data.num_instances();
  ctx.d = data.num_features();
  ctx.num_classes = data.num_classes();
  ctx.labels.resize(ctx.n);
  for (std::size_t i = 0; i < ctx.n; ++i) ctx.labels[i] = data.label(i);
  argsort_columns(data, ctx.values, ctx.order);
  train_context(ctx);
}

void DecisionTree::train_bootstrap(const Dataset& data,
                                   const PresortedColumns& presorted,
                                   std::span<const std::size_t> sample) {
  if (sample.empty()) {
    throw std::invalid_argument("cannot train a tree on an empty sample");
  }
  const std::size_t rows = data.num_instances();
  // Compress the sample to its distinct rows with multiplicities: a
  // bootstrap of n draws holds only ~63% distinct rows, so every per-node
  // scan and partition shrinks accordingly. The grown tree is bit-identical
  // to training on the materialized sample — split candidates sit on value
  // boundaries, where the weighted prefix counts equal the uncompressed
  // ones, so every gain is computed from the same integers.
  std::vector<std::uint32_t> multiplicity(rows, 0);
  for (const std::size_t r : sample) ++multiplicity[r];
  std::vector<std::uint32_t> slot_of(rows, 0);
  std::size_t m = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (multiplicity[r]) slot_of[r] = static_cast<std::uint32_t>(m++);
  }
  TrainContext ctx;
  ctx.n = m;
  ctx.d = data.num_features();
  ctx.num_classes = data.num_classes();
  ctx.labels.resize(m);
  ctx.weights.resize(m);
  for (std::size_t r = 0; r < rows; ++r) {
    if (multiplicity[r]) {
      ctx.labels[slot_of[r]] = data.label(r);
      ctx.weights[slot_of[r]] = multiplicity[r];
    }
  }
  // Each feature's slot ordering falls out of one filtering pass over the
  // parent's presorted order (slot ids ascend with row ids, so parent ties
  // by row stay ties by slot).
  ctx.values.resize(ctx.d * m);
  ctx.order.resize(ctx.d * m);
  for (std::size_t f = 0; f < ctx.d; ++f) {
    const double* parent_vals = presorted.values(f);
    const std::uint32_t* parent_ord = presorted.order(f);
    double* vals = ctx.values.data() + f * m;
    std::uint32_t* ord = ctx.order.data() + f * m;
    std::size_t out = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      const std::uint32_t r = parent_ord[i];
      if (multiplicity[r]) {
        const std::uint32_t s = slot_of[r];
        ord[out++] = s;
        vals[s] = parent_vals[r];
      }
    }
  }
  train_context(ctx);
}

void DecisionTree::train_context(TrainContext& ctx) {
  nodes_.clear();
  depth_ = 0;
  split_evaluations_ = 0;
  ctx.goes_left.resize(ctx.n);
  ctx.part.resize(ctx.n);
  ctx.counts.resize(ctx.num_classes);
  ctx.left_counts.resize(ctx.num_classes);
  std::size_t total = ctx.n;  // instance total (weighted size)
  if (!ctx.weights.empty()) {
    total = 0;
    for (const std::uint32_t w : ctx.weights) total += w;
  }
  if (params_.use_gain_ratio) {
    // Keyed by weighted left size, which ranges up to the instance total.
    ctx.split_info.resize(total + 1);
    ctx.split_info_stamp.assign(total + 1, 0);
  }
  ctx.term_memo_side = std::min(total, kTermMemoMaxSide);
  ctx.term = term_memo_for(ctx.term_memo_side);
  Rng rng(seed_);
  root_ = ctx.weights.empty() ? build<false>(ctx, 0, ctx.n, 0, rng)
                              : build<true>(ctx, 0, ctx.n, 0, rng);
}

template <bool Weighted>
int DecisionTree::build(TrainContext& ctx, std::size_t lo, std::size_t hi,
                        int depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t m = hi - lo;  // slots in this node
  // Any feature's slice holds the node's slot set; feature 0 stands in
  // (identity when the dataset has no features at all — then the root is
  // the only node and covers every slot).
  const std::uint32_t* node_slots = ctx.d > 0 ? ctx.order.data() + lo : nullptr;
  const std::uint32_t* weights = Weighted ? ctx.weights.data() : nullptr;
  std::vector<std::size_t>& counts = ctx.counts;
  std::fill(counts.begin(), counts.end(), 0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t slot = node_slots ? node_slots[i] : lo + i;
    counts[static_cast<std::size_t>(ctx.labels[slot])] +=
        Weighted ? weights[slot] : 1;
  }
  // Node size in training instances (= slots unless weighted).
  std::size_t n = m;
  if constexpr (Weighted) {
    n = 0;
    for (const std::size_t c : counts) n += c;
  }
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_.back().label = majority(counts);

  const bool pure =
      *std::max_element(counts.begin(), counts.end()) == n;
  if (pure || depth >= params_.max_depth || n < 2 * params_.min_leaf) {
    return node_index;  // leaf
  }

  // Candidate features: all, or a random subset (RandomTree behaviour).
  // Same shuffle, in the same node order, as the seed implementation —
  // the rng stream (and with it the equal-gain tie-break over candidate
  // order) is part of the tree's byte-identity contract.
  std::vector<std::size_t>& features = ctx.features;
  features.resize(ctx.d);
  std::iota(features.begin(), features.end(), std::size_t{0});
  if (params_.features_per_split > 0 &&
      params_.features_per_split < features.size()) {
    rng.shuffle(features);
    features.resize(params_.features_per_split);
  }

  const double parent_entropy = entropy(counts, n);
  BestSplit best;
  const int* labels = ctx.labels.data();
  const std::size_t* total_counts = counts.data();
  std::size_t* left_counts = ctx.left_counts.data();
  const std::size_t num_classes = ctx.num_classes;
  const double dn = static_cast<double>(n);
  double* term_memo = ctx.term;
  const std::size_t memo_side = ctx.term_memo_side;
  // The p·log2(p) entropy term for p = cnt/side with cnt in (0, side).
  // Memoized values use the exact unmemoized expression, so reuse cannot
  // move a bit.
  const auto entropy_term = [&](std::size_t cnt, std::size_t side) {
    if (side <= memo_side) {
      double& t = term_memo[side * (side + 1) / 2 + cnt];
      if (t != t) {  // NaN sentinel: not yet computed
        const double p =
            static_cast<double>(cnt) / static_cast<double>(side);
        t = p * std::log2(p);
      }
      return t;
    }
    const double p = static_cast<double>(cnt) / static_cast<double>(side);
    return p * std::log2(p);
  };
  ++ctx.node_stamp;
  for (std::size_t f : features) {
    const double* vals = ctx.values.data() + f * ctx.n;
    const std::uint32_t* ord = ctx.order.data() + f * ctx.n;
    std::fill_n(left_counts, num_classes, std::size_t{0});
    std::size_t wl = 0;  // weighted left size
    for (std::size_t i = lo; i + 1 < hi; ++i) {
      const std::uint32_t slot = ord[i];
      if constexpr (Weighted) {
        const std::size_t w = weights[slot];
        left_counts[static_cast<std::size_t>(labels[slot])] += w;
        wl += w;
      } else {
        ++left_counts[static_cast<std::size_t>(labels[slot])];
      }
      if (vals[slot] == vals[ord[i + 1]]) continue;  // same value
      const std::size_t nl = Weighted ? wl : i + 1 - lo;
      const std::size_t nr = n - nl;
      if (nl < params_.min_leaf || nr < params_.min_leaf) continue;
      ++split_evaluations_;
      // Right counts = total - left. A count equal to its side's size means
      // p == 1.0 exactly, whose p·log2(p) term is exactly 0.0 — skipping it
      // leaves the sum bit-identical.
      double hl = 0.0, hr = 0.0;
      {
        double h = 0.0;
        for (std::size_t c = 0; c < num_classes; ++c) {
          const std::size_t lc = left_counts[c];
          if (lc && lc != nl) h -= entropy_term(lc, nl);
        }
        hl = h;
        h = 0.0;
        for (std::size_t c = 0; c < num_classes; ++c) {
          const std::size_t rc = total_counts[c] - left_counts[c];
          if (rc && rc != nr) h -= entropy_term(rc, nr);
        }
        hr = h;
      }
      double gain = parent_entropy -
                    (static_cast<double>(nl) / dn) * hl -
                    (static_cast<double>(nr) / dn) * hr;
      if (params_.use_gain_ratio) {
        if (ctx.split_info_stamp[nl] != ctx.node_stamp) {
          const double pl = static_cast<double>(nl) / dn;
          ctx.split_info[nl] = -pl * std::log2(pl) -
                               (1.0 - pl) * std::log2(1.0 - pl);
          ctx.split_info_stamp[nl] = ctx.node_stamp;
        }
        const double split_info = ctx.split_info[nl];
        gain = split_info > 1e-12 ? gain / split_info : 0.0;
      }
      if (gain > best.score) {
        best.score = gain;
        best.feature = static_cast<int>(f);
        best.threshold = 0.5 * (vals[slot] + vals[ord[i + 1]]);
      }
    }
  }

  if (best.feature < 0 || best.score < params_.min_gain) {
    return node_index;  // no useful split: stay a leaf
  }

  // Route by value comparison, exactly as the seed partitioned rows: the
  // midpoint can round onto the right-hand value, so the actual left count
  // may differ from the scan position that proposed the split.
  const double* best_vals =
      ctx.values.data() + static_cast<std::size_t>(best.feature) * ctx.n;
  std::size_t slots_left = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const std::uint32_t slot = node_slots[i - lo];
    const bool left = best_vals[slot] <= best.threshold;
    ctx.goes_left[slot] = left;
    slots_left += left;
  }
  // An empty side in slots is empty in instances too (weights are >= 1).
  if (slots_left == 0 || slots_left == m) {
    return node_index;  // numeric ties can defeat the midpoint; stay a leaf
  }

  // Stable partition of every feature's slice keeps each side sorted. Both
  // sides are written unconditionally and the write pointers advance by the
  // predicate: the ~50/50 routing never takes a data-dependent branch, and
  // ord[write] with write <= i can only clobber an already-consumed slot.
  for (std::size_t f = 0; f < ctx.d; ++f) {
    std::uint32_t* ord = ctx.order.data() + f * ctx.n;
    std::uint32_t* part = ctx.part.data();
    std::size_t write = lo;
    std::size_t spill = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t slot = ord[i];
      const bool left = static_cast<bool>(ctx.goes_left[slot]);
      ord[write] = slot;
      part[spill] = slot;
      write += left;
      spill += !left;
    }
    std::copy(part, part + spill, ord + write);
  }

  nodes_[static_cast<std::size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_index)].threshold = best.threshold;
  const std::size_t mid = lo + slots_left;
  const int left = build<Weighted>(ctx, lo, mid, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  const int right = build<Weighted>(ctx, mid, hi, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

int DecisionTree::predict(std::span<const double> x) const {
  return leaf_label(leaf_index(x));
}

std::vector<int> DecisionTree::predict_batch(const Dataset& data) const {
  if (root_ < 0) throw std::logic_error("tree not trained");
  std::vector<int> out(data.num_instances());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = leaf_label(leaf_index(data.instance(i)));
  }
  return out;
}

int DecisionTree::leaf_index(std::span<const double> x) const {
  if (root_ < 0) throw std::logic_error("tree not trained");
  int node = root_;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) return node;
    node = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                 : n.right;
  }
}

int DecisionTree::leaf_label(int leaf) const {
  return nodes_[static_cast<std::size_t>(leaf)].label;
}

std::vector<DecisionTree::PathCondition> DecisionTree::path_to_leaf(
    int leaf) const {
  std::vector<PathCondition> path;
  // Recursive DFS: the condition on the edge into the left child is
  // (feature <= threshold); into the right child, its negation.
  const auto search = [&](const auto& self, int node) -> bool {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (node == leaf) return n.feature < 0;
    if (n.feature < 0) return false;
    path.push_back(PathCondition{n.feature, n.threshold, true});
    if (self(self, n.left)) return true;
    path.back().less_equal = false;
    if (self(self, n.right)) return true;
    path.pop_back();
    return false;
  };
  if (root_ < 0 || !search(search, root_)) {
    throw std::invalid_argument("not a leaf of this tree");
  }
  return path;
}

}  // namespace ml
}  // namespace drapid
