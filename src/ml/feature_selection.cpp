#include "ml/feature_selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/discretize.hpp"
#include "util/stats.hpp"

namespace drapid {
namespace ml {

namespace {

double entropy_bits(std::span<const std::size_t> counts) {
  return entropy_from_counts(counts);
}

/// H(Y), H(X), H(Y|X) and IG from a (bin × class) contingency table.
struct EntropyTerms {
  double h_class = 0.0;
  double h_feature = 0.0;
  double info_gain = 0.0;
};

EntropyTerms entropy_terms(const std::vector<std::vector<std::size_t>>& table,
                           std::size_t num_classes) {
  EntropyTerms terms;
  std::vector<std::size_t> class_totals(num_classes, 0);
  std::vector<std::size_t> bin_totals(table.size(), 0);
  std::size_t total = 0;
  for (std::size_t b = 0; b < table.size(); ++b) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      class_totals[c] += table[b][c];
      bin_totals[b] += table[b][c];
      total += table[b][c];
    }
  }
  if (total == 0) return terms;
  terms.h_class = entropy_bits(class_totals);
  terms.h_feature = entropy_bits(bin_totals);
  double conditional = 0.0;
  for (std::size_t b = 0; b < table.size(); ++b) {
    if (bin_totals[b] == 0) continue;
    conditional += static_cast<double>(bin_totals[b]) /
                   static_cast<double>(total) * entropy_bits(table[b]);
  }
  terms.info_gain = terms.h_class - conditional;
  return terms;
}

double correlation_score(const Dataset& data, std::size_t feature) {
  // Weka's CorrelationAttributeEval for a nominal class: Pearson correlation
  // between the attribute and each class indicator, averaged with class-
  // frequency weights.
  const auto column = data.feature_column(feature);
  const auto counts = data.class_counts();
  const double n = static_cast<double>(data.num_instances());
  if (n == 0) return 0.0;
  double score = 0.0;
  std::vector<double> indicator(data.num_instances());
  for (std::size_t c = 0; c < data.num_classes(); ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t i = 0; i < data.num_instances(); ++i) {
      indicator[i] = data.label(i) == static_cast<int>(c) ? 1.0 : 0.0;
    }
    score += static_cast<double>(counts[c]) / n *
             std::abs(pearson(column, indicator));
  }
  return score;
}

double one_r_score(const Dataset& data, std::size_t feature,
                   std::size_t bins) {
  // Accuracy of the one-feature rule: bin the feature, predict each bin's
  // majority class.
  const auto column = data.feature_column(feature);
  const auto cuts = equal_frequency_cuts(column, bins);
  const auto binned = apply_cuts(column, cuts);
  const auto table = contingency_table(binned, data.labels(), cuts.size() + 1,
                                       data.num_classes());
  std::size_t correct = 0;
  for (const auto& row : table) {
    correct += *std::max_element(row.begin(), row.end());
  }
  return data.num_instances() == 0
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(data.num_instances());
}

}  // namespace

const std::vector<FilterMethod>& all_filter_methods() {
  static const std::vector<FilterMethod> kAll = {
      FilterMethod::kInfoGain, FilterMethod::kGainRatio,
      FilterMethod::kSymmetricalUncertainty, FilterMethod::kCorrelation,
      FilterMethod::kOneR};
  return kAll;
}

std::string filter_name(FilterMethod method) {
  switch (method) {
    case FilterMethod::kInfoGain: return "InfoGain";
    case FilterMethod::kGainRatio: return "GainRatio";
    case FilterMethod::kSymmetricalUncertainty:
      return "SymmetricalUncertainty";
    case FilterMethod::kCorrelation: return "Correlation";
    case FilterMethod::kOneR: return "OneR";
  }
  throw std::invalid_argument("unknown filter method");
}

std::string filter_abbreviation(FilterMethod method) {
  switch (method) {
    case FilterMethod::kInfoGain: return "IG";
    case FilterMethod::kGainRatio: return "GR";
    case FilterMethod::kSymmetricalUncertainty: return "SU";
    case FilterMethod::kCorrelation: return "Cor";
    case FilterMethod::kOneR: return "1R";
  }
  throw std::invalid_argument("unknown filter method");
}

std::vector<double> score_features(const Dataset& data, FilterMethod method,
                                   std::size_t bins) {
  std::vector<double> scores(data.num_features(), 0.0);
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    switch (method) {
      case FilterMethod::kCorrelation:
        scores[f] = correlation_score(data, f);
        break;
      case FilterMethod::kOneR:
        scores[f] = one_r_score(data, f, bins);
        break;
      default: {
        const auto column = data.feature_column(f);
        const auto cuts = equal_frequency_cuts(column, bins);
        const auto binned = apply_cuts(column, cuts);
        const auto table = contingency_table(
            binned, data.labels(), cuts.size() + 1, data.num_classes());
        const auto terms = entropy_terms(table, data.num_classes());
        if (method == FilterMethod::kInfoGain) {
          scores[f] = terms.info_gain;
        } else if (method == FilterMethod::kGainRatio) {
          scores[f] = terms.h_feature > 1e-12
                          ? terms.info_gain / terms.h_feature
                          : 0.0;
        } else {  // symmetrical uncertainty
          const double denom = terms.h_feature + terms.h_class;
          scores[f] = denom > 1e-12 ? 2.0 * terms.info_gain / denom : 0.0;
        }
        break;
      }
    }
  }
  return scores;
}

std::vector<std::size_t> top_k_features(const Dataset& data,
                                        FilterMethod method, std::size_t k,
                                        std::size_t bins) {
  const auto scores = score_features(data, method, bins);
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace ml
}  // namespace drapid
