// Known-source catalogue — the ATNF Pulsar Catalogue / RRATalog stand-in.
//
// §4 of the paper: "we used the ATNF Pulsar Catalog and RRATalog to search
// our data for single pulses in the immediate vicinity of all known pulsars
// and RRATs". A catalogue maps source names to sky positions and DMs; the
// crossmatch asks, for an identified candidate at some pointing, whether a
// known source lies within a beam radius on the sky and a DM tolerance.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace drapid {

struct CatalogSource {
  std::string name;
  double ra_deg = 0.0;
  double dec_deg = 0.0;
  double dm = 0.0;
  double period_s = 0.0;   ///< 0 = unknown
  bool is_rrat = false;
};

/// Great-circle angular separation between two sky positions, in degrees
/// (haversine; exact for all separations).
double angular_separation_deg(double ra1_deg, double dec1_deg, double ra2_deg,
                              double dec2_deg);

class SourceCatalog {
 public:
  SourceCatalog() = default;
  explicit SourceCatalog(std::vector<CatalogSource> sources);

  std::size_t size() const { return sources_.size(); }
  const std::vector<CatalogSource>& sources() const { return sources_; }

  void add(CatalogSource source);

  /// Exact-name lookup; nullopt if absent.
  std::optional<CatalogSource> find(const std::string& name) const;

  /// All sources within `radius_deg` of the given position ("cone search"),
  /// nearest first.
  std::vector<CatalogSource> cone_search(double ra_deg, double dec_deg,
                                         double radius_deg) const;

  /// The paper's labeling rule: the nearest catalogued source within the
  /// beam radius whose DM matches the candidate's within `dm_tolerance`.
  std::optional<CatalogSource> crossmatch(double ra_deg, double dec_deg,
                                          double candidate_dm,
                                          double radius_deg,
                                          double dm_tolerance) const;

  /// CSV persistence: "name,ra_deg,dec_deg,dm,period_s,is_rrat".
  void save(std::ostream& out) const;
  static SourceCatalog load(std::istream& in);

 private:
  std::vector<CatalogSource> sources_;
};

}  // namespace drapid
