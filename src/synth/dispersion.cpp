#include "synth/dispersion.hpp"

#include <cmath>
#include <stdexcept>

namespace drapid {

double dispersion_delay_s(double dm, double freq_mhz) {
  return kDispersionConstant * dm / (freq_mhz * freq_mhz);
}

double smearing_s(double dm_error, double center_freq_mhz,
                  double bandwidth_mhz) {
  const double f_lo = center_freq_mhz - bandwidth_mhz / 2.0;
  const double f_hi = center_freq_mhz + bandwidth_mhz / 2.0;
  return std::abs(dispersion_delay_s(dm_error, f_lo) -
                  dispersion_delay_s(dm_error, f_hi));
}

double snr_degradation(double dm_error, double width_ms,
                       double center_freq_mhz, double bandwidth_mhz) {
  // Cordes & McLaughlin (2003), eq. 12–13:
  //   zeta = 6.91e-3 * δDM * Δν_MHz / (W_ms * ν_GHz³)
  //   S/S0 = (sqrt(pi)/2) * erf(zeta) / zeta
  const double nu_ghz = center_freq_mhz / 1000.0;
  const double zeta = 6.91e-3 * std::abs(dm_error) * bandwidth_mhz /
                      (width_ms * nu_ghz * nu_ghz * nu_ghz);
  if (zeta < 1e-6) return 1.0;  // series limit: erf(z)/z -> 2/sqrt(pi)
  return 0.5 * std::sqrt(3.14159265358979323846) * std::erf(zeta) / zeta;
}

double dm_width_at_level(double level, double width_ms, double center_freq_mhz,
                         double bandwidth_mhz) {
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument("level must be in (0, 1)");
  }
  double lo = 0.0;
  double hi = 1.0;
  // Expand until the degradation at `hi` drops below the level.
  while (snr_degradation(hi, width_ms, center_freq_mhz, bandwidth_mhz) >
         level) {
    hi *= 2.0;
    if (hi > 1e7) return hi;  // pathologically wide peak; give up expanding
  }
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (snr_degradation(mid, width_ms, center_freq_mhz, bandwidth_mhz) >
        level) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace drapid
