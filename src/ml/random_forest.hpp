// RandomForest — the ensemble tree learner the paper found best for single
// pulse classification (RQ3–RQ5).
//
// Standard Breiman construction: each tree trains on a bootstrap sample and
// evaluates only log2(d)+1 random features per node (Weka's default);
// prediction is majority vote.
#pragma once

#include "ml/tree.hpp"

namespace drapid {
namespace ml {

struct ForestParams {
  std::size_t num_trees = 20;
  TreeParams tree;  ///< features_per_split of 0 selects log2(d)+1 at train time
  /// Worker threads for tree training (trees are independent); results are
  /// identical for any thread count — per-tree seeds and bootstrap samples
  /// are drawn up front. 1 = serial (the paper's Weka setup; its future-work
  /// section proposes exactly this parallelism).
  std::size_t training_threads = 1;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(ForestParams params = {}, std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::vector<int> predict_batch(const Dataset& data) const override;
  std::string name() const override { return "RF"; }

  std::size_t num_trees() const { return trees_.size(); }
  /// Total nodes across the ensemble (tracks training work).
  std::size_t total_nodes() const;
  std::size_t total_split_evaluations() const;

 private:
  ForestParams params_;
  std::uint64_t seed_;
  std::size_t num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace ml
}  // namespace drapid
