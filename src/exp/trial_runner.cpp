#include "exp/trial_runner.hpp"

#include "ml/smote.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace drapid {

std::string TrialSpec::describe() const {
  std::string s = ml::learner_name(learner);
  s += " scheme=" + ml::alm_scheme_name(scheme);
  s += " fs=" + (filter ? ml::filter_abbreviation(*filter)
                        : std::string("None"));
  if (smote) s += " smote";
  return s;
}

TrialResult run_trial(const std::vector<LabeledPulse>& pulses,
                      const TrialSpec& spec) {
  TrialResult result;
  result.spec = spec;
  // One span per scheme×filter×learner×fold-seed combination; the cv.fold
  // spans recorded by ml::cross_validate nest inside it.
  obs::ScopedSpan trial_span(obs::global_tracer(), "trial", spec.describe(),
                             "exp");
  const ml::Dataset full = make_alm_dataset(pulses, spec.scheme);

  // Six stratified folds: fold 0 feeds feature selection, folds 1–5 the CV.
  // Stratification uses the *binary* collapse so the same instances land in
  // the same folds under every ALM scheme (required for the RQ4 analysis).
  Rng fold_rng(spec.seed);
  std::vector<int> binary_labels(full.num_instances());
  for (std::size_t i = 0; i < full.num_instances(); ++i) {
    binary_labels[i] = full.label(i) != 0 ? 1 : 0;
  }
  const auto folds = ml::stratified_folds(binary_labels, 2, 6, fold_rng);
  const ml::Dataset fs_data = full.subset(ml::rows_in_fold(folds, 0, true));
  ml::Dataset cv_data = full.subset(ml::rows_in_fold(folds, 0, false));
  if (spec.filter) {
    const auto top = ml::top_k_features(fs_data, *spec.filter, spec.top_k);
    cv_data = cv_data.select_features(top);
  }

  Rng cv_rng(spec.seed ^ 0x5f0f1e2d3c4b5a69ULL);
  ml::TrainTransform transform;
  if (spec.smote) {
    // SMOTE randomness comes from the fold's own stream (drawn up front by
    // cross_validate), so fold results don't depend on execution order.
    transform = [](const ml::Dataset& train, Rng& fold_rng) {
      return ml::apply_smote(train, ml::SmoteParams{}, fold_rng);
    };
  }
  std::vector<int> predictions;
  const auto cv = ml::cross_validate(
      cv_data, 5,
      [&spec] { return ml::make_classifier(spec.learner, spec.seed); },
      cv_rng, transform, &predictions, ml::CvOptions{spec.cv_threads});

  const auto pooled = cv.pooled_binary();
  result.recall = pooled.recall();
  result.precision = pooled.precision();
  result.f_measure = pooled.f_measure();
  result.train_seconds = cv.total_train_seconds;
  result.test_seconds = cv.total_test_seconds;
  result.transform_seconds = cv.total_transform_seconds;
  for (const auto& fold : cv.folds) {
    result.fold_train_seconds.push_back(fold.train_seconds);
    result.fold_test_seconds.push_back(fold.test_seconds);
    const auto scores = fold.confusion.collapse_nonzero_positive();
    result.fold_recalls.push_back(scores.recall());
    result.fold_f_measures.push_back(scores.f_measure());
  }
  trial_span.arg("recall", result.recall);
  trial_span.arg("f_measure", result.f_measure);
  trial_span.arg("train_seconds", result.train_seconds);
  trial_span.arg("test_seconds", result.test_seconds);
  result.cv_labels = cv_data.labels();
  result.correct.resize(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    // Collapsed correctness: positive instances count as correct when
    // predicted as *any* positive class (§5.2.4 comparison convention).
    const bool actual_positive = cv_data.label(i) != 0;
    const bool predicted_positive = predictions[i] != 0;
    result.correct[i] = actual_positive == predicted_positive;
  }
  return result;
}

}  // namespace drapid
