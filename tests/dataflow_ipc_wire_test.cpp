// Wire-format tests for the process executor's task frames: exact
// round-trips, streaming decode, and the integrity properties the failure
// model depends on — every truncation reads as "incomplete or corrupt"
// (never a valid frame) and every single-bit flip is rejected, so a worker
// SIGKILLed mid-write can never smuggle a half-result past the coordinator.
#include "dataflow/ipc/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace drapid::ipc {
namespace {

TaskFrame sample_frame() {
  TaskFrame frame;
  frame.kind = FrameKind::kResult;
  frame.partition = 17;
  frame.metrics.partition = 17;
  frame.metrics.records_in = 1000;
  frame.metrics.bytes_in = 123456;
  frame.metrics.records_out = 900;
  frame.metrics.bytes_out = 98765;
  frame.metrics.shuffle_bytes = 4242;
  frame.metrics.spill_bytes = 7;
  frame.metrics.compute_cost = 250;
  frame.metrics.attempts = 3;
  frame.metrics.retry_cost = 500;
  frame.payload = std::string("payload \x00\xff bytes", 16);
  return frame;
}

TEST(WireFrame, RoundTripsEveryField) {
  const TaskFrame in = sample_frame();
  const std::string bytes = encode_frame(in);
  TaskFrame out;
  std::size_t consumed = 0;
  ASSERT_EQ(try_decode_frame(bytes.data(), bytes.size(), out, consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.partition, in.partition);
  EXPECT_EQ(out.metrics.records_in, in.metrics.records_in);
  EXPECT_EQ(out.metrics.bytes_in, in.metrics.bytes_in);
  EXPECT_EQ(out.metrics.records_out, in.metrics.records_out);
  EXPECT_EQ(out.metrics.bytes_out, in.metrics.bytes_out);
  EXPECT_EQ(out.metrics.shuffle_bytes, in.metrics.shuffle_bytes);
  EXPECT_EQ(out.metrics.spill_bytes, in.metrics.spill_bytes);
  EXPECT_EQ(out.metrics.compute_cost, in.metrics.compute_cost);
  EXPECT_EQ(out.metrics.attempts, in.metrics.attempts);
  EXPECT_EQ(out.metrics.retry_cost, in.metrics.retry_cost);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(WireFrame, ErrorFrameRoundTripsKind) {
  TaskFrame in;
  in.kind = FrameKind::kError;
  in.error_kind = WireErrorKind::kTaskFailure;
  in.partition = 3;
  in.payload = "task failed permanently";
  const std::string bytes = encode_frame(in);
  TaskFrame out;
  std::size_t consumed = 0;
  ASSERT_EQ(try_decode_frame(bytes.data(), bytes.size(), out, consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.kind, FrameKind::kError);
  EXPECT_EQ(out.error_kind, WireErrorKind::kTaskFailure);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(WireFrame, EveryTruncationIsIncompleteNeverValid) {
  const std::string bytes = encode_frame(sample_frame());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    TaskFrame out;
    std::size_t consumed = 0;
    const auto status = try_decode_frame(bytes.data(), len, out, consumed);
    EXPECT_NE(status, DecodeStatus::kOk) << "truncated to " << len;
  }
}

TEST(WireFrame, EverySingleBitFlipIsRejected) {
  const std::string bytes = encode_frame(sample_frame());
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      TaskFrame out;
      std::size_t consumed = 0;
      const auto status =
          try_decode_frame(flipped.data(), flipped.size(), out, consumed);
      // A flip may read as corruption or (when it inflates payload_len
      // within the sanity cap) as an incomplete frame the coordinator would
      // keep waiting on until EOF — but never as a valid frame.
      EXPECT_NE(status, DecodeStatus::kOk)
          << "bit " << bit << " of byte " << byte;
    }
  }
}

TEST(WireFrame, AbsurdPayloadLengthIsCorruptNotIncomplete) {
  // A flipped high bit in payload_len must not make the coordinator wait
  // for exabytes that will never arrive: past the cap it is corruption.
  std::string bytes = encode_frame(sample_frame());
  const std::size_t len_offset = 13 * sizeof(std::uint64_t);
  std::uint64_t huge = kMaxWirePayload + 1;
  std::memcpy(bytes.data() + len_offset, &huge, sizeof(huge));
  TaskFrame out;
  std::size_t consumed = 0;
  EXPECT_EQ(try_decode_frame(bytes.data(), bytes.size(), out, consumed),
            DecodeStatus::kCorrupt);
}

TEST(WireFrame, RandomGarbageNeverDecodes) {
  Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(static_cast<std::size_t>(rng.below(512)), '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.below(256));
    }
    TaskFrame out;
    std::size_t consumed = 0;
    const auto status =
        try_decode_frame(garbage.data(), garbage.size(), out, consumed);
    EXPECT_NE(status, DecodeStatus::kOk) << "trial " << trial;
  }
}

TEST(WireFrame, StreamedFramesDecodeAcrossArbitraryChunks) {
  // Two frames arriving byte-by-byte must decode exactly twice, at the
  // exact completion points — the coordinator's buffering loop in miniature.
  TaskFrame second = sample_frame();
  second.partition = 99;
  second.payload = "second";
  const std::string stream =
      encode_frame(sample_frame()) + encode_frame(second);
  std::string buffer;
  std::vector<TaskFrame> decoded;
  for (const char c : stream) {
    buffer.push_back(c);
    while (true) {
      TaskFrame out;
      std::size_t consumed = 0;
      if (try_decode_frame(buffer.data(), buffer.size(), out, consumed) !=
          DecodeStatus::kOk) {
        break;
      }
      decoded.push_back(out);
      buffer.erase(0, consumed);
    }
  }
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].partition, 17u);
  EXPECT_EQ(decoded[1].partition, 99u);
  EXPECT_EQ(decoded[1].payload, "second");
  EXPECT_TRUE(buffer.empty());
}

struct FlatRecord {
  double dm;
  float snr;
  int width;
  bool operator==(const FlatRecord&) const = default;
};

TEST(WireCodec, ValueRoundTrips) {
  using KvPair = std::pair<std::string, std::string>;
  const std::vector<KvPair> kv = {
      {"PALFA|56000.01|213.77|15.22|3", "line one\nline two"},
      {"", std::string("\x00\x01\x02", 3)},
  };
  EXPECT_EQ(decode_payload<KvPair>(encode_payload(kv)), kv);

  using OptPair = std::pair<std::string, std::optional<double>>;
  const std::vector<OptPair> opt = {{"a", 1.5}, {"b", std::nullopt}};
  EXPECT_EQ(decode_payload<OptPair>(encode_payload(opt)), opt);

  const std::vector<FlatRecord> flat = {{56.25, 7.5f, 4}, {0.0, -1.0f, 0}};
  EXPECT_EQ(decode_payload<FlatRecord>(encode_payload(flat)), flat);

  const std::vector<std::uint32_t> routing = {0, 3, 1, 2, 3, 0};
  EXPECT_EQ(decode_payload<std::uint32_t>(encode_payload(routing)), routing);
}

TEST(WireCodec, TruncatedPayloadThrows) {
  using KvPair = std::pair<std::string, std::string>;
  const std::vector<KvPair> kv = {{"key", "value"}};
  std::string payload = encode_payload(kv);
  payload.resize(payload.size() - 3);
  EXPECT_THROW(decode_payload<KvPair>(payload), WireError);
  EXPECT_THROW(decode_payload<std::string>(std::string("\xff\xff\xff", 3)),
               WireError);
}

TEST(WireCodec, TrailingBytesThrow) {
  std::string payload = encode_payload(std::vector<std::uint32_t>{1, 2});
  payload.push_back('x');
  EXPECT_THROW(decode_payload<std::uint32_t>(payload), WireError);
}

TEST(WireFrame, PoolFrameKindsRoundTrip) {
  // Every pool-protocol kind must survive the wire unchanged — a kind that
  // maps onto another would route a shuffle segment as a task result.
  for (const FrameKind kind :
       {FrameKind::kStageBegin, FrameKind::kTaskAssign,
        FrameKind::kShufflePush, FrameKind::kStageEnd, FrameKind::kAck,
        FrameKind::kFetch, FrameKind::kData, FrameKind::kRelease,
        FrameKind::kShutdown}) {
    TaskFrame in = sample_frame();
    in.kind = kind;
    const std::string bytes = encode_frame(in);
    TaskFrame out;
    std::size_t consumed = 0;
    ASSERT_EQ(try_decode_frame(bytes.data(), bytes.size(), out, consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.kind, kind);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(WireFrame, KindBeyondMaximumIsCorrupt) {
  // The kind word is the first header field after the magic; a value past
  // kShutdown is a protocol error, not a frame to wait on.
  std::string bytes = encode_frame(sample_frame());
  const std::size_t kind_offset = sizeof(std::uint64_t);  // after the magic
  std::uint64_t bad = kMaxFrameKind + 1;
  std::memcpy(bytes.data() + kind_offset, &bad, sizeof(bad));
  TaskFrame out;
  std::size_t consumed = 0;
  EXPECT_EQ(try_decode_frame(bytes.data(), bytes.size(), out, consumed),
            DecodeStatus::kCorrupt);
}

TEST(WireFrame, FramePartsMatchContiguousEncodingExactly) {
  // The vectored send path must produce the same byte stream as
  // encode_frame: header + spans + trailer == encode_frame(payload).
  TaskFrame frame = sample_frame();
  frame.kind = FrameKind::kShufflePush;
  const std::string contiguous = encode_frame(frame);

  // Split the payload into three uneven spans (including an empty one).
  TaskFrame spanned = frame;
  const std::string payload = std::move(spanned.payload);
  spanned.payload.clear();
  const FrameSpan spans[] = {
      {payload.data(), 5},
      {payload.data() + 5, 0},
      {payload.data() + 5, payload.size() - 5},
  };
  const FrameParts parts = encode_frame_parts(spanned, spans, 3);
  EXPECT_EQ(parts.header + payload + parts.trailer, contiguous);

  // And an empty payload still frames correctly.
  TaskFrame empty = sample_frame();
  empty.payload.clear();
  const FrameParts empty_parts = encode_frame_parts(empty, nullptr, 0);
  EXPECT_EQ(empty_parts.header + empty_parts.trailer, encode_frame(empty));
}

TEST(WireFrame, FramePartsStreamSurvivesTruncationFuzz) {
  // Assemble a frame from parts, then check the same integrity properties
  // the contiguous path has: every prefix is incomplete-or-corrupt, every
  // single-bit flip is rejected.
  TaskFrame frame = sample_frame();
  frame.kind = FrameKind::kTaskAssign;
  const std::string payload = frame.payload;
  frame.payload.clear();
  const FrameSpan span{payload.data(), payload.size()};
  const FrameParts parts = encode_frame_parts(frame, &span, 1);
  const std::string bytes = parts.header + payload + parts.trailer;

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    TaskFrame out;
    std::size_t consumed = 0;
    EXPECT_NE(try_decode_frame(bytes.data(), len, out, consumed),
              DecodeStatus::kOk)
        << "truncated to " << len;
  }
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      TaskFrame out;
      std::size_t consumed = 0;
      EXPECT_NE(try_decode_frame(flipped.data(), flipped.size(), out,
                                 consumed),
                DecodeStatus::kOk)
          << "bit " << bit << " of byte " << byte;
    }
  }
}

}  // namespace
}  // namespace drapid::ipc
