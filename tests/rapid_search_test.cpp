#include "rapid/search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "synth/dispersion.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

SinglePulseEvent spe(double dm, double snr, double t = 1.0) {
  SinglePulseEvent e;
  e.dm = dm;
  e.snr = snr;
  e.time_s = t;
  return e;
}

/// Synthesizes the SPEs of one pulse: a Cordes-curve SNR peak centered at
/// `dm0`, sampled every `step` in DM, with optional noise.
std::vector<SinglePulseEvent> make_pulse(double dm0, double peak_snr,
                                         double width_ms, double step,
                                         double noise_sigma = 0.0,
                                         std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<SinglePulseEvent> events;
  for (double dm = dm0 - 15.0; dm <= dm0 + 15.0; dm += step) {
    const double snr = peak_snr *
                           snr_degradation(dm - dm0, width_ms, 350.0, 100.0) +
                       (noise_sigma > 0.0 ? rng.normal(0.0, noise_sigma) : 0.0);
    if (snr >= 5.0) events.push_back(spe(dm, snr));
  }
  return events;
}

TEST(RapidSearch, EmptyAndSingletonYieldNothing) {
  EXPECT_TRUE(rapid_search({}, {}).empty());
  std::vector<SinglePulseEvent> one{spe(10.0, 8.0)};
  EXPECT_TRUE(rapid_search(one, {}).empty());
}

TEST(RapidSearch, FlatProfileHasNoPulse) {
  // Broadband RFI signature: constant SNR across DM — no peak.
  std::vector<SinglePulseEvent> events;
  for (int i = 0; i < 100; ++i) events.push_back(spe(10.0 + 0.1 * i, 12.0));
  EXPECT_TRUE(rapid_search(events, {}).empty());
}

TEST(RapidSearch, MonotoneRampHasNoPulse) {
  // Climb with no descent: peak never confirmed.
  std::vector<SinglePulseEvent> events;
  for (int i = 0; i < 60; ++i) events.push_back(spe(10.0 + 0.1 * i, 5.0 + i));
  EXPECT_TRUE(rapid_search(events, {}).empty());
}

TEST(RapidSearch, CleanPeakIsFoundOnce) {
  const auto events = make_pulse(30.0, 25.0, 3.0, 0.1);
  ASSERT_GT(events.size(), 12u);
  const auto pulses = rapid_search(events, {});
  ASSERT_EQ(pulses.size(), 1u);
  const auto& p = pulses[0];
  // The reported peak must be the true SNR maximum, near the true DM.
  EXPECT_NEAR(events[p.peak].dm, 30.0, 1.0);
  for (std::size_t i = p.begin; i < p.end; ++i) {
    EXPECT_LE(events[i].snr, events[p.peak].snr);
  }
}

TEST(RapidSearch, TwoSeparatedPeaksAreBothFound) {
  auto events = make_pulse(25.0, 20.0, 2.0, 0.1);
  const auto second = make_pulse(45.0, 18.0, 2.0, 0.1);
  events.insert(events.end(), second.begin(), second.end());
  const auto pulses = rapid_search(events, {});
  ASSERT_EQ(pulses.size(), 2u);
  EXPECT_NEAR(events[pulses[0].peak].dm, 25.0, 1.5);
  EXPECT_NEAR(events[pulses[1].peak].dm, 45.0, 1.5);
}

TEST(RapidSearch, NoisyPeakStillFound) {
  const auto events = make_pulse(40.0, 22.0, 3.0, 0.1, /*noise=*/0.4, 7);
  const auto pulses = rapid_search(events, {});
  ASSERT_GE(pulses.size(), 1u);
  bool near_truth = false;
  for (const auto& p : pulses) {
    near_truth |= std::abs(events[p.peak].dm - 40.0) < 2.0;
  }
  EXPECT_TRUE(near_truth);
}

TEST(RapidSearch, SmallClusterConnectTheDotsFindsPeak) {
  // Fewer than 12 SPEs: Equation 1 assigns bin size 1 ("connects the dots").
  std::vector<SinglePulseEvent> events{
      spe(10.0, 5.5), spe(10.2, 7.0), spe(10.4, 9.5), spe(10.6, 12.0),
      spe(10.8, 9.0), spe(11.0, 6.5), spe(11.2, 5.2)};
  const auto pulses = rapid_search(events, {});
  ASSERT_EQ(pulses.size(), 1u);
  EXPECT_NEAR(events[pulses[0].peak].dm, 10.6, 1e-9);
}

TEST(RapidSearch, StaticBinSizeMissesSmallClusterPeak) {
  // The paper's motivation for Equation 1: a static bin size of 25 puts a
  // small cluster into one bin and can never see its peak.
  std::vector<SinglePulseEvent> events{
      spe(10.0, 5.5), spe(10.2, 7.0), spe(10.4, 9.5), spe(10.6, 12.0),
      spe(10.8, 9.0), spe(11.0, 6.5), spe(11.2, 5.2)};
  RapidParams dpg;
  dpg.dynamic_bin_size = false;
  dpg.static_bin_size = 25;
  EXPECT_TRUE(rapid_search(events, dpg).empty());
}

TEST(RapidSearch, PulseRangesAreValidAndOrdered) {
  Rng rng(11);
  std::vector<SinglePulseEvent> events;
  // Dense, well-resolved pulses: each rise and fall spans several bins.
  for (double dm0 : {20.0, 32.0, 44.0, 56.0}) {
    const auto p = make_pulse(dm0, rng.uniform(15.0, 30.0), 4.0, 0.05);
    events.insert(events.end(), p.begin(), p.end());
  }
  const auto pulses = rapid_search(events, {});
  ASSERT_GE(pulses.size(), 2u);
  std::size_t prev_end = 0;
  for (const auto& p : pulses) {
    ASSERT_LT(p.begin, p.end);
    ASSERT_LE(p.end, events.size());
    ASSERT_GE(p.peak, p.begin);
    ASSERT_LT(p.peak, p.end);
    ASSERT_GE(p.begin, prev_end) << "pulses must not overlap";
    prev_end = p.end;
  }
}

TEST(RapidSearch, HigherSlopeThresholdIsMoreConservative) {
  const auto events = make_pulse(30.0, 8.5, 4.0, 0.1, 0.3, 3);
  RapidParams loose;
  loose.slope_threshold = 0.05;
  RapidParams strict;
  strict.slope_threshold = 3.0;
  EXPECT_GE(rapid_search(events, loose).size(),
            rapid_search(events, strict).size());
}

TEST(RapidSearchCost, LinearInClusterSize) {
  EXPECT_GT(rapid_search_cost(0), 0u);
  EXPECT_EQ(rapid_search_cost(1000) - rapid_search_cost(0), 1000u);
}

// Property sweep over pulse shapes: one injected peak must yield at least
// one identified pulse whose peak is within the pulse's DM half-width.
class PulseRecovery
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(PulseRecovery, InjectedPeakRecovered) {
  const auto [peak_snr, width_ms, step] = GetParam();
  const auto events = make_pulse(35.0, peak_snr, width_ms, step, 0.25, 13);
  if (events.size() < 4) GTEST_SKIP() << "pulse too faint to test";
  const auto pulses = rapid_search(events, {});
  ASSERT_FALSE(pulses.empty());
  double best = 1e9;
  for (const auto& p : pulses) {
    best = std::min(best, std::abs(events[p.peak].dm - 35.0));
  }
  const double half_width = dm_width_at_level(0.5, width_ms, 350.0, 100.0);
  EXPECT_LE(best, std::max(0.5, half_width));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PulseRecovery,
    ::testing::Combine(::testing::Values(10.0, 18.0, 30.0),
                       ::testing::Values(1.5, 4.0, 10.0),
                       ::testing::Values(0.05, 0.1, 0.3)));

}  // namespace
}  // namespace drapid
