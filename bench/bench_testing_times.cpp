// Testing (classification) times — the evaluation the paper explicitly
// defers: "Testing times are not reported in this work. ... We hope to
// evaluate testing times on a production environment in future work"
// (§5.2.4). In production the classifier runs over every identified pulse
// of a survey, so per-instance prediction latency is what bounds throughput.
//
// Reports, per learner × ALM scheme: per-instance prediction latency and
// the implied classification throughput, plus how the ALM schemes move it
// (more classes = more one-vs-one machines for SMO, wider output layer for
// MPN, more votes per forest for RF...).
#include <iostream>

#include "exp/trial_runner.hpp"
#include "obs/bench.hpp"
#include "util/stopwatch.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  obs::BenchOptions bench(
      "bench_testing_times", argc, argv,
      {{"positives", "250"}, {"negatives", "1500"}, {"repeats", "5"}},
      "Per-instance prediction latency per learner x ALM scheme.");
  if (bench.help()) return 0;
  const Options& opts = bench.opts();
  std::cout << "=== Testing times (the paper's deferred evaluation) ===\n";

  BenchmarkConfig cfg;
  cfg.survey = SurveyConfig::gbt350drift();
  cfg.survey.obs_length_s = 70.0;
  cfg.target_positives =
      static_cast<std::size_t>(bench.scaled(opts.integer("positives")));
  cfg.target_negatives =
      static_cast<std::size_t>(bench.scaled(opts.integer("negatives")));
  cfg.visibility = 0.10;
  cfg.seed = static_cast<std::uint64_t>(bench.seed());
  std::cerr << "building benchmark...\n";
  const auto pulses = build_benchmark_pulses(cfg);
  const auto repeats = static_cast<std::size_t>(opts.integer("repeats"));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"learner", "scheme", "train(s)", "test µs/instance",
                  "batch µs/instance", "instances/s (batch)"});
  for (ml::LearnerType learner : ml::all_learner_types()) {
    for (ml::AlmScheme scheme :
         {ml::AlmScheme::kBinary, ml::AlmScheme::kEight}) {
      const auto data = make_alm_dataset(pulses, scheme);
      auto classifier = ml::make_classifier(learner, 1);
      Stopwatch train_watch;
      classifier->train(data);
      const double train_s = train_watch.elapsed_seconds();

      Stopwatch test_watch;
      std::size_t predictions = 0;
      volatile int sink = 0;
      for (std::size_t r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < data.num_instances(); ++i) {
          sink += classifier->predict(data.instance(i));
          ++predictions;
        }
      }
      (void)sink;
      const double test_s = test_watch.elapsed_seconds();
      const double us_per =
          predictions > 0 ? test_s * 1e6 / static_cast<double>(predictions)
                          : 0.0;

      // The batched path CV scoring uses: one call per test set amortizes
      // the per-instance dispatch and walks the model cache-coherently.
      Stopwatch batch_watch;
      std::size_t batch_predictions = 0;
      for (std::size_t r = 0; r < repeats; ++r) {
        const auto batch = classifier->predict_batch(data);
        sink += batch.back();
        batch_predictions += batch.size();
      }
      const double batch_s = batch_watch.elapsed_seconds();
      const double us_per_batch =
          batch_predictions > 0
              ? batch_s * 1e6 / static_cast<double>(batch_predictions)
              : 0.0;

      obs::Json result_row = obs::Json::object();
      result_row.set("learner", ml::learner_name(learner));
      result_row.set("scheme", ml::alm_scheme_name(scheme));
      result_row.set("train_seconds", train_s);
      result_row.set("test_us_per_instance", us_per);
      result_row.set("test_us_per_instance_batch", us_per_batch);
      result_row.set("test_seconds_batch", batch_s);
      bench.report().add_result(std::move(result_row));
      rows.push_back(
          {ml::learner_name(learner), ml::alm_scheme_name(scheme),
           format_number(train_s), format_number(us_per, 2),
           format_number(us_per_batch, 2),
           format_number(us_per_batch > 0 ? 1e6 / us_per_batch : 0.0, 0)});
    }
  }
  std::cout << '\n' << render_table(rows)
            << "\n(expected: trees/rules predict in well under a µs; SMO "
               "grows with one-vs-one machine count under ALM; MPN with its "
               "dense layers is the slowest per instance)\n";
  bench.finish();
  return 0;
}
