// Classification performance measures (paper §5.2.4).
//
// A confusion matrix accumulates (actual, predicted) pairs; Recall,
// Precision and F-Measure follow equations (2)–(4). For multiclass (ALM)
// schemes, the paper's comparison against binary classifiers needs the
// matrix *collapsed* to pulsar vs non-pulsar: a pulsar instance counts as
// correctly retrieved when it is predicted as any positive class.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace drapid {
namespace ml {

struct BinaryScores {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  double recall() const;     ///< eq. (2)
  double precision() const;  ///< eq. (3)
  double f_measure() const;  ///< eq. (4)
};

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(int actual, int predicted);
  /// Merges another matrix (e.g. across CV folds).
  void merge(const ConfusionMatrix& other);

  std::size_t num_classes() const { return n_; }
  std::size_t count(int actual, int predicted) const;
  std::size_t total() const;
  double accuracy() const;

  /// Per-class one-vs-rest scores.
  double recall(int cls) const;
  double precision(int cls) const;
  double f_measure(int cls) const;

  /// Collapses to pulsar/non-pulsar given which classes are positive
  /// (`positive[c]`); the paper's cross-scheme comparison measure.
  BinaryScores collapse(const std::vector<bool>& positive) const;

  /// Collapse treating every class except 0 as positive (our benchmark
  /// convention: class 0 = non-pulsar).
  BinaryScores collapse_nonzero_positive() const;

  std::string to_string(const std::vector<std::string>& class_names) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> cells_;  // n_ x n_, row = actual
};

}  // namespace ml
}  // namespace drapid
