// Fixed-size worker pool used by the multithreaded RAPID baseline and the
// dataflow engine's executor backend.
//
// The pool mirrors the execution model the paper benchmarks against: a fixed
// number of threads pulling independent tasks from a shared queue. parallel_for
// provides the data-parallel "same operation over every cluster" pattern.
//
// parallel_for is reentrant: a task running on a pool worker may itself call
// parallel_for on the same pool. While waiting for its chunks, the calling
// thread *helps* — it drains pending tasks from the queue instead of
// blocking — so nested data parallelism completes even on a 1-thread pool
// (a blocked wait would deadlock: the worker would sleep on chunks queued
// behind the very task it is running).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace drapid {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all done.
  /// Work is handed out in contiguous chunks to bound queue overhead; any
  /// exception from fn is rethrown (first one wins). Safe to call from
  /// inside a pool task: the waiting thread runs pending tasks itself.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Pops and runs one pending task. Returns false if the queue was empty.
  bool run_one_pending();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace drapid
