// Plain-text rendering of tables and boxplots.
//
// The paper reports its classification results as boxplot panels (Figures 5
// and 6) and its scaling result as a line series (Figure 4). The benches
// regenerate those artifacts as aligned text tables and ASCII boxplot rows so
// the "shape" (medians, IQRs, who wins) is readable directly in bench output.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace drapid {

/// Renders rows as a column-aligned table. The first row is treated as a
/// header and underlined.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// One labeled distribution to draw in a boxplot panel.
struct BoxplotRow {
  std::string label;
  Summary summary;
};

/// Renders rows as horizontal ASCII boxplots on a shared axis:
///   label |----[ Q1 |median| Q3 ]-----| min..max
/// `width` is the number of columns for the plot area.
std::string render_boxplots(const std::string& title,
                            const std::vector<BoxplotRow>& rows,
                            int width = 60);

/// Renders an x/y series (e.g. Figure 4's elapsed-time-vs-executors curves)
/// as a table with one column per x value and one row per series.
struct Series {
  std::string label;
  std::vector<double> values;  // aligned with the shared x labels
};
std::string render_series(const std::string& title,
                          const std::vector<std::string>& x_labels,
                          const std::vector<Series>& series);

/// Formats a double with `digits` significant decimals, trimming noise.
std::string format_number(double value, int digits = 3);

}  // namespace drapid
