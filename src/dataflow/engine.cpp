#include "dataflow/engine.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "dataflow/ipc/process_executor.hpp"
#include "util/text_table.hpp"

namespace drapid {

namespace {
std::size_t sum_tasks(const StageMetrics& stage,
                      std::size_t TaskMetrics::*field) {
  std::size_t total = 0;
  for (const auto& t : stage.tasks) total += t.*field;
  return total;
}
}  // namespace

std::size_t StageMetrics::total_records_in() const {
  return sum_tasks(*this, &TaskMetrics::records_in);
}
std::size_t StageMetrics::total_bytes_in() const {
  return sum_tasks(*this, &TaskMetrics::bytes_in);
}
std::size_t StageMetrics::total_shuffle_bytes() const {
  return sum_tasks(*this, &TaskMetrics::shuffle_bytes);
}
std::size_t StageMetrics::total_spill_bytes() const {
  return sum_tasks(*this, &TaskMetrics::spill_bytes);
}
std::size_t StageMetrics::total_compute_cost() const {
  return sum_tasks(*this, &TaskMetrics::compute_cost);
}
std::size_t StageMetrics::total_retries() const {
  std::size_t total = 0;
  for (const auto& t : tasks) total += t.attempts > 1 ? t.attempts - 1 : 0;
  return total;
}
std::size_t StageMetrics::total_retry_cost() const {
  return sum_tasks(*this, &TaskMetrics::retry_cost);
}

std::size_t JobMetrics::total_shuffle_bytes() const {
  std::size_t total = 0;
  for (const auto& s : stages) total += s.total_shuffle_bytes();
  return total;
}
std::size_t JobMetrics::total_spill_bytes() const {
  std::size_t total = 0;
  for (const auto& s : stages) total += s.total_spill_bytes();
  return total;
}
std::size_t JobMetrics::total_compute_cost() const {
  std::size_t total = 0;
  for (const auto& s : stages) total += s.total_compute_cost();
  return total;
}
std::size_t JobMetrics::total_retries() const {
  std::size_t total = 0;
  for (const auto& s : stages) total += s.total_retries();
  return total;
}
std::size_t JobMetrics::total_retry_cost() const {
  std::size_t total = 0;
  for (const auto& s : stages) total += s.total_retry_cost();
  return total;
}
std::size_t JobMetrics::total_worker_deaths() const {
  std::size_t total = 0;
  for (const auto& s : stages) total += s.worker_deaths;
  return total;
}
std::size_t JobMetrics::total_ipc_bytes() const {
  std::size_t total = 0;
  for (const auto& s : stages) total += s.ipc_bytes;
  return total;
}
double JobMetrics::total_wall_seconds() const {
  double total = 0.0;
  for (const auto& s : stages) total += s.wall_seconds;
  return total;
}

std::string JobMetrics::summary() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"stage", "tasks", "records_in", "bytes_in", "shuffle_bytes",
                  "spill_bytes", "compute_cost", "retries", "stolen",
                  "deaths", "ipc_bytes", "pool_reuses", "resident_bytes"});
  for (const auto& s : stages) {
    rows.push_back({s.name, std::to_string(s.tasks.size()),
                    std::to_string(s.total_records_in()),
                    std::to_string(s.total_bytes_in()),
                    std::to_string(s.total_shuffle_bytes()),
                    std::to_string(s.total_spill_bytes()),
                    std::to_string(s.total_compute_cost()),
                    std::to_string(s.total_retries()),
                    std::to_string(s.tasks_stolen),
                    std::to_string(s.worker_deaths),
                    std::to_string(s.ipc_bytes),
                    std::to_string(s.pool_reuses),
                    std::to_string(s.resident_bytes)});
  }
  return render_table(rows);
}

Engine::Engine(EngineConfig config)
    : config_(config),
      pool_(config.exec.resolve_threads(
          config.worker_threads == 0 ? 1 : config.worker_threads)),
      faults_(config.faults),
      tracer_(config.tracer ? *config.tracer : obs::global_tracer()),
      stages_counter_(obs::global_counters().counter("engine.stages")),
      tasks_counter_(obs::global_counters().counter("engine.tasks")),
      retries_counter_(obs::global_counters().counter("engine.task_retries")),
      failures_counter_(
          obs::global_counters().counter("engine.task_failures")),
      stolen_counter_(obs::global_counters().counter("engine.tasks_stolen")),
      parks_counter_(obs::global_counters().counter("engine.parks")),
      fastpath_counter_(
          obs::global_counters().counter("engine.fastpath_completions")),
      workers_forked_counter_(
          obs::global_counters().counter("engine.workers_forked")),
      worker_deaths_counter_(
          obs::global_counters().counter("engine.worker_deaths")),
      ipc_bytes_counter_(obs::global_counters().counter("engine.ipc_bytes")) {
  if (config_.exec.backend == ExecBackend::kProcess &&
      process_executor_supported()) {
    executor_ = std::make_unique<ProcessExecutor>(
        *this, config_.exec.resolve_workers(config_.num_executors),
        config_.exec.pool);
  } else {
    // Local backend, or a sanitizer build where forking a multithreaded
    // process would deadlock the TSan runtime: run everything in-process.
    executor_ = std::make_unique<LocalExecutor>(*this);
  }
  namespace fs = std::filesystem;
  fs::path dir = config_.spill_dir.empty()
                     ? fs::temp_directory_path() / "drapid_spill"
                     : fs::path(config_.spill_dir);
  fs::create_directories(dir);
  // Isolate engines from one another with a per-instance subdirectory.
  std::ostringstream unique;
  unique << "engine_" << reinterpret_cast<std::uintptr_t>(this);
  spill_dir_ = (dir / unique.str()).string();
  fs::create_directories(spill_dir_);
}

Engine::~Engine() {
  std::error_code ec;  // best-effort cleanup; never throw from a destructor
  std::filesystem::remove_all(spill_dir_, ec);
}

StageMetrics& Engine::begin_stage(const std::string& name, std::size_t tasks) {
  StageMetrics stage;
  stage.name = name;
  stage.tasks.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) stage.tasks[i].partition = i;
  std::lock_guard lock(stages_mutex_);
  stages_counter_.add();
  metrics_.stages.push_back(std::move(stage));
  return metrics_.stages.back();
}

void Engine::run_stage(StageMetrics& stage,
                       const std::function<void(TaskContext&)>& body,
                       const StageIO& io, PoolStagePlan* plan) {
  obs::ScopedSpan stage_span(tracer_, "stage", stage.name, "dataflow");
  stage_span.arg("tasks", static_cast<std::int64_t>(stage.tasks.size()));
  const SchedulerStats pool_before = pool_.stats();
  const auto wall_start = std::chrono::steady_clock::now();
  executor_->run_stage_tasks(
      StageRun{stage, body, io.valid() ? &io : nullptr, plan});
  stage.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const SchedulerStats pool_after = pool_.stats();
  const std::uint64_t stolen = pool_after.tasks_stolen - pool_before.tasks_stolen;
  const std::uint64_t parks = pool_after.parks - pool_before.parks;
  const std::uint64_t fastpath =
      pool_after.fastpath_completions - pool_before.fastpath_completions;
  stage.tasks_stolen += stolen;
  stage.parks += parks;
  stage.fastpath_completions += fastpath;
  stolen_counter_.add(static_cast<std::int64_t>(stolen));
  parks_counter_.add(static_cast<std::int64_t>(parks));
  fastpath_counter_.add(static_cast<std::int64_t>(fastpath));
  if (tracer_.enabled()) {
    stage_span.arg("tasks_stolen", static_cast<std::int64_t>(stolen));
    stage_span.arg("parks", static_cast<std::int64_t>(parks));
    stage_span.arg("fastpath_completions", static_cast<std::int64_t>(fastpath));
  }
}

std::string Engine::next_spill_path() {
  std::ostringstream name;
  name << "spill_" << spill_counter_.fetch_add(1) << ".bin";
  return (std::filesystem::path(spill_dir_) / name.str()).string();
}

}  // namespace drapid
