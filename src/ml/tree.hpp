// Decision trees: the J48 (C4.5-style) learner and the random trees that
// RandomForest bags.
//
// Numeric binary splits (feature ≤ threshold) chosen by information gain or
// gain ratio; growth stops at purity, max depth, or minimum leaf size.
// When `features_per_split` > 0, each node evaluates only a random feature
// subset (the RandomTree behaviour RandomForest relies on).
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {

struct TreeParams {
  int max_depth = 60;
  std::size_t min_leaf = 2;       ///< minimum instances per child
  double min_gain = 1e-6;         ///< stop when best gain falls below this
  bool use_gain_ratio = true;     ///< C4.5 criterion (false = plain IG)
  /// Features sampled per node; 0 = consider all (J48 behaviour).
  std::size_t features_per_split = 0;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(TreeParams params = {}, std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "J48"; }

  /// Diagnostics the execution-performance experiments report on.
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  /// Split evaluations performed during the last train() — the work metric
  /// behind training time.
  std::size_t split_evaluations() const { return split_evaluations_; }

  /// Leaf routing and path reconstruction (used by the PART rule learner to
  /// turn the best leaf into a rule).
  int leaf_index(std::span<const double> x) const;
  int leaf_label(int leaf) const;
  struct PathCondition {
    int feature = -1;
    double threshold = 0.0;
    bool less_equal = true;  ///< condition is x[feature] <= threshold
  };
  /// Conditions along the root-to-leaf path; throws std::invalid_argument
  /// for an index that is not a leaf of this tree.
  std::vector<PathCondition> path_to_leaf(int leaf) const;

 private:
  struct Node {
    int feature = -1;        ///< -1 marks a leaf
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    int left = -1, right = -1;
    int label = 0;  ///< majority class (used at leaves)
  };

  int build(const Dataset& data, std::vector<std::size_t>& rows, int depth,
            Rng& rng);

  TreeParams params_;
  std::uint64_t seed_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int depth_ = 0;
  std::size_t split_evaluations_ = 0;
};

}  // namespace ml
}  // namespace drapid
