// Wall-clock stopwatch for the real-time measurements reported next to the
// cluster cost model's simulated times.
#pragma once

#include <chrono>

namespace drapid {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace drapid
