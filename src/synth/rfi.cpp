#include "synth/rfi.hpp"

#include <algorithm>
#include <cmath>

#include "spe/dm_grid.hpp"
#include "synth/dispersion.hpp"
#include "synth/survey.hpp"

namespace drapid {

const char* rfi_family_name(RfiFamily family) {
  switch (family) {
    case RfiFamily::kNarrowbandCarrier: return "narrowband_carrier";
    case RfiFamily::kSweptChirp: return "swept_chirp";
    case RfiFamily::kPeriodicBroadband: break;
  }
  return "periodic_broadband";
}

RfiScenario draw_rfi_scenario(const SurveyConfig& config, double obs_length_s,
                              Rng& rng) {
  RfiScenario scenario;
  const double band_lo = config.center_freq_mhz - config.bandwidth_mhz / 2.0;
  const double band_hi = config.center_freq_mhz + config.bandwidth_mhz / 2.0;

  const auto trains =
      rng.poisson(config.periodic_broadband_per_observation);
  for (std::uint64_t i = 0; i < trains; ++i) {
    RfiInstance inst;
    inst.family = RfiFamily::kPeriodicBroadband;
    inst.t_begin_s = rng.uniform(0.0, obs_length_s);
    inst.t_end_s = std::min(obs_length_s,
                            inst.t_begin_s + rng.uniform(2.0, 20.0));
    inst.period_s = rng.uniform(0.2, 2.0);
    inst.strength = rng.uniform(8.0, 25.0);
    inst.freq_begin_mhz = band_lo;
    inst.freq_end_mhz = band_hi;
    scenario.instances.push_back(inst);
  }

  const auto carriers =
      rng.poisson(config.narrowband_carriers_per_observation);
  for (std::uint64_t i = 0; i < carriers; ++i) {
    RfiInstance inst;
    inst.family = RfiFamily::kNarrowbandCarrier;
    // Persistent: on for most of the observation.
    inst.t_begin_s = rng.uniform(0.0, 0.2 * obs_length_s);
    inst.t_end_s = obs_length_s - rng.uniform(0.0, 0.2 * obs_length_s);
    inst.strength = rng.uniform(4.0, 12.0);
    // A transmitter occupies a sliver of the band (0.2–2%).
    const double width = config.bandwidth_mhz * rng.uniform(0.002, 0.02);
    const double f0 = rng.uniform(band_lo, band_hi - width);
    inst.freq_begin_mhz = f0;
    inst.freq_end_mhz = f0 + width;
    scenario.instances.push_back(inst);
  }

  const auto chirps = rng.poisson(config.swept_chirps_per_observation);
  for (std::uint64_t i = 0; i < chirps; ++i) {
    RfiInstance inst;
    inst.family = RfiFamily::kSweptChirp;
    inst.t_begin_s = rng.uniform(0.0, obs_length_s);
    inst.t_end_s = std::min(obs_length_s,
                            inst.t_begin_s + rng.uniform(0.5, 5.0));
    inst.strength = rng.uniform(6.0, 18.0);
    // Sweep a random stretch of the band, either direction.
    const double f_a = rng.uniform(band_lo, band_hi);
    const double f_b = rng.uniform(band_lo, band_hi);
    inst.freq_begin_mhz = f_a;
    inst.freq_end_mhz = f_b;
    scenario.instances.push_back(inst);
  }
  return scenario;
}

namespace {

std::int64_t sample_of(double time_s, double sample_time_ms) {
  return static_cast<std::int64_t>(time_s / (sample_time_ms * 1e-3));
}

/// Burst train: each burst is a broadband impulse, so the search sees it at
/// every trial with flat S/N — the same footprint as the unstructured
/// add_rfi() bursts, repeated at the train period.
void render_periodic_events(const RfiInstance& inst, const SurveyConfig& config,
                            Rng& rng, std::vector<SinglePulseEvent>& events) {
  const DmGrid& grid = *config.grid;
  for (double t0 = inst.t_begin_s; t0 <= inst.t_end_s; t0 += inst.period_s) {
    const std::size_t span = grid.size() / 2 + rng.below(grid.size() / 2);
    const std::size_t stride = 1 + rng.below(4);
    for (std::size_t i = 0; i < span; i += stride) {
      SinglePulseEvent e;
      e.dm = grid.dm_at(i);
      e.snr = inst.strength + rng.normal(0.0, 0.6);
      e.time_s = t0 + rng.normal(0.0, 2e-3);
      e.sample = sample_of(e.time_s, config.sample_time_ms);
      e.downfact = 4 << rng.below(3);
      events.push_back(e);
    }
  }
}

/// Carrier: a persistent hot channel raises the baseline of every trial's
/// series a little, tipping extra threshold crossings throughout the span,
/// biased toward low DM where the channel's samples stay aligned.
void render_carrier_events(const RfiInstance& inst, const SurveyConfig& config,
                           double obs_length_s, Rng& rng,
                           std::vector<SinglePulseEvent>& events) {
  const DmGrid& grid = *config.grid;
  const double span_s =
      std::max(0.0, std::min(inst.t_end_s, obs_length_s) - inst.t_begin_s);
  const auto count =
      rng.poisson(span_s * 0.25 * std::max(1.0, inst.strength - 3.0));
  for (std::uint64_t i = 0; i < count; ++i) {
    SinglePulseEvent e;
    const double idx = std::abs(rng.normal(
        0.0, static_cast<double>(grid.size()) / 6.0));
    e.dm = grid.dm_at(std::min<std::size_t>(
        static_cast<std::size_t>(idx), grid.size() - 1));
    e.snr = config.snr_threshold + rng.exponential(1.0);
    e.time_s = inst.t_begin_s + rng.uniform(0.0, span_s);
    e.sample = sample_of(e.time_s, config.sample_time_ms);
    e.downfact = 1 << rng.below(3);
    events.push_back(e);
  }
}

/// Chirp: the sweep through the band mimics dispersion, so the search emits
/// a ridge whose best-fit DM drifts across the chirp's duration.
void render_chirp_events(const RfiInstance& inst, const SurveyConfig& config,
                         Rng& rng, std::vector<SinglePulseEvent>& events) {
  const DmGrid& grid = *config.grid;
  const double duration = inst.t_end_s - inst.t_begin_s;
  if (duration <= 0.0) return;
  // Apparent DM scale from the chirp's drift rate: wider sweeps look like
  // higher DMs. Derived from the instance alone (not the rng) so the same
  // chirp traces the same DM track in every beam that sees it — the
  // coincidence a multi-beam rejection stage keys on.
  const double frac_span = std::min(
      1.0, std::abs(inst.freq_end_mhz - inst.freq_begin_mhz) /
               config.bandwidth_mhz);
  const double dm_hi = grid.max_dm() * (0.10 + 0.45 * frac_span);
  const double dm_lo = dm_hi * (0.15 + 0.06 * std::min(duration, 5.0));
  const int steps = 10 + static_cast<int>(duration * 10.0);
  for (int s = 0; s < steps; ++s) {
    const double frac = static_cast<double>(s) / static_cast<double>(steps - 1);
    const double t = inst.t_begin_s + frac * duration;
    const double dm_center = inst.freq_begin_mhz > inst.freq_end_mhz
                                 ? dm_lo + frac * (dm_hi - dm_lo)
                                 : dm_hi - frac * (dm_hi - dm_lo);
    const std::size_t center = grid.index_of(dm_center);
    const int reach = 2 + static_cast<int>(rng.below(6));
    for (int o = -reach; o <= reach; ++o) {
      const long trial = static_cast<long>(center) + o;
      if (trial < 0 || trial >= static_cast<long>(grid.size())) continue;
      const double u = static_cast<double>(o) / static_cast<double>(reach + 1);
      const double snr =
          inst.strength * std::exp(-0.5 * u * u * 4.0) + rng.normal(0.0, 0.4);
      if (snr < config.snr_threshold) continue;
      SinglePulseEvent e;
      e.dm = grid.dm_at(static_cast<std::size_t>(trial));
      e.snr = snr;
      e.time_s = t + rng.normal(0.0, 2e-3);
      e.sample = sample_of(e.time_s, config.sample_time_ms);
      e.downfact = 2 << rng.below(3);
      events.push_back(e);
    }
  }
}

}  // namespace

void render_rfi_events(const RfiScenario& scenario, const SurveyConfig& config,
                       double obs_length_s, Rng& rng,
                       std::vector<SinglePulseEvent>& events) {
  for (const RfiInstance& inst : scenario.instances) {
    switch (inst.family) {
      case RfiFamily::kPeriodicBroadband:
        render_periodic_events(inst, config, rng, events);
        break;
      case RfiFamily::kNarrowbandCarrier:
        render_carrier_events(inst, config, obs_length_s, rng, events);
        break;
      case RfiFamily::kSweptChirp:
        render_chirp_events(inst, config, rng, events);
        break;
    }
  }
}

}  // namespace drapid
