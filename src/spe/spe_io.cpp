#include "spe/spe_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace drapid {

namespace {

std::string fmt(double v, int precision = 6) {
  std::ostringstream out;
  out.precision(precision);
  out << v;
  return out.str();
}

std::ifstream open_input(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  return in;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write file: " + path);
  return out;
}

}  // namespace

void write_singlepulse(std::ostream& out,
                       const std::vector<SinglePulseEvent>& events) {
  out << "# DM      Sigma      Time (s)     Sample    Downfact\n";
  for (const auto& e : events) {
    out << fmt(e.dm) << ' ' << fmt(e.snr) << ' ' << fmt(e.time_s, 9) << ' '
        << e.sample << ' ' << e.downfact << '\n';
  }
}

std::vector<SinglePulseEvent> read_singlepulse(std::istream& in) {
  std::vector<SinglePulseEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    SinglePulseEvent e;
    if (!(row >> e.dm >> e.snr >> e.time_s >> e.sample >> e.downfact)) {
      throw std::runtime_error("malformed .singlepulse row: " + line);
    }
    events.push_back(e);
  }
  return events;
}

const char kDataFileHeader[] =
    "dataset,mjd,ra_deg,dec_deg,beam,dm,snr,time_s,sample,downfact";

CsvRow format_data_row(const ObservationId& obs, const SinglePulseEvent& spe) {
  return CsvRow{obs.dataset,       fmt(obs.mjd, 17),  fmt(obs.ra_deg, 17),
                fmt(obs.dec_deg, 17), std::to_string(obs.beam),
                fmt(spe.dm),       fmt(spe.snr),      fmt(spe.time_s, 9),
                std::to_string(spe.sample), std::to_string(spe.downfact)};
}

void parse_data_row(const CsvRow& row, ObservationId& obs,
                    SinglePulseEvent& spe) {
  if (row.size() != 10) {
    throw std::runtime_error("data row must have 10 fields, got " +
                             std::to_string(row.size()));
  }
  obs.dataset = row[0];
  obs.mjd = parse_double(row[1]);
  obs.ra_deg = parse_double(row[2]);
  obs.dec_deg = parse_double(row[3]);
  obs.beam = static_cast<int>(parse_int(row[4]));
  spe.dm = parse_double(row[5]);
  spe.snr = parse_double(row[6]);
  spe.time_s = parse_double(row[7]);
  spe.sample = parse_int(row[8]);
  spe.downfact = static_cast<int>(parse_int(row[9]));
}

void write_data_file(std::ostream& out,
                     const std::vector<ObservationData>& observations) {
  out << kDataFileHeader << '\n';
  for (const auto& obs : observations) {
    for (const auto& spe : obs.events) {
      out << format_csv_row(format_data_row(obs.id, spe)) << '\n';
    }
  }
}

void write_data_file(const std::string& path,
                     const std::vector<ObservationData>& observations) {
  auto out = open_output(path);
  write_data_file(out, observations);
}

std::vector<ObservationData> read_data_file(std::istream& in) {
  std::vector<ObservationData> result;
  std::map<std::string, std::size_t> index_by_key;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      saw_header = true;  // first non-empty line is the header
      continue;
    }
    ObservationId id;
    SinglePulseEvent spe;
    parse_data_row(parse_csv_line(line), id, spe);
    const std::string key = id.key();
    auto [it, inserted] = index_by_key.try_emplace(key, result.size());
    if (inserted) result.push_back(ObservationData{id, {}});
    result[it->second].events.push_back(spe);
  }
  return result;
}

std::vector<ObservationData> read_data_file(const std::string& path) {
  auto in = open_input(path);
  return read_data_file(in);
}

const char kClusterFileHeader[] =
    "dataset,mjd,ra_deg,dec_deg,beam,cluster_id,num_spes,dm_min,dm_max,"
    "time_min,time_max,snr_max,rank";

CsvRow format_cluster_row(const ClusterRecord& rec) {
  return CsvRow{rec.obs.dataset,
                fmt(rec.obs.mjd, 17),
                fmt(rec.obs.ra_deg, 17),
                fmt(rec.obs.dec_deg, 17),
                std::to_string(rec.obs.beam),
                std::to_string(rec.cluster_id),
                std::to_string(rec.num_spes),
                fmt(rec.dm_min),
                fmt(rec.dm_max),
                fmt(rec.time_min, 9),
                fmt(rec.time_max, 9),
                fmt(rec.snr_max),
                std::to_string(rec.rank)};
}

ClusterRecord parse_cluster_row(const CsvRow& row) {
  if (row.size() != 13) {
    throw std::runtime_error("cluster row must have 13 fields, got " +
                             std::to_string(row.size()));
  }
  ClusterRecord rec;
  rec.obs.dataset = row[0];
  rec.obs.mjd = parse_double(row[1]);
  rec.obs.ra_deg = parse_double(row[2]);
  rec.obs.dec_deg = parse_double(row[3]);
  rec.obs.beam = static_cast<int>(parse_int(row[4]));
  rec.cluster_id = static_cast<int>(parse_int(row[5]));
  rec.num_spes = static_cast<std::uint32_t>(parse_int(row[6]));
  rec.dm_min = parse_double(row[7]);
  rec.dm_max = parse_double(row[8]);
  rec.time_min = parse_double(row[9]);
  rec.time_max = parse_double(row[10]);
  rec.snr_max = parse_double(row[11]);
  rec.rank = static_cast<int>(parse_int(row[12]));
  return rec;
}

void write_cluster_file(std::ostream& out,
                        const std::vector<ClusterRecord>& clusters) {
  out << kClusterFileHeader << '\n';
  for (const auto& rec : clusters) {
    out << format_csv_row(format_cluster_row(rec)) << '\n';
  }
}

void write_cluster_file(const std::string& path,
                        const std::vector<ClusterRecord>& clusters) {
  auto out = open_output(path);
  write_cluster_file(out, clusters);
}

std::vector<ClusterRecord> read_cluster_file(std::istream& in) {
  std::vector<ClusterRecord> clusters;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      saw_header = true;
      continue;
    }
    clusters.push_back(parse_cluster_row(parse_csv_line(line)));
  }
  return clusters;
}

std::vector<ClusterRecord> read_cluster_file(const std::string& path) {
  auto in = open_input(path);
  return read_cluster_file(in);
}

// --- Binary candidate records (archive segments) ----------------------------

namespace {

template <typename T>
void append_raw(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_raw(const char* data, std::size_t size, std::size_t& offset) {
  if (size - offset < sizeof(T)) {
    throw std::runtime_error("truncated candidate record");
  }
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

void append_candidate_record(std::string& out, const CandidateRecord& rec) {
  const std::string key = rec.obs.key();  // validates the id
  append_raw(out, static_cast<std::uint32_t>(key.size()));
  out.append(key);
  append_raw(out, rec.event.dm);
  append_raw(out, rec.event.snr);
  append_raw(out, rec.event.time_s);
  append_raw(out, rec.event.sample);
  append_raw(out, static_cast<std::int32_t>(rec.event.downfact));
}

CandidateRecord decode_candidate_record(const char* data, std::size_t size,
                                        std::size_t& offset) {
  if (offset > size) throw std::runtime_error("truncated candidate record");
  const auto key_len = read_raw<std::uint32_t>(data, size, offset);
  if (key_len == 0 || key_len > size - offset) {
    throw std::runtime_error("truncated candidate record");
  }
  const std::string key(data + offset, key_len);
  offset += key_len;
  CandidateRecord rec;
  rec.obs = ObservationId::from_key(key);  // rejects malformed keys
  rec.event.dm = read_raw<double>(data, size, offset);
  rec.event.snr = read_raw<double>(data, size, offset);
  rec.event.time_s = read_raw<double>(data, size, offset);
  rec.event.sample = read_raw<std::int64_t>(data, size, offset);
  rec.event.downfact = read_raw<std::int32_t>(data, size, offset);
  return rec;
}

}  // namespace drapid
