// Key-value-pair RDDs and their transformations (the Spark stand-in).
//
// An Rdd<K, V> is a dataset physically split into partitions. Transformations
// execute eagerly on the engine's worker pool — one task per partition — and
// record measured work (records, bytes, shuffle traffic) into the engine's
// job metrics. The three mechanisms the paper's D-RAPID design leans on are
// all implemented for real:
//
//   * HashPartitioner — deterministic key → partition mapping, shared between
//     datasets so matching keys are colocated ("uniform partitioning",
//     Figure 3), which makes the join below shuffle-free;
//   * aggregate_by_key — map-side combining that collapses duplicate keys
//     before the expensive join ("key aggregation", Figure 3);
//   * left_outer_join — co-partitioned fast path joins partition i of the
//     left dataset against partition i of the right locally; inputs with
//     unknown or mismatched partitioning are shuffled first and the extra
//     bytes show up in the metrics (the ablation benchmark measures exactly
//     this difference).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "dataflow/engine.hpp"
#include "dataflow/ipc/wire.hpp"  // value codecs backing StageIO contracts
#include "util/flat_hash.hpp"  // stable_hash + the per-partition hash tables

namespace drapid {

// --- In-memory size estimation (for memory budgets and shuffle byte counts) -
//
// Contract: byte_size is a deterministic *estimator* of resident bytes, not
// allocator-exact accounting. It must be (a) stable across runs, platforms
// and container layout choices — it feeds shuffle-byte metrics that tests
// and the cluster model compare across configurations — and (b) cheap:
// O(1) wherever the element representation allows it. It estimates object
// footprint + owned heap payload; it ignores allocator slack, capacity
// beyond size, and heap-block headers.

inline std::size_t byte_size(const std::string& s) {
  // A short string stores its bytes inside the object (SSO): counting
  // s.size() on top of sizeof(std::string) would double-count them. The
  // bytes live out-of-line exactly when data() points outside the object.
  const auto obj = reinterpret_cast<std::uintptr_t>(&s);
  const auto data = reinterpret_cast<std::uintptr_t>(s.data());
  const bool inline_sso = data >= obj && data < obj + sizeof(std::string);
  return sizeof(std::string) + (inline_sso ? 0 : s.size());
}
template <typename T>
  requires std::is_arithmetic_v<T> || std::is_enum_v<T>
std::size_t byte_size(T) {
  return sizeof(T);
}
/// Fallback for flat user structs (no owned heap memory to account for).
template <typename T>
  requires(std::is_trivially_copyable_v<T> && !std::is_arithmetic_v<T> &&
           !std::is_enum_v<T>)
std::size_t byte_size(const T&) {
  return sizeof(T);
}
template <typename A, typename B>
std::size_t byte_size(const std::pair<A, B>& p);
template <typename T>
std::size_t byte_size(const std::vector<T>& v);
template <typename T>
std::size_t byte_size(const std::optional<T>& o);

namespace detail {
/// True when byte_size(e) == sizeof(T) for every value of T, i.e. the
/// element estimate is a constant. pair/optional are trivially copyable for
/// flat component types but their estimates sum components (skipping
/// padding), so they are excluded explicitly.
template <typename T>
inline constexpr bool flat_byte_size_v = std::is_trivially_copyable_v<T>;
template <typename A, typename B>
inline constexpr bool flat_byte_size_v<std::pair<A, B>> = false;
template <typename T>
inline constexpr bool flat_byte_size_v<std::optional<T>> = false;
}  // namespace detail

template <typename A, typename B>
std::size_t byte_size(const std::pair<A, B>& p) {
  return byte_size(p.first) + byte_size(p.second);
}
template <typename T>
std::size_t byte_size(const std::vector<T>& v) {
  // O(1) when the per-element estimate is the constant sizeof(T) — metrics
  // accounting for large flat vectors must not walk every record.
  if constexpr (detail::flat_byte_size_v<T>) {
    return sizeof(std::vector<T>) + v.size() * sizeof(T);
  } else {
    std::size_t total = sizeof(std::vector<T>);
    for (const auto& e : v) total += byte_size(e);
    return total;
  }
}
template <typename T>
std::size_t byte_size(const std::optional<T>& o) {
  return sizeof(bool) + (o ? byte_size(*o) : 0);
}

// --- Partitioner -------------------------------------------------------------

/// Deterministic hash partitioner. Two instances with the same partition
/// count and salt produce identical layouts — datasets partitioned by them
/// are co-partitioned, and id() encodes that equivalence.
struct HashPartitioner {
  std::size_t num_partitions = 1;
  std::uint64_t salt = 0x9e3779b97f4a7c15ULL;

  template <typename K>
  std::size_t of(const K& key) const {
    const std::uint64_t mixed = stable_hash(key) ^ salt;
    const auto n = static_cast<std::uint64_t>(num_partitions);
    // x % n == x & (n-1) for power-of-two n — same layout, no 64-bit divide
    // on the per-record shuffle path.
    if ((n & (n - 1)) == 0) return static_cast<std::size_t>(mixed & (n - 1));
    return static_cast<std::size_t>(mixed % n);
  }
  /// Nonzero identity; equal iff layouts are identical.
  std::uint64_t id() const {
    return (static_cast<std::uint64_t>(num_partitions) * 0x9e3779b97f4a7c15ULL) ^
           salt ^ 1ULL;
  }
};

// --- Rdd ---------------------------------------------------------------------

template <typename K, typename V>
struct Rdd {
  using Pair = std::pair<K, V>;
  std::vector<std::vector<Pair>> partitions;
  /// id() of the HashPartitioner that laid this dataset out; 0 = unknown.
  std::uint64_t partitioner_id = 0;
  /// Under the job-pool backend (PR 10) a transformation's output can stay
  /// resident in the worker processes instead of being shipped back: this
  /// handle names the worker-side partition set and the `partitions` vectors
  /// above are empty placeholders (sized for num_partitions()). All read
  /// paths below fetch through the handle; dropping the last Rdd that holds
  /// it releases the worker memory.
  std::shared_ptr<PoolSet> resident;

  std::size_t num_partitions() const { return partitions.size(); }
  std::size_t size() const {
    if (resident) {
      std::size_t total = 0;
      for (std::size_t p = 0; p < partitions.size(); ++p) {
        total += pool_set_records(resident, p);
      }
      return total;
    }
    std::size_t total = 0;
    for (const auto& p : partitions) total += p.size();
    return total;
  }
  std::size_t estimated_bytes() const {
    // Resident sets are decoded to run the exact same byte_size estimator
    // the local backend uses: this number feeds cache/spill decisions that
    // must not diverge between backends.
    if (resident) {
      std::size_t total = 0;
      for (std::size_t p = 0; p < partitions.size(); ++p) {
        const auto part = ipc::decode_payload<Pair>(pool_fetch(resident, p));
        for (const auto& kv : part) total += byte_size(kv);
      }
      return total;
    }
    std::size_t total = 0;
    for (const auto& p : partitions) {
      for (const auto& kv : p) total += byte_size(kv);
    }
    return total;
  }
  /// All pairs, partition by partition (deterministic).
  std::vector<Pair> collect() const {
    std::vector<Pair> all;
    if (resident) {
      for (std::size_t p = 0; p < partitions.size(); ++p) {
        auto part = ipc::decode_payload<Pair>(pool_fetch(resident, p));
        all.insert(all.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return all;
    }
    all.reserve(size());
    for (const auto& p : partitions) all.insert(all.end(), p.begin(), p.end());
    return all;
  }
};

/// Materializes a resident Rdd's partitions into the coordinator's memory
/// and drops the residency handle (releasing the worker-side copy once no
/// other Rdd shares it). No-op for already-local datasets. Call before code
/// that indexes `partitions` directly.
template <typename K, typename V>
void ensure_local(Rdd<K, V>& rdd) {
  if (!rdd.resident) return;
  for (std::size_t p = 0; p < rdd.partitions.size(); ++p) {
    rdd.partitions[p] =
        ipc::decode_payload<std::pair<K, V>>(pool_fetch(rdd.resident, p));
  }
  rdd.resident.reset();
}

// --- Transformations ---------------------------------------------------------

/// Distributes `pairs` round-robin into `num_partitions` chunks.
template <typename K, typename V>
Rdd<K, V> parallelize(Engine& engine, std::vector<std::pair<K, V>> pairs,
                      std::size_t num_partitions) {
  if (num_partitions == 0) num_partitions = 1;
  Rdd<K, V> rdd;
  rdd.partitions.resize(num_partitions);
  const std::size_t chunk = (pairs.size() + num_partitions - 1) /
                            std::max<std::size_t>(1, num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(begin + chunk, pairs.size());
    if (begin >= end) continue;
    rdd.partitions[p].assign(std::make_move_iterator(pairs.begin() + begin),
                             std::make_move_iterator(pairs.begin() + end));
  }
  auto& stage = engine.begin_stage("parallelize", num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    stage.tasks[p].records_out = rdd.partitions[p].size();
  }
  return rdd;
}

namespace detail {
/// StageIO contract for the common transformation shape "task p fills
/// exactly parts[p]": serialize ships the slot's records (from wherever the
/// body ran), absorb decodes them into the coordinator's slot. The wire
/// codecs round-trip every record byte-exactly, so a partition absorbed
/// from a worker process is indistinguishable from one computed in-process.
template <typename T>
StageIO vector_io(std::vector<std::vector<T>>& parts) {
  StageIO io;
  io.serialize = [&parts](std::size_t p) {
    return ipc::encode_payload(parts[p]);
  };
  io.absorb = [&parts](std::size_t p, const std::string& bytes) {
    parts[p] = ipc::decode_payload<T>(bytes);
  };
  return io;
}

template <typename K, typename V>
void record_input(TaskMetrics& task, const std::vector<std::pair<K, V>>& part) {
  task.records_in = part.size();
  for (const auto& kv : part) task.bytes_in += byte_size(kv);
  task.compute_cost = task.records_in;
}
template <typename K, typename V>
void record_output(TaskMetrics& task,
                   const std::vector<std::pair<K, V>>& part) {
  task.records_out = part.size();
  for (const auto& kv : part) task.bytes_out += byte_size(kv);
}

// --- Pooled stage kernels (PR 10) -------------------------------------------
//
// Under the job-pool process backend a stage cannot ship its body closure to
// the workers (they forked before it existed), so each transformation also
// compiles a *kernel*: a plain function that decodes its serialized inputs,
// applies the trivially-copyable closure bytes from the ctx, and returns the
// serialized output. Kernels travel by function pointer — parent and child
// are the same binary — and MUST fill TaskMetrics with exactly the numbers
// the local body records: the backends' stage reports are compared
// byte-for-byte in tests. Every kernel here mirrors its body line by line.

/// Returns `in` untouched when its partitions are locally materialized, or
/// decodes every resident partition into `storage` and returns that. Local
/// fallback paths read through this so bodies always see real vectors even
/// when an upstream pooled stage left its output worker-resident.
template <typename K, typename V>
const Rdd<K, V>& localized(const Rdd<K, V>& in, Rdd<K, V>& storage) {
  if (!in.resident) return in;
  storage.partitions.resize(in.num_partitions());
  storage.partitioner_id = in.partitioner_id;
  for (std::size_t p = 0; p < in.num_partitions(); ++p) {
    storage.partitions[p] =
        ipc::decode_payload<std::pair<K, V>>(pool_fetch(in.resident, p));
  }
  return storage;
}

/// Names where task p's input partition lives: by residency handle when the
/// upstream set is worker-resident (the zero-copy chain case), otherwise as
/// inline bytes (chain heads), recorded by the pool for lineage. Tasks past
/// the source count (partition_by's >= 1 source clamp) get an empty payload.
template <typename K, typename V>
void fill_pool_input(PoolInputRef& ref, const Rdd<K, V>& in, std::size_t p) {
  if (in.resident) {
    ref.set = in.resident;
    ref.partition = p;
  } else if (p < in.num_partitions()) {
    ref.inline_bytes = ipc::encode_payload(in.partitions[p]);
  } else {
    ref.inline_bytes = ipc::encode_payload(std::vector<std::pair<K, V>>{});
  }
}

template <typename K, typename V>
std::function<std::vector<PoolInputRef>(std::size_t)> pool_inputs(
    const Rdd<K, V>& in) {
  return [&in](std::size_t task) {
    std::vector<PoolInputRef> refs(1);
    fill_pool_input(refs[0], in, task);
    return refs;
  };
}

/// Body stub for plan-backed stages. The pool backend never invokes the
/// body; any other backend reaching this indicates a mis-gated plan (plans
/// are only built when pool_residency() is non-null), so fail loudly rather
/// than silently producing empty partitions.
inline std::function<void(TaskContext&)> unpooled_body() {
  return [](TaskContext&) {
    throw std::logic_error("pooled stage body must not execute");
  };
}

template <typename K, typename V, typename OutPair, typename Fn>
std::string map_pairs_kernel(const PoolTaskCtx& ctx) {
  std::aligned_storage_t<sizeof(Fn), alignof(Fn)> storage;
  const Fn& fn = pool_closure_cast<Fn>(*ctx.closure, storage);
  const auto part = ipc::decode_payload<std::pair<K, V>>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  record_input(task, part);
  std::vector<OutPair> out;
  out.reserve(part.size());
  for (const auto& kv : part) out.push_back(fn(kv));
  record_output(task, out);
  return ipc::encode_payload(out);
}

template <typename K, typename V, typename V2, typename Fn>
std::string map_values_kernel(const PoolTaskCtx& ctx) {
  std::aligned_storage_t<sizeof(Fn), alignof(Fn)> storage;
  const Fn& fn = pool_closure_cast<Fn>(*ctx.closure, storage);
  const auto part = ipc::decode_payload<std::pair<K, V>>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  record_input(task, part);
  std::vector<std::pair<K, V2>> out;
  out.reserve(part.size());
  for (const auto& kv : part) out.emplace_back(kv.first, fn(kv.second));
  record_output(task, out);
  return ipc::encode_payload(out);
}

template <typename K, typename V, typename Pred>
std::string filter_kernel(const PoolTaskCtx& ctx) {
  std::aligned_storage_t<sizeof(Pred), alignof(Pred)> storage;
  const Pred& pred = pool_closure_cast<Pred>(*ctx.closure, storage);
  const auto part = ipc::decode_payload<std::pair<K, V>>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  record_input(task, part);
  std::vector<std::pair<K, V>> out;
  for (const auto& kv : part) {
    if (pred(kv)) out.push_back(kv);
  }
  record_output(task, out);
  return ipc::encode_payload(out);
}

template <typename K, typename V, typename OutPair, typename Fn>
std::string flat_map_kernel(const PoolTaskCtx& ctx) {
  std::aligned_storage_t<sizeof(Fn), alignof(Fn)> storage;
  const Fn& fn = pool_closure_cast<Fn>(*ctx.closure, storage);
  const auto part = ipc::decode_payload<std::pair<K, V>>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  record_input(task, part);
  task.compute_cost = 0;  // reported by fn instead of records_in
  std::vector<OutPair> out;
  for (const auto& kv : part) {
    std::size_t cost = 0;
    auto produced = fn(kv.first, kv.second, cost);
    task.compute_cost += cost;
    for (auto& item : produced) out.push_back(std::move(item));
  }
  record_output(task, out);
  return ipc::encode_payload(out);
}

/// Trivially-copyable closure of the wide shuffle kernel.
struct WideSpec {
  HashPartitioner part;
  std::uint64_t executors = 1;
};

/// Wide kernel: routes each record of source partition ctx.partition into
/// per-target segments (the bundle format of dataflow/ipc/pool.hpp). The
/// worker keeps its own slot's segments and pushes the rest; record bytes
/// never pass through the coordinator.
template <typename K, typename V>
std::string partition_by_kernel(const PoolTaskCtx& ctx) {
  std::aligned_storage_t<sizeof(WideSpec), alignof(WideSpec)> storage;
  const WideSpec& spec = pool_closure_cast<WideSpec>(*ctx.closure, storage);
  const auto records =
      ipc::decode_payload<std::pair<K, V>>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  const std::size_t p = ctx.partition;
  const std::size_t targets = ctx.num_targets;
  task.records_in = records.size();
  task.compute_cost = task.records_in / 4;
  std::vector<ipc::WireWriter> segs(targets);
  std::vector<std::uint64_t> counts(targets, 0);
  for (const auto& kv : records) {
    const std::size_t target = spec.part.of(kv.first);
    const std::size_t bytes = byte_size(kv);
    task.bytes_in += bytes;
    if (target % spec.executors != p % spec.executors) {
      task.shuffle_bytes += bytes;
    }
    ipc::encode_value(segs[target], kv);
    ++counts[target];
  }
  task.records_out = task.records_in;
  task.bytes_out = task.bytes_in;
  ipc::WireWriter bundle;
  bundle.put_u64(targets);
  for (std::size_t t = 0; t < targets; ++t) {
    bundle.put_u64(counts[t]);
    bundle.put_u64(segs[t].buffer().size());
    bundle.put_bytes(segs[t].buffer().data(), segs[t].buffer().size());
  }
  return bundle.take();
}

/// Trivially-copyable closure of the map-side combine kernel.
template <typename Agg, typename Fold>
struct CombineSpec {
  Agg init;
  Fold fold;
};

template <typename T, typename = void>
inline constexpr bool eq_comparable_v = false;
template <typename T>
inline constexpr bool eq_comparable_v<
    T, std::void_t<decltype(std::declval<const T&>() ==
                            std::declval<const T&>())>> = true;

template <typename K, typename V, typename Agg, typename Fold>
std::string combine_kernel(const PoolTaskCtx& ctx) {
  using Spec = CombineSpec<Agg, Fold>;
  std::aligned_storage_t<sizeof(Spec), alignof(Spec)> storage;
  const Spec& spec = pool_closure_cast<Spec>(*ctx.closure, storage);
  const auto part = ipc::decode_payload<std::pair<K, V>>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  record_input(task, part);
  task.compute_cost = task.records_in / 4;  // hash-fold per record
  FlatHashMap<K, Agg> local;
  local.reserve(part.size());
  for (const auto& kv : part) {
    auto [entry, inserted] = local.try_emplace(kv.first, spec.init);
    spec.fold(entry->second, kv.second);
  }
  auto combined = local.take_entries();
  record_output(task, combined);
  return ipc::encode_payload(combined);
}

/// Combine kernel for accumulators that are not trivially copyable (e.g.
/// std::string) but whose init value is default-constructed: only the fold
/// closure ships, and the worker materializes `Agg{}` per key itself.
template <typename K, typename V, typename Agg, typename Fold>
std::string combine_default_kernel(const PoolTaskCtx& ctx) {
  std::aligned_storage_t<sizeof(Fold), alignof(Fold)> storage;
  const Fold& fold = pool_closure_cast<Fold>(*ctx.closure, storage);
  const auto part = ipc::decode_payload<std::pair<K, V>>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  record_input(task, part);
  task.compute_cost = task.records_in / 4;  // hash-fold per record
  FlatHashMap<K, Agg> local;
  local.reserve(part.size());
  for (const auto& kv : part) {
    auto [entry, inserted] = local.try_emplace(kv.first, Agg{});
    fold(entry->second, kv.second);
  }
  auto combined = local.take_entries();
  record_output(task, combined);
  return ipc::encode_payload(combined);
}

template <typename K, typename Agg, typename Merge>
std::string merge_kernel(const PoolTaskCtx& ctx) {
  std::aligned_storage_t<sizeof(Merge), alignof(Merge)> storage;
  const Merge& merge = pool_closure_cast<Merge>(*ctx.closure, storage);
  auto part = ipc::decode_payload<std::pair<K, Agg>>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  record_input(task, part);
  task.compute_cost = task.records_in / 4;  // hash-merge per record
  FlatHashMap<K, Agg> local;
  local.reserve(part.size());
  for (auto& kv : part) {
    auto [entry, inserted] =
        local.try_emplace(kv.first, std::move(kv.second));
    if (!inserted) merge(entry->second, std::move(kv.second));
  }
  auto out = local.take_entries();
  record_output(task, out);
  return ipc::encode_payload(out);
}

/// Join kernel: inputs.at(0) = left partition p, inputs.at(1) = right
/// partition p (both already conforming to the join partitioner). Stateless
/// — the plan ships an empty closure.
template <typename K, typename V, typename W>
std::string join_kernel(const PoolTaskCtx& ctx) {
  const auto lhs = ipc::decode_payload<std::pair<K, V>>(*ctx.inputs.at(0));
  const auto rhs = ipc::decode_payload<std::pair<K, W>>(*ctx.inputs.at(1));
  auto& task = *ctx.metrics;
  record_input(task, lhs);
  FlatHashMultiMap<K, const W*> index;
  index.reserve(rhs.size());
  for (const auto& kv : rhs) {
    index.emplace(kv.first, &kv.second);
    task.bytes_in += byte_size(kv);
  }
  task.records_in += rhs.size();
  std::vector<std::pair<K, std::pair<V, std::optional<W>>>> out;
  out.reserve(lhs.size());
  for (const auto& kv : lhs) {
    const bool matched = index.for_each(kv.first, [&](const W* w) {
      out.emplace_back(std::piecewise_construct,
                       std::forward_as_tuple(kv.first),
                       std::forward_as_tuple(kv.second, *w));
    });
    if (!matched) {
      out.emplace_back(std::piecewise_construct,
                       std::forward_as_tuple(kv.first),
                       std::forward_as_tuple(kv.second, std::nullopt));
    }
  }
  record_output(task, out);
  return ipc::encode_payload(out);
}
}  // namespace detail

/// 1:1 transformation of whole pairs. Set `preserves_partitioning` only when
/// `fn` never changes keys.
template <typename K, typename V, typename Fn>
auto map_pairs(Engine& engine, const Rdd<K, V>& in, Fn&& fn,
               const std::string& name = "map_pairs",
               bool preserves_partitioning = false) {
  using OutPair = decltype(fn(std::declval<const std::pair<K, V>&>()));
  using FnT = std::decay_t<Fn>;
  Rdd<typename OutPair::first_type, typename OutPair::second_type> out;
  out.partitions.resize(in.num_partitions());
  out.partitioner_id = preserves_partitioning ? in.partitioner_id : 0;
  auto& stage = engine.begin_stage(name, in.num_partitions());
  if constexpr (std::is_trivially_copyable_v<FnT>) {
    if (engine.pool_residency() != nullptr && in.num_partitions() > 0) {
      PoolStagePlan plan;
      plan.kernel = &detail::map_pairs_kernel<K, V, OutPair, FnT>;
      plan.closure = pool_closure_bytes<FnT>(fn);
      plan.inputs = detail::pool_inputs(in);
      engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
      out.resident = std::move(plan.out);
      return out;
    }
  }
  Rdd<K, V> stor;
  const Rdd<K, V>& src = detail::localized(in, stor);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, src.partitions[p]);
    out.partitions[p].reserve(src.partitions[p].size());
    for (const auto& kv : src.partitions[p]) out.partitions[p].push_back(fn(kv));
    detail::record_output(task, out.partitions[p]);
  }, detail::vector_io(out.partitions));
  return out;
}

/// Value-only transformation; always preserves partitioning.
template <typename K, typename V, typename Fn>
auto map_values(Engine& engine, const Rdd<K, V>& in, Fn&& fn,
                const std::string& name = "map_values") {
  using V2 = decltype(fn(std::declval<const V&>()));
  using FnT = std::decay_t<Fn>;
  Rdd<K, V2> out;
  out.partitions.resize(in.num_partitions());
  out.partitioner_id = in.partitioner_id;
  auto& stage = engine.begin_stage(name, in.num_partitions());
  if constexpr (std::is_trivially_copyable_v<FnT>) {
    if (engine.pool_residency() != nullptr && in.num_partitions() > 0) {
      PoolStagePlan plan;
      plan.kernel = &detail::map_values_kernel<K, V, V2, FnT>;
      plan.closure = pool_closure_bytes<FnT>(fn);
      plan.inputs = detail::pool_inputs(in);
      engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
      out.resident = std::move(plan.out);
      return out;
    }
  }
  Rdd<K, V> stor;
  const Rdd<K, V>& src = detail::localized(in, stor);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, src.partitions[p]);
    out.partitions[p].reserve(src.partitions[p].size());
    for (const auto& kv : src.partitions[p]) {
      out.partitions[p].emplace_back(kv.first, fn(kv.second));
    }
    detail::record_output(task, out.partitions[p]);
  }, detail::vector_io(out.partitions));
  return out;
}

/// Keeps pairs where `pred(pair)` is true; preserves partitioning.
template <typename K, typename V, typename Pred>
Rdd<K, V> filter_pairs(Engine& engine, const Rdd<K, V>& in, Pred&& pred,
                       const std::string& name = "filter") {
  using PredT = std::decay_t<Pred>;
  Rdd<K, V> out;
  out.partitions.resize(in.num_partitions());
  out.partitioner_id = in.partitioner_id;
  auto& stage = engine.begin_stage(name, in.num_partitions());
  if constexpr (std::is_trivially_copyable_v<PredT>) {
    if (engine.pool_residency() != nullptr && in.num_partitions() > 0) {
      PoolStagePlan plan;
      plan.kernel = &detail::filter_kernel<K, V, PredT>;
      plan.closure = pool_closure_bytes<PredT>(pred);
      plan.inputs = detail::pool_inputs(in);
      engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
      out.resident = std::move(plan.out);
      return out;
    }
  }
  Rdd<K, V> stor;
  const Rdd<K, V>& src = detail::localized(in, stor);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, src.partitions[p]);
    for (const auto& kv : src.partitions[p]) {
      if (pred(kv)) out.partitions[p].push_back(kv);
    }
    detail::record_output(task, out.partitions[p]);
  }, detail::vector_io(out.partitions));
  return out;
}

/// 1:many transformation with caller-reported compute cost:
/// fn(key, value, cost_inout) -> vector<pair<K2, V2>>.
template <typename K, typename V, typename Fn>
auto flat_map_metered(Engine& engine, const Rdd<K, V>& in, Fn&& fn,
                      const std::string& name = "flat_map") {
  using OutVec = decltype(fn(std::declval<const K&>(), std::declval<const V&>(),
                             std::declval<std::size_t&>()));
  using OutPair = typename OutVec::value_type;
  using FnT = std::decay_t<Fn>;
  Rdd<typename OutPair::first_type, typename OutPair::second_type> out;
  out.partitions.resize(in.num_partitions());
  auto& stage = engine.begin_stage(name, in.num_partitions());
  if constexpr (std::is_trivially_copyable_v<FnT>) {
    if (engine.pool_residency() != nullptr && in.num_partitions() > 0) {
      PoolStagePlan plan;
      plan.kernel = &detail::flat_map_kernel<K, V, OutPair, FnT>;
      plan.closure = pool_closure_bytes<FnT>(fn);
      plan.inputs = detail::pool_inputs(in);
      engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
      out.resident = std::move(plan.out);
      return out;
    }
  }
  Rdd<K, V> stor;
  const Rdd<K, V>& src = detail::localized(in, stor);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, src.partitions[p]);
    task.compute_cost = 0;  // reported by fn instead of records_in
    for (const auto& kv : src.partitions[p]) {
      std::size_t cost = 0;
      auto produced = fn(kv.first, kv.second, cost);
      task.compute_cost += cost;
      for (auto& item : produced) {
        out.partitions[p].push_back(std::move(item));
      }
    }
    detail::record_output(task, out.partitions[p]);
  }, detail::vector_io(out.partitions));
  return out;
}

/// Wide transformation: re-buckets every pair by `partitioner`. Bytes that
/// land on a different modeled executor than they started on are counted as
/// shuffle traffic (partition p lives on executor p mod num_executors).
template <typename K, typename V>
Rdd<K, V> partition_by(Engine& engine, const Rdd<K, V>& in,
                       const HashPartitioner& partitioner,
                       const std::string& name = "partition_by") {
  const std::size_t sources = std::max<std::size_t>(1, in.num_partitions());
  const std::size_t targets = partitioner.num_partitions;
  const std::size_t executors = std::max<std::size_t>(
      1, engine.config().num_executors);
  Rdd<K, V> out;
  out.partitions.resize(targets);
  out.partitioner_id = partitioner.id();

  if (engine.pool_residency() != nullptr) {
    // Worker-routed shuffle: each source task runs the wide kernel, keeps
    // the segments owned by its own worker slot and pushes the rest
    // worker-to-worker through the parent. The shuffled records never enter
    // the coordinator; the output stays resident.
    auto& stage = engine.begin_stage(name, sources);
    PoolStagePlan plan;
    plan.kind = PoolStagePlan::Kind::kWide;
    plan.kernel = &detail::partition_by_kernel<K, V>;
    detail::WideSpec spec{partitioner, static_cast<std::uint64_t>(executors)};
    plan.closure = pool_closure_bytes(spec);
    plan.num_targets = targets;
    plan.inputs = detail::pool_inputs(in);
    engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
    out.resident = std::move(plan.out);
    return out;
  }
  Rdd<K, V> stor;
  const Rdd<K, V>& src = detail::localized(in, stor);

  // Two passes, no intermediate buckets: pass 1 hashes each record once,
  // remembering its target and counting per (source, target); pass 2 copies
  // every record directly into its final slot. Target partition t holds
  // source 0's records for t in order, then source 1's, ... — the same
  // deterministic layout the old bucket-then-gather version produced.
  std::vector<std::vector<std::uint32_t>> target_of(sources);
  std::vector<std::vector<std::size_t>> counts(
      sources, std::vector<std::size_t>(targets, 0));
  auto& stage = engine.begin_stage(name, sources);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    if (p >= src.num_partitions()) return;  // sources is clamped to >= 1
    auto& task = ctx.metrics();
    const auto& records = src.partitions[p];
    task.records_in = records.size();
    // Bucketing is a hash + copy per record — far cheaper than a parse or
    // search step; the bytes cost is paid at the network term.
    task.compute_cost = task.records_in / 4;
    target_of[p].resize(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      const std::size_t target = partitioner.of(records[i].first);
      target_of[p][i] = static_cast<std::uint32_t>(target);
      ++counts[p][target];
      // One byte_size walk, shared by the input and shuffle byte counts.
      const std::size_t bytes = byte_size(records[i]);
      task.bytes_in += bytes;
      if (target % executors != p % executors) task.shuffle_bytes += bytes;
    }
    task.records_out = task.records_in;
    task.bytes_out = task.bytes_in;
  }, [&] {
    // Process-backend contract: ship the per-record routing map (4 bytes a
    // record — the records themselves never cross; the placement pass below
    // reads them from the coordinator's own copy of `in`) and rebuild the
    // per-target counts from it on absorb.
    StageIO io;
    io.serialize = [&target_of](std::size_t p) {
      return ipc::encode_payload(target_of[p]);
    };
    io.absorb = [&target_of, &counts, targets](std::size_t p,
                                               const std::string& bytes) {
      target_of[p] = ipc::decode_payload<std::uint32_t>(bytes);
      auto& count = counts[p];
      count.assign(targets, 0);
      for (const std::uint32_t t : target_of[p]) {
        if (t >= targets) {
          throw ipc::WireError("partition_by routing target out of range");
        }
        ++count[t];
      }
    };
    return io;
  }());
  // offsets[s][t] = where source s's run starts inside target t.
  std::vector<std::vector<std::size_t>> offsets(
      sources, std::vector<std::size_t>(targets, 0));
  for (std::size_t t = 0; t < targets; ++t) {
    std::size_t total = 0;
    for (std::size_t s = 0; s < sources; ++s) {
      offsets[s][t] = total;
      total += counts[s][t];
    }
    out.partitions[t].resize(total);
  }
  // Sources write disjoint slices of each target, so this parallelizes
  // without synchronization.
  engine.pool().parallel_for(sources, [&](std::size_t s) {
    if (s >= src.num_partitions()) return;
    const auto& records = src.partitions[s];
    auto& cursor = offsets[s];
    for (std::size_t i = 0; i < records.size(); ++i) {
      const std::uint32_t t = target_of[s][i];
      out.partitions[t][cursor[t]++] = records[i];
    }
  });
  return out;
}

/// Map-side combine + (if needed) shuffle + final merge. `fold(agg, v)`
/// folds one value into a per-key accumulator initialized with `init`;
/// `merge(agg, other)` combines accumulators from different partitions.
/// The result is partitioned by `partitioner`; if `in` already is, the
/// aggregation is purely local (zero shuffle — the Figure 3 optimization).
template <typename K, typename V, typename Agg, typename Fold, typename Merge>
Rdd<K, Agg> aggregate_by_key(Engine& engine, const Rdd<K, V>& in,
                             const Agg& init, Fold&& fold, Merge&& merge,
                             const HashPartitioner& partitioner,
                             const std::string& name = "aggregate_by_key") {
  using FoldT = std::decay_t<Fold>;
  using MergeT = std::decay_t<Merge>;
  // Map-side combine per partition.
  Rdd<K, Agg> combined;
  combined.partitions.resize(in.num_partitions());
  combined.partitioner_id = in.partitioner_id;
  auto& stage = engine.begin_stage(name + ":combine", in.num_partitions());
  bool pooled_combine = false;
  if constexpr (std::is_trivially_copyable_v<detail::CombineSpec<Agg, FoldT>>) {
    if (engine.pool_residency() != nullptr && in.num_partitions() > 0) {
      PoolStagePlan plan;
      plan.kernel = &detail::combine_kernel<K, V, Agg, FoldT>;
      detail::CombineSpec<Agg, FoldT> spec{init, fold};
      plan.closure = pool_closure_bytes(spec);
      plan.inputs = detail::pool_inputs(in);
      engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
      combined.resident = std::move(plan.out);
      pooled_combine = true;
    }
  } else if constexpr (std::is_trivially_copyable_v<FoldT> &&
                       std::is_default_constructible_v<Agg> &&
                       detail::eq_comparable_v<Agg>) {
    // The accumulator itself can't ship by bytes, but when the caller's init
    // is just a default-constructed value the worker can rebuild it locally.
    if (engine.pool_residency() != nullptr && in.num_partitions() > 0 &&
        init == Agg{}) {
      PoolStagePlan plan;
      plan.kernel = &detail::combine_default_kernel<K, V, Agg, FoldT>;
      plan.closure = pool_closure_bytes<FoldT>(fold);
      plan.inputs = detail::pool_inputs(in);
      engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
      combined.resident = std::move(plan.out);
      pooled_combine = true;
    }
  }
  if (!pooled_combine) {
    Rdd<K, V> stor;
    const Rdd<K, V>& src = detail::localized(in, stor);
    engine.run_stage(stage, [&](TaskContext& ctx) {
      const std::size_t p = ctx.partition();
      auto& task = ctx.metrics();
      detail::record_input(task, src.partitions[p]);
      task.compute_cost = task.records_in / 4;  // hash-fold per record
      // Accumulators live densely in the flat map in first-encounter order —
      // a pure function of the partition's record sequence, so the emitted
      // layout is identical across thread counts and hash-table capacities.
      FlatHashMap<K, Agg> local;
      local.reserve(src.partitions[p].size());
      for (const auto& kv : src.partitions[p]) {
        auto [entry, inserted] = local.try_emplace(kv.first, init);
        fold(entry->second, kv.second);
      }
      combined.partitions[p] = local.take_entries();
      detail::record_output(task, combined.partitions[p]);
    }, detail::vector_io(combined.partitions));
  }

  const bool copartitioned =
      combined.partitioner_id == partitioner.id() &&
      combined.num_partitions() == partitioner.num_partitions;
  Rdd<K, Agg> shuffled =
      copartitioned ? std::move(combined)
                    : partition_by(engine, combined, partitioner,
                                   name + ":shuffle");

  // Final merge of accumulators that met in the same partition.
  Rdd<K, Agg> out;
  out.partitions.resize(shuffled.num_partitions());
  out.partitioner_id = partitioner.id();
  auto& merge_stage =
      engine.begin_stage(name + ":merge", shuffled.num_partitions());
  if constexpr (std::is_trivially_copyable_v<MergeT>) {
    if (engine.pool_residency() != nullptr && shuffled.num_partitions() > 0) {
      PoolStagePlan plan;
      plan.kernel = &detail::merge_kernel<K, Agg, MergeT>;
      plan.closure = pool_closure_bytes<MergeT>(merge);
      plan.inputs = detail::pool_inputs(shuffled);
      engine.run_stage(merge_stage, detail::unpooled_body(), {}, &plan);
      out.resident = std::move(plan.out);
      return out;
    }
  }
  ensure_local(shuffled);  // the merge body consumes its input by move
  engine.run_stage(merge_stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, shuffled.partitions[p]);
    task.compute_cost = task.records_in / 4;  // hash-merge per record
    FlatHashMap<K, Agg> local;
    local.reserve(shuffled.partitions[p].size());
    for (auto& kv : shuffled.partitions[p]) {
      auto [entry, inserted] = local.try_emplace(kv.first, std::move(kv.second));
      if (!inserted) merge(entry->second, std::move(kv.second));
    }
    out.partitions[p] = local.take_entries();
    detail::record_output(task, out.partitions[p]);
  }, detail::vector_io(out.partitions));
  return out;
}

/// reduce_by_key specialization of aggregate_by_key.
template <typename K, typename V, typename Reduce>
Rdd<K, V> reduce_by_key(Engine& engine, const Rdd<K, V>& in, Reduce&& reduce,
                        const HashPartitioner& partitioner,
                        const std::string& name = "reduce_by_key") {
  // `reduce` is captured by value so the fold/merge closures stay trivially
  // copyable whenever it is — the property that lets the job-pool backend
  // ship them to resident workers as raw bytes.
  auto wrapped = aggregate_by_key(
      engine, in, std::optional<V>{},
      [reduce](std::optional<V>& agg, const V& v) {
        if (agg) {
          *agg = reduce(*agg, v);
        } else {
          agg = v;
        }
      },
      [reduce](std::optional<V>& agg, std::optional<V>&& other) {
        if (agg && other) {
          *agg = reduce(*agg, *other);
        } else if (other) {
          agg = std::move(other);
        }
      },
      partitioner, name);
  // Unwrap the optional: every surviving key folded at least one value.
  return map_values(
      engine, wrapped, [](const std::optional<V>& v) { return *v; },
      name + ":unwrap");
}

/// Left outer join. Every left pair yields (v, matching right value or
/// nullopt). If both inputs are already laid out by `partitioner`, the join
/// is partition-local with zero shuffle; otherwise the non-conforming side(s)
/// are shuffled first and the traffic is recorded (the ablation measures
/// this difference).
template <typename K, typename V, typename W>
Rdd<K, std::pair<V, std::optional<W>>> left_outer_join(
    Engine& engine, const Rdd<K, V>& left, const Rdd<K, W>& right,
    const HashPartitioner& partitioner,
    const std::string& name = "left_outer_join") {
  const auto conforms = [&](std::uint64_t pid, std::size_t parts) {
    return pid == partitioner.id() && parts == partitioner.num_partitions;
  };
  const Rdd<K, V>* lhs = &left;
  Rdd<K, V> lhs_shuffled;
  if (!conforms(left.partitioner_id, left.num_partitions())) {
    lhs_shuffled = partition_by(engine, left, partitioner, name + ":shuffleL");
    lhs = &lhs_shuffled;
  }
  const Rdd<K, W>* rhs = &right;
  Rdd<K, W> rhs_shuffled;
  if (!conforms(right.partitioner_id, right.num_partitions())) {
    rhs_shuffled = partition_by(engine, right, partitioner, name + ":shuffleR");
    rhs = &rhs_shuffled;
  }

  Rdd<K, std::pair<V, std::optional<W>>> out;
  out.partitions.resize(partitioner.num_partitions);
  out.partitioner_id = partitioner.id();
  auto& stage = engine.begin_stage(name, partitioner.num_partitions);
  if (engine.pool_residency() != nullptr && partitioner.num_partitions > 0) {
    // Both sides conform to `partitioner` here, and conforming sets produced
    // by the pool's wide stages place partition p on the same worker slot —
    // so a co-partitioned join reads both inputs locally in the worker.
    PoolStagePlan plan;
    plan.kernel = &detail::join_kernel<K, V, W>;  // stateless: empty closure
    plan.inputs = [&left = *lhs, &right = *rhs](std::size_t task) {
      std::vector<PoolInputRef> refs(2);
      detail::fill_pool_input(refs[0], left, task);
      detail::fill_pool_input(refs[1], right, task);
      return refs;
    };
    engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
    out.resident = std::move(plan.out);
    return out;
  }
  Rdd<K, V> lstor;
  Rdd<K, W> rstor;
  const Rdd<K, V>* jl = &detail::localized(*lhs, lstor);
  const Rdd<K, W>* jr = &detail::localized(*rhs, rstor);
  engine.run_stage(stage, [&, lhs = jl, rhs = jr](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, lhs->partitions[p]);
    // Build side: duplicate right keys keep partition order in the chain,
    // so matches are emitted deterministically per left record.
    FlatHashMultiMap<K, const W*> index;
    index.reserve(rhs->partitions[p].size());
    for (const auto& kv : rhs->partitions[p]) {
      index.emplace(kv.first, &kv.second);
      task.bytes_in += byte_size(kv);
    }
    task.records_in += rhs->partitions[p].size();
    // Exact when right keys are unique, a lower bound otherwise.
    out.partitions[p].reserve(lhs->partitions[p].size());
    for (const auto& kv : lhs->partitions[p]) {
      const bool matched = index.for_each(kv.first, [&](const W* w) {
        out.partitions[p].emplace_back(std::piecewise_construct,
                                       std::forward_as_tuple(kv.first),
                                       std::forward_as_tuple(kv.second, *w));
      });
      if (!matched) {
        out.partitions[p].emplace_back(std::piecewise_construct,
                                       std::forward_as_tuple(kv.first),
                                       std::forward_as_tuple(kv.second,
                                                            std::nullopt));
      }
    }
    detail::record_output(task, out.partitions[p]);
  }, detail::vector_io(out.partitions));
  return out;
}

}  // namespace drapid
