// Multi-process stage execution over Unix-domain sockets.
//
// ProcessExecutor is the first backend that runs stage bodies in real OS
// processes, turning the engine's "modeled executors" into actual workers.
// Per stage it forks N children (round-robin task assignment, deterministic),
// each of which runs its tasks sequentially on its only thread and ships
// every completed task back as one checksummed wire frame (ipc/wire.hpp);
// the coordinator absorbs frames through the stage's StageIO contract.
//
// Fork-per-stage is what makes arbitrary C++ closures shippable: the child
// inherits the body, its captured RDD partitions, and the FaultInjector via
// copy-on-write, so nothing is serialized on the way *in* — only declared
// task outputs come back. The costs of that choice are contained here:
//
//   * Children must never touch the parent's thread pool (its workers do
//     not exist after fork) — bodies run inline on the child's main thread.
//   * Children exit with _exit(), never exit(): running atexit handlers or
//     flushing inherited stdio in a forked copy corrupts the parent's state.
//   * A child closes every other worker's parent-side socket before running
//     tasks; an inherited duplicate would keep a dead sibling's socket open
//     and mask the EOF that death detection relies on.
//   * Engine state mutated in a child (metrics, counters, spill counters)
//     lands in the child's COW copy and is discarded — everything the
//     coordinator needs rides the wire frame.
//
// Failure model: a worker that dies (socket EOF or a corrupt frame —
// indistinguishable from SIGKILL mid-write, and treated the same) charges
// one attempt to each of its unfinished tasks, exactly like an injected
// task kill under the local backend. If any task's budget survives, a
// replacement worker (incarnation + 1) is forked for the remainder;
// FaultInjector::kill_worker only fires at incarnation 0, so planned kills
// always recover deterministically. A task whose budget is exhausted fails
// the stage with the same TaskFailure the local backend throws.
//
// Stages without a StageIO contract (spill I/O, in-memory cache bookkeeping)
// and TSan builds (fork of a multithreaded process deadlocks the sanitizer
// runtime) fall back to the in-process LocalExecutor path.
#pragma once

#include <cstddef>
#include <memory>

#include "dataflow/executor.hpp"
#include "util/exec_policy.hpp"

namespace drapid {

class WorkerPool;

/// False when the build cannot fork workers (thread sanitizer); the engine
/// then silently downgrades a process policy to the local backend.
bool process_executor_supported();

class ProcessExecutor : public Executor {
 public:
  /// `workers` is clamped to at least 1. In PoolMode::kStage each stage
  /// forks at most min(workers, tasks) children (PR 7 fork-per-stage,
  /// preserved verbatim as the comparison oracle). In PoolMode::kJob (the
  /// default) a job-lifetime WorkerPool of exactly `workers` processes is
  /// forked at the first pooled stage and reused until destruction.
  ProcessExecutor(Engine& engine, std::size_t workers,
                  PoolMode pool = PoolMode::kJob);
  ~ProcessExecutor() override;

  const char* name() const override { return "process"; }
  std::size_t workers() const override { return workers_; }
  void run_stage_tasks(StageRun run) override;
  PoolResidency* residency() override;

 private:
  void run_stage_tasks_forked(StageRun run);  ///< PR 7 fork-per-stage path

  Engine& engine_;
  std::size_t workers_;
  PoolMode mode_;
  LocalExecutor local_;  ///< fallback for stages without a StageIO contract
  std::unique_ptr<WorkerPool> pool_;  ///< kJob only; forks lazily
};

}  // namespace drapid
