#include "dedisp/single_pulse_search.hpp"

#include <algorithm>
#include <cmath>

#include "synth/dispersion.hpp"

namespace drapid {

std::vector<double> dedisperse(const Filterbank& fb, double dm) {
  const std::size_t n = fb.num_samples();
  const double dt_s = fb.config().sample_time_ms * 1e-3;
  std::vector<double> series(n, 0.0);
  std::vector<std::size_t> contributors(n, 0);
  // Shifts are relative to the highest-frequency channel (channel 0).
  const double ref_delay = dispersion_delay_s(dm, fb.channel_freq_mhz(0));
  for (std::size_t c = 0; c < fb.num_channels(); ++c) {
    const double delay =
        dispersion_delay_s(dm, fb.channel_freq_mhz(c)) - ref_delay;
    const auto shift = static_cast<std::size_t>(delay / dt_s + 0.5);
    for (std::size_t s = 0; s + shift < n; ++s) {
      series[s] += fb.at(c, s + shift);
      ++contributors[s];
    }
  }
  // Normalize partial sums at the tail so the noise level stays uniform.
  const double full = static_cast<double>(fb.num_channels());
  for (std::size_t s = 0; s < n; ++s) {
    if (contributors[s] > 0 && contributors[s] < fb.num_channels()) {
      series[s] *= full / static_cast<double>(contributors[s]);
    }
  }
  return series;
}

namespace {

/// Robust location/scale from the median and the median absolute deviation.
std::pair<double, double> robust_stats(std::vector<double> values) {
  if (values.empty()) return {0.0, 1.0};
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                   values.end());
  const double median = values[mid];
  for (auto& v : values) v = std::abs(v - median);
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                   values.end());
  const double mad = values[mid];
  const double sigma = mad > 1e-12 ? mad * 1.4826 : 1.0;
  return {median, sigma};
}

}  // namespace

std::vector<SinglePulseEvent> detect_events(
    const std::vector<double>& series, double dm, double sample_time_ms,
    const SinglePulseSearchParams& params) {
  std::vector<SinglePulseEvent> events;
  const std::size_t n = series.size();
  if (n == 0) return events;
  const auto [median, sigma] = robust_stats(series);

  // best S/N and width per sample across boxcars
  std::vector<double> best_snr(n, 0.0);
  std::vector<int> best_width(n, 1);
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    prefix[s + 1] = prefix[s] + (series[s] - median);
  }
  for (int w : params.boxcar_widths) {
    if (w <= 0 || static_cast<std::size_t>(w) > n) continue;
    const double norm = sigma * std::sqrt(static_cast<double>(w));
    for (std::size_t s = 0; s + static_cast<std::size_t>(w) <= n; ++s) {
      const double snr = (prefix[s + static_cast<std::size_t>(w)] - prefix[s]) /
                         norm;
      // Attribute the detection to the boxcar's central sample.
      const std::size_t center = s + static_cast<std::size_t>(w) / 2;
      if (snr > best_snr[center]) {
        best_snr[center] = snr;
        best_width[center] = w;
      }
    }
  }

  // Local maxima above threshold, merging anything within the detecting
  // width (one event per pulse, PRESTO-style).
  std::size_t s = 0;
  while (s < n) {
    if (best_snr[s] < params.snr_threshold) {
      ++s;
      continue;
    }
    // Extend over the contiguous above-threshold island; keep the peak.
    std::size_t peak = s;
    std::size_t end = s;
    while (end < n && best_snr[end] >= params.snr_threshold) {
      if (best_snr[end] > best_snr[peak]) peak = end;
      ++end;
    }
    SinglePulseEvent e;
    e.dm = dm;
    e.snr = best_snr[peak];
    e.sample = static_cast<std::int64_t>(peak);
    e.time_s = static_cast<double>(peak) * sample_time_ms * 1e-3;
    e.downfact = best_width[peak];
    events.push_back(e);
    s = end;
  }
  return events;
}

std::vector<SinglePulseEvent> single_pulse_search(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params) {
  std::vector<SinglePulseEvent> events;
  const std::size_t stride = std::max<std::size_t>(1, params.dm_stride);
  for (std::size_t trial = 0; trial < grid.size(); trial += stride) {
    const double dm = grid.dm_at(trial);
    const auto series = dedisperse(fb, dm);
    const auto found =
        detect_events(series, dm, fb.config().sample_time_ms, params);
    events.insert(events.end(), found.begin(), found.end());
  }
  std::sort(events.begin(), events.end(),
            [](const SinglePulseEvent& a, const SinglePulseEvent& b) {
              if (a.dm != b.dm) return a.dm < b.dm;
              return a.time_s < b.time_s;
            });
  return events;
}

}  // namespace drapid
