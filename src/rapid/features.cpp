#include "rapid/features.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace drapid {

const std::array<std::string, PulseFeatures::kCount>& PulseFeatures::names() {
  static const std::array<std::string, kCount> kNames = {
      "NumSpes",     "DmRange",    "SNRMax",      "SNRMin",
      "AvgSNR",      "SNRStdDev",  "SNRPeakDM",   "DMCentroid",
      "Duration",    "TimeStdDev", "SlopeLeft",   "SlopeRight",
      "FitR2Left",   "FitR2Right", "SNRSkewness", "SNRKurtosis",
      "StartTime",   "StopTime",   "ClusterRank", "PulseRank",
      "DMSpacing",   "SNRRatio"};
  return kNames;
}

PulseFeatures extract_features(std::span<const SinglePulseEvent> events,
                               const SinglePulse& pulse,
                               const ClusterRecord& cluster, const DmGrid& grid,
                               int pulse_rank) {
  if (pulse.end > events.size() || pulse.begin >= pulse.end) {
    throw std::invalid_argument("pulse range out of bounds");
  }
  const auto span = events.subspan(pulse.begin, pulse.size());
  std::vector<double> dms, snrs, times;
  dms.reserve(span.size());
  snrs.reserve(span.size());
  times.reserve(span.size());
  for (const auto& e : span) {
    dms.push_back(e.dm);
    snrs.push_back(e.snr);
    times.push_back(e.time_s);
  }

  PulseFeatures f;
  auto& v = f.values;
  v[kNumSpes] = static_cast<double>(span.size());
  const auto [dm_lo, dm_hi] = std::minmax_element(dms.begin(), dms.end());
  v[kDmRange] = *dm_hi - *dm_lo;
  const auto [snr_lo, snr_hi] = std::minmax_element(snrs.begin(), snrs.end());
  v[kSnrMax] = *snr_hi;
  v[kSnrMin] = *snr_lo;
  v[kAvgSnr] = mean(snrs);
  v[kSnrStdDev] = stddev(snrs);
  v[kSnrPeakDm] = events[pulse.peak].dm;

  double weighted = 0.0, weight_sum = 0.0;
  for (const auto& e : span) {
    weighted += e.dm * e.snr;
    weight_sum += e.snr;
  }
  v[kDmCentroid] = weight_sum > 0.0 ? weighted / weight_sum : 0.0;

  const auto [t_lo, t_hi] = std::minmax_element(times.begin(), times.end());
  v[kDuration] = *t_hi - *t_lo;
  v[kTimeStdDev] = stddev(times);

  // Rising/falling side fits around the peak (peak index is absolute; make
  // it relative to the pulse span).
  const std::size_t peak_rel = pulse.peak - pulse.begin;
  const auto left_n = peak_rel + 1;
  const auto right_n = span.size() - peak_rel;
  const LinearFit left = linear_regression(
      std::span(dms).subspan(0, left_n), std::span(snrs).subspan(0, left_n));
  const LinearFit right =
      linear_regression(std::span(dms).subspan(peak_rel, right_n),
                        std::span(snrs).subspan(peak_rel, right_n));
  v[kSlopeLeft] = left.slope;
  v[kSlopeRight] = right.slope;
  v[kFitR2Left] = left.r_squared;
  v[kFitR2Right] = right.r_squared;

  v[kSnrSkewness] = skewness(snrs);
  v[kSnrKurtosis] = excess_kurtosis(snrs);

  v[kStartTime] = cluster.time_min;
  v[kStopTime] = cluster.time_max;
  v[kClusterRank] = static_cast<double>(cluster.rank);
  v[kPulseRank] = static_cast<double>(pulse_rank);
  v[kDmSpacing] = grid.spacing_at(events[pulse.peak].dm);
  v[kSnrRatio] = *snr_hi > 0.0 ? span.front().snr / *snr_hi : 0.0;
  return f;
}

const char kMlFileHeaderPrefix[] =
    "dataset,mjd,ra_deg,dec_deg,beam,cluster_id,pulse_index";

std::string ml_file_header() {
  std::string header = kMlFileHeaderPrefix;
  for (const auto& name : PulseFeatures::names()) {
    header += ',';
    header += name;
  }
  header += ",label";
  return header;
}

namespace {
std::string fmt(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}
}  // namespace

CsvRow format_ml_row(const MlRecord& rec) {
  CsvRow row{rec.obs.dataset,
             fmt(rec.obs.mjd),
             fmt(rec.obs.ra_deg),
             fmt(rec.obs.dec_deg),
             std::to_string(rec.obs.beam),
             std::to_string(rec.cluster_id),
             std::to_string(rec.pulse_index)};
  for (double v : rec.features.values) row.push_back(fmt(v));
  row.push_back(rec.truth_label);
  return row;
}

MlRecord parse_ml_row(const CsvRow& row) {
  constexpr std::size_t kExpected = 7 + PulseFeatures::kCount + 1;
  if (row.size() != kExpected) {
    throw std::runtime_error("ML row must have " + std::to_string(kExpected) +
                             " fields, got " + std::to_string(row.size()));
  }
  MlRecord rec;
  rec.obs.dataset = row[0];
  rec.obs.mjd = parse_double(row[1]);
  rec.obs.ra_deg = parse_double(row[2]);
  rec.obs.dec_deg = parse_double(row[3]);
  rec.obs.beam = static_cast<int>(parse_int(row[4]));
  rec.cluster_id = static_cast<int>(parse_int(row[5]));
  rec.pulse_index = static_cast<int>(parse_int(row[6]));
  for (std::size_t i = 0; i < PulseFeatures::kCount; ++i) {
    rec.features.values[i] = parse_double(row[7 + i]);
  }
  rec.truth_label = row.back();
  return rec;
}

void write_ml_file(std::ostream& out, const std::vector<MlRecord>& records) {
  out << ml_file_header() << '\n';
  for (const auto& rec : records) {
    out << format_csv_row(format_ml_row(rec)) << '\n';
  }
}

std::vector<MlRecord> read_ml_file(std::istream& in) {
  std::vector<MlRecord> records;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      saw_header = true;
      continue;
    }
    records.push_back(parse_ml_row(parse_csv_line(line)));
  }
  return records;
}

}  // namespace drapid
