// FlatHashMap / FlatHashMultiMap unit tests, plus equivalence tests pinning
// the properties the RDD layer relied on when it swapped the containers in
// for std::unordered_map: aggregate_by_key and left_outer_join must produce
// the documented first-encounter / build-order layouts (verified against
// in-test reference implementations that use no hash table at all), and the
// stage metrics byte counts must equal a direct byte_size() walk of the
// inputs.
#include "util/flat_hash.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dataflow/rdd.hpp"

namespace drapid {
namespace {

using StrPair = std::pair<std::string, std::string>;

TEST(FlatHashMap, InsertFindAndDuplicateRejection) {
  FlatHashMap<std::string, int> map;
  auto [first, inserted] = map.try_emplace("a", 1);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(first->second, 1);
  auto [again, inserted_again] = map.try_emplace("a", 99);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(again->second, 1);  // existing value untouched
  map.try_emplace("b", 2);
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find("a"), nullptr);
  EXPECT_EQ(*map.find("a"), 1);
  ASSERT_NE(map.find("b"), nullptr);
  EXPECT_EQ(*map.find("b"), 2);
}

TEST(FlatHashMap, FindOnEmptyAndMissingKeys) {
  FlatHashMap<std::string, int> map;
  EXPECT_EQ(map.find("nope"), nullptr);  // no index allocated yet
  map.try_emplace("present", 7);
  EXPECT_EQ(map.find("nope"), nullptr);
  const auto& cmap = map;
  EXPECT_EQ(cmap.find("nope"), nullptr);
  ASSERT_NE(cmap.find("present"), nullptr);
}

TEST(FlatHashMap, GrowthPreservesFirstEncounterOrder) {
  // 1000 insertions over 137 distinct keys force several index rebuilds;
  // the drained entries must still be exactly first-encounter order with
  // values folded in stream order.
  FlatHashMap<std::string, std::string> map;
  std::vector<std::pair<std::string, std::string>> reference;
  std::map<std::string, std::size_t> reference_index;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i % 137);
    const std::string value = "v" + std::to_string(i);
    auto [entry, inserted] = map.try_emplace(key, std::string{});
    entry->second += value;
    auto [it, fresh] = reference_index.try_emplace(key, reference.size());
    if (fresh) reference.emplace_back(key, std::string{});
    reference[it->second].second += value;
  }
  EXPECT_EQ(map.size(), 137u);
  const auto entries = map.take_entries();
  ASSERT_EQ(entries.size(), reference.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i], reference[i]) << "position " << i;
  }
  EXPECT_TRUE(map.empty());  // drained
}

TEST(FlatHashMap, ReserveThenBuildMatchesUnreservedLayout) {
  const auto build = [](bool reserve) {
    FlatHashMap<int, int> map;
    if (reserve) map.reserve(500);
    for (int i = 0; i < 500; ++i) map.try_emplace(i * 7919, i);
    return map.take_entries();
  };
  EXPECT_EQ(build(true), build(false));
}

TEST(FlatHashMultiMap, PerKeyInsertionOrderAndMissingKey) {
  FlatHashMultiMap<std::string, int> map;
  map.emplace("a", 1);
  map.emplace("b", 10);
  map.emplace("a", 2);
  map.emplace("a", 3);
  EXPECT_EQ(map.size(), 4u);
  std::vector<int> seen;
  EXPECT_TRUE(map.for_each("a", [&](int v) { seen.push_back(v); }));
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  seen.clear();
  EXPECT_TRUE(map.for_each("b", [&](int v) { seen.push_back(v); }));
  EXPECT_EQ(seen, (std::vector<int>{10}));
  EXPECT_FALSE(map.for_each("missing", [&](int) { FAIL(); }));
}

// --- Equivalence against hash-free references ------------------------------

EngineConfig test_config(std::size_t threads = 2) {
  EngineConfig cfg;
  cfg.num_executors = 4;
  cfg.cores_per_executor = 2;
  cfg.worker_threads = threads;
  cfg.partitions_per_core = 2;
  return cfg;
}

std::vector<StrPair> sample_pairs(std::size_t n, std::size_t distinct_keys) {
  std::vector<StrPair> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    pairs.emplace_back("key" + std::to_string(i % distinct_keys),
                       "value" + std::to_string(i));
  }
  return pairs;
}

template <typename K, typename V>
std::size_t bytes_of(const std::vector<std::pair<K, V>>& records) {
  std::size_t total = 0;
  for (const auto& kv : records) total += byte_size(kv);
  return total;
}

TEST(FlatHashEquivalence, AggregateByKeyMatchesFirstEncounterReference) {
  const HashPartitioner part{8};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    Engine engine(test_config(threads));
    const auto input = partition_by(
        engine, parallelize(engine, sample_pairs(400, 37), 5), part);
    const auto agg = aggregate_by_key(
        engine, input, std::string{},
        [](std::string& acc, const std::string& v) { acc += v; },
        [](std::string& acc, std::string&& other) { acc += other; }, part);

    ASSERT_EQ(agg.num_partitions(), input.num_partitions());
    for (std::size_t p = 0; p < input.num_partitions(); ++p) {
      // Reference: fold in stream order into a dense vector laid out by
      // first encounter of each key — no hash table involved.
      std::vector<StrPair> expected;
      std::map<std::string, std::size_t> index;
      for (const auto& kv : input.partitions[p]) {
        auto [it, fresh] = index.try_emplace(kv.first, expected.size());
        if (fresh) expected.emplace_back(kv.first, std::string{});
        expected[it->second].second += kv.second;
      }
      EXPECT_EQ(agg.partitions[p], expected)
          << "partition " << p << " threads " << threads;
    }

    // The combine stage's byte accounting must equal a direct byte_size()
    // walk of its input partitions.
    std::size_t expected_bytes = 0;
    for (const auto& partition : input.partitions) {
      expected_bytes += bytes_of(partition);
    }
    bool found = false;
    for (const auto& stage : engine.metrics().stages) {
      if (stage.name != "aggregate_by_key:combine") continue;
      found = true;
      EXPECT_EQ(stage.total_records_in(), 400u);
      EXPECT_EQ(stage.total_bytes_in(), expected_bytes);
    }
    EXPECT_TRUE(found);
  }
}

TEST(FlatHashEquivalence, LeftOuterJoinMatchesScanReference) {
  const HashPartitioner part{8};
  Engine engine(test_config());
  const auto lhs = partition_by(
      engine, parallelize(engine, sample_pairs(200, 23), 4), part);
  // Right side with duplicate keys, so per-key match order matters.
  std::vector<StrPair> right_pairs;
  for (std::size_t i = 0; i < 60; ++i) {
    right_pairs.emplace_back("key" + std::to_string(i % 17),
                             "right" + std::to_string(i));
  }
  const auto rhs = partition_by(
      engine, parallelize(engine, std::move(right_pairs), 3), part);

  const auto joined = left_outer_join(engine, lhs, rhs, part);

  using Joined = std::pair<std::string,
                           std::pair<std::string, std::optional<std::string>>>;
  ASSERT_EQ(joined.num_partitions(), part.num_partitions);
  for (std::size_t p = 0; p < part.num_partitions; ++p) {
    // Reference: for each left record in partition order, scan the right
    // partition in order and emit one row per match (or one nullopt row).
    std::vector<Joined> expected;
    for (const auto& kv : lhs.partitions[p]) {
      bool matched = false;
      for (const auto& rv : rhs.partitions[p]) {
        if (rv.first != kv.first) continue;
        matched = true;
        expected.emplace_back(kv.first,
                              std::make_pair(kv.second, rv.second));
      }
      if (!matched) {
        expected.emplace_back(kv.first,
                              std::make_pair(kv.second, std::nullopt));
      }
    }
    EXPECT_EQ(joined.partitions[p], expected) << "partition " << p;
  }

  // Join-stage accounting: records_in and bytes_in cover both sides.
  std::size_t expected_records = 0;
  std::size_t expected_bytes = 0;
  for (std::size_t p = 0; p < part.num_partitions; ++p) {
    expected_records += lhs.partitions[p].size() + rhs.partitions[p].size();
    expected_bytes += bytes_of(lhs.partitions[p]) + bytes_of(rhs.partitions[p]);
  }
  bool found = false;
  for (const auto& stage : engine.metrics().stages) {
    if (stage.name != "left_outer_join") continue;
    found = true;
    EXPECT_EQ(stage.total_records_in(), expected_records);
    EXPECT_EQ(stage.total_bytes_in(), expected_bytes);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace drapid
