// Key-value-pair RDDs and their transformations (the Spark stand-in).
//
// An Rdd<K, V> is a dataset physically split into partitions. Transformations
// execute eagerly on the engine's worker pool — one task per partition — and
// record measured work (records, bytes, shuffle traffic) into the engine's
// job metrics. The three mechanisms the paper's D-RAPID design leans on are
// all implemented for real:
//
//   * HashPartitioner — deterministic key → partition mapping, shared between
//     datasets so matching keys are colocated ("uniform partitioning",
//     Figure 3), which makes the join below shuffle-free;
//   * aggregate_by_key — map-side combining that collapses duplicate keys
//     before the expensive join ("key aggregation", Figure 3);
//   * left_outer_join — co-partitioned fast path joins partition i of the
//     left dataset against partition i of the right locally; inputs with
//     unknown or mismatched partitioning are shuffled first and the extra
//     bytes show up in the metrics (the ablation benchmark measures exactly
//     this difference).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dataflow/engine.hpp"

namespace drapid {

// --- Stable hashing (independent of std::hash, for reproducible layouts) ----

inline std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t stable_hash(const std::string& key) {
  return fnv1a64(key.data(), key.size());
}

template <typename T>
  requires std::is_integral_v<T>
std::uint64_t stable_hash(T key) {
  auto x = static_cast<std::uint64_t>(key);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// --- In-memory size estimation (for memory budgets and shuffle byte counts) -

inline std::size_t byte_size(const std::string& s) {
  return s.size() + sizeof(std::string);
}
template <typename T>
  requires std::is_arithmetic_v<T> || std::is_enum_v<T>
std::size_t byte_size(T) {
  return sizeof(T);
}
/// Fallback for flat user structs (no owned heap memory to account for).
template <typename T>
  requires(std::is_trivially_copyable_v<T> && !std::is_arithmetic_v<T> &&
           !std::is_enum_v<T>)
std::size_t byte_size(const T&) {
  return sizeof(T);
}
template <typename A, typename B>
std::size_t byte_size(const std::pair<A, B>& p);
template <typename T>
std::size_t byte_size(const std::vector<T>& v);
template <typename T>
std::size_t byte_size(const std::optional<T>& o);

template <typename A, typename B>
std::size_t byte_size(const std::pair<A, B>& p) {
  return byte_size(p.first) + byte_size(p.second);
}
template <typename T>
std::size_t byte_size(const std::vector<T>& v) {
  std::size_t total = sizeof(std::vector<T>);
  for (const auto& e : v) total += byte_size(e);
  return total;
}
template <typename T>
std::size_t byte_size(const std::optional<T>& o) {
  return sizeof(bool) + (o ? byte_size(*o) : 0);
}

// --- Partitioner -------------------------------------------------------------

/// Deterministic hash partitioner. Two instances with the same partition
/// count and salt produce identical layouts — datasets partitioned by them
/// are co-partitioned, and id() encodes that equivalence.
struct HashPartitioner {
  std::size_t num_partitions = 1;
  std::uint64_t salt = 0x9e3779b97f4a7c15ULL;

  template <typename K>
  std::size_t of(const K& key) const {
    return static_cast<std::size_t>((stable_hash(key) ^ salt) %
                                    num_partitions);
  }
  /// Nonzero identity; equal iff layouts are identical.
  std::uint64_t id() const {
    return (static_cast<std::uint64_t>(num_partitions) * 0x9e3779b97f4a7c15ULL) ^
           salt ^ 1ULL;
  }
};

// --- Rdd ---------------------------------------------------------------------

template <typename K, typename V>
struct Rdd {
  using Pair = std::pair<K, V>;
  std::vector<std::vector<Pair>> partitions;
  /// id() of the HashPartitioner that laid this dataset out; 0 = unknown.
  std::uint64_t partitioner_id = 0;

  std::size_t num_partitions() const { return partitions.size(); }
  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& p : partitions) total += p.size();
    return total;
  }
  std::size_t estimated_bytes() const {
    std::size_t total = 0;
    for (const auto& p : partitions) {
      for (const auto& kv : p) total += byte_size(kv);
    }
    return total;
  }
  /// All pairs, partition by partition (deterministic).
  std::vector<Pair> collect() const {
    std::vector<Pair> all;
    all.reserve(size());
    for (const auto& p : partitions) all.insert(all.end(), p.begin(), p.end());
    return all;
  }
};

// --- Transformations ---------------------------------------------------------

/// Distributes `pairs` round-robin into `num_partitions` chunks.
template <typename K, typename V>
Rdd<K, V> parallelize(Engine& engine, std::vector<std::pair<K, V>> pairs,
                      std::size_t num_partitions) {
  if (num_partitions == 0) num_partitions = 1;
  Rdd<K, V> rdd;
  rdd.partitions.resize(num_partitions);
  const std::size_t chunk = (pairs.size() + num_partitions - 1) /
                            std::max<std::size_t>(1, num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(begin + chunk, pairs.size());
    if (begin >= end) continue;
    rdd.partitions[p].assign(std::make_move_iterator(pairs.begin() + begin),
                             std::make_move_iterator(pairs.begin() + end));
  }
  auto& stage = engine.begin_stage("parallelize", num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    stage.tasks[p].records_out = rdd.partitions[p].size();
  }
  return rdd;
}

namespace detail {
template <typename K, typename V>
void record_input(TaskMetrics& task, const std::vector<std::pair<K, V>>& part) {
  task.records_in = part.size();
  for (const auto& kv : part) task.bytes_in += byte_size(kv);
  task.compute_cost = task.records_in;
}
template <typename K, typename V>
void record_output(TaskMetrics& task,
                   const std::vector<std::pair<K, V>>& part) {
  task.records_out = part.size();
  for (const auto& kv : part) task.bytes_out += byte_size(kv);
}
}  // namespace detail

/// 1:1 transformation of whole pairs. Set `preserves_partitioning` only when
/// `fn` never changes keys.
template <typename K, typename V, typename Fn>
auto map_pairs(Engine& engine, const Rdd<K, V>& in, Fn&& fn,
               const std::string& name = "map_pairs",
               bool preserves_partitioning = false) {
  using OutPair = decltype(fn(std::declval<const std::pair<K, V>&>()));
  Rdd<typename OutPair::first_type, typename OutPair::second_type> out;
  out.partitions.resize(in.num_partitions());
  out.partitioner_id = preserves_partitioning ? in.partitioner_id : 0;
  auto& stage = engine.begin_stage(name, in.num_partitions());
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, in.partitions[p]);
    out.partitions[p].reserve(in.partitions[p].size());
    for (const auto& kv : in.partitions[p]) out.partitions[p].push_back(fn(kv));
    detail::record_output(task, out.partitions[p]);
  });
  return out;
}

/// Value-only transformation; always preserves partitioning.
template <typename K, typename V, typename Fn>
auto map_values(Engine& engine, const Rdd<K, V>& in, Fn&& fn,
                const std::string& name = "map_values") {
  using V2 = decltype(fn(std::declval<const V&>()));
  Rdd<K, V2> out;
  out.partitions.resize(in.num_partitions());
  out.partitioner_id = in.partitioner_id;
  auto& stage = engine.begin_stage(name, in.num_partitions());
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, in.partitions[p]);
    out.partitions[p].reserve(in.partitions[p].size());
    for (const auto& kv : in.partitions[p]) {
      out.partitions[p].emplace_back(kv.first, fn(kv.second));
    }
    detail::record_output(task, out.partitions[p]);
  });
  return out;
}

/// Keeps pairs where `pred(pair)` is true; preserves partitioning.
template <typename K, typename V, typename Pred>
Rdd<K, V> filter_pairs(Engine& engine, const Rdd<K, V>& in, Pred&& pred,
                       const std::string& name = "filter") {
  Rdd<K, V> out;
  out.partitions.resize(in.num_partitions());
  out.partitioner_id = in.partitioner_id;
  auto& stage = engine.begin_stage(name, in.num_partitions());
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, in.partitions[p]);
    for (const auto& kv : in.partitions[p]) {
      if (pred(kv)) out.partitions[p].push_back(kv);
    }
    detail::record_output(task, out.partitions[p]);
  });
  return out;
}

/// 1:many transformation with caller-reported compute cost:
/// fn(key, value, cost_inout) -> vector<pair<K2, V2>>.
template <typename K, typename V, typename Fn>
auto flat_map_metered(Engine& engine, const Rdd<K, V>& in, Fn&& fn,
                      const std::string& name = "flat_map") {
  using OutVec = decltype(fn(std::declval<const K&>(), std::declval<const V&>(),
                             std::declval<std::size_t&>()));
  using OutPair = typename OutVec::value_type;
  Rdd<typename OutPair::first_type, typename OutPair::second_type> out;
  out.partitions.resize(in.num_partitions());
  auto& stage = engine.begin_stage(name, in.num_partitions());
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, in.partitions[p]);
    task.compute_cost = 0;  // reported by fn instead of records_in
    for (const auto& kv : in.partitions[p]) {
      std::size_t cost = 0;
      auto produced = fn(kv.first, kv.second, cost);
      task.compute_cost += cost;
      for (auto& item : produced) {
        out.partitions[p].push_back(std::move(item));
      }
    }
    detail::record_output(task, out.partitions[p]);
  });
  return out;
}

/// Wide transformation: re-buckets every pair by `partitioner`. Bytes that
/// land on a different modeled executor than they started on are counted as
/// shuffle traffic (partition p lives on executor p mod num_executors).
template <typename K, typename V>
Rdd<K, V> partition_by(Engine& engine, const Rdd<K, V>& in,
                       const HashPartitioner& partitioner,
                       const std::string& name = "partition_by") {
  const std::size_t sources = std::max<std::size_t>(1, in.num_partitions());
  const std::size_t targets = partitioner.num_partitions;
  const std::size_t executors = std::max<std::size_t>(
      1, engine.config().num_executors);
  Rdd<K, V> out;
  out.partitions.resize(targets);
  out.partitioner_id = partitioner.id();

  std::vector<std::vector<std::vector<std::pair<K, V>>>> buckets(sources);
  auto& stage = engine.begin_stage(name, sources);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    if (p >= in.num_partitions()) return;  // sources is clamped to >= 1
    auto& task = ctx.metrics();
    detail::record_input(task, in.partitions[p]);
    // Bucketing is a hash + pointer move per record — far cheaper than a
    // parse or search step; the bytes cost is paid at the network term.
    task.compute_cost = task.records_in / 4;
    buckets[p].resize(targets);
    for (const auto& kv : in.partitions[p]) {
      const std::size_t target = partitioner.of(kv.first);
      if (target % executors != p % executors) {
        task.shuffle_bytes += byte_size(kv);
      }
      buckets[p][target].push_back(kv);
    }
    task.records_out = task.records_in;
    task.bytes_out = task.bytes_in;
  });
  engine.pool().parallel_for(targets, [&](std::size_t t) {
    for (std::size_t s = 0; s < sources; ++s) {
      auto& bucket = buckets[s][t];
      out.partitions[t].insert(out.partitions[t].end(),
                               std::make_move_iterator(bucket.begin()),
                               std::make_move_iterator(bucket.end()));
    }
  });
  return out;
}

/// Map-side combine + (if needed) shuffle + final merge. `fold(agg, v)`
/// folds one value into a per-key accumulator initialized with `init`;
/// `merge(agg, other)` combines accumulators from different partitions.
/// The result is partitioned by `partitioner`; if `in` already is, the
/// aggregation is purely local (zero shuffle — the Figure 3 optimization).
template <typename K, typename V, typename Agg, typename Fold, typename Merge>
Rdd<K, Agg> aggregate_by_key(Engine& engine, const Rdd<K, V>& in,
                             const Agg& init, Fold&& fold, Merge&& merge,
                             const HashPartitioner& partitioner,
                             const std::string& name = "aggregate_by_key") {
  // Map-side combine per partition.
  Rdd<K, Agg> combined;
  combined.partitions.resize(in.num_partitions());
  combined.partitioner_id = in.partitioner_id;
  auto& stage = engine.begin_stage(name + ":combine", in.num_partitions());
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, in.partitions[p]);
    task.compute_cost = task.records_in / 4;  // hash-fold per record
    std::unordered_map<K, Agg> local;
    for (const auto& kv : in.partitions[p]) {
      auto [it, inserted] = local.try_emplace(kv.first, init);
      fold(it->second, kv.second);
    }
    combined.partitions[p].reserve(local.size());
    for (auto& [k, agg] : local) {
      combined.partitions[p].emplace_back(k, std::move(agg));
    }
    detail::record_output(task, combined.partitions[p]);
  });

  const bool copartitioned =
      combined.partitioner_id == partitioner.id() &&
      combined.num_partitions() == partitioner.num_partitions;
  Rdd<K, Agg> shuffled =
      copartitioned ? std::move(combined)
                    : partition_by(engine, combined, partitioner,
                                   name + ":shuffle");

  // Final merge of accumulators that met in the same partition.
  Rdd<K, Agg> out;
  out.partitions.resize(shuffled.num_partitions());
  out.partitioner_id = partitioner.id();
  auto& merge_stage =
      engine.begin_stage(name + ":merge", shuffled.num_partitions());
  engine.run_stage(merge_stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, shuffled.partitions[p]);
    task.compute_cost = task.records_in / 4;  // hash-merge per record
    std::unordered_map<K, Agg> local;
    for (auto& kv : shuffled.partitions[p]) {
      auto [it, inserted] = local.try_emplace(kv.first, std::move(kv.second));
      if (!inserted) merge(it->second, std::move(kv.second));
    }
    out.partitions[p].reserve(local.size());
    for (auto& [k, agg] : local) {
      out.partitions[p].emplace_back(k, std::move(agg));
    }
    detail::record_output(task, out.partitions[p]);
  });
  return out;
}

/// reduce_by_key specialization of aggregate_by_key.
template <typename K, typename V, typename Reduce>
Rdd<K, V> reduce_by_key(Engine& engine, const Rdd<K, V>& in, Reduce&& reduce,
                        const HashPartitioner& partitioner,
                        const std::string& name = "reduce_by_key") {
  auto wrapped = aggregate_by_key(
      engine, in, std::optional<V>{},
      [&reduce](std::optional<V>& agg, const V& v) {
        if (agg) {
          *agg = reduce(*agg, v);
        } else {
          agg = v;
        }
      },
      [&reduce](std::optional<V>& agg, std::optional<V>&& other) {
        if (agg && other) {
          *agg = reduce(*agg, *other);
        } else if (other) {
          agg = std::move(other);
        }
      },
      partitioner, name);
  // Unwrap the optional: every surviving key folded at least one value.
  return map_values(
      engine, wrapped, [](const std::optional<V>& v) { return *v; },
      name + ":unwrap");
}

/// Left outer join. Every left pair yields (v, matching right value or
/// nullopt). If both inputs are already laid out by `partitioner`, the join
/// is partition-local with zero shuffle; otherwise the non-conforming side(s)
/// are shuffled first and the traffic is recorded (the ablation measures
/// this difference).
template <typename K, typename V, typename W>
Rdd<K, std::pair<V, std::optional<W>>> left_outer_join(
    Engine& engine, const Rdd<K, V>& left, const Rdd<K, W>& right,
    const HashPartitioner& partitioner,
    const std::string& name = "left_outer_join") {
  const auto conforms = [&](std::uint64_t pid, std::size_t parts) {
    return pid == partitioner.id() && parts == partitioner.num_partitions;
  };
  const Rdd<K, V>* lhs = &left;
  Rdd<K, V> lhs_shuffled;
  if (!conforms(left.partitioner_id, left.num_partitions())) {
    lhs_shuffled = partition_by(engine, left, partitioner, name + ":shuffleL");
    lhs = &lhs_shuffled;
  }
  const Rdd<K, W>* rhs = &right;
  Rdd<K, W> rhs_shuffled;
  if (!conforms(right.partitioner_id, right.num_partitions())) {
    rhs_shuffled = partition_by(engine, right, partitioner, name + ":shuffleR");
    rhs = &rhs_shuffled;
  }

  Rdd<K, std::pair<V, std::optional<W>>> out;
  out.partitions.resize(partitioner.num_partitions);
  out.partitioner_id = partitioner.id();
  auto& stage = engine.begin_stage(name, partitioner.num_partitions);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    detail::record_input(task, lhs->partitions[p]);
    std::unordered_multimap<K, const W*> index;
    index.reserve(rhs->partitions[p].size());
    for (const auto& kv : rhs->partitions[p]) {
      index.emplace(kv.first, &kv.second);
      task.bytes_in += byte_size(kv);
    }
    task.records_in += rhs->partitions[p].size();
    for (const auto& kv : lhs->partitions[p]) {
      auto [lo, hi] = index.equal_range(kv.first);
      if (lo == hi) {
        out.partitions[p].emplace_back(
            kv.first, std::make_pair(kv.second, std::optional<W>{}));
      } else {
        for (auto it = lo; it != hi; ++it) {
          out.partitions[p].emplace_back(
              kv.first, std::make_pair(kv.second, std::optional<W>(*it->second)));
        }
      }
    }
    detail::record_output(task, out.partitions[p]);
  });
  return out;
}

}  // namespace drapid
