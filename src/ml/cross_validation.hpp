// Stratified k-fold cross-validation (the paper's evaluation protocol).
//
// The paper divides each benchmark into six folds — one reserved for feature
// selection, the other five for 5-fold cross-validation (§6.2). Folds are
// stratified so each preserves the class distribution, which matters at the
// paper's 0.05 % positive rate.
#pragma once

#include <cstdint>
#include <functional>

#include "ml/classifier.hpp"
#include "ml/eval.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {

/// Assigns every instance a fold in [0, k), stratified by class.
std::vector<int> stratified_folds(const Dataset& data, int k, Rng& rng);

/// Same, over a bare label vector with `num_classes` classes — lets callers
/// stratify on a different label space than the dataset's (e.g. the binary
/// collapse, so fold membership stays identical across ALM schemes).
std::vector<int> stratified_folds(const std::vector<int>& labels,
                                  std::size_t num_classes, int k, Rng& rng);

/// Row indices belonging (or not) to fold `fold`.
std::vector<std::size_t> rows_in_fold(const std::vector<int>& folds, int fold,
                                      bool in_fold);

struct FoldResult {
  ConfusionMatrix confusion{1};
  double train_seconds = 0.0;
  double test_seconds = 0.0;
};

struct CvResult {
  std::vector<FoldResult> folds;
  /// Confusion across all folds.
  ConfusionMatrix pooled{1};
  double total_train_seconds = 0.0;

  BinaryScores pooled_binary() const {
    return pooled.collapse_nonzero_positive();
  }
};

/// Optional hook applied to each training fold before fitting (the SMOTE
/// path); receives the fold dataset and must return the dataset to train on.
using TrainTransform = std::function<Dataset(const Dataset&)>;

/// Runs k-fold CV with a fresh classifier per fold from `factory`.
/// `out_predictions`, if non-null, receives each instance's predicted class
/// (every row is tested exactly once across the k folds) — the RQ4 analysis
/// of hard-to-classify instances builds on this.
CvResult cross_validate(const Dataset& data, int k,
                        const std::function<std::unique_ptr<Classifier>()>& factory,
                        Rng& rng, const TrainTransform& transform = nullptr,
                        std::vector<int>* out_predictions = nullptr);

}  // namespace ml
}  // namespace drapid
