// The RDD templates with non-string key/value types: the engine is a
// general dataflow substrate, not a string-only pipeline.
#include <gtest/gtest.h>

#include <map>

#include "dataflow/rdd.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

EngineConfig cfg() {
  EngineConfig c;
  c.num_executors = 3;
  c.worker_threads = 2;
  return c;
}

TEST(TypedRdd, IntegerKeysPartitionAndReduce) {
  Engine engine(cfg());
  std::vector<std::pair<int, double>> pairs;
  Rng rng(5);
  std::map<int, double> expected;
  for (int i = 0; i < 500; ++i) {
    const int k = static_cast<int>(rng.below(40));
    const double v = rng.uniform(0, 10);
    pairs.emplace_back(k, v);
    expected[k] += v;
  }
  auto rdd = parallelize(engine, std::move(pairs), 6);
  const HashPartitioner part{8};
  auto sums = reduce_by_key(
      engine, rdd, [](double a, double b) { return a + b; }, part);
  std::map<int, double> actual;
  for (const auto& [k, v] : sums.collect()) actual[k] = v;
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [k, v] : expected) {
    EXPECT_NEAR(actual[k], v, 1e-9) << "key " << k;
  }
}

TEST(TypedRdd, JoinWithStructValues) {
  struct Payload {
    double x = 0.0;
    int tag = 0;
  };
  Engine engine(cfg());
  std::vector<std::pair<int, Payload>> left_pairs{{1, {1.5, 7}}, {2, {2.5, 8}}};
  std::vector<std::pair<int, int>> right_pairs{{1, 100}};
  const HashPartitioner part{4};
  auto left = partition_by(engine, parallelize(engine, left_pairs, 2), part);
  auto right = partition_by(engine, parallelize(engine, right_pairs, 2), part);
  auto joined = left_outer_join(engine, left, right, part);
  std::map<int, std::pair<Payload, std::optional<int>>> by_key;
  for (const auto& [k, v] : joined.collect()) by_key[k] = v;
  ASSERT_EQ(by_key.size(), 2u);
  EXPECT_EQ(by_key[1].second.value(), 100);
  EXPECT_FALSE(by_key[2].second.has_value());
  EXPECT_EQ(by_key[2].first.tag, 8);
}

TEST(TypedRdd, ByteSizeCoversCommonTypes) {
  EXPECT_EQ(byte_size(3.5), sizeof(double));
  EXPECT_EQ(byte_size(42), sizeof(int));
  EXPECT_GE(byte_size(std::string("hello")), 5u);
  const std::vector<double> v{1, 2, 3};
  EXPECT_GE(byte_size(v), 3 * sizeof(double));
  const std::optional<double> some(1.0), none;
  EXPECT_GT(byte_size(some), byte_size(none));
  const std::pair<std::string, double> p{"ab", 1.0};
  EXPECT_GE(byte_size(p), 2 + sizeof(double));
}

TEST(TypedRdd, MapPairsChangesTypes) {
  Engine engine(cfg());
  std::vector<std::pair<int, int>> pairs{{1, 10}, {2, 20}};
  auto rdd = parallelize(engine, std::move(pairs), 2);
  auto strings = map_pairs(engine, rdd, [](const std::pair<int, int>& kv) {
    return std::make_pair(std::to_string(kv.first),
                          static_cast<double>(kv.second) / 2);
  });
  std::map<std::string, double> by_key;
  for (const auto& [k, v] : strings.collect()) by_key[k] = v;
  EXPECT_DOUBLE_EQ(by_key["1"], 5.0);
  EXPECT_DOUBLE_EQ(by_key["2"], 10.0);
}

TEST(TypedRdd, FilterOnNumericPredicate) {
  Engine engine(cfg());
  std::vector<std::pair<int, double>> pairs;
  for (int i = 0; i < 100; ++i) pairs.emplace_back(i, i * 0.5);
  auto rdd = parallelize(engine, std::move(pairs), 4);
  auto kept = filter_pairs(engine, rdd, [](const std::pair<int, double>& kv) {
    return kv.second >= 40.0;
  });
  EXPECT_EQ(kept.size(), 20u);
}

}  // namespace
}  // namespace drapid
