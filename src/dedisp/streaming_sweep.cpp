#include "dedisp/streaming_sweep.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "dedisp/kernels.hpp"
#include "dedisp/rfi_mitigation.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace drapid {

StreamingSweep::StreamingSweep(const FilterbankConfig& config,
                               const DmGrid& grid,
                               const SinglePulseSearchParams& params)
    : config_(config), grid_(grid), params_(params) {
  // A zero-filled Filterbank supplies the geometry (sample count, channel
  // frequencies) the shift planner needs; its data is never read.
  const Filterbank geometry(config_);
  total_samples_ = geometry.num_samples();
  channels_ = geometry.num_channels();
  if (policy_masks_channels(params_.rfi.policy) &&
      params_.channel_mask.empty()) {
    throw std::invalid_argument(
        "StreamingSweep: channel-mask mitigation needs an explicit "
        "params.channel_mask — a stream cannot estimate one from data it "
        "has not seen (estimate_channel_mask over the observation first)");
  }
  zero_dm_ = policy_zero_dm(params_.rfi.policy);
  sweep_ =
      build_sweep_plan(geometry, grid_, params_.dm_stride, params_.channel_mask);
  if (subband()) {
    // Coarse nodes only ever look back by a residual shift, so the carry —
    // and with it every chunk's window — shrinks from the full-band max
    // shift to the subband plan's max residual.
    sub_ = build_subband_plan(sweep_, channels_, total_samples_,
                              params_.subband_groups);
    max_shift_ = std::min<std::size_t>(sub_.max_residual, total_samples_);
    partials_.resize(sub_.total_patterns);
    for (auto& partial : partials_) partial.assign(total_samples_, 0.0);
  } else {
    for (const auto& plan : sweep_.plans) {
      max_shift_ = std::max<std::size_t>(max_shift_, plan.max_shift);
    }
    max_shift_ = std::min(max_shift_, total_samples_);
    series_.resize(sweep_.plans.size());
    for (auto& s : series_) s.assign(total_samples_, 0.0);
  }
  carry_.assign(channels_ * max_shift_, 0.0f);
  const std::size_t tasks = std::max(sweep_.plans.size(), partials_.size());
  if (params_.sweep_threads() > 1 && tasks > 1) {
    pool_ = std::make_unique<ThreadPool>(params_.sweep_threads());
  }
}

StreamingSweep::~StreamingSweep() = default;

template <typename Fn>
void StreamingSweep::for_each(std::size_t count, const Fn& fn) {
  if (pool_ && count > 1) {
    pool_->parallel_for(count, fn);
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

std::size_t StreamingSweep::prepare_window(std::size_t count) {
  if (finalized_) {
    throw std::logic_error("StreamingSweep: push after finalize");
  }
  if (pushed_ + count > total_samples_) {
    throw std::invalid_argument(
        "StreamingSweep: pushing " + std::to_string(count) + " samples at " +
        std::to_string(pushed_) + " overruns the observation's " +
        std::to_string(total_samples_) + " samples");
  }
  const std::size_t carry_len = std::min(max_shift_, pushed_);
  window_stride_ = carry_len + count;
  window_len_ = window_stride_;
  window_start_ = pushed_ - carry_len;
  window_.resize(channels_ * window_stride_);
  for (std::size_t c = 0; c < channels_; ++c) {
    std::memcpy(window_.data() + c * window_stride_,
                carry_.data() + c * max_shift_, carry_len * sizeof(float));
  }
  return carry_len;
}

void StreamingSweep::commit_block(std::size_t count) {
  pushed_ += count;
  // An output sample s of a plan with max shift v_max reads inputs up to
  // s + v_max, so everything below pushed - max_shift is complete; the final
  // block completes the whole series (clamped shifts contribute nothing past
  // the end).
  const std::size_t completed =
      pushed_ == total_samples_
          ? total_samples_
          : (pushed_ > max_shift_ ? pushed_ - max_shift_ : 0);
  if (completed > frontier_) {
    const std::size_t begin = frontier_;
    if (subband()) {
      for_each(partials_.size(),
               [&](std::size_t i) { accumulate_node(i, begin, completed); });
    } else {
      for_each(sweep_.plans.size(),
               [&](std::size_t i) { accumulate_plan(i, begin, completed); });
    }
    frontier_ = completed;
  }
  // Refresh the overlap carry with the last max_shift samples seen.
  const std::size_t carry_len = std::min(max_shift_, pushed_);
  const std::size_t tail = window_len_ - carry_len;
  for (std::size_t c = 0; c < channels_; ++c) {
    std::memmove(carry_.data() + c * max_shift_,
                 window_.data() + c * window_stride_ + tail,
                 carry_len * sizeof(float));
  }
  obs::global_counters().add("dedisp.stream.chunks");
}

void StreamingSweep::accumulate_plan(std::size_t plan_index,
                                     std::size_t out_begin,
                                     std::size_t out_end) {
  const ShiftPlan& plan = sweep_.plans[plan_index];
  auto& series = series_[plan_index];
  // Ascending channel order per output sample — every contribution to a
  // sample lands in the single flush that completes it, so the addition
  // sequence per sample is exactly dedisperse_plan()'s.
  for (std::size_t c = 0; c < channels_; ++c) {
    const std::uint32_t shift = plan.shifts[c];
    const std::size_t limit =
        std::min<std::size_t>(out_end, total_samples_ - shift);
    if (limit <= out_begin) continue;
    const float* row = window_.data() + c * window_stride_ - window_start_;
    kernels::accumulate_f32(series.data() + out_begin, row + out_begin + shift,
                            limit - out_begin);
  }
}

void StreamingSweep::accumulate_node(std::size_t slot, std::size_t out_begin,
                                     std::size_t out_end) {
  // Recover (group, pattern) from the flat slot id.
  const auto it = std::upper_bound(sub_.pattern_base.begin(),
                                   sub_.pattern_base.end(), slot);
  const std::size_t g =
      static_cast<std::size_t>(it - sub_.pattern_base.begin()) - 1;
  const SubbandGroup& group = sub_.groups[g];
  const SubbandPattern& pattern =
      sub_.patterns[g][slot - sub_.pattern_base[g]];
  auto& partial = partials_[slot];
  // Ascending channel order per partial sample, each sample completed in a
  // single flush — the addition sequence of accumulate_subband_partial(),
  // so finalize's combine sees byte-identical partials to the one-shot
  // subband sweep.
  for (std::size_t i = 0; i < group.size(); ++i) {
    const std::uint32_t r = pattern.residuals[i];
    if (r >= total_samples_) continue;
    const std::size_t limit =
        std::min<std::size_t>(out_end, total_samples_ - r);
    if (limit <= out_begin) continue;
    const float* row =
        window_.data() + (group.begin + i) * window_stride_ - window_start_;
    kernels::accumulate_f32(partial.data() + out_begin, row + out_begin + r,
                            limit - out_begin);
  }
}

void StreamingSweep::clean_block(std::size_t carry_len, std::size_t count) {
  if (!zero_dm_ || count == 0) return;
  zero_dm_subtract(window_.data(), window_stride_, channels_, carry_len,
                   carry_len + count,
                   params_.channel_mask.empty() ? nullptr
                                                : params_.channel_mask.data());
}

void StreamingSweep::push_frames(const float* frames, std::size_t num_frames) {
  const std::size_t carry_len = prepare_window(num_frames);
  for (std::size_t c = 0; c < channels_; ++c) {
    float* row = window_.data() + c * window_stride_ + carry_len;
    for (std::size_t s = 0; s < num_frames; ++s) {
      row[s] = frames[s * channels_ + c];
    }
  }
  clean_block(carry_len, num_frames);
  commit_block(num_frames);
}

void StreamingSweep::push(const Filterbank& fb, std::size_t begin,
                          std::size_t count) {
  if (finalized_) {
    throw std::logic_error("StreamingSweep: push after finalize");
  }
  if (fb.num_channels() != channels_ ||
      fb.num_samples() != total_samples_ ||
      fb.config().sample_time_ms != config_.sample_time_ms) {
    throw std::invalid_argument(
        "StreamingSweep: filterbank geometry does not match the sweep plan");
  }
  if (begin != pushed_) {
    throw std::invalid_argument(
        "StreamingSweep: block starts at sample " + std::to_string(begin) +
        " but the stream is at " + std::to_string(pushed_));
  }
  // An ingester reading fixed-size blocks overshoots on the final one; the
  // filterbank itself bounds the real data, so clamp rather than throw.
  count = std::min(count, total_samples_ - begin);
  const std::size_t carry_len = prepare_window(count);
  for (std::size_t c = 0; c < channels_; ++c) {
    std::memcpy(window_.data() + c * window_stride_ + carry_len,
                fb.channel_data(c) + begin, count * sizeof(float));
  }
  clean_block(carry_len, count);
  commit_block(count);
}

std::vector<SinglePulseEvent> StreamingSweep::finalize() {
  if (finalized_) {
    throw std::logic_error("StreamingSweep: finalize called twice");
  }
  if (pushed_ != total_samples_) {
    throw std::logic_error(
        "StreamingSweep: finalize with " + std::to_string(pushed_) + " of " +
        std::to_string(total_samples_) + " samples pushed");
  }
  finalized_ = true;

  auto& tracer = obs::global_tracer();
  obs::ScopedSpan span(tracer, "dedisp.stream.finalize", {}, "dedisp");
  std::vector<std::vector<SinglePulseEvent>> found(sweep_.plans.size());
  if (subband()) {
    const std::size_t num_groups = sub_.groups.size();
    for_each(sweep_.plans.size(), [&](std::size_t i) {
      // Stage 2 + tail normalization + detection per plan. Partials are
      // shared across plans, so the synthesized series lives in reusable
      // per-worker scratch and the partials stay resident until the loop
      // ends. Byte-identical to subband_single_pulse_search(): same
      // combine, same normalization, same detection.
      thread_local std::vector<const double*> node_ptrs;
      thread_local std::vector<double> series;
      thread_local std::vector<std::uint32_t> contrib_prefix;
      thread_local DetectScratch detect_scratch;
      node_ptrs.resize(num_groups);
      for (std::size_t g = 0; g < num_groups; ++g) {
        node_ptrs[g] =
            partials_[sub_.pattern_base[g] + sub_.entry(i, g).pattern].data();
      }
      combine_subband_series(sub_, i, node_ptrs.data(), total_samples_,
                             series);
      normalize_tail(sweep_.plans[i], channels_, series, contrib_prefix);
      detect_events_into(series, grid_.dm_at(sweep_.plans[i].trials.front()),
                         config_.sample_time_ms, params_, detect_scratch,
                         found[i]);
    });
    partials_.clear();
    partials_.shrink_to_fit();
  } else {
    for_each(sweep_.plans.size(), [&](std::size_t i) {
      // Tail normalization runs here, exactly once per fully-accumulated
      // series — never per chunk, so overlap-carry samples are rescaled
      // once.
      thread_local std::vector<std::uint32_t> contrib_prefix;
      thread_local DetectScratch detect_scratch;
      normalize_tail(sweep_.plans[i], channels_, series_[i], contrib_prefix);
      detect_events_into(series_[i],
                         grid_.dm_at(sweep_.plans[i].trials.front()),
                         config_.sample_time_ms, params_, detect_scratch,
                         found[i]);
      std::vector<double>().swap(series_[i]);  // done with this plan's series
    });
  }

  std::vector<SinglePulseEvent> events =
      detail::merge_plan_events(sweep_, grid_, params_.dm_stride, found);

  auto& counters = obs::global_counters();
  counters.add("dedisp.stream.trials",
               static_cast<std::int64_t>(sweep_.num_trials));
  counters.add("dedisp.stream.events",
               static_cast<std::int64_t>(events.size()));
  if (subband()) {
    counters.add("dedisp.subband.nodes",
                 static_cast<std::int64_t>(sub_.total_patterns));
    counters.add("dedisp.subband.residual_combines",
                 static_cast<std::int64_t>(sweep_.plans.size() *
                                           sub_.groups.size()));
    counters.set_gauge("dedisp.subband.groups",
                       static_cast<double>(sub_.groups.size()));
  }
  if (span.active()) {
    span.arg("plans", static_cast<std::int64_t>(sweep_.plans.size()));
    span.arg("events", static_cast<std::int64_t>(events.size()));
    span.arg("method", sweep_method_name(params_.method));
    span.arg("kernel", kernels::dispatch_name());
  }
  return events;
}

}  // namespace drapid
