#include "rapid/search.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace drapid {

std::size_t compute_bin_size(std::size_t n, const RapidParams& params) {
  if (!params.dynamic_bin_size) return std::max<std::size_t>(1, params.static_bin_size);
  if (n < 12) return 1;
  const auto size = static_cast<std::size_t>(
      std::floor(params.weight * std::sqrt(static_cast<double>(n))));
  return std::max<std::size_t>(1, size);
}

namespace {

enum class Trend { kDecreasing, kFlat, kIncreasing };

Trend classify(double slope, double threshold) {
  if (slope < -threshold) return Trend::kDecreasing;
  if (slope > threshold) return Trend::kIncreasing;
  return Trend::kFlat;
}

class SearchState {
 public:
  explicit SearchState(std::span<const SinglePulseEvent> events)
      : events_(events) {}

  void begin_new(std::size_t at) {
    active_ = true;
    has_peak_ = false;
    begin_ = at;
    peak_ = at;
    folded_ = at + 1;  // the begin event itself seeds the running argmax
  }
  void clear() { active_ = false; }
  void mark_peak() {
    if (active_) has_peak_ = true;
  }
  bool active() const { return active_; }
  bool has_peak() const { return active_ && has_peak_; }

  /// Folds events [folded, upto) into the pending pulse's running peak
  /// argmax. The main loop calls this once per bin boundary, so the peak is
  /// maintained incrementally as the scan advances — each event is folded at
  /// most once per cluster (pulses are disjoint and `folded` is monotone)
  /// and write() needs no rescan of [begin, end). Ties keep the first
  /// maximum (strict >), matching a left-to-right scan.
  void advance_peak(std::size_t upto) {
    if (!active_ || upto <= folded_) return;
    double best = events_[peak_].snr;  // cached: one load per event below
    for (std::size_t i = folded_; i < upto; ++i) {
      if (events_[i].snr > best) {
        best = events_[i].snr;
        peak_ = i;
      }
    }
    folded_ = upto;
  }

  /// Writes the pending pulse covering [begin, end_exclusive); only pulses
  /// that actually crossed a peak are emitted.
  void write(std::size_t end_exclusive) {
    if (!active_ || !has_peak_ || end_exclusive <= begin_) {
      active_ = false;
      return;
    }
    advance_peak(end_exclusive);  // no-op except for the final tail
    SinglePulse pulse;
    pulse.begin = begin_;
    pulse.end = end_exclusive;
    pulse.peak = peak_;
    results_.push_back(pulse);
    active_ = false;
  }

  std::vector<SinglePulse>&& take_results() { return std::move(results_); }

 private:
  std::span<const SinglePulseEvent> events_;
  bool active_ = false;
  bool has_peak_ = false;
  std::size_t begin_ = 0;
  std::size_t peak_ = 0;    // argmax of snr over [begin_, folded_)
  std::size_t folded_ = 0;  // exclusive end of the range peak_ covers
  std::vector<SinglePulse> results_;
};

}  // namespace

std::vector<SinglePulse> rapid_search(std::span<const SinglePulseEvent> events,
                                      const RapidParams& params) {
  const std::size_t n = events.size();
  if (n < 2) return {};
  const std::size_t binsize = compute_bin_size(n, params);
  const double m = params.slope_threshold;

  SearchState state(events);
  // b_{n-1} is initialized to 0 (Algorithm 1), i.e. a flat previous trend.
  Trend prev = Trend::kFlat;

  // Regression window: the bin itself, widened to two points when the bin
  // size is 1 so that the slope "connects the dots" (§5.1.2) instead of
  // degenerating on a single point. Loop-invariant, so hoisted.
  const std::size_t window = std::max<std::size_t>(binsize, 2);

  for (std::size_t start = 0; start < n; start += binsize) {
    const std::size_t end = std::min(start + window, n);
    if (end - start < 2) break;  // a trailing singleton carries no trend
    // Incremental regression sums — RunningFit::add performs the exact
    // operation sequence of linear_regression's accumulation loop, so the
    // slope is bit-identical to the vector-based version without the two
    // heap allocations per bin.
    RunningFit bin_fit;
    for (std::size_t i = start; i < end; ++i) {
      bin_fit.add(events[i].dm, events[i].snr);
    }
    const Trend cur = classify(bin_fit.fit().slope, m);

    // Fold the events scanned so far into the pending pulse's peak before
    // the transitions below consult or write it at boundary `start`.
    state.advance_peak(start);

    // Trend-transition state machine (Algorithm 1). `start` is the first
    // SPE of the current bin: pulses begin at bin starts and are written
    // covering everything before the bin that triggered the write.
    switch (prev) {
      case Trend::kDecreasing:
        if (cur == Trend::kFlat) {
          // Valley floor: anything without a completed peak restarts here;
          // a completed pulse keeps its trailing plateau.
          if (!state.has_peak()) state.begin_new(start);
        } else if (cur == Trend::kIncreasing) {
          if (state.has_peak()) state.write(start);
          state.begin_new(start);
        }
        // decreasing -> decreasing: keep descending.
        break;
      case Trend::kFlat:
        if (cur == Trend::kDecreasing) {
          if (state.active() && !state.has_peak()) {
            state.mark_peak();  // crest plateau ended; peak crossed
          } else if (!state.active()) {
            state.begin_new(start);  // descending edge of an unseen climb
          }
        } else if (cur == Trend::kFlat) {
          if (state.has_peak()) {
            state.write(start);
            state.begin_new(start);
          } else {
            state.clear();  // flat noise; discard a climb that stalled
          }
        } else {  // increasing
          if (state.has_peak()) state.write(start);
          if (!state.active()) state.begin_new(start);
        }
        break;
      case Trend::kIncreasing:
        if (cur == Trend::kDecreasing) {
          if (!state.active()) state.begin_new(start);
          state.mark_peak();  // sharp peak between the two bins
        } else if (cur == Trend::kFlat) {
          if (!state.active()) state.begin_new(start);
          // crest plateau: peak confirmed when the descent arrives
        } else {
          if (!state.active()) state.begin_new(start);  // still climbing
        }
        break;
    }
    prev = cur;
  }

  // A pulse still descending (or plateaued) at the end of the cluster is
  // complete if its peak was crossed.
  state.write(n);
  return std::move(state.take_results());
}

std::size_t rapid_search_cost(std::size_t cluster_size) {
  // Every SPE enters one regression; constant covers bin setup and the
  // per-cluster dispatch overhead.
  return 16 + cluster_size;
}

}  // namespace drapid
