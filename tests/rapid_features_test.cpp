#include "rapid/features.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace drapid {
namespace {

SinglePulseEvent spe(double dm, double snr, double t) {
  SinglePulseEvent e;
  e.dm = dm;
  e.snr = snr;
  e.time_s = t;
  return e;
}

struct Fixture {
  std::vector<SinglePulseEvent> events;
  SinglePulse pulse;
  ClusterRecord cluster;
  DmGrid grid = DmGrid({{0.0, 50.0, 0.1}, {50.0, 300.0, 0.5}});

  Fixture() {
    // A 5-point triangular pulse from DM 10.0 to 10.8 peaking at 10.4.
    events = {spe(10.0, 5.0, 1.00), spe(10.2, 8.0, 1.01),
              spe(10.4, 12.0, 1.02), spe(10.6, 8.5, 1.03),
              spe(10.8, 5.5, 1.04)};
    pulse.begin = 0;
    pulse.end = 5;
    pulse.peak = 2;
    cluster.obs.dataset = "TEST";
    cluster.rank = 4;
    cluster.time_min = 0.9;
    cluster.time_max = 1.1;
    cluster.num_spes = 5;
  }
};

TEST(Features, NamesAlignWithIndices) {
  const auto& names = PulseFeatures::names();
  EXPECT_EQ(names.size(), PulseFeatures::kCount);
  EXPECT_EQ(names[kAvgSnr], "AvgSNR");
  EXPECT_EQ(names[kSnrPeakDm], "SNRPeakDM");
  EXPECT_EQ(names[kDmSpacing], "DMSpacing");
  EXPECT_EQ(names[kSnrRatio], "SNRRatio");
  EXPECT_EQ(names[kClusterRank], "ClusterRank");
  EXPECT_EQ(names[kPulseRank], "PulseRank");
  EXPECT_EQ(names[kStartTime], "StartTime");
  EXPECT_EQ(names[kStopTime], "StopTime");
}

TEST(Features, TriangularPulseValues) {
  Fixture fx;
  const auto f = extract_features(fx.events, fx.pulse, fx.cluster, fx.grid, 2);
  EXPECT_DOUBLE_EQ(f[kNumSpes], 5.0);
  EXPECT_NEAR(f[kDmRange], 0.8, 1e-9);
  EXPECT_DOUBLE_EQ(f[kSnrMax], 12.0);
  EXPECT_DOUBLE_EQ(f[kSnrMin], 5.0);
  EXPECT_NEAR(f[kAvgSnr], (5.0 + 8.0 + 12.0 + 8.5 + 5.5) / 5.0, 1e-12);
  EXPECT_NEAR(f[kSnrPeakDm], 10.4, 1e-9);
  EXPECT_NEAR(f[kDuration], 0.04, 1e-9);
  // Table 1 features:
  EXPECT_DOUBLE_EQ(f[kStartTime], 0.9);   // cluster extent, not pulse extent
  EXPECT_DOUBLE_EQ(f[kStopTime], 1.1);
  EXPECT_DOUBLE_EQ(f[kClusterRank], 4.0);
  EXPECT_DOUBLE_EQ(f[kPulseRank], 2.0);
  EXPECT_DOUBLE_EQ(f[kDmSpacing], 0.1);   // peak at DM 10.4, fine segment
  EXPECT_NEAR(f[kSnrRatio], 5.0 / 12.0, 1e-12);  // first SPE / max
}

TEST(Features, SlopesHaveOppositeSignsAroundPeak) {
  Fixture fx;
  const auto f = extract_features(fx.events, fx.pulse, fx.cluster, fx.grid, 1);
  EXPECT_GT(f[kSlopeLeft], 0.0);
  EXPECT_LT(f[kSlopeRight], 0.0);
  EXPECT_GT(f[kFitR2Left], 0.5);
  EXPECT_GT(f[kFitR2Right], 0.5);
}

TEST(Features, DmCentroidIsSnrWeighted) {
  Fixture fx;
  const auto f = extract_features(fx.events, fx.pulse, fx.cluster, fx.grid, 1);
  double num = 0.0, den = 0.0;
  for (const auto& e : fx.events) {
    num += e.dm * e.snr;
    den += e.snr;
  }
  EXPECT_NEAR(f[kDmCentroid], num / den, 1e-12);
}

TEST(Features, DmSpacingTracksGridSegment) {
  Fixture fx;
  // Move the whole pulse into the coarse segment of the grid.
  for (auto& e : fx.events) e.dm += 100.0;
  const auto f = extract_features(fx.events, fx.pulse, fx.cluster, fx.grid, 1);
  EXPECT_DOUBLE_EQ(f[kDmSpacing], 0.5);
}

TEST(Features, SubRangePulseUsesOnlyItsSpan) {
  Fixture fx;
  SinglePulse sub;
  sub.begin = 1;
  sub.end = 4;  // 8.0, 12.0, 8.5
  sub.peak = 2;
  const auto f = extract_features(fx.events, sub, fx.cluster, fx.grid, 1);
  EXPECT_DOUBLE_EQ(f[kNumSpes], 3.0);
  EXPECT_DOUBLE_EQ(f[kSnrMin], 8.0);
  EXPECT_NEAR(f[kSnrRatio], 8.0 / 12.0, 1e-12);
}

TEST(Features, OutOfBoundsPulseThrows) {
  Fixture fx;
  SinglePulse bad;
  bad.begin = 3;
  bad.end = 99;
  bad.peak = 3;
  EXPECT_THROW(
      extract_features(fx.events, bad, fx.cluster, fx.grid, 1),
      std::invalid_argument);
  bad.begin = bad.end = 2;
  EXPECT_THROW(
      extract_features(fx.events, bad, fx.cluster, fx.grid, 1),
      std::invalid_argument);
}

TEST(MlFile, HeaderListsAllFeatures) {
  const std::string header = ml_file_header();
  for (const auto& name : PulseFeatures::names()) {
    EXPECT_NE(header.find(name), std::string::npos) << name;
  }
  EXPECT_NE(header.find("label"), std::string::npos);
}

TEST(MlFile, RowRoundTrip) {
  Fixture fx;
  MlRecord rec;
  rec.obs.dataset = "PALFA";
  rec.obs.mjd = 56001.25;
  rec.obs.beam = 6;
  rec.cluster_id = 42;
  rec.pulse_index = 3;
  rec.features = extract_features(fx.events, fx.pulse, fx.cluster, fx.grid, 1);
  rec.truth_label = "pulsar";
  const MlRecord back = parse_ml_row(format_ml_row(rec));
  EXPECT_EQ(back.obs.dataset, "PALFA");
  EXPECT_EQ(back.cluster_id, 42);
  EXPECT_EQ(back.pulse_index, 3);
  EXPECT_EQ(back.truth_label, "pulsar");
  for (std::size_t i = 0; i < PulseFeatures::kCount; ++i) {
    EXPECT_NEAR(back.features.values[i], rec.features.values[i], 1e-9);
  }
}

TEST(MlFile, FileRoundTripPreservesOrderAndCount) {
  Fixture fx;
  std::vector<MlRecord> records(3);
  for (int i = 0; i < 3; ++i) {
    records[static_cast<std::size_t>(i)].obs.dataset = "T";
    records[static_cast<std::size_t>(i)].cluster_id = i;
    records[static_cast<std::size_t>(i)].features =
        extract_features(fx.events, fx.pulse, fx.cluster, fx.grid, i + 1);
  }
  std::stringstream io;
  write_ml_file(io, records);
  const auto back = read_ml_file(io);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1].cluster_id, 1);
  EXPECT_DOUBLE_EQ(back[2].features[kPulseRank], 3.0);
}

TEST(MlFile, WrongFieldCountThrows) {
  EXPECT_THROW(parse_ml_row({"a", "b", "c"}), std::runtime_error);
}

}  // namespace
}  // namespace drapid
