#include "serve/service.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "dedisp/rfi_mitigation.hpp"
#include "dedisp/streaming_sweep.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace drapid {
namespace serve {

SurveyService::SurveyService(std::string archive_dir, const DmGrid& grid,
                             SurveyServiceConfig config)
    : grid_(grid),
      config_(std::move(config)),
      archive_(std::move(archive_dir)),
      writer_([this] { writer_loop(); }) {}

SurveyService::~SurveyService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  writer_.join();
}

void SurveyService::submit(ObservationId id, Filterbank fb) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(Job{std::move(id), std::move(fb)});
    depth = queue_.size();
  }
  obs::global_counters().set_gauge("serve.queue_depth",
                                   static_cast<double>(depth));
  work_cv_.notify_one();
}

void SurveyService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

std::size_t SurveyService::observations_ingested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ingested_;
}

std::size_t SurveyService::ingest_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return errors_;
}

void SurveyService::writer_loop() {
  while (true) {
    std::optional<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the backlog even when stopping: every submitted observation
      // is ingested before the destructor returns.
      if (queue_.empty()) break;
      job.emplace(std::move(queue_.front()));
      queue_.pop_front();
      busy_ = true;
      obs::global_counters().set_gauge("serve.queue_depth",
                                       static_cast<double>(queue_.size()));
    }
    bool ok = true;
    try {
      ingest(*job);
    } catch (const std::exception&) {
      ok = false;
      obs::global_counters().add("serve.ingest_errors");
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      if (ok) {
        ++ingested_;
      } else {
        ++errors_;
      }
    }
    drain_cv_.notify_all();
  }
}

void SurveyService::ingest(const Job& job) {
  obs::ScopedSpan span(obs::global_tracer(), "serve.ingest", job.id.dataset,
                       "serve");
  const FilterbankConfig& want = config_.filterbank;
  const FilterbankConfig& got = job.fb.config();
  if (got.num_channels != want.num_channels ||
      got.sample_time_ms != want.sample_time_ms ||
      got.bandwidth_mhz != want.bandwidth_mhz ||
      got.center_freq_mhz != want.center_freq_mhz) {
    throw std::invalid_argument(
        "observation geometry does not match the service configuration");
  }
  // The streaming sweep refuses to estimate a channel mask itself (it never
  // sees the whole observation); the service has the full filterbank in
  // hand, so estimate per observation here and hand the sweep a fixed mask.
  SinglePulseSearchParams search = config_.search;
  if (policy_masks_channels(search.rfi.policy) &&
      search.channel_mask.empty()) {
    search.channel_mask = estimate_channel_mask(job.fb, search.rfi);
  }
  StreamingSweep sweep(got, grid_, search);
  const std::size_t total = sweep.total_samples();
  const std::size_t chunk =
      config_.chunk_samples == 0 ? total : config_.chunk_samples;
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    sweep.push(job.fb, begin, std::min(chunk, total - begin));
  }
  const std::vector<SinglePulseEvent> events = sweep.finalize();
  for (const auto& event : events) archive_.append(job.id, event);
  archive_.seal();

  auto& counters = obs::global_counters();
  counters.add("serve.observations");
  counters.add("serve.candidates", static_cast<std::int64_t>(events.size()));
  if (span.active()) {
    span.arg("candidates", static_cast<std::int64_t>(events.size()));
  }
}

}  // namespace serve
}  // namespace drapid
