// Robustness fuzzing for every file format the pipeline parses: randomly
// mutated inputs must either parse cleanly or throw std::runtime_error —
// never crash, hang, or corrupt memory. (Survey files in the wild are
// truncated, re-encoded and hand-edited; a production pipeline sees all of
// it.)
#include <gtest/gtest.h>

#include <sstream>

#include "rapid/features.hpp"
#include "spe/catalog.hpp"
#include "spe/spe_io.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

/// Applies `mutations` random byte edits (replace/insert/delete).
std::string mutate(const std::string& input, Rng& rng, int mutations) {
  std::string s = input;
  for (int m = 0; m < mutations && !s.empty(); ++m) {
    const std::size_t pos = rng.below(s.size());
    switch (rng.below(3)) {
      case 0:
        s[pos] = static_cast<char>(32 + rng.below(95));
        break;
      case 1:
        s.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
        break;
      default:
        s.erase(pos, 1);
        break;
    }
  }
  return s;
}

std::string sample_data_file() {
  ObservationId id;
  id.dataset = "FUZZ";
  id.mjd = 56000.25;
  id.ra_deg = 123.4;
  id.dec_deg = -5.6;
  std::ostringstream out;
  std::vector<ObservationData> observations(1);
  observations[0].id = id;
  for (int i = 0; i < 20; ++i) {
    SinglePulseEvent e;
    e.dm = 10.0 + i;
    e.snr = 6.0;
    e.time_s = i * 0.5;
    e.sample = i * 100;
    e.downfact = 2;
    observations[0].events.push_back(e);
  }
  write_data_file(out, observations);
  return out.str();
}

template <typename Parse>
void fuzz(const std::string& valid, Parse&& parse, std::uint64_t seed,
          int rounds) {
  Rng rng(seed);
  for (int r = 0; r < rounds; ++r) {
    const auto corrupted = mutate(valid, rng, 1 + static_cast<int>(rng.below(8)));
    try {
      parse(corrupted);  // either works...
    } catch (const std::runtime_error&) {
      // ...or reports the corruption; both are acceptable.
    }
  }
}

TEST(FormatFuzz, DataFileNeverCrashes) {
  fuzz(sample_data_file(),
       [](const std::string& text) {
         std::istringstream in(text);
         read_data_file(in);
       },
       101, 400);
}

TEST(FormatFuzz, ClusterFileNeverCrashes) {
  std::vector<ClusterRecord> clusters(5);
  for (int i = 0; i < 5; ++i) {
    clusters[static_cast<std::size_t>(i)].obs.dataset = "FUZZ";
    clusters[static_cast<std::size_t>(i)].cluster_id = i;
    clusters[static_cast<std::size_t>(i)].num_spes = 10;
  }
  std::ostringstream out;
  write_cluster_file(out, clusters);
  fuzz(out.str(),
       [](const std::string& text) {
         std::istringstream in(text);
         read_cluster_file(in);
       },
       103, 400);
}

TEST(FormatFuzz, SinglepulseFileNeverCrashes) {
  std::ostringstream out;
  std::vector<SinglePulseEvent> events(10);
  write_singlepulse(out, events);
  fuzz(out.str(),
       [](const std::string& text) {
         std::istringstream in(text);
         read_singlepulse(in);
       },
       107, 400);
}

TEST(FormatFuzz, MlFileNeverCrashes) {
  std::vector<MlRecord> records(3);
  for (auto& rec : records) rec.obs.dataset = "FUZZ";
  std::ostringstream out;
  write_ml_file(out, records);
  fuzz(out.str(),
       [](const std::string& text) {
         std::istringstream in(text);
         read_ml_file(in);
       },
       109, 400);
}

TEST(FormatFuzz, CatalogNeverCrashes) {
  SourceCatalog catalog;
  catalog.add({"J0001+01", 1.0, 1.0, 10.0, 1.0, false});
  catalog.add({"R0002-02", 2.0, -2.0, 20.0, 0.0, true});
  std::ostringstream out;
  catalog.save(out);
  fuzz(out.str(),
       [](const std::string& text) {
         std::istringstream in(text);
         SourceCatalog::load(in);
       },
       113, 400);
}

TEST(FormatFuzz, ObservationKeyNeverCrashes) {
  const std::string valid = ObservationId{"FUZZ", 56000.5, 1, 2, 3}.key();
  fuzz(valid,
       [](const std::string& text) { ObservationId::from_key(text); }, 127,
       400);
}

}  // namespace
}  // namespace drapid
