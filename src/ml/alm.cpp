#include "ml/alm.hpp"

#include <stdexcept>

namespace drapid {
namespace ml {

const std::vector<AlmScheme>& all_alm_schemes() {
  static const std::vector<AlmScheme> kAll = {
      AlmScheme::kBinary, AlmScheme::kFourStar, AlmScheme::kFour,
      AlmScheme::kSeven, AlmScheme::kEight};
  return kAll;
}

std::string alm_scheme_name(AlmScheme scheme) {
  switch (scheme) {
    case AlmScheme::kBinary: return "2";
    case AlmScheme::kFourStar: return "4*";
    case AlmScheme::kFour: return "4";
    case AlmScheme::kSeven: return "7";
    case AlmScheme::kEight: return "8";
  }
  throw std::invalid_argument("unknown ALM scheme");
}

const std::vector<std::string>& alm_class_names(AlmScheme scheme) {
  static const std::vector<std::string> kBinary = {"NonPulsar", "Pulsar"};
  static const std::vector<std::string> kFourStar = {
      "NonPulsar", "Pulsar", "VeryBrightPulsar", "RRAT"};
  static const std::vector<std::string> kFour = {"NonPulsar", "Near", "Mid",
                                                 "Far"};
  static const std::vector<std::string> kSeven = {
      "NonPulsar",  "NearWeak", "NearStrong", "MidWeak",
      "MidStrong", "FarWeak",  "FarStrong"};
  static const std::vector<std::string> kEight = {
      "NonPulsar",  "NearWeak", "NearStrong", "MidWeak",
      "MidStrong", "FarWeak",  "FarStrong",  "RRAT"};
  switch (scheme) {
    case AlmScheme::kBinary: return kBinary;
    case AlmScheme::kFourStar: return kFourStar;
    case AlmScheme::kFour: return kFour;
    case AlmScheme::kSeven: return kSeven;
    case AlmScheme::kEight: return kEight;
  }
  throw std::invalid_argument("unknown ALM scheme");
}

namespace {
/// 0 = near, 1 = mid, 2 = far (Table 2).
int distance_bin(double snr_peak_dm) {
  if (snr_peak_dm < kNearMidDmThreshold) return 0;
  if (snr_peak_dm < kMidFarDmThreshold) return 1;
  return 2;
}
/// 0 = weak, 1 = strong (Table 2; [0, 8] is weak).
int strength_bin(double avg_snr) {
  return avg_snr > kWeakStrongSnrThreshold ? 1 : 0;
}
}  // namespace

int alm_label(AlmScheme scheme, bool is_pulsar, bool is_rrat,
              double snr_peak_dm, double avg_snr, double snr_max) {
  if (!is_pulsar) return 0;
  switch (scheme) {
    case AlmScheme::kBinary:
      return 1;
    case AlmScheme::kFourStar:
      if (is_rrat) return 3;
      return snr_max > kVeryBrightSnrMax ? 2 : 1;
    case AlmScheme::kFour:
      return 1 + distance_bin(snr_peak_dm);
    case AlmScheme::kSeven:
      return 1 + 2 * distance_bin(snr_peak_dm) + strength_bin(avg_snr);
    case AlmScheme::kEight:
      if (is_rrat) return 7;
      return 1 + 2 * distance_bin(snr_peak_dm) + strength_bin(avg_snr);
  }
  throw std::invalid_argument("unknown ALM scheme");
}

}  // namespace ml
}  // namespace drapid
