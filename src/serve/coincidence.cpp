#include "serve/coincidence.hpp"

#include <cstdint>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace drapid {
namespace serve {

MultiBeamFilterResult reject_multibeam_rfi(
    const CandidateArchive& archive, const std::vector<ObservationId>& beams,
    const DmGrid& grid, const CoincidenceParams& params) {
  obs::ScopedSpan span(obs::global_tracer(), "serve.coincidence",
                       beams.empty() ? "" : beams.front().dataset, "serve");

  // One query per beam; the snapshot the archive hands each query is
  // immutable, so a concurrent ingest of other pointings is harmless.
  std::vector<ObservationData> per_beam(beams.size());
  for (std::size_t b = 0; b < beams.size(); ++b) {
    Query q;
    q.key = beams[b].key();
    per_beam[b].id = beams[b];
    for (const CandidateRecord& rec : archive.query(q)) {
      per_beam[b].events.push_back(rec.event);
    }
  }
  std::vector<const ObservationData*> views;
  views.reserve(per_beam.size());
  for (const ObservationData& beam : per_beam) views.push_back(&beam);

  const CoincidenceResult coincidence =
      coincidence_reject(views, grid, params);

  MultiBeamFilterResult result;
  result.num_candidates = coincidence.num_events;
  result.num_rejected = coincidence.num_rejected;
  result.kept.resize(beams.size());
  for (std::size_t b = 0; b < beams.size(); ++b) {
    const auto& flags = coincidence.rejected[b];
    for (std::size_t i = 0; i < per_beam[b].events.size(); ++i) {
      if (flags[i]) continue;
      result.kept[b].push_back(
          CandidateRecord{beams[b], per_beam[b].events[i]});
    }
  }

  auto& counters = obs::global_counters();
  counters.add("serve.coincidence_rejected",
               static_cast<std::int64_t>(result.num_rejected));
  counters.add("serve.coincidence_kept",
               static_cast<std::int64_t>(result.num_candidates -
                                         result.num_rejected));
  if (span.active()) {
    span.arg("beams", static_cast<std::int64_t>(beams.size()));
    span.arg("rejected", static_cast<std::int64_t>(result.num_rejected));
  }
  return result;
}

}  // namespace serve
}  // namespace drapid
