#include "ml/wrapper_selection.hpp"

#include <algorithm>

#include "ml/cross_validation.hpp"

namespace drapid {
namespace ml {

namespace {

/// Cross-validated collapsed F-measure of the given feature subset.
double score_subset(const Dataset& data,
                    const std::vector<std::size_t>& features,
                    const std::function<std::unique_ptr<Classifier>()>& factory,
                    const WrapperParams& params, std::size_t& trainings) {
  const Dataset projected = data.select_features(features);
  Rng rng(params.seed);
  const auto cv = cross_validate(projected, params.folds, factory, rng);
  trainings += static_cast<std::size_t>(params.folds);
  return cv.pooled_binary().f_measure();
}

}  // namespace

WrapperResult wrapper_forward_selection(
    const Dataset& data,
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const WrapperParams& params) {
  WrapperResult result;
  std::vector<bool> used(data.num_features(), false);
  double current_score = 0.0;

  while (result.features.size() <
         std::min(params.max_features, data.num_features())) {
    double best_score = current_score;
    std::size_t best_feature = data.num_features();
    for (std::size_t f = 0; f < data.num_features(); ++f) {
      if (used[f]) continue;
      auto candidate = result.features;
      candidate.push_back(f);
      const double score =
          score_subset(data, candidate, factory, params, result.trainings);
      if (score > best_score) {
        best_score = score;
        best_feature = f;
      }
    }
    if (best_feature == data.num_features() ||
        best_score < current_score + params.min_improvement) {
      break;  // nothing helps any more
    }
    used[best_feature] = true;
    result.features.push_back(best_feature);
    result.scores.push_back(best_score);
    current_score = best_score;
  }
  return result;
}

}  // namespace ml
}  // namespace drapid
