// Candidate classification (pipeline stage 4): build a labeled benchmark
// from the synthetic survey, train the paper's recommended configuration —
// RandomForest with ALM scheme 8 and InfoGain feature selection — and
// report Recall / Precision / F-Measure against the binary baseline.
//
//   ./examples/classify_candidates [--positives N] [--negatives N] [--seed N]
#include <iostream>

#include "exp/trial_runner.hpp"
#include "util/options.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  Options opts(argc, argv,
               {{"positives", "150"}, {"negatives", "900"}, {"seed", "5"}});

  BenchmarkConfig bench;
  bench.survey = SurveyConfig::gbt350drift();
  bench.survey.obs_length_s = 60.0;
  bench.target_positives = static_cast<std::size_t>(opts.integer("positives"));
  bench.target_negatives = static_cast<std::size_t>(opts.integer("negatives"));
  bench.seed = static_cast<std::uint64_t>(opts.integer("seed"));
  bench.visibility = 0.10;
  std::cout << "building benchmark (" << bench.target_positives
            << " positives + " << bench.target_negatives
            << " negatives)...\n";
  const auto pulses = build_benchmark_pulses(bench);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "Recall", "Precision", "F-Measure",
                  "train (s)"});
  const auto add_row = [&](const TrialSpec& spec) {
    const TrialResult r = run_trial(pulses, spec);
    rows.push_back({spec.describe(), format_number(r.recall),
                    format_number(r.precision), format_number(r.f_measure),
                    format_number(r.train_seconds)});
    return r;
  };

  TrialSpec binary;  // baseline: binary RF, all 22 features
  binary.scheme = ml::AlmScheme::kBinary;
  binary.learner = ml::LearnerType::kRandomForest;
  const auto base = add_row(binary);

  TrialSpec recommended = binary;  // paper §7: ALM-8 RF + InfoGain
  recommended.scheme = ml::AlmScheme::kEight;
  recommended.filter = ml::FilterMethod::kInfoGain;
  const auto best = add_row(recommended);

  TrialSpec alm_only = binary;
  alm_only.scheme = ml::AlmScheme::kEight;
  add_row(alm_only);

  std::cout << '\n' << render_table(rows) << '\n';
  const double speedup =
      base.train_seconds > 0.0
          ? (1.0 - best.train_seconds / base.train_seconds) * 100.0
          : 0.0;
  std::cout << "ALM-8 + IG trained " << format_number(speedup, 1)
            << "% faster than the binary baseline, with Recall within "
            << format_number((base.recall - best.recall) * 100.0, 1)
            << " points (paper: ~54% faster, within ~2%).\n";
  return 0;
}
