// Candidate archive: binary record adapters, segment round trip + checksum
// validation, quarantine of corrupt segments, reopen persistence, and index
// queries checked against brute-force scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "serve/archive.hpp"
#include "serve/segment.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("drapid_serve_") + info->test_suite_name() + "_" +
            info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

ObservationId obs_id(int beam) {
  ObservationId id;
  id.dataset = "PALFA";
  id.mjd = 55555.125;
  id.ra_deg = 290.25;
  id.dec_deg = 11.5;
  id.beam = beam;
  return id;
}

CandidateRecord make_record(Rng& rng, int beam) {
  CandidateRecord rec;
  rec.obs = obs_id(beam);
  rec.event.dm = rng.uniform(0.0, 500.0);
  rec.event.snr = rng.uniform(5.0, 40.0);
  rec.event.time_s = rng.uniform(0.0, 120.0);
  rec.event.sample = static_cast<std::int64_t>(rec.event.time_s * 500.0);
  rec.event.downfact = 1 << rng.below(5);
  return rec;
}

std::int64_t counter(const char* name) {
  for (const auto& [key, value] :
       obs::global_counters().counters_snapshot()) {
    if (key == name) return value;
  }
  return 0;
}

TEST(CandidateRecordCodec, RoundTrips) {
  Rng rng(1);
  std::string buffer;
  std::vector<CandidateRecord> originals;
  for (int i = 0; i < 100; ++i) {
    originals.push_back(make_record(rng, i % 7));
    append_candidate_record(buffer, originals.back());
  }
  std::size_t offset = 0;
  for (const auto& want : originals) {
    const CandidateRecord got =
        decode_candidate_record(buffer.data(), buffer.size(), offset);
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(CandidateRecordCodec, RejectsTruncationAtEveryLength) {
  Rng rng(2);
  std::string buffer;
  append_candidate_record(buffer, make_record(rng, 0));
  for (std::size_t len = 0; len < buffer.size(); ++len) {
    std::size_t offset = 0;
    EXPECT_THROW(decode_candidate_record(buffer.data(), len, offset),
                 std::runtime_error)
        << "prefix length " << len;
  }
}

TEST(CandidateRecordCodec, RejectsMalformedKey) {
  // A record whose key field is not an ObservationId::key() spelling.
  std::string buffer;
  const std::string bad_key = "not-a-key";
  const auto len = static_cast<std::uint32_t>(bad_key.size());
  buffer.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buffer.append(bad_key);
  buffer.append(36, '\0');  // dm, snr, time, sample, downfact
  std::size_t offset = 0;
  EXPECT_THROW(decode_candidate_record(buffer.data(), buffer.size(), offset),
               std::runtime_error);
}

TEST(SegmentFile, RoundTripsRecords) {
  TempDir dir;
  Rng rng(3);
  std::vector<CandidateRecord> records;
  for (int i = 0; i < 250; ++i) records.push_back(make_record(rng, i % 4));
  const std::string path = (dir.path / "a.seg").string();
  write_segment_file(path, records);
  EXPECT_EQ(read_segment_file(path), records);
}

TEST(SegmentFile, RoundTripsEmptySegment) {
  TempDir dir;
  const std::string path = (dir.path / "e.seg").string();
  write_segment_file(path, {});
  EXPECT_TRUE(read_segment_file(path).empty());
}

TEST(SegmentFile, DetectsEveryFlippedByte) {
  TempDir dir;
  Rng rng(4);
  std::vector<CandidateRecord> records;
  for (int i = 0; i < 5; ++i) records.push_back(make_record(rng, i));
  const std::string path = (dir.path / "a.seg").string();
  write_segment_file(path, records);
  std::ifstream in(path, std::ios::binary);
  const std::string good((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    std::ofstream(path, std::ios::binary).write(bad.data(), bad.size());
    EXPECT_THROW(read_segment_file(path), ArchiveError) << "byte " << i;
  }
}

TEST(SegmentFile, RejectsTruncation) {
  TempDir dir;
  Rng rng(5);
  std::vector<CandidateRecord> records{make_record(rng, 1)};
  const std::string path = (dir.path / "a.seg").string();
  write_segment_file(path, records);
  const auto size = static_cast<std::size_t>(fs::file_size(path));
  std::ifstream in(path, std::ios::binary);
  std::string good(size, '\0');
  in.read(good.data(), static_cast<std::streamsize>(size));
  for (std::size_t keep = 0; keep < size; ++keep) {
    std::ofstream(path, std::ios::binary).write(good.data(), keep);
    EXPECT_THROW(read_segment_file(path), ArchiveError) << "kept " << keep;
  }
}

TEST(Archive, AppendSealQueryAndReopen) {
  TempDir dir;
  Rng rng(6);
  std::vector<CandidateRecord> all;
  {
    CandidateArchive archive(dir.str());
    for (int batch = 0; batch < 3; ++batch) {
      for (int i = 0; i < 50; ++i) {
        all.push_back(make_record(rng, batch));
        archive.append(all.back());
      }
      EXPECT_EQ(archive.pending(), 50u);
      archive.seal();
      EXPECT_EQ(archive.pending(), 0u);
    }
    EXPECT_EQ(archive.size(), all.size());
    EXPECT_EQ(archive.num_segments(), 3u);
  }
  // Reopen: every sealed record is still there, in canonical order.
  CandidateArchive archive(dir.str());
  EXPECT_EQ(archive.size(), all.size());
  auto expected = all;
  std::sort(expected.begin(), expected.end(), candidate_order);
  EXPECT_EQ(archive.query({}), expected);
}

TEST(Archive, PendingRecordsInvisibleUntilSeal) {
  TempDir dir;
  Rng rng(7);
  CandidateArchive archive(dir.str());
  archive.append(make_record(rng, 0));
  EXPECT_EQ(archive.size(), 0u);
  EXPECT_TRUE(archive.query({}).empty());
  archive.seal();
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.query({}).size(), 1u);
}

TEST(Archive, QueriesMatchBruteForce) {
  TempDir dir;
  Rng rng(8);
  CandidateArchive archive(dir.str());
  std::vector<CandidateRecord> all;
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 200; ++i) {
      all.push_back(make_record(rng, i % 5));
      archive.append(all.back());
    }
    archive.seal();
  }

  const auto brute = [&](const Query& q) {
    std::vector<CandidateRecord> out;
    for (const auto& r : all) {
      if (r.event.dm >= q.dm_min && r.event.dm <= q.dm_max &&
          r.event.snr >= q.min_snr && r.event.time_s >= q.time_min &&
          r.event.time_s <= q.time_max &&
          (q.key.empty() || r.obs.key() == q.key)) {
        out.push_back(r);
      }
    }
    std::sort(out.begin(), out.end(), candidate_order);
    return out;
  };

  std::vector<Query> queries;
  queries.push_back({});                                  // full scan
  {
    Query q;
    q.dm_min = 100.0;
    q.dm_max = 300.0;
    queries.push_back(q);                                 // DM range
  }
  {
    Query q;
    q.min_snr = 20.0;
    queries.push_back(q);                                 // S/N threshold
  }
  {
    Query q;
    q.time_min = 30.0;
    q.time_max = 90.0;
    queries.push_back(q);                                 // time window
  }
  {
    Query q;
    q.key = obs_id(2).key();
    queries.push_back(q);                                 // one observation
  }
  {
    Query q;                                              // all at once
    q.key = obs_id(3).key();
    q.dm_min = 50.0;
    q.dm_max = 450.0;
    q.min_snr = 10.0;
    q.time_min = 10.0;
    q.time_max = 110.0;
    queries.push_back(q);
  }
  {
    Query q;
    q.dm_min = 900.0;                                     // empty result
    queries.push_back(q);
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(archive.query(queries[i]), brute(queries[i])) << "query " << i;
  }
}

TEST(Archive, QuarantinesCorruptSegmentOnOpen) {
  TempDir dir;
  Rng rng(9);
  std::vector<CandidateRecord> good_batch, bad_batch;
  {
    CandidateArchive archive(dir.str());
    for (int i = 0; i < 20; ++i) {
      good_batch.push_back(make_record(rng, 1));
      archive.append(good_batch.back());
    }
    archive.seal();
    for (int i = 0; i < 20; ++i) {
      bad_batch.push_back(make_record(rng, 2));
      archive.append(bad_batch.back());
    }
    archive.seal();
  }
  // Corrupt the second segment on disk.
  const std::string victim = (dir.path / "seg-000001.seg").string();
  ASSERT_TRUE(fs::exists(victim));
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);
    char b = 0;
    f.seekg(30);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xff);
    f.seekp(30);
    f.write(&b, 1);
  }

  const std::int64_t before = counter("serve.segments_quarantined");
  CandidateArchive archive(dir.str());
  EXPECT_EQ(counter("serve.segments_quarantined") - before, 1);
  ASSERT_EQ(archive.quarantined().size(), 1u);
  EXPECT_EQ(archive.quarantined().front(), victim);
  // The good segment survives untouched; the corrupt one is parked aside.
  auto expected = good_batch;
  std::sort(expected.begin(), expected.end(), candidate_order);
  EXPECT_EQ(archive.query({}), expected);
  EXPECT_FALSE(fs::exists(victim));
  EXPECT_TRUE(fs::exists(victim + ".quarantined"));

  // New seals do not collide with the quarantined slot's numbering.
  CandidateArchive again(dir.str());
  again.append(make_record(rng, 3));
  again.seal();
  EXPECT_EQ(again.num_segments(), 2u);
}

}  // namespace
}  // namespace serve
}  // namespace drapid
