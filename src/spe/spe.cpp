#include "spe/spe.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"

namespace drapid {

std::string ObservationId::key() const {
  std::ostringstream out;
  out.precision(17);  // exact double round-trip
  out << dataset << '|' << mjd << '|' << ra_deg << '|' << dec_deg << '|'
      << beam;
  return out.str();
}

ObservationId ObservationId::from_key(const std::string& key) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(key);
  while (std::getline(in, part, '|')) parts.push_back(part);
  if (parts.size() != 5) {
    throw std::runtime_error("malformed observation key: " + key);
  }
  ObservationId id;
  id.dataset = parts[0];
  id.mjd = parse_double(parts[1]);
  id.ra_deg = parse_double(parts[2]);
  id.dec_deg = parse_double(parts[3]);
  id.beam = static_cast<int>(parse_int(parts[4]));
  return id;
}

}  // namespace drapid
