#include "dataflow/cluster_model.hpp"

#include <gtest/gtest.h>

namespace drapid {
namespace {

/// A job with `tasks` tasks of `cost` compute units each.
JobMetrics uniform_job(std::size_t tasks, std::size_t cost,
                       std::size_t shuffle_bytes = 0,
                       std::size_t spill_bytes = 0) {
  JobMetrics job;
  StageMetrics stage;
  stage.name = "stage";
  for (std::size_t i = 0; i < tasks; ++i) {
    TaskMetrics t;
    t.partition = i;
    t.compute_cost = cost;
    t.shuffle_bytes = shuffle_bytes;
    t.spill_bytes = spill_bytes;
    stage.tasks.push_back(t);
  }
  job.stages.push_back(std::move(stage));
  return job;
}

TEST(ClusterModel, EmptyJobCostsNothing) {
  const auto result = simulate_cluster({}, ClusterSpec::paper_beowulf(5));
  EXPECT_DOUBLE_EQ(result.total_seconds, 0.0);
}

TEST(ClusterModel, MoreExecutorsNeverSlower) {
  const auto job = uniform_job(896, 300000);
  double prev = 1e18;
  for (std::size_t executors : {1u, 5u, 10u, 15u, 20u}) {
    const auto r = simulate_cluster(job, ClusterSpec::paper_beowulf(executors));
    EXPECT_LE(r.total_seconds, prev + 1e-9) << executors << " executors";
    prev = r.total_seconds;
  }
}

TEST(ClusterModel, DiminishingReturnsBeyondTheKnee) {
  // Figure 4 shape: the 1->5 executor gain dwarfs the 5->20 gain.
  const auto job = uniform_job(896, 300000);
  const double t1 = simulate_cluster(job, ClusterSpec::paper_beowulf(1)).total_seconds;
  const double t5 = simulate_cluster(job, ClusterSpec::paper_beowulf(5)).total_seconds;
  const double t20 = simulate_cluster(job, ClusterSpec::paper_beowulf(20)).total_seconds;
  EXPECT_GT(t1 - t5, 3.0 * (t5 - t20));
}

TEST(ClusterModel, SpillBytesSlowTheJob) {
  const auto lean = uniform_job(100, 100000, 0, 0);
  const auto spilly = uniform_job(100, 100000, 0, 10u << 20);
  const auto spec = ClusterSpec::paper_beowulf(5);
  EXPECT_GT(simulate_cluster(spilly, spec).total_seconds,
            simulate_cluster(lean, spec).total_seconds);
}

TEST(ClusterModel, ShuffleBytesSlowTheJob) {
  const auto lean = uniform_job(100, 100000, 0, 0);
  const auto chatty = uniform_job(100, 100000, 5u << 20, 0);
  const auto spec = ClusterSpec::paper_beowulf(10);
  EXPECT_GT(simulate_cluster(chatty, spec).total_seconds,
            simulate_cluster(lean, spec).total_seconds);
}

TEST(ClusterModel, SkewedTasksLimitScaling) {
  // One giant task (a 3,500-SPE cluster) bounds the makespan no matter how
  // many executors exist — the straggler effect §6.1 describes.
  JobMetrics job;
  StageMetrics stage;
  stage.name = "skew";
  TaskMetrics giant;
  giant.compute_cost = 50'000'000;
  stage.tasks.push_back(giant);
  for (int i = 0; i < 500; ++i) {
    TaskMetrics small;
    small.compute_cost = 1000;
    stage.tasks.push_back(small);
  }
  job.stages.push_back(stage);
  const double t10 = simulate_cluster(job, ClusterSpec::paper_beowulf(10)).total_seconds;
  const double t20 = simulate_cluster(job, ClusterSpec::paper_beowulf(20)).total_seconds;
  const auto spec = ClusterSpec::paper_beowulf(10);
  const double giant_alone =
      static_cast<double>(giant.compute_cost) * spec.ns_per_compute_unit * 1e-9 /
      spec.node.clock_ghz;
  EXPECT_GE(t10, giant_alone);
  EXPECT_NEAR(t10, t20, giant_alone * 0.5);  // barely improves
}

TEST(ClusterModel, StageResultsSumToTotal) {
  JobMetrics job = uniform_job(50, 1000);
  job.stages.push_back(job.stages[0]);
  const auto r = simulate_cluster(job, ClusterSpec::paper_beowulf(5));
  ASSERT_EQ(r.stages.size(), 2u);
  EXPECT_NEAR(r.total_seconds, r.stages[0].seconds + r.stages[1].seconds, 1e-9);
}

TEST(WorkstationModel, MoreThreadsHelpUpToTheCoreCount) {
  std::vector<std::size_t> tasks(2000, 200000);
  const auto m = ClusterSpec::paper_workstation();
  const double t1 = simulate_workstation(tasks, 0, 0, m, 1).total_seconds;
  const double t5 = simulate_workstation(tasks, 0, 0, m, 5).total_seconds;
  EXPECT_GT(t1, t5 * 3.0);
}

TEST(WorkstationModel, OversubscriptionPlateaus) {
  std::vector<std::size_t> tasks(2000, 200000);
  const auto m = ClusterSpec::paper_workstation();  // 6 cores
  const double t10 = simulate_workstation(tasks, 0, 0, m, 10).total_seconds;
  const double t20 = simulate_workstation(tasks, 0, 0, m, 20).total_seconds;
  EXPECT_NEAR(t10, t20, t10 * 0.05);  // no more physical parallelism to buy
}

TEST(WorkstationModel, InputScanAddsSerialFloor) {
  const auto m = ClusterSpec::paper_workstation();
  const double without =
      simulate_workstation({}, 0, 0, m, 4).total_seconds;
  const double with_scan =
      simulate_workstation({}, 1u << 30, 0, m, 4).total_seconds;
  EXPECT_GT(with_scan, without + 1.0);  // ≥ 1 GB / 250 MB/s ≈ 4 s
}

TEST(WorkstationModel, MemoryPressureAddsSwapTime) {
  const auto m = ClusterSpec::paper_workstation();  // 16 GB RAM
  std::vector<std::size_t> tasks(100, 1000);
  const double fits =
      simulate_workstation(tasks, 0, 8ull << 30, m, 4).total_seconds;
  const double swaps =
      simulate_workstation(tasks, 0, 32ull << 30, m, 4).total_seconds;
  EXPECT_GT(swaps, fits + 10.0);
}

TEST(ClusterModel, PaperSpecsMatchSection61) {
  const auto spec = ClusterSpec::paper_beowulf(20);
  EXPECT_EQ(spec.cores_per_executor, 2u);        // "two virtual cores"
  EXPECT_DOUBLE_EQ(spec.executor_memory_mb, 2560.0);  // "2,560 MB of RAM"
  const auto ws = ClusterSpec::paper_workstation();
  EXPECT_DOUBLE_EQ(ws.clock_ghz, 4.5);           // "overclocked to 4.5 GHz"
  EXPECT_DOUBLE_EQ(ws.memory_gb, 16.0);
}

TEST(ClusterModel, MakespanValidationComparesMeasuredToModeled) {
  JobMetrics job = uniform_job(8, 1000);
  job.stages[0].wall_seconds = 2.0;
  StageMetrics second;
  second.name = "second";
  second.wall_seconds = 0.5;
  job.stages.push_back(std::move(second));
  const auto sim = simulate_cluster(job, ClusterSpec::paper_beowulf(5));
  const auto v = validate_makespan(job, sim);
  EXPECT_DOUBLE_EQ(v.measured_seconds, 2.5);
  EXPECT_DOUBLE_EQ(v.modeled_seconds, sim.total_seconds);
  EXPECT_DOUBLE_EQ(v.ratio, sim.total_seconds / 2.5);
}

TEST(ClusterModel, MakespanValidationHandlesUnstampedMetrics) {
  // Metrics rebuilt from a serialized report carry no wall clocks; the
  // ratio must read "unmeasured", not divide by zero.
  const auto job = uniform_job(4, 100);
  const auto sim = simulate_cluster(job, ClusterSpec::paper_beowulf(5));
  const auto v = validate_makespan(job, sim);
  EXPECT_DOUBLE_EQ(v.measured_seconds, 0.0);
  EXPECT_DOUBLE_EQ(v.ratio, 0.0);
}

}  // namespace
}  // namespace drapid
