// The obs Json type: construction, ordered objects, writer/parser
// round-trips, and parse-error reporting.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace drapid {
namespace obs {
namespace {

TEST(ObsJson, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(7).is_number());
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());

  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Json(42).as_double(), 42.0);  // int promotes to double
  EXPECT_EQ(Json("abc").as_string(), "abc");
  EXPECT_THROW(Json("abc").as_int(), std::exception);
}

TEST(ObsJson, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zulu", 1);
  obj.set("alpha", 2);
  obj.set("mike", 3);
  EXPECT_EQ(obj.dump(), R"({"zulu":1,"alpha":2,"mike":3})");
  obj.set("zulu", 9);  // overwrite keeps the original position
  EXPECT_EQ(obj.dump(), R"({"zulu":9,"alpha":2,"mike":3})");
  EXPECT_EQ(obj.at("zulu").as_int(), 9);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(ObsJson, StringEscapes) {
  Json s(std::string("a\"b\\c\n\t\x01"));
  const std::string text = s.dump();
  EXPECT_EQ(text, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  EXPECT_EQ(Json::parse(text).as_string(), s.as_string());
}

TEST(ObsJson, RoundTripNested) {
  Json root = Json::object();
  root.set("name", "run");
  root.set("count", std::int64_t{1} << 40);
  root.set("ratio", 0.1);
  root.set("flag", false);
  root.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::object();
  inner.set("deep", 3.14159);
  arr.push_back(std::move(inner));
  root.set("items", std::move(arr));

  for (int indent : {-1, 0, 2}) {
    const Json back = Json::parse(root.dump(indent));
    EXPECT_EQ(back.at("name").as_string(), "run");
    EXPECT_EQ(back.at("count").as_int(), std::int64_t{1} << 40);
    EXPECT_DOUBLE_EQ(back.at("ratio").as_double(), 0.1);
    EXPECT_FALSE(back.at("flag").as_bool());
    EXPECT_TRUE(back.at("nothing").is_null());
    EXPECT_EQ(back.at("items").size(), 3u);
    EXPECT_DOUBLE_EQ(back.at("items").at(2).at("deep").as_double(), 3.14159);
  }
}

TEST(ObsJson, ParseAcceptsEscapesAndWhitespace) {
  const Json v = Json::parse(" { \"a\\u0041\" : [ 1 , -2.5e2 , \"\\u00e9\" ] }");
  EXPECT_EQ(v.at("aA").size(), 3u);
  EXPECT_EQ(v.at("aA").at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("aA").at(1).as_double(), -250.0);
  EXPECT_EQ(v.at("aA").at(2).as_string(), "\xc3\xa9");  // é, UTF-8
}

TEST(ObsJson, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\":1 \"b\":2}"), JsonParseError);
  EXPECT_THROW(Json::parse("nul"), JsonParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);  // trailing garbage
}

TEST(ObsJson, DoublesSurviveRoundTrip) {
  for (double value : {0.1, 1e-300, 12345.6789, 2.2250738585072014e-308}) {
    const Json back = Json::parse(Json(value).dump());
    EXPECT_EQ(back.as_double(), value);
  }
}

}  // namespace
}  // namespace obs
}  // namespace drapid
