#include "exp/benchmark_data.hpp"

#include <gtest/gtest.h>

#include "exp/trial_runner.hpp"

namespace drapid {
namespace {

/// Small, cached benchmark so several tests share one build.
const std::vector<LabeledPulse>& test_pulses() {
  static const std::vector<LabeledPulse> pulses = [] {
    BenchmarkConfig cfg;
    cfg.survey = SurveyConfig::gbt350drift();
    cfg.survey.obs_length_s = 60.0;
    cfg.target_positives = 60;
    cfg.target_negatives = 300;
    cfg.observations_per_batch = 2;
    cfg.max_batches = 30;
    cfg.visibility = 0.10;
    cfg.seed = 7;
    return build_benchmark_pulses(cfg);
  }();
  return pulses;
}

TEST(BenchmarkData, ReachesTargetsWithBothLabels) {
  const auto& pulses = test_pulses();
  std::size_t pos = 0, neg = 0, rrat = 0;
  for (const auto& p : pulses) {
    pos += p.is_pulsar;
    neg += !p.is_pulsar;
    rrat += p.is_rrat;
    if (p.is_rrat) EXPECT_TRUE(p.is_pulsar);
  }
  EXPECT_GE(pos, 50u);
  EXPECT_GE(neg, 250u);
  EXPECT_GT(pos + neg, 0u);
}

TEST(BenchmarkData, FeaturesAreFinite) {
  for (const auto& p : test_pulses()) {
    for (double v : p.features.values) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(BenchmarkData, AlmDatasetsHaveSchemeClassCounts) {
  const auto& pulses = test_pulses();
  for (ml::AlmScheme scheme : ml::all_alm_schemes()) {
    const auto d = make_alm_dataset(pulses, scheme);
    EXPECT_EQ(d.num_instances(), pulses.size());
    EXPECT_EQ(d.num_features(), PulseFeatures::kCount);
    EXPECT_EQ(d.num_classes(), ml::alm_class_names(scheme).size());
    // Class 0 (non-pulsar) must dominate; some positive class is nonempty.
    const auto counts = d.class_counts();
    std::size_t positives = 0;
    for (std::size_t c = 1; c < counts.size(); ++c) positives += counts[c];
    EXPECT_GT(counts[0], positives);
    EXPECT_GT(positives, 0u);
  }
}

TEST(BenchmarkData, BinaryAndMulticlassAgreeOnPositives) {
  const auto& pulses = test_pulses();
  const auto binary = make_alm_dataset(pulses, ml::AlmScheme::kBinary);
  const auto eight = make_alm_dataset(pulses, ml::AlmScheme::kEight);
  for (std::size_t i = 0; i < pulses.size(); ++i) {
    EXPECT_EQ(binary.label(i) != 0, eight.label(i) != 0);
  }
}

TEST(TrialRunner, BinaryRandomForestTrialScoresWell) {
  TrialSpec spec;
  spec.scheme = ml::AlmScheme::kBinary;
  spec.learner = ml::LearnerType::kRandomForest;
  const auto result = run_trial(test_pulses(), spec);
  EXPECT_EQ(result.fold_recalls.size(), 5u);
  EXPECT_EQ(result.fold_train_seconds.size(), 5u);
  EXPECT_GT(result.recall, 0.6);
  EXPECT_GT(result.f_measure, 0.6);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_FALSE(result.correct.empty());
  EXPECT_EQ(result.correct.size(), result.cv_labels.size());
}

TEST(TrialRunner, FeatureSelectionKeepsScoresReasonable) {
  TrialSpec none;
  none.learner = ml::LearnerType::kJ48;
  TrialSpec ig = none;
  ig.filter = ml::FilterMethod::kInfoGain;
  const auto base = run_trial(test_pulses(), none);
  const auto filtered = run_trial(test_pulses(), ig);
  // RQ6: feature selection should not collapse classification performance.
  EXPECT_GT(filtered.f_measure, base.f_measure - 0.15);
}

TEST(TrialRunner, SmoteTrialRuns) {
  TrialSpec spec;
  spec.learner = ml::LearnerType::kJ48;
  spec.smote = true;
  const auto result = run_trial(test_pulses(), spec);
  EXPECT_GT(result.recall, 0.5);
}

TEST(TrialRunner, DescribeMentionsEveryPiece) {
  TrialSpec spec;
  spec.scheme = ml::AlmScheme::kEight;
  spec.filter = ml::FilterMethod::kInfoGain;
  spec.learner = ml::LearnerType::kMpn;
  spec.smote = true;
  const auto text = spec.describe();
  EXPECT_NE(text.find("MPN"), std::string::npos);
  EXPECT_NE(text.find("8"), std::string::npos);
  EXPECT_NE(text.find("IG"), std::string::npos);
  EXPECT_NE(text.find("smote"), std::string::npos);
}

TEST(TrialRunner, SameSeedSameSplitAcrossSchemes) {
  // RQ4 depends on comparing the same instances across schemes: equal seeds
  // must produce equal CV label alignment for the shared positives mask.
  TrialSpec a;
  a.scheme = ml::AlmScheme::kBinary;
  TrialSpec b;
  b.scheme = ml::AlmScheme::kEight;
  const auto ra = run_trial(test_pulses(), a);
  const auto rb = run_trial(test_pulses(), b);
  ASSERT_EQ(ra.cv_labels.size(), rb.cv_labels.size());
  for (std::size_t i = 0; i < ra.cv_labels.size(); ++i) {
    EXPECT_EQ(ra.cv_labels[i] != 0, rb.cv_labels[i] != 0) << i;
  }
}

}  // namespace
}  // namespace drapid
