#include "spe/spe.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace drapid {
namespace {

ObservationId sample_obs() {
  ObservationId id;
  id.dataset = "PALFA";
  id.mjd = 55555.1234567;
  id.ra_deg = 290.25;
  id.dec_deg = 11.5;
  id.beam = 3;
  return id;
}

TEST(ObservationId, KeyRoundTrips) {
  const ObservationId id = sample_obs();
  const ObservationId back = ObservationId::from_key(id.key());
  EXPECT_EQ(back, id);
}

TEST(ObservationId, DistinctObservationsHaveDistinctKeys) {
  ObservationId a = sample_obs();
  ObservationId b = a;
  b.beam = 4;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.mjd += 0.001;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.dataset = "GBT350Drift";
  EXPECT_NE(a.key(), b.key());
}

TEST(ObservationId, MalformedKeyThrows) {
  EXPECT_THROW(ObservationId::from_key("only|three|parts"),
               std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|b|c|d|notanint"),
               std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|nan?|0|0|1"), std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|1|2|3|4|extra"),
               std::runtime_error);
}

TEST(ObservationId, KeyFormatIsStable) {
  // Keys are persisted shuffle keys: the to_chars formatting must spell
  // doubles exactly as the historical ostringstream-with-precision(17) path
  // did (printf %.17g — shortest-of-17-significant-digits).
  const auto reference = [](const ObservationId& id) {
    std::ostringstream out;
    out.precision(17);
    out << id.dataset << '|' << id.mjd << '|' << id.ra_deg << '|'
        << id.dec_deg << '|' << id.beam;
    return out.str();
  };
  std::vector<ObservationId> ids;
  ids.push_back(sample_obs());
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    ObservationId id;
    id.dataset = i % 2 == 0 ? "GBT350Drift" : "PALFA";
    id.mjd = 50000.0 + rng.uniform(0.0, 10000.0);
    id.ra_deg = rng.uniform(0.0, 360.0);
    id.dec_deg = rng.uniform(-90.0, 90.0);
    id.beam = static_cast<int>(rng.below(8));
    ids.push_back(id);
  }
  // And a few awkward spellings: integers, negatives, tiny magnitudes.
  ObservationId awkward = sample_obs();
  awkward.mjd = 56000.0;
  awkward.ra_deg = 1e-7;
  awkward.dec_deg = -0.125;
  ids.push_back(awkward);
  for (const auto& id : ids) {
    EXPECT_EQ(id.key(), reference(id));
    EXPECT_EQ(ObservationId::from_key(id.key()), id);
  }
}

TEST(SinglePulseEvent, EqualityComparesAllFields) {
  SinglePulseEvent a{10.0, 6.5, 12.25, 4900, 2};
  SinglePulseEvent b = a;
  EXPECT_EQ(a, b);
  b.snr = 6.6;
  EXPECT_NE(a, b);
}

TEST(ClusterRecord, EqualityComparesObservation) {
  ClusterRecord a;
  a.obs = sample_obs();
  a.cluster_id = 7;
  a.num_spes = 19;
  ClusterRecord b = a;
  EXPECT_EQ(a, b);
  b.obs.beam = 9;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace drapid
