// Ablation: the two Figure 3 optimizations — uniform partitioning before
// the join, and key aggregation before the join.
//
// Four plans run the identical D-RAPID job; the engine's measured metrics
// show what each optimization buys: co-partitioning removes the join-stage
// shuffle, aggregation deflates the join's input pairs and output bytes.
// The cluster cost model prices each plan on the paper's 15-node cluster.
#include <iostream>

#include "dataflow/cluster_model.hpp"
#include "dataflow/obs_bridge.hpp"
#include "drapid/pipeline.hpp"
#include "obs/bench.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  obs::BenchOptions bench(
      "bench_ablation_join", argc, argv,
      {{"observations", "24"}, {"executors", "10"}},
      "Ablation of the two Figure 3 join optimizations: uniform "
      "co-partitioning and pre-join key aggregation.");
  if (bench.help()) return 0;
  const Options& opts = bench.opts();
  std::cout << "=== Ablation: co-partitioning and key aggregation ===\n";

  PipelineConfig config;
  config.survey = SurveyConfig::gbt350drift();
  config.survey.obs_length_s = 30.0;
  config.num_observations =
      static_cast<std::size_t>(bench.scaled(opts.integer("observations")));
  config.visibility = 0.04;
  config.seed = bench.seed();
  const PipelineData data = prepare_pipeline_data(config);
  std::cout << "test set: " << data.total_spes << " SPEs, "
            << data.clusters.size() << " clusters\n\n";

  BlockStore store(15, 256 << 10);
  store.put("d.csv", data.data_csv);
  store.put("c.csv", data.cluster_csv);
  const auto executors = static_cast<std::size_t>(opts.integer("executors"));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"plan", "join shuffle MB", "join output MB",
                  "total shuffle MB", "modeled s", "pulses"});

  for (const bool copartition : {true, false}) {
    for (const bool aggregate : {true, false}) {
      EngineConfig engine_config;
      engine_config.num_executors = executors;
      engine_config.exec = bench.exec_policy();
      engine_config.partitions_per_core = 8;
      Engine engine(engine_config);
      DrapidConfig drapid_config;
      drapid_config.copartition = copartition;
      drapid_config.aggregate_before_join = aggregate;
      const auto result = run_drapid(engine, store, "d.csv", "c.csv", "",
                                     *config.survey.grid, drapid_config);

      std::size_t join_shuffle = 0, join_out = 0;
      for (const auto& stage : result.metrics.stages) {
        if (stage.name.rfind("join:clusters+data:shuffle", 0) == 0) {
          join_shuffle += stage.total_shuffle_bytes();
        }
        if (stage.name == "join:clusters+data") {
          for (const auto& t : stage.tasks) join_out += t.bytes_out;
        }
      }
      const auto sim = simulate_cluster(result.metrics,
                                        ClusterSpec::paper_beowulf(executors));
      std::string plan = copartition ? "partition" : "no-partition";
      plan += aggregate ? "+aggregate" : "+no-aggregate";
      rows.push_back(
          {plan, format_number(join_shuffle / 1048576.0, 2),
           format_number(join_out / 1048576.0, 2),
           format_number(result.metrics.total_shuffle_bytes() / 1048576.0, 2),
           format_number(sim.total_seconds, 2),
           std::to_string(result.records.size())});
      bench.report().add_job(
          make_job_report("plan=" + plan, result.metrics,
                          result.replica_failovers));
      obs::Json row = obs::Json::object();
      row.set("plan", plan);
      row.set("join_shuffle_bytes", static_cast<std::int64_t>(join_shuffle));
      row.set("join_output_bytes", static_cast<std::int64_t>(join_out));
      row.set("total_shuffle_bytes",
              static_cast<std::int64_t>(result.metrics.total_shuffle_bytes()));
      row.set("modeled_seconds", sim.total_seconds);
      row.set("pulses", static_cast<std::int64_t>(result.records.size()));
      bench.report().add_result(std::move(row));
    }
  }
  std::cout << render_table(rows)
            << "\n(expected: the partition+aggregate plan — Figure 3 — joins "
               "with zero shuffle and the smallest join output; identical "
               "pulse counts everywhere)\n";
  bench.finish();
  return 0;
}
