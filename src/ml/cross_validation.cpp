#include "ml/cross_validation.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace drapid {
namespace ml {

std::vector<int> stratified_folds(const Dataset& data, int k, Rng& rng) {
  return stratified_folds(data.labels(), data.num_classes(), k, rng);
}

std::vector<int> stratified_folds(const std::vector<int>& labels,
                                  std::size_t num_classes, int k, Rng& rng) {
  if (k < 2) throw std::invalid_argument("need at least 2 folds");
  std::vector<int> folds(labels.size(), 0);
  // Shuffle within each class, then deal members round-robin across folds.
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == static_cast<int>(c)) members.push_back(i);
    }
    rng.shuffle(members);
    for (std::size_t m = 0; m < members.size(); ++m) {
      folds[members[m]] = static_cast<int>(m % static_cast<std::size_t>(k));
    }
  }
  return folds;
}

std::vector<std::size_t> rows_in_fold(const std::vector<int>& folds, int fold,
                                      bool in_fold) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < folds.size(); ++i) {
    if ((folds[i] == fold) == in_fold) rows.push_back(i);
  }
  return rows;
}

CvResult cross_validate(
    const Dataset& data, int k,
    const std::function<std::unique_ptr<Classifier>()>& factory, Rng& rng,
    const TrainTransform& transform, std::vector<int>* out_predictions) {
  CvResult result;
  result.pooled = ConfusionMatrix(data.num_classes());
  if (out_predictions) out_predictions->assign(data.num_instances(), -1);
  const auto folds = stratified_folds(data, k, rng);
  for (int f = 0; f < k; ++f) {
    obs::ScopedSpan fold_span(obs::global_tracer(), "cv.fold",
                              std::to_string(f), "ml");
    FoldResult fold_result;
    fold_result.confusion = ConfusionMatrix(data.num_classes());
    Dataset train = data.subset(rows_in_fold(folds, f, false));
    const auto test_rows = rows_in_fold(folds, f, true);
    const Dataset test = data.subset(test_rows);
    if (transform) train = transform(train);

    auto classifier = factory();
    Stopwatch train_watch;
    classifier->train(train);
    fold_result.train_seconds = train_watch.elapsed_seconds();

    Stopwatch test_watch;
    for (std::size_t i = 0; i < test.num_instances(); ++i) {
      const int predicted = classifier->predict(test.instance(i));
      fold_result.confusion.add(test.label(i), predicted);
      if (out_predictions) (*out_predictions)[test_rows[i]] = predicted;
    }
    fold_result.test_seconds = test_watch.elapsed_seconds();
    fold_span.arg("train_seconds", fold_result.train_seconds);
    fold_span.arg("test_seconds", fold_result.test_seconds);

    result.pooled.merge(fold_result.confusion);
    result.total_train_seconds += fold_result.train_seconds;
    result.folds.push_back(std::move(fold_result));
  }
  return result;
}

}  // namespace ml
}  // namespace drapid
