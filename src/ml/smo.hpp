// SMO — support vector machine trained by (simplified) sequential minimal
// optimization (Platt 1998), the Table 5 "SMO" learner.
//
// Linear kernel on standardized features (Weka's SMO default is a degree-1
// polynomial kernel with normalization — the same function class).
// Multiclass is pairwise one-vs-one with majority voting, as in Weka.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace drapid {
namespace ml {

struct SmoParams {
  double c = 1.0;           ///< soft-margin penalty
  double tolerance = 1e-3;  ///< KKT violation tolerance
  std::size_t max_passes = 5;   ///< passes without change before stopping
  std::size_t max_iterations = 4000;  ///< hard cap per binary problem
};

class SmoClassifier : public Classifier {
 public:
  explicit SmoClassifier(SmoParams params = {}, std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "SMO"; }

  /// Binary sub-problems trained (k·(k−1)/2 for k observed classes).
  std::size_t num_binary_machines() const { return machines_.size(); }

 private:
  struct BinaryMachine {
    int class_a = 0;  ///< predicted when the margin is positive
    int class_b = 0;
    std::vector<double> weights;
    double bias = 0.0;
  };

  SmoParams params_;
  std::uint64_t seed_;
  std::size_t num_classes_ = 0;
  std::vector<double> mean_, scale_;  ///< feature standardization
  std::vector<BinaryMachine> machines_;
};

}  // namespace ml
}  // namespace drapid
