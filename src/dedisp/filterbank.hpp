// Filterbank data model — the raw telescope voltage-power data that phases
// 1–3 of a single-pulse search consume (§3 of the paper).
//
// A filterbank is a (channel × time-sample) power matrix: the receiver's
// band is split into frequency channels, each sampled at the native time
// resolution. A dispersed pulse appears as a quadratic sweep across
// channels (lower frequencies later); narrowband RFI as a hot channel;
// broadband impulses as a hot time sample across every channel.
//
// Everything upstream of the paper's pipeline can be synthesized here and
// pushed through the dedispersion + matched-filter search in
// single_pulse_search.hpp to produce PRESTO-style SPE lists from first
// principles.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace drapid {

struct FilterbankConfig {
  double center_freq_mhz = 350.0;
  double bandwidth_mhz = 100.0;
  std::size_t num_channels = 64;
  double sample_time_ms = 1.0;
  double obs_length_s = 8.0;
};

/// A `.fil` file failed validation on open: truncated or unparseable
/// header, zero channels, unsupported sample encoding, or a data section
/// inconsistent with nchans/nbits/nsamples.
struct FilterbankError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Filterbank {
 public:
  explicit Filterbank(FilterbankConfig config);

  const FilterbankConfig& config() const { return config_; }
  std::size_t num_channels() const { return config_.num_channels; }
  std::size_t num_samples() const { return num_samples_; }

  /// Center frequency of channel `c`; channel 0 is the highest frequency
  /// (the filterbank convention). Precomputed at construction — the shift
  /// plan of a DM sweep queries it once per channel per trial.
  double channel_freq_mhz(std::size_t channel) const {
    return channel_freqs_mhz_[channel];
  }

  float at(std::size_t channel, std::size_t sample) const {
    return data_[channel * num_samples_ + sample];
  }
  float& at(std::size_t channel, std::size_t sample) {
    return data_[channel * num_samples_ + sample];
  }

  /// Contiguous samples of one channel (num_samples() long) — the raw row
  /// the dedispersion accumulation loop walks.
  const float* channel_data(std::size_t channel) const {
    return data_.data() + channel * num_samples_;
  }
  /// Mutable row access for in-place cleaning (rfi_mitigation.hpp).
  float* channel_data(std::size_t channel) {
    return data_.data() + channel * num_samples_;
  }

  /// Adds zero-mean Gaussian radiometer noise of the given sigma.
  void add_noise(Rng& rng, double sigma = 1.0);

  /// Injects a dispersed pulse: a Gaussian profile of full width `width_ms`
  /// and per-channel amplitude `amplitude`, arriving at `t0_s` at infinite
  /// frequency and swept across channels by the dispersion delay of `dm`.
  void inject_pulse(double t0_s, double dm, double amplitude, double width_ms);

  /// Narrowband RFI: raises one channel's level for a time span.
  void inject_rfi_tone(std::size_t channel, double amplitude,
                       double t_begin_s, double t_end_s);

  /// Broadband impulse (lightning/sparking): one hot time sample across all
  /// channels — undispersed, so it peaks at DM 0.
  void inject_broadband_impulse(double t0_s, double amplitude);

  /// Writes a SIGPROC-style `.fil` file: binary header items (HEADER_START,
  /// nchans/nbits/nsamples, tsamp, fch1/foff, HEADER_END) followed by
  /// 32-bit-float samples in time-major frame order — the chunked layout a
  /// streaming ingester reads frame by frame.
  void write_fil(const std::string& path) const;

  /// Opens a `.fil` file written by write_fil() (or any SIGPROC file with
  /// 32-bit float samples and one IF). Every header field is validated and
  /// the data section is checked against the header before any sample is
  /// touched: zero channels, nbits != 32, a truncated header, a partial
  /// trailing frame, or an nsamples count that disagrees with the file size
  /// all throw FilterbankError with the offending value in the message —
  /// channel_data() is only ever backed by fully-validated storage.
  static Filterbank read_fil(const std::string& path);

 private:
  /// Adopts an explicit sample count (file ingest) instead of re-deriving it
  /// from obs_length_s, which could land one sample short after a double
  /// round-trip through a file header.
  Filterbank(FilterbankConfig config, std::size_t num_samples);

  FilterbankConfig config_;
  std::size_t num_samples_;
  std::vector<double> channel_freqs_mhz_;  // descending, channel 0 highest
  std::vector<float> data_;                // channel-major
};

}  // namespace drapid
