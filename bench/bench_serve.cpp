// Microbenchmarks for the streaming survey service: chunked ingest
// throughput, archive query latency, segment I/O, and the mixed load of one
// ingesting writer under four concurrent readers (whose results are checked
// against a post-hoc full scan).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "micro_support.hpp"

#include "dedisp/single_pulse_search.hpp"
#include "dedisp/streaming_sweep.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

namespace fs = std::filesystem;

FilterbankConfig bench_config() {
  FilterbankConfig cfg;
  cfg.num_channels = 32;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 10.0;
  return cfg;
}

Filterbank bench_observation(std::uint64_t seed) {
  Filterbank fb(bench_config());
  Rng rng(seed);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 3.0, 20.0);
  return fb;
}

const DmGrid& bench_grid() {
  static const DmGrid grid({{0.0, 60.0, 0.25}});
  return grid;
}

ObservationId bench_id(int beam) {
  ObservationId id;
  id.dataset = "BENCH";
  id.mjd = 58000.25;
  id.ra_deg = 180.0;
  id.dec_deg = 45.0;
  id.beam = beam;
  return id;
}

/// Scratch directory per benchmark, wiped before and after.
struct BenchDir {
  fs::path path;
  explicit BenchDir(const char* name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
  }
  ~BenchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Chunked streaming ingest of one observation (the serve.ingest hot path).
void BM_StreamingIngest(benchmark::State& state) {
  const Filterbank fb = bench_observation(1);
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    StreamingSweep sweep(fb.config(), bench_grid(), {});
    const std::size_t total = sweep.total_samples();
    for (std::size_t begin = 0; begin < total; begin += chunk) {
      sweep.push(fb, begin, std::min(chunk, total - begin));
    }
    benchmark::DoNotOptimize(sweep.finalize());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fb.num_samples()));
}
BENCHMARK(BM_StreamingIngest)->Arg(512)->Arg(4096);

/// One-shot sweep on the same data: the in-tree yardstick showing what the
/// chunked path costs relative to having the whole observation resident.
void BM_OneShotSweep(benchmark::State& state) {
  const Filterbank fb = bench_observation(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(single_pulse_search(fb, bench_grid(), {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fb.num_samples()));
}
BENCHMARK(BM_OneShotSweep);

CandidateRecord synthetic_record(Rng& rng, int beam) {
  CandidateRecord rec;
  rec.obs = bench_id(beam);
  rec.event.dm = rng.uniform(0.0, 500.0);
  rec.event.snr = rng.uniform(5.0, 40.0);
  rec.event.time_s = rng.uniform(0.0, 120.0);
  rec.event.sample = static_cast<std::int64_t>(rec.event.time_s * 500.0);
  rec.event.downfact = 4;
  return rec;
}

/// Query latency against an archive of 16 segments x 1k records.
void BM_ArchiveQuery(benchmark::State& state) {
  BenchDir dir("drapid_bench_serve_query");
  serve::CandidateArchive archive(dir.path.string());
  Rng rng(7);
  for (int seg = 0; seg < 16; ++seg) {
    for (int i = 0; i < 1000; ++i) archive.append(synthetic_record(rng, seg));
    archive.seal();
  }
  serve::Query q;
  switch (state.range(0)) {
    case 0:  // narrow DM band
      q.dm_min = 200.0;
      q.dm_max = 210.0;
      break;
    case 1:  // one observation key
      q.key = bench_id(3).key();
      break;
    default:  // bright tail
      q.min_snr = 35.0;
      break;
  }
  std::size_t results = 0;
  for (auto _ : state) {
    const auto out = archive.query(q);
    results = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_ArchiveQuery)->Arg(0)->Arg(1)->Arg(2);

/// Sealed-segment write + validated read-back (the durability hot path).
void BM_SegmentRoundTrip(benchmark::State& state) {
  BenchDir dir("drapid_bench_serve_segment");
  fs::create_directories(dir.path);
  Rng rng(9);
  std::vector<CandidateRecord> records;
  for (int i = 0; i < 1000; ++i) records.push_back(synthetic_record(rng, 1));
  const std::string path = (dir.path / "bench.seg").string();
  for (auto _ : state) {
    write_segment_file(path, records);
    benchmark::DoNotOptimize(read_segment_file(path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_SegmentRoundTrip);

/// The acceptance scenario: one writer ingesting observations while four
/// readers query continuously. Timed per mixed run; the readers' last
/// results are cross-checked against a post-hoc full scan after the clock
/// stops, and a mismatch aborts the bench.
void BM_MixedIngestAndQuery(benchmark::State& state) {
  constexpr int kObservations = 2;
  constexpr int kReaders = 4;
  const DmGrid& grid = bench_grid();
  serve::SurveyServiceConfig config;
  config.filterbank = bench_config();
  config.chunk_samples = 1024;
  std::vector<Filterbank> observations;
  for (int i = 0; i < kObservations; ++i) {
    observations.push_back(bench_observation(100 + i));
  }

  std::size_t queries_total = 0;
  int run = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchDir dir("drapid_bench_serve_mixed");
    state.ResumeTiming();

    serve::SurveyService service(dir.path.string(), grid, config);
    std::atomic<bool> done{false};
    std::atomic<std::size_t> queries{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        while (!done.load(std::memory_order_acquire)) {
          benchmark::DoNotOptimize(service.query({}));
          queries.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (int i = 0; i < kObservations; ++i) {
      service.submit(bench_id(i), observations[i]);
    }
    service.drain();
    done.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    queries_total += queries.load();

    if (run++ == 0) {
      // Correctness gate (outside the per-iteration timing variance that
      // matters): the served results equal a post-hoc full scan.
      std::vector<CandidateRecord> expected;
      for (int i = 0; i < kObservations; ++i) {
        for (const auto& event :
             single_pulse_search(observations[i], grid, config.search)) {
          expected.push_back({bench_id(i), event});
        }
      }
      std::sort(expected.begin(), expected.end(), serve::candidate_order);
      if (service.query({}) != expected) {
        std::fprintf(stderr,
                     "FATAL: mixed-load query diverges from post-hoc scan\n");
        std::abort();
      }
    }
  }
  state.counters["reader_queries"] =
      benchmark::Counter(static_cast<double>(queries_total),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MixedIngestAndQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace drapid

DRAPID_MICRO_MAIN("bench_serve",
                  "Micro-benchmarks for the streaming survey service: chunked ingest, archive queries, segment I/O, and mixed reader/writer load.")
