// RFI mitigation stage: zero-DM subtraction, robust channel-mask estimation,
// masked-plan exactness (tail normalization over active channels only, masked
// channel contents provably never read), streaming/one-shot equivalence under
// every policy, and the robust_stats degenerate-series regressions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dedisp/rfi_mitigation.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "dedisp/streaming_sweep.hpp"
#include "synth/dispersion.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

FilterbankConfig small_config() {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.num_channels = 32;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 10.0;
  return cfg;
}

Filterbank clean_filterbank(std::uint64_t seed) {
  Filterbank fb(small_config());
  Rng rng(seed);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 3.0, 20.0);
  return fb;
}

/// inject_pulse times are infinite-frequency arrivals; the sweep reports the
/// dedispersed arrival at the top of the band (400 MHz here).
double pulse_arrival_s() { return 3.0 + dispersion_delay_s(40.0, 400.0); }

bool events_identical(const std::vector<SinglePulseEvent>& a,
                      const std::vector<SinglePulseEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].dm != b[i].dm || a[i].snr != b[i].snr ||
        a[i].time_s != b[i].time_s || a[i].sample != b[i].sample ||
        a[i].downfact != b[i].downfact) {
      return false;
    }
  }
  return true;
}

// --- robust_stats degenerate series (regression: sigma used to floor at 1.0,
// --- turning an exactly-constant series into a fountain of fake events) ----

TEST(RobustStats, ConstantSeriesHasZeroSigma) {
  std::vector<double> workspace, scratch;
  const std::vector<double> values(100, 7.25);
  const auto [median, sigma] = robust_stats(values, workspace, scratch);
  EXPECT_DOUBLE_EQ(median, 7.25);
  EXPECT_DOUBLE_EQ(sigma, 0.0);
}

TEST(RobustStats, SingleSampleHasZeroSigma) {
  std::vector<double> workspace, scratch;
  const auto [median, sigma] =
      robust_stats(std::vector<double>{42.0}, workspace, scratch);
  EXPECT_DOUBLE_EQ(median, 42.0);
  EXPECT_DOUBLE_EQ(sigma, 0.0);
}

TEST(RobustStats, EmptySeriesIsZeroZero) {
  std::vector<double> workspace, scratch;
  const auto [median, sigma] = robust_stats({}, workspace, scratch);
  EXPECT_DOUBLE_EQ(median, 0.0);
  EXPECT_DOUBLE_EQ(sigma, 0.0);
}

TEST(RobustStats, NormalSeriesSigmaTracksSpread) {
  std::vector<double> workspace, scratch;
  std::vector<double> values;
  Rng rng(5);
  for (int i = 0; i < 4000; ++i) values.push_back(rng.normal(10.0, 2.0));
  const auto [median, sigma] = robust_stats(values, workspace, scratch);
  EXPECT_NEAR(median, 10.0, 0.2);
  EXPECT_NEAR(sigma, 2.0, 0.2);
}

TEST(RobustStats, DegenerateSeriesProducesNoEvents) {
  // A constant dedispersed series must yield zero detections, not
  // divide-into-noise artifacts.
  const std::vector<double> series(512, 3.0);
  const auto events = detect_events(series, 1.0, 2.0, {});
  EXPECT_TRUE(events.empty());
}

// --- masked plans -----------------------------------------------------------

TEST(MaskedPlan, AllMaskedThrows) {
  const Filterbank fb = clean_filterbank(1);
  const DmGrid grid({{0.0, 60.0, 1.0}});
  const std::vector<std::uint8_t> mask(fb.num_channels(), 1);
  EXPECT_THROW(build_sweep_plan(fb, grid, 1, mask), std::invalid_argument);
}

TEST(MaskedPlan, WrongMaskSizeThrows) {
  const Filterbank fb = clean_filterbank(1);
  const DmGrid grid({{0.0, 60.0, 1.0}});
  const std::vector<std::uint8_t> mask(fb.num_channels() + 1, 0);
  EXPECT_THROW(build_sweep_plan(fb, grid, 1, mask), std::invalid_argument);
}

TEST(MaskedPlan, MaskedChannelContentsAreIrrelevant) {
  // The strongest possible statement of mask exactness: fill the masked
  // channel with garbage and the detected events do not change a bit.
  Filterbank fb = clean_filterbank(2);
  Filterbank trashed = fb;
  {
    float* row = trashed.channel_data(5);
    Rng rng(99);
    for (std::size_t s = 0; s < trashed.num_samples(); ++s) {
      row[s] = static_cast<float>(rng.uniform(-1e6, 1e6));
    }
  }
  const DmGrid grid({{0.0, 60.0, 0.5}});
  SinglePulseSearchParams params;
  params.channel_mask.assign(fb.num_channels(), 0);
  params.channel_mask[5] = 1;
  const auto masked = single_pulse_search(fb, grid, params);
  const auto masked_trashed = single_pulse_search(trashed, grid, params);
  ASSERT_FALSE(masked.empty());
  EXPECT_TRUE(events_identical(masked, masked_trashed));
  // Subband path honors the mask identically.
  params.method = SweepMethod::kSubband;
  const auto sub = single_pulse_search(fb, grid, params);
  const auto sub_trashed = single_pulse_search(trashed, grid, params);
  EXPECT_TRUE(events_identical(masked, sub));
  EXPECT_TRUE(events_identical(sub, sub_trashed));
}

TEST(MaskedPlan, TailNormalizationUsesActiveChannelsOnly) {
  // All-ones filterbank: after tail normalization every sample of the
  // dedispersed series must equal the number of *unmasked* channels exactly,
  // including tail samples that were rescaled from fewer contributors. A
  // normalization that rescaled toward the full channel count would land on
  // 32, not 30, in the tail.
  FilterbankConfig cfg = small_config();
  Filterbank fb(cfg);
  for (std::size_t c = 0; c < fb.num_channels(); ++c) {
    float* row = fb.channel_data(c);
    std::fill(row, row + fb.num_samples(), 1.0f);
  }
  const DmGrid grid({{40.0, 41.0, 1.0}});  // one trial, nonzero shifts
  std::vector<std::uint8_t> mask(fb.num_channels(), 0);
  mask[0] = mask[17] = 1;
  const SweepPlan sweep = build_sweep_plan(fb, grid, 1, mask);
  ASSERT_EQ(sweep.plans.size(), 1u);
  const ShiftPlan& plan = sweep.plans.front();
  EXPECT_EQ(plan.active_channels, fb.num_channels() - 2);
  ASSERT_GT(plan.max_shift, 0u);
  DedispScratch scratch;
  // dedisperse_plan applies the tail normalization itself (exactly once).
  dedisperse_plan(fb, plan, scratch);
  // Channel 0 (the zero-shift reference) is masked, so the last few samples
  // — beyond the reach of every unmasked channel's shifted data — have no
  // contributors at all and stay 0; every covered sample must land on the
  // active channel count exactly.
  const auto expected = static_cast<double>(fb.num_channels() - 2);
  std::size_t uncovered = 0;
  for (std::size_t s = 0; s < scratch.series.size(); ++s) {
    if (scratch.series[s] == 0.0) {
      ++uncovered;
      continue;
    }
    ASSERT_DOUBLE_EQ(scratch.series[s], expected) << "sample " << s;
  }
  EXPECT_GT(uncovered, 0u);
  EXPECT_LT(uncovered, static_cast<std::size_t>(plan.max_shift));
}

// --- zero-DM subtraction ----------------------------------------------------

TEST(ZeroDm, RemovesCrossChannelMeanExactly) {
  FilterbankConfig cfg = small_config();
  Filterbank fb(cfg);
  Rng rng(7);
  fb.add_noise(rng, 1.0);
  Filterbank cleaned = fb;
  zero_dm_subtract(cleaned.channel_data(0), cleaned.num_samples(),
                   cleaned.num_channels(), 0, cleaned.num_samples(), nullptr);
  // Per-sample cross-channel sums collapse to (near) zero.
  for (std::size_t s = 0; s < cleaned.num_samples(); s += 97) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cleaned.num_channels(); ++c) {
      sum += cleaned.at(c, s);
    }
    EXPECT_NEAR(sum, 0.0, 1e-3) << "sample " << s;
  }
}

TEST(ZeroDm, SuppressesBroadbandImpulseEvents) {
  Filterbank fb = clean_filterbank(11);
  for (double t : {2.0, 4.5, 6.0, 8.5}) {
    fb.inject_broadband_impulse(t, 8.0);
  }
  const DmGrid grid({{0.0, 60.0, 0.5}});
  SinglePulseSearchParams off;
  SinglePulseSearchParams zerodm;
  zerodm.rfi.policy = MitigationPolicy::kZeroDm;
  const auto dirty = single_pulse_search(fb, grid, off);
  const auto cleaned = single_pulse_search(fb, grid, zerodm);
  const auto impulse_events = [](const std::vector<SinglePulseEvent>& events) {
    std::size_t n = 0;
    for (const auto& e : events) {
      for (double t : {2.0, 4.5, 6.0, 8.5}) {
        if (std::abs(e.time_s - t) < 0.05) {
          ++n;
          break;
        }
      }
    }
    return n;
  };
  EXPECT_GT(impulse_events(dirty), 4u * 3u);
  EXPECT_LT(impulse_events(cleaned), impulse_events(dirty) / 4);
  // The genuine pulse survives the subtraction.
  const auto pulse_events = [](const std::vector<SinglePulseEvent>& events) {
    std::size_t n = 0;
    for (const auto& e : events) {
      n += std::abs(e.time_s - pulse_arrival_s()) < 0.3 &&
           std::abs(e.dm - 40.0) < 10.0;
    }
    return n;
  };
  EXPECT_GT(pulse_events(cleaned), 0u);
}

// --- channel-mask estimation ------------------------------------------------

TEST(MaskEstimate, FlagsPersistentHotChannel) {
  Filterbank fb = clean_filterbank(13);
  fb.inject_rfi_tone(7, 6.0, 0.0, 10.0);
  RfiMitigationParams params;
  const auto mask = estimate_channel_mask(fb, params);
  ASSERT_EQ(mask.size(), fb.num_channels());
  EXPECT_EQ(mask[7], 1);
  EXPECT_LE(static_cast<double>(std::count(mask.begin(), mask.end(), 1)),
            params.max_mask_fraction * static_cast<double>(mask.size()));
}

TEST(MaskEstimate, CapKeepsWorstOffenders) {
  Filterbank fb = clean_filterbank(17);
  fb.inject_rfi_tone(3, 20.0, 0.0, 10.0);   // worst
  fb.inject_rfi_tone(9, 12.0, 0.0, 10.0);
  fb.inject_rfi_tone(21, 8.0, 0.0, 10.0);   // mildest
  RfiMitigationParams params;
  params.max_mask_fraction = 2.5 / 32.0;  // cap at 2 of 32 channels
  const auto mask = estimate_channel_mask(fb, params);
  EXPECT_EQ(std::count(mask.begin(), mask.end(), 1), 2);
  EXPECT_EQ(mask[3], 1);
  EXPECT_EQ(mask[9], 1);
  EXPECT_EQ(mask[21], 0);
}

TEST(MaskEstimate, ParamValidation) {
  const Filterbank fb = clean_filterbank(1);
  RfiMitigationParams bad_sigma;
  bad_sigma.mask_sigma = 0.0;
  EXPECT_THROW(estimate_channel_mask(fb, bad_sigma), std::invalid_argument);
  RfiMitigationParams bad_fraction;
  bad_fraction.max_mask_fraction = 1.0;
  EXPECT_THROW(estimate_channel_mask(fb, bad_fraction),
               std::invalid_argument);
}

TEST(MaskEstimate, PolicyNamesRoundTrip) {
  for (MitigationPolicy p :
       {MitigationPolicy::kOff, MitigationPolicy::kZeroDm,
        MitigationPolicy::kChannelMask, MitigationPolicy::kBoth}) {
    EXPECT_EQ(parse_mitigation_policy(mitigation_policy_name(p)), p);
  }
  EXPECT_THROW(parse_mitigation_policy("median"), std::invalid_argument);
}

// --- policy routing ---------------------------------------------------------

TEST(Mitigation, OffPolicyIsByteIdenticalToDefault) {
  const Filterbank fb = clean_filterbank(19);
  const DmGrid grid({{0.0, 60.0, 0.5}});
  SinglePulseSearchParams defaults;
  SinglePulseSearchParams off;
  off.rfi.policy = MitigationPolicy::kOff;
  EXPECT_TRUE(events_identical(single_pulse_search(fb, grid, defaults),
                               single_pulse_search(fb, grid, off)));
}

TEST(Mitigation, MaskPolicyStillDetectsThePulse) {
  Filterbank fb = clean_filterbank(23);
  fb.inject_rfi_tone(11, 6.0, 0.0, 10.0);
  const DmGrid grid({{0.0, 60.0, 0.5}});
  SinglePulseSearchParams params;
  params.rfi.policy = MitigationPolicy::kChannelMask;
  const auto events = single_pulse_search(fb, grid, params);
  std::size_t near_pulse = 0;
  for (const auto& e : events) {
    near_pulse += std::abs(e.time_s - pulse_arrival_s()) < 0.3 &&
                  std::abs(e.dm - 40.0) < 10.0;
  }
  EXPECT_GT(near_pulse, 0u);
}

TEST(Mitigation, BothPolicyMatchesSubbandRouting) {
  Filterbank fb = clean_filterbank(29);
  fb.inject_rfi_tone(11, 6.0, 0.0, 10.0);
  fb.inject_broadband_impulse(7.0, 8.0);
  const DmGrid grid({{0.0, 60.0, 0.5}});
  SinglePulseSearchParams params;
  params.rfi.policy = MitigationPolicy::kBoth;
  const auto exact = single_pulse_search(fb, grid, params);
  params.method = SweepMethod::kSubband;
  const auto subband = single_pulse_search(fb, grid, params);
  ASSERT_FALSE(exact.empty());
  EXPECT_TRUE(events_identical(exact, subband));
}

// --- streaming equivalence under mitigation ---------------------------------

std::vector<SinglePulseEvent> stream_in_chunks(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params, std::size_t chunk) {
  StreamingSweep sweep(fb.config(), grid, params);
  const std::size_t total = sweep.total_samples();
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    sweep.push(fb, begin, std::min(chunk, total - begin));
  }
  return sweep.finalize();
}

TEST(Mitigation, StreamingMatchesOneShotUnderEveryPolicy) {
  Filterbank fb = clean_filterbank(31);
  fb.inject_rfi_tone(11, 6.0, 0.0, 10.0);
  fb.inject_broadband_impulse(7.0, 8.0);
  const DmGrid grid({{0.0, 60.0, 0.5}});
  for (MitigationPolicy policy :
       {MitigationPolicy::kOff, MitigationPolicy::kZeroDm,
        MitigationPolicy::kChannelMask, MitigationPolicy::kBoth}) {
    SinglePulseSearchParams params;
    params.rfi.policy = policy;
    if (policy_masks_channels(policy)) {
      // A stream cannot estimate a mask from unseen data; estimate from the
      // whole observation (what SurveyService::ingest does) and pin the
      // one-shot path to the same mask.
      params.channel_mask = estimate_channel_mask(fb, params.rfi);
    }
    const auto reference = single_pulse_search(fb, grid, params);
    ASSERT_FALSE(reference.empty());
    for (std::size_t chunk : {64u, 301u, 5000u}) {
      EXPECT_TRUE(
          events_identical(stream_in_chunks(fb, grid, params, chunk),
                           reference))
          << "policy " << mitigation_policy_name(policy) << " chunk " << chunk;
    }
  }
}

TEST(Mitigation, StreamingMaskWithoutExplicitMaskThrows) {
  const DmGrid grid({{0.0, 60.0, 0.5}});
  SinglePulseSearchParams params;
  params.rfi.policy = MitigationPolicy::kChannelMask;
  EXPECT_THROW(StreamingSweep(small_config(), grid, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace drapid
