#include "dedisp/filterbank.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "synth/dispersion.hpp"

namespace drapid {

Filterbank::Filterbank(FilterbankConfig config) : config_(config) {
  if (config_.num_channels == 0 || config_.sample_time_ms <= 0.0 ||
      config_.obs_length_s <= 0.0 || config_.bandwidth_mhz <= 0.0) {
    throw std::invalid_argument("invalid filterbank configuration");
  }
  num_samples_ = static_cast<std::size_t>(config_.obs_length_s * 1e3 /
                                          config_.sample_time_ms);
  if (num_samples_ == 0) {
    throw std::invalid_argument("observation shorter than one sample");
  }
  // Channel 0 at the top of the band, descending.
  const double chan_bw = config_.bandwidth_mhz /
                         static_cast<double>(config_.num_channels);
  channel_freqs_mhz_.resize(config_.num_channels);
  for (std::size_t c = 0; c < config_.num_channels; ++c) {
    channel_freqs_mhz_[c] = config_.center_freq_mhz +
                            config_.bandwidth_mhz / 2.0 -
                            (static_cast<double>(c) + 0.5) * chan_bw;
  }
  data_.assign(config_.num_channels * num_samples_, 0.0f);
}

void Filterbank::add_noise(Rng& rng, double sigma) {
  for (auto& v : data_) v += static_cast<float>(rng.normal(0.0, sigma));
}

void Filterbank::inject_pulse(double t0_s, double dm, double amplitude,
                              double width_ms) {
  const double sigma_s = std::max(1e-6, width_ms * 1e-3 / 2.355);  // FWHM→σ
  for (std::size_t c = 0; c < num_channels(); ++c) {
    const double arrival = t0_s + dispersion_delay_s(dm, channel_freq_mhz(c));
    // Paint the profile over ±4σ around the arrival time.
    const double t_lo = arrival - 4.0 * sigma_s;
    const double t_hi = arrival + 4.0 * sigma_s;
    const auto s_lo = static_cast<long>(t_lo * 1e3 / config_.sample_time_ms);
    const auto s_hi = static_cast<long>(t_hi * 1e3 / config_.sample_time_ms);
    for (long s = std::max(0l, s_lo);
         s <= s_hi && s < static_cast<long>(num_samples_); ++s) {
      const double t = static_cast<double>(s) * config_.sample_time_ms * 1e-3;
      const double d = (t - arrival) / sigma_s;
      at(c, static_cast<std::size_t>(s)) +=
          static_cast<float>(amplitude * std::exp(-0.5 * d * d));
    }
  }
}

void Filterbank::inject_rfi_tone(std::size_t channel, double amplitude,
                                 double t_begin_s, double t_end_s) {
  if (channel >= num_channels()) {
    throw std::invalid_argument("RFI channel out of range");
  }
  const auto s_lo = static_cast<long>(t_begin_s * 1e3 / config_.sample_time_ms);
  const auto s_hi = static_cast<long>(t_end_s * 1e3 / config_.sample_time_ms);
  for (long s = std::max(0l, s_lo);
       s <= s_hi && s < static_cast<long>(num_samples_); ++s) {
    at(channel, static_cast<std::size_t>(s)) += static_cast<float>(amplitude);
  }
}

void Filterbank::inject_broadband_impulse(double t0_s, double amplitude) {
  const auto s = static_cast<long>(t0_s * 1e3 / config_.sample_time_ms);
  if (s < 0 || s >= static_cast<long>(num_samples_)) return;
  for (std::size_t c = 0; c < num_channels(); ++c) {
    at(c, static_cast<std::size_t>(s)) += static_cast<float>(amplitude);
  }
}

}  // namespace drapid
