// Numeric-feature discretization used by the entropy-based feature filters.
//
// Weka's filters discretize numeric attributes before computing entropy
// measures; we use equal-frequency binning (a standard choice that needs no
// class information and behaves well on the heavy-tailed SNR features).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace drapid {
namespace ml {

/// Cut points for (up to) `bins` equal-frequency bins over `values`.
/// Returns strictly increasing thresholds; bin of x = number of cuts ≤ x.
/// Fewer cuts come back when values repeat heavily.
std::vector<double> equal_frequency_cuts(std::span<const double> values,
                                         std::size_t bins);

/// Maps each value to its bin index given cuts from equal_frequency_cuts.
std::vector<std::size_t> apply_cuts(std::span<const double> values,
                                    std::span<const double> cuts);

/// Joint histogram of (bin, class) used by the entropy filters:
/// result[b][c] = instances with bin b and class c.
std::vector<std::vector<std::size_t>> contingency_table(
    std::span<const std::size_t> bins, std::span<const int> labels,
    std::size_t num_bins, std::size_t num_classes);

}  // namespace ml
}  // namespace drapid
