#include "util/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace drapid {
namespace {

Options make(std::vector<const char*> args,
             std::map<std::string, std::string> spec) {
  args.insert(args.begin(), "prog");
  return Options(static_cast<int>(args.size()), args.data(), std::move(spec));
}

TEST(Options, DefaultsApplyWhenAbsent) {
  auto opts = make({}, {{"scale", "1.0"}, {"name", "demo"}});
  EXPECT_DOUBLE_EQ(opts.number("scale"), 1.0);
  EXPECT_EQ(opts.str("name"), "demo");
  EXPECT_FALSE(opts.provided("scale"));
}

TEST(Options, SpaceAndEqualsSyntax) {
  auto opts = make({"--scale", "2.5", "--name=run7"},
                   {{"scale", "1.0"}, {"name", "demo"}});
  EXPECT_DOUBLE_EQ(opts.number("scale"), 2.5);
  EXPECT_EQ(opts.str("name"), "run7");
  EXPECT_TRUE(opts.provided("scale"));
  EXPECT_TRUE(opts.provided("name"));
}

TEST(Options, BareFlagBecomesTrue) {
  auto opts = make({"--verbose"}, {{"verbose", "false"}});
  EXPECT_TRUE(opts.flag("verbose"));
}

TEST(Options, UnknownOptionThrows) {
  EXPECT_THROW(make({"--nope", "1"}, {{"scale", "1"}}), std::runtime_error);
}

TEST(Options, PositionalArgumentThrows) {
  EXPECT_THROW(make({"stray"}, {{"scale", "1"}}), std::runtime_error);
}

TEST(Options, IntegerParsing) {
  auto opts = make({"--n", "42"}, {{"n", "0"}});
  EXPECT_EQ(opts.integer("n"), 42);
}

TEST(Options, UndeclaredLookupThrows) {
  auto opts = make({}, {{"n", "0"}});
  EXPECT_THROW(opts.str("missing"), std::runtime_error);
}

TEST(Options, DescribeListsEverything) {
  auto opts = make({}, {{"alpha", "1"}, {"beta", "x"}});
  const std::string desc = opts.describe();
  EXPECT_NE(desc.find("--alpha"), std::string::npos);
  EXPECT_NE(desc.find("--beta"), std::string::npos);
}

}  // namespace
}  // namespace drapid
