// Core radio-astronomy data model: single pulse events and observations.
//
// Terminology follows the paper (§3, §5):
//   SPE  — single pulse event: one point in (DM, time) space with an SNR,
//          as emitted by PRESTO's single_pulse_search.py for one trial DM.
//   SP   — single pulse: a cluster of SPEs with a distinct peak in the
//          SNR-vs-DM view, possibly a real pulsar emission.
//   Observation — one pointing/beam of a survey, identified by dataset name,
//          MJD, sky position and beam (the fields D-RAPID concatenates into
//          its RDD key).
#pragma once

#include <cstdint>
#include <string>

namespace drapid {

/// One single pulse event (one row of a PRESTO .singlepulse file).
struct SinglePulseEvent {
  double dm = 0.0;       ///< trial dispersion measure (pc cm^-3)
  double snr = 0.0;      ///< matched-filter signal-to-noise ("Sigma")
  double time_s = 0.0;   ///< arrival time within the observation (seconds)
  std::int64_t sample = 0;  ///< sample index at the native time resolution
  int downfact = 1;      ///< boxcar downsampling factor of the detection

  friend bool operator==(const SinglePulseEvent&,
                         const SinglePulseEvent&) = default;
};

/// Identity of one survey observation. The paper keys every RDD record by
/// the concatenation of these descriptors (§5.1.1).
struct ObservationId {
  std::string dataset;  ///< survey/data set name, e.g. "PALFA"
  double mjd = 0.0;     ///< mean Julian date of the observation
  double ra_deg = 0.0;  ///< right ascension, degrees
  double dec_deg = 0.0; ///< declination, degrees
  int beam = 0;         ///< receiver beam number

  /// The concatenated descriptor key used to pair data and cluster records,
  /// exactly in the spirit of the paper's KVPRDD keys. Throws
  /// std::invalid_argument if the id cannot round-trip (dataset containing
  /// '|' or NUL, or a non-finite mjd/ra/dec).
  std::string key() const;

  /// Parses a key built by key(); throws std::runtime_error on malformed
  /// input — wrong field count, trailing garbage after a numeric field,
  /// embedded NUL, or a non-finite/out-of-range double spelling.
  static ObservationId from_key(const std::string& key);

  friend bool operator==(const ObservationId&, const ObservationId&) = default;
};

/// Summary record for one DBSCAN cluster of SPEs — a row of the "cluster
/// file" D-RAPID loads next to the big SPE data file (Figure 2/3).
struct ClusterRecord {
  ObservationId obs;
  int cluster_id = 0;
  std::uint32_t num_spes = 0;
  double dm_min = 0.0;
  double dm_max = 0.0;
  double time_min = 0.0;
  double time_max = 0.0;
  double snr_max = 0.0;
  /// SNR-based rank of this cluster among clusters of the same observation
  /// (1 = brightest), the ClusterRank feature of Table 1.
  int rank = 0;

  friend bool operator==(const ClusterRecord&, const ClusterRecord&) = default;
};

}  // namespace drapid
