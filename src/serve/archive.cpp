#include "serve/archive.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace drapid {
namespace serve {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentSuffix[] = ".seg";

std::string segment_name(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu%s",
                static_cast<unsigned long long>(number), kSegmentSuffix);
  return buf;
}

/// Sorts index vector `idx` by `field` of the record it points at, keeping
/// store order among ties so collection output is deterministic.
template <typename Field>
void sort_index(std::vector<std::uint32_t>& idx,
                const std::vector<CandidateRecord>& records,
                const Field& field) {
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return field(records[a]) < field(records[b]);
                   });
}

}  // namespace

bool candidate_order(const CandidateRecord& a, const CandidateRecord& b) {
  if (a.event.dm != b.event.dm) return a.event.dm < b.event.dm;
  if (a.event.time_s != b.event.time_s) return a.event.time_s < b.event.time_s;
  if (a.event.snr != b.event.snr) return a.event.snr < b.event.snr;
  return a.obs.key() < b.obs.key();
}

// --- Segment ----------------------------------------------------------------

Segment::Segment(std::vector<CandidateRecord> records)
    : records_(std::move(records)) {
  const auto n = static_cast<std::uint32_t>(records_.size());
  by_dm_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) by_dm_[i] = i;
  by_snr_ = by_dm_;
  by_time_ = by_dm_;
  sort_index(by_dm_, records_,
             [](const CandidateRecord& r) { return r.event.dm; });
  sort_index(by_snr_, records_,
             [](const CandidateRecord& r) { return r.event.snr; });
  sort_index(by_time_, records_,
             [](const CandidateRecord& r) { return r.event.time_s; });
  by_key_.reserve(n / 4 + 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    by_key_.try_emplace(records_[i].obs.key()).first->second.push_back(i);
  }
}

void Segment::collect(const Query& q, std::vector<CandidateRecord>& out) const {
  const auto matches = [&](const CandidateRecord& r) {
    return r.event.dm >= q.dm_min && r.event.dm <= q.dm_max &&
           r.event.snr >= q.min_snr && r.event.time_s >= q.time_min &&
           r.event.time_s <= q.time_max;
  };
  const auto emit = [&](std::uint32_t i) {
    if (matches(records_[i])) out.push_back(records_[i]);
  };

  // Most selective bound predicate first: exact key, then a bounded range
  // over a sorted secondary index, then the full store.
  if (!q.key.empty()) {
    const auto* idx = by_key_.find(q.key);
    if (!idx) return;
    for (std::uint32_t i : *idx) emit(i);
    return;
  }
  const auto range_scan = [&](const std::vector<std::uint32_t>& index,
                              auto field, double lo, double hi) {
    const auto first = std::lower_bound(
        index.begin(), index.end(), lo,
        [&](std::uint32_t i, double v) { return field(records_[i]) < v; });
    const auto last = std::upper_bound(
        first, index.end(), hi,
        [&](double v, std::uint32_t i) { return v < field(records_[i]); });
    for (auto it = first; it != last; ++it) emit(*it);
  };
  if (q.dm_min > -1e300 || q.dm_max < 1e300) {
    range_scan(by_dm_, [](const CandidateRecord& r) { return r.event.dm; },
               q.dm_min, q.dm_max);
  } else if (q.time_min > -1e300 || q.time_max < 1e300) {
    range_scan(by_time_,
               [](const CandidateRecord& r) { return r.event.time_s; },
               q.time_min, q.time_max);
  } else if (q.min_snr > -1e300) {
    range_scan(by_snr_, [](const CandidateRecord& r) { return r.event.snr; },
               q.min_snr, 1e300);
  } else {
    for (std::uint32_t i = 0; i < records_.size(); ++i) emit(i);
  }
}

// --- CandidateArchive -------------------------------------------------------

CandidateArchive::CandidateArchive(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw ArchiveError("cannot create archive dir " + dir_ + ": " +
                             ec.message());
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == kSegmentSuffix) {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) throw ArchiveError("cannot list archive dir " + dir_ + ": " +
                             ec.message());
  std::sort(paths.begin(), paths.end());

  auto snap = std::make_shared<Snapshot>();
  for (const auto& path : paths) {
    try {
      auto segment =
          std::make_shared<const Segment>(read_segment_file(path));
      snap->total_records += segment->records().size();
      snap->segments.push_back(std::move(segment));
    } catch (const ArchiveError&) {
      // A segment that fails validation costs its own records, never the
      // archive: park it under a new name so the writer's numbering can
      // reuse the slot, and surface the event through the counter.
      std::error_code rename_ec;
      fs::rename(path, path + ".quarantined", rename_ec);
      quarantined_.push_back(path);
      obs::global_counters().add("serve.segments_quarantined");
    }
    // Segment numbering resumes after every file seen, valid or not.
    const std::string stem = fs::path(path).stem().string();
    if (stem.size() > 4 && stem.compare(0, 4, "seg-") == 0) {
      next_segment_ = std::max<std::uint64_t>(
          next_segment_, std::strtoull(stem.c_str() + 4, nullptr, 10) + 1);
    }
  }
  snapshot_ = std::move(snap);
}

void CandidateArchive::append(const ObservationId& obs,
                              const SinglePulseEvent& event) {
  (void)obs.key();  // validate up front so seal() cannot fail mid-batch
  pending_.push_back({obs, event});
  obs::global_counters().add("serve.appends");
}

void CandidateArchive::seal() {
  if (pending_.empty()) return;
  const std::string path =
      (fs::path(dir_) / segment_name(next_segment_++)).string();
  write_segment_file(path, pending_);
  auto segment = std::make_shared<const Segment>(std::move(pending_));
  pending_.clear();
  publish(std::move(segment));
  obs::global_counters().add("serve.seals");
}

void CandidateArchive::publish(std::shared_ptr<const Segment> segment) {
  auto next = std::make_shared<Snapshot>();
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    next->segments = snapshot_->segments;
    next->total_records =
        snapshot_->total_records + segment->records().size();
    next->segments.push_back(std::move(segment));
    snapshot_ = std::move(next);
  }
}

std::shared_ptr<const CandidateArchive::Snapshot> CandidateArchive::snapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::vector<CandidateRecord> CandidateArchive::query(const Query& q) const {
  obs::ScopedSpan span(obs::global_tracer(), "serve.query", {}, "serve");
  const auto snap = snapshot();
  std::vector<CandidateRecord> out;
  for (const auto& segment : snap->segments) segment->collect(q, out);
  std::sort(out.begin(), out.end(), candidate_order);
  obs::global_counters().add("serve.query");
  if (span.active()) {
    span.arg("results", static_cast<std::int64_t>(out.size()));
  }
  return out;
}

std::size_t CandidateArchive::size() const {
  return snapshot()->total_records;
}

std::size_t CandidateArchive::num_segments() const {
  return snapshot()->segments.size();
}

}  // namespace serve
}  // namespace drapid
