// Pluggable stage executors for the dataflow engine.
//
// Engine::run_stage keeps its TaskContext& callback shape, but task
// placement, the bounded retry loop, and failure recovery all route through
// an Executor so the scheduler drives every backend identically:
//
//   * LocalExecutor — the default: one task per partition on the engine's
//     in-process work-stealing pool, byte-identical to the pre-PR 7 engine
//     (same attempt loop, same spans, same counters).
//   * ProcessExecutor (dataflow/ipc/process_executor.hpp) — forks N worker
//     processes per stage and ships each task's declared output back over a
//     Unix-domain socket in checksummed frames; worker death is detected as
//     socket EOF and recovered through the same bounded-retry budget.
//
// A stage body is an arbitrary closure with in-memory side effects, which a
// child process cannot apply to the coordinator. Stages therefore declare an
// optional StageIO contract: serialize(p) captures task p's output where the
// body ran, absorb(p, bytes) applies it in the coordinator. Stages without a
// contract (spill I/O, in-memory bookkeeping) always execute in-process on
// every backend; all data-plane RDD stages (dataflow/rdd.hpp) declare one.
//
// Bodies routed to a process worker run sequentially on the child's only
// thread and must not touch the engine's thread pool (the pool's workers do
// not exist after fork). No engine stage body does.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace drapid {

class Engine;
class TaskContext;
struct StageMetrics;

/// Output contract of one stage: how a task's result leaves the process the
/// body ran in and re-enters the coordinator. serialize must be a pure
/// function of the body's completed effects for partition p; absorb(p,
/// serialize(p)) in the coordinator must leave the stage's outputs exactly
/// as if the body had run there — that equivalence is what makes process
/// and local backends byte-identical.
struct StageIO {
  std::function<std::string(std::size_t partition)> serialize;
  std::function<void(std::size_t partition, const std::string& bytes)> absorb;

  bool valid() const { return serialize != nullptr && absorb != nullptr; }
};

/// One stage execution handed from Engine::run_stage to the executor.
struct StageRun {
  StageMetrics& stage;
  const std::function<void(TaskContext&)>& body;
  /// Output contract, or nullptr when the stage has none (in-process only).
  const StageIO* io = nullptr;
};

/// A stage execution backend. Implementations own task placement and the
/// per-task attempt loop; the engine owns stage spans, scheduler-stat
/// attribution, and the metrics registry.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Backend name as spelled on --backend ("local" | "process").
  virtual const char* name() const = 0;
  /// OS processes running task bodies (1 for the in-process backend).
  virtual std::size_t workers() const = 0;

  /// Runs every task of `run.stage` to completion (with retries) or throws:
  /// TaskFailure once any task exhausts the engine's attempt budget, or the
  /// first body exception otherwise.
  virtual void run_stage_tasks(StageRun run) = 0;
};

/// In-process backend: the pre-PR 7 execution path, verbatim. Tasks fan out
/// over the engine's work-stealing pool; injected failures kill an attempt
/// at launch and are retried with the wasted work recorded in
/// attempts/retry_cost. StageIO contracts are ignored (outputs are already
/// in place).
class LocalExecutor : public Executor {
 public:
  explicit LocalExecutor(Engine& engine) : engine_(engine) {}

  const char* name() const override { return "local"; }
  std::size_t workers() const override { return 1; }
  void run_stage_tasks(StageRun run) override;

 private:
  Engine& engine_;
};

}  // namespace drapid
