#include "util/log.hpp"

#include <gtest/gtest.h>

namespace drapid {
namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelRoundTrips) {
  LevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, StreamsDoNotCrashAtAnyLevel) {
  LevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    log_debug() << "debug " << 1;
    log_info() << "info " << 2.5;
    log_warn() << "warn " << "text";
    log_error() << "error";
  }
}

TEST(Log, OffSuppressesEverything) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert beyond "does not crash"; the threshold
  // check is the first branch of log_line.
  log_line(LogLevel::kError, "suppressed");
}

}  // namespace
}  // namespace drapid
