// Decision trees: the J48 (C4.5-style) learner and the random trees that
// RandomForest bags.
//
// Numeric binary splits (feature ≤ threshold) chosen by information gain or
// gain ratio; growth stops at purity, max depth, or minimum leaf size.
// When `features_per_split` > 0, each node evaluates only a random feature
// subset (the RandomTree behaviour RandomForest relies on).
//
// Training runs on presorted column indices: each feature is argsorted once
// per tree, and every split stably partitions the per-feature index arrays
// instead of re-copying and re-sorting the node's rows (the seed
// implementation's O(features · n log n) per node). The trees produced are
// byte-identical to the seed algorithm — candidate order, split positions,
// gain arithmetic and the equal-gain tie-break are unchanged — which
// tests/ml_tree_presort_test.cpp asserts against a reference implementation.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {

/// Per-feature column data of a dataset, argsorted once and shared: column-
/// major values plus, per feature, the row order sorted ascending by value
/// (ties by row index). RandomForest computes this once per forest and
/// derives each tree's bootstrap-sample ordering from it in O(rows) per
/// feature, skipping both the per-tree sorts and the subset materialization.
class PresortedColumns {
 public:
  explicit PresortedColumns(const Dataset& data);

  std::size_t num_rows() const { return rows_; }
  std::size_t num_features() const { return values_.size() / std::max<std::size_t>(rows_, 1); }

  /// Values of feature `f` indexed by row (column-major slice).
  const double* values(std::size_t f) const { return values_.data() + f * rows_; }
  /// Row indices sorted ascending by feature `f`'s value.
  const std::uint32_t* order(std::size_t f) const {
    return order_.data() + f * rows_;
  }

 private:
  std::size_t rows_ = 0;
  std::vector<double> values_;        // num_features × rows, column-major
  std::vector<std::uint32_t> order_;  // num_features × rows
};

struct TreeParams {
  int max_depth = 60;
  std::size_t min_leaf = 2;       ///< minimum instances per child
  double min_gain = 1e-6;         ///< stop when best gain falls below this
  bool use_gain_ratio = true;     ///< C4.5 criterion (false = plain IG)
  /// Features sampled per node; 0 = consider all (J48 behaviour).
  std::size_t features_per_split = 0;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(TreeParams params = {}, std::uint64_t seed = 1);

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::vector<int> predict_batch(const Dataset& data) const override;
  std::string name() const override { return "J48"; }

  /// Trains as if on `data.subset(sample)` — byte-identical tree — without
  /// materializing the subset: the sample's per-feature orderings are
  /// derived from `presorted` (which must be built over `data`) by a single
  /// multiplicity scan per feature.
  void train_bootstrap(const Dataset& data, const PresortedColumns& presorted,
                       std::span<const std::size_t> sample);

  /// Diagnostics the execution-performance experiments report on.
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  /// Split evaluations performed during the last train() — the work metric
  /// behind training time.
  std::size_t split_evaluations() const { return split_evaluations_; }

  /// Leaf routing and path reconstruction (used by the PART rule learner to
  /// turn the best leaf into a rule).
  int leaf_index(std::span<const double> x) const;
  int leaf_label(int leaf) const;
  struct PathCondition {
    int feature = -1;
    double threshold = 0.0;
    bool less_equal = true;  ///< condition is x[feature] <= threshold
  };
  /// Conditions along the root-to-leaf path; throws std::invalid_argument
  /// for an index that is not a leaf of this tree.
  std::vector<PathCondition> path_to_leaf(int leaf) const;

  struct Node {
    int feature = -1;        ///< -1 marks a leaf
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    int left = -1, right = -1;
    int label = 0;  ///< majority class (used at leaves)
  };
  /// Flat pre-order node array (diagnostics / equivalence tests).
  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return root_; }

 private:
  struct TrainContext;

  void train_context(TrainContext& ctx);
  /// Weighted = slots carry instance multiplicities (the compressed
  /// bootstrap path); false = one slot per instance.
  template <bool Weighted>
  int build(TrainContext& ctx, std::size_t lo, std::size_t hi, int depth,
            Rng& rng);

  TreeParams params_;
  std::uint64_t seed_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int depth_ = 0;
  std::size_t split_evaluations_ = 0;
};

}  // namespace ml
}  // namespace drapid
