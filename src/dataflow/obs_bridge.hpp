// JobMetrics -> obs::JobReport conversion.
//
// Lives on the dataflow side (in its own small library, drapid_dataflow_obs)
// so the obs layer stays free of dataflow types: obs defines the report
// schema, this bridge populates it from an engine run. Fault events are
// derived from the metrics themselves — tasks with attempts > 1 become
// "retry" events and ":recover" stages become "recover" events — so a
// report reconstructed from any JobMetrics tells the same fault story the
// engine counters do.
#pragma once

#include <string>

#include "dataflow/metrics.hpp"
#include "obs/report.hpp"

namespace drapid {

/// Converts one engine job's metrics into report form. `replica_failovers`
/// (from BlockStore::replica_failovers()) is appended as a "failover" event
/// when non-zero; it is tracked outside JobMetrics.
obs::JobReport make_job_report(std::string label, const JobMetrics& metrics,
                               std::size_t replica_failovers = 0);

}  // namespace drapid
