// Shared command-line surface for the bench binaries.
//
// Every bench accepts the same core flag set — {--scale, --threads, --seed,
// --fault-rate, --backend, --workers} plus the observability outputs
// {--trace-out, --json-out} and --help — and layers its own flags on top. BenchOptions owns that merged
// parse, flips the global tracer on when --trace-out is given, pre-populates
// a RunReport with the resolved config, and exports both artifacts in
// finish(), so a bench main reduces to:
//
//   obs::BenchOptions bench("bench_foo", argc, argv, {{"trials", "300"}});
//   if (bench.help()) return 0;
//   ... run, filling bench.report() ...
//   bench.finish();
#pragma once

#include <chrono>
#include <map>
#include <string>

#include "obs/report.hpp"
#include "util/exec_policy.hpp"
#include "util/options.hpp"

namespace drapid {
namespace obs {

class BenchOptions {
 public:
  /// Parses argv against the core spec merged with `extra_spec` (an extra
  /// entry with a core name overrides that core default). On --help, prints
  /// usage to stdout and sets help(). Throws std::runtime_error on unknown
  /// or malformed flags, like Options.
  BenchOptions(std::string tool, int argc, const char* const argv[],
               std::map<std::string, std::string> extra_spec = {},
               const std::string& summary = "");

  /// True when usage was printed; the caller should exit 0 without running.
  bool help() const { return help_; }

  const Options& opts() const { return opts_; }
  const std::string& tool() const { return tool_; }

  double scale() const { return opts_.number("scale"); }
  long long threads() const { return opts_.integer("threads"); }
  long long seed() const { return opts_.integer("seed"); }
  double fault_rate() const { return opts_.number("fault-rate"); }
  const std::string& backend() const { return opts_.str("backend"); }
  long long workers() const { return opts_.integer("workers"); }
  const std::string& pool() const { return opts_.str("pool"); }

  /// The resolved execution policy: --backend=local|process, --workers=N
  /// worker processes (0 = backend default), --threads pool threads,
  /// --pool=job|stage worker lifetime on the process backend. This is
  /// the one struct benches thread into EngineConfig::exec — the legacy
  /// per-bench thread knobs are shims over it now.
  ExecPolicy exec_policy() const {
    ExecPolicy policy;
    policy.backend = parse_exec_backend(backend());
    policy.workers = static_cast<std::size_t>(workers() < 0 ? 0 : workers());
    policy.threads_per_worker =
        static_cast<std::size_t>(threads() < 1 ? 1 : threads());
    policy.pool = parse_pool_mode(pool());
    return policy;
  }
  const std::string& trace_out() const { return opts_.str("trace-out"); }
  const std::string& json_out() const { return opts_.str("json-out"); }

  /// True when --trace-out was given (the global tracer is then enabled).
  bool tracing() const { return !trace_out().empty(); }

  /// `base` multiplied by --scale, rounded, floored at 1 — the knob each
  /// bench applies to its primary problem-size parameter.
  long long scaled(long long base) const;

  /// The run report this bench fills in; config is pre-populated from the
  /// resolved options.
  RunReport& report() { return report_; }

  /// Stamps wall-clock time and the global counter snapshot into the
  /// report, then writes --json-out and --trace-out (whichever were given).
  /// Safe to call when neither was requested (does nothing but stamp).
  void finish();

 private:
  std::string tool_;
  Options opts_;
  bool help_ = false;
  RunReport report_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace drapid
