#include "spe/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace drapid {

namespace {
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}

double angular_separation_deg(double ra1_deg, double dec1_deg, double ra2_deg,
                              double dec2_deg) {
  const double ra1 = ra1_deg * kDegToRad, dec1 = dec1_deg * kDegToRad;
  const double ra2 = ra2_deg * kDegToRad, dec2 = dec2_deg * kDegToRad;
  const double sd = std::sin((dec2 - dec1) / 2.0);
  const double sr = std::sin((ra2 - ra1) / 2.0);
  const double h = sd * sd + std::cos(dec1) * std::cos(dec2) * sr * sr;
  return 2.0 * std::asin(std::min(1.0, std::sqrt(h))) / kDegToRad;
}

SourceCatalog::SourceCatalog(std::vector<CatalogSource> sources)
    : sources_(std::move(sources)) {}

void SourceCatalog::add(CatalogSource source) {
  sources_.push_back(std::move(source));
}

std::optional<CatalogSource> SourceCatalog::find(
    const std::string& name) const {
  for (const auto& s : sources_) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

std::vector<CatalogSource> SourceCatalog::cone_search(
    double ra_deg, double dec_deg, double radius_deg) const {
  std::vector<std::pair<double, const CatalogSource*>> hits;
  for (const auto& s : sources_) {
    const double sep =
        angular_separation_deg(ra_deg, dec_deg, s.ra_deg, s.dec_deg);
    if (sep <= radius_deg) hits.emplace_back(sep, &s);
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CatalogSource> result;
  result.reserve(hits.size());
  for (const auto& [sep, src] : hits) result.push_back(*src);
  return result;
}

std::optional<CatalogSource> SourceCatalog::crossmatch(
    double ra_deg, double dec_deg, double candidate_dm, double radius_deg,
    double dm_tolerance) const {
  for (const auto& s : cone_search(ra_deg, dec_deg, radius_deg)) {
    if (std::abs(s.dm - candidate_dm) <= dm_tolerance) return s;
  }
  return std::nullopt;
}

void SourceCatalog::save(std::ostream& out) const {
  out << "name,ra_deg,dec_deg,dm,period_s,is_rrat\n";
  for (const auto& s : sources_) {
    std::ostringstream row;
    row.precision(10);
    row << s.name << ',' << s.ra_deg << ',' << s.dec_deg << ',' << s.dm << ','
        << s.period_s << ',' << (s.is_rrat ? 1 : 0);
    out << row.str() << '\n';
  }
}

SourceCatalog SourceCatalog::load(std::istream& in) {
  SourceCatalog catalog;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      saw_header = true;
      continue;
    }
    const auto row = parse_csv_line(line);
    if (row.size() != 6) {
      throw std::runtime_error("malformed catalogue row: " + line);
    }
    CatalogSource s;
    s.name = row[0];
    s.ra_deg = parse_double(row[1]);
    s.dec_deg = parse_double(row[2]);
    s.dm = parse_double(row[3]);
    s.period_s = parse_double(row[4]);
    s.is_rrat = parse_int(row[5]) != 0;
    catalog.add(std::move(s));
  }
  return catalog;
}

}  // namespace drapid
