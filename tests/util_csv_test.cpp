#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace drapid {
namespace {

TEST(CsvParse, SplitsPlainFields) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[1], "b");
  EXPECT_EQ(row[2], "c");
}

TEST(CsvParse, PreservesEmptyFields) {
  const CsvRow row = parse_csv_line(",x,,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], "");
  EXPECT_EQ(row[1], "x");
  EXPECT_EQ(row[2], "");
  EXPECT_EQ(row[3], "");
}

TEST(CsvParse, QuotedFieldsWithDelimiterAndEscapes) {
  const CsvRow row = parse_csv_line(R"("a,b","say ""hi""",plain)");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a,b");
  EXPECT_EQ(row[1], "say \"hi\"");
  EXPECT_EQ(row[2], "plain");
}

TEST(CsvParse, ToleratesCrlf) {
  const CsvRow row = parse_csv_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(CsvRoundTrip, FormatThenParseIsIdentity) {
  const CsvRow original{"plain", "with,comma", "with\"quote", "", "end"};
  const CsvRow parsed = parse_csv_line(format_csv_row(original));
  EXPECT_EQ(parsed, original);
}

TEST(CsvRead, SkipsBlankAndCommentLines) {
  std::istringstream in("# header\n\na,b\n\n# trailing\nc,d\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvRead, KeepsCommentsWhenAsked) {
  std::istringstream in("# header\na,b\n");
  const auto rows = read_csv(in, ',', /*skip_comments=*/false);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "# header");
}

TEST(CsvFile, WriteThenReadRoundTrips) {
  const std::string path = ::testing::TempDir() + "/drapid_csv_test.csv";
  const std::vector<CsvRow> rows{{"1", "2.5", "x"}, {"4", "5.5", "y"}};
  write_csv_file(path, rows);
  const auto back = read_csv_file(path);
  EXPECT_EQ(back, rows);
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(ParseNumbers, AcceptsPaddedAndRejectsGarbage) {
  EXPECT_DOUBLE_EQ(parse_double("  3.25 "), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3"), -1e-3);
  EXPECT_EQ(parse_int(" 42\r"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_double("12abc"), std::runtime_error);
  EXPECT_THROW(parse_double(""), std::runtime_error);
  EXPECT_THROW(parse_int("3.5"), std::runtime_error);
}

}  // namespace
}  // namespace drapid
