#include "synth/population.hpp"

#include <cmath>
#include <sstream>

namespace drapid {

namespace {

std::string make_name(SourceType type, std::size_t index, Rng& rng) {
  // Catalogue-style J-name with random coordinates; purely cosmetic but keeps
  // logs and plots readable.
  std::ostringstream out;
  out << (type == SourceType::kPulsar ? "J" : "R");
  const int hh = static_cast<int>(rng.below(24));
  const int mm = static_cast<int>(rng.below(60));
  const int dd = static_cast<int>(rng.below(90));
  out << (hh < 10 ? "0" : "") << hh << (mm < 10 ? "0" : "") << mm
      << (rng.chance(0.5) ? '+' : '-') << (dd < 10 ? "0" : "") << dd << '.'
      << index;
  return out.str();
}

SyntheticSource draw_source(const PopulationConfig& config, SourceType type,
                            std::size_t index, Rng& rng) {
  SyntheticSource src;
  src.type = type;
  src.name = make_name(type, index, rng);
  // Sky positions along a Galactic-plane-like strip.
  src.ra_deg = rng.uniform(0.0, 360.0);
  src.dec_deg = rng.uniform(-30.0, 60.0);
  // DM drawn log-uniform so the population spans near and far sources — the
  // spread the ALM near/mid/far thresholds (Table 2) discretize.
  const double log_dm =
      rng.uniform(std::log(config.dm_min), std::log(config.dm_max));
  src.dm = std::exp(log_dm);
  src.period_s =
      std::pow(10.0, rng.uniform(config.log_period_min, config.log_period_max));
  const double duty = std::exp(
      rng.uniform(std::log(config.duty_min), std::log(config.duty_max)));
  src.width_ms = std::max(0.5, src.period_s * duty * 1e3);
  src.median_snr = 5.0 + rng.lognormal(config.snr_mu, config.snr_sigma);
  src.snr_sigma = rng.uniform(0.25, 0.5);
  if (type == SourceType::kPulsar) {
    src.emission_rate = rng.uniform(0.2, 0.9);  // fraction of rotations
  } else {
    src.emission_rate = rng.uniform(4.0, 40.0);  // bursts per hour
    // RRAT bursts are rare but tend to be bright and broad.
    src.median_snr = 6.0 + rng.lognormal(config.snr_mu + 0.4, config.snr_sigma);
    src.width_ms = std::max(2.0, src.width_ms);
  }
  return src;
}

}  // namespace

std::vector<SyntheticSource> draw_population(const PopulationConfig& config,
                                             Rng& rng) {
  std::vector<SyntheticSource> sources;
  sources.reserve(config.num_pulsars + config.num_rrats);
  for (std::size_t i = 0; i < config.num_pulsars; ++i) {
    sources.push_back(draw_source(config, SourceType::kPulsar, i, rng));
  }
  for (std::size_t i = 0; i < config.num_rrats; ++i) {
    sources.push_back(draw_source(config, SourceType::kRrat, i, rng));
  }
  return sources;
}

}  // namespace drapid
