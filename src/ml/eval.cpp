#include "ml/eval.hpp"

#include <sstream>
#include <stdexcept>

namespace drapid {
namespace ml {

double BinaryScores::recall() const {
  const auto denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double BinaryScores::precision() const {
  const auto denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double BinaryScores::f_measure() const {
  const double p = precision();
  const double r = recall();
  return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0) {
  if (num_classes == 0) {
    throw std::invalid_argument("confusion matrix needs at least one class");
  }
}

void ConfusionMatrix::add(int actual, int predicted) {
  if (actual < 0 || static_cast<std::size_t>(actual) >= n_ || predicted < 0 ||
      static_cast<std::size_t>(predicted) >= n_) {
    throw std::invalid_argument("class index out of range");
  }
  ++cells_[static_cast<std::size_t>(actual) * n_ +
           static_cast<std::size_t>(predicted)];
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.n_ != n_) {
    throw std::invalid_argument("cannot merge matrices of different sizes");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

std::size_t ConfusionMatrix::count(int actual, int predicted) const {
  return cells_[static_cast<std::size_t>(actual) * n_ +
                static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::total() const {
  std::size_t t = 0;
  for (auto c : cells_) t += c;
  return t;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t t = total();
  if (t == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += cells_[c * n_ + c];
  return static_cast<double>(correct) / static_cast<double>(t);
}

double ConfusionMatrix::recall(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t actual_total = 0;
  for (std::size_t p = 0; p < n_; ++p) actual_total += cells_[c * n_ + p];
  if (actual_total == 0) return 0.0;
  return static_cast<double>(cells_[c * n_ + c]) /
         static_cast<double>(actual_total);
}

double ConfusionMatrix::precision(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t predicted_total = 0;
  for (std::size_t a = 0; a < n_; ++a) predicted_total += cells_[a * n_ + c];
  if (predicted_total == 0) return 0.0;
  return static_cast<double>(cells_[c * n_ + c]) /
         static_cast<double>(predicted_total);
}

double ConfusionMatrix::f_measure(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

BinaryScores ConfusionMatrix::collapse(
    const std::vector<bool>& positive) const {
  if (positive.size() != n_) {
    throw std::invalid_argument("positive mask size mismatch");
  }
  BinaryScores s;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t p = 0; p < n_; ++p) {
      const std::size_t count = cells_[a * n_ + p];
      if (positive[a] && positive[p]) s.tp += count;
      else if (positive[a] && !positive[p]) s.fn += count;
      else if (!positive[a] && positive[p]) s.fp += count;
      else s.tn += count;
    }
  }
  return s;
}

BinaryScores ConfusionMatrix::collapse_nonzero_positive() const {
  std::vector<bool> positive(n_, true);
  positive[0] = false;
  return collapse(positive);
}

std::string ConfusionMatrix::to_string(
    const std::vector<std::string>& class_names) const {
  std::ostringstream out;
  out << "actual\\predicted";
  for (std::size_t p = 0; p < n_; ++p) {
    out << '\t' << (p < class_names.size() ? class_names[p] : "?");
  }
  out << '\n';
  for (std::size_t a = 0; a < n_; ++a) {
    out << (a < class_names.size() ? class_names[a] : "?");
    for (std::size_t p = 0; p < n_; ++p) out << '\t' << cells_[a * n_ + p];
    out << '\n';
  }
  return out.str();
}

}  // namespace ml
}  // namespace drapid
