#include "obs/trace.hpp"

#include <thread>

namespace drapid {
namespace obs {

struct Tracer::ThreadBuffer {
  std::thread::id owner;
  std::uint32_t tid = 0;
  // Guards events/depth/dropped. Only the owning thread records, so the
  // lock is uncontended on the hot path; events()/open_spans() from other
  // threads take it too, which keeps exports race-free under TSan.
  mutable std::mutex mutex;
  std::vector<TraceEvent> events;
  std::size_t depth = 0;          ///< logically open spans (incl. dropped)
  std::size_t open_recorded = 0;  ///< open spans whose kBegin was recorded
  std::size_t dropped = 0;
};

namespace {

std::atomic<std::uint64_t> next_tracer_id{1};

/// One-entry cache: the last (tracer, buffer) pair this thread touched.
/// Tracer ids are process-unique and never reused, so a stale entry for a
/// dead tracer can never match a live one.
struct LocalCache {
  std::uint64_t tracer_id = 0;
  Tracer::ThreadBuffer* buffer = nullptr;
};
thread_local LocalCache t_cache;

}  // namespace

Tracer::Tracer()
    : id_(next_tracer_id.fetch_add(1)),
      origin_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

void Tracer::set_max_events_per_thread(std::size_t cap) {
  max_events_per_thread_.store(cap, std::memory_order_relaxed);
}

std::int64_t Tracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  if (t_cache.tracer_id == id_) return *t_cache.buffer;
  const auto me = std::this_thread::get_id();
  std::lock_guard lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    if (buf->owner == me) {
      t_cache = {id_, buf.get()};
      return *buf;
    }
  }
  auto buf = std::make_unique<ThreadBuffer>();
  buf->owner = me;
  buf->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
  buffers_.push_back(std::move(buf));
  t_cache = {id_, buffers_.back().get()};
  return *buffers_.back();
}

void Tracer::begin_span(std::string_view name, std::string_view detail,
                        std::string_view category) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  ++buf.depth;  // depth tracks open spans even when the event is dropped
  if (buf.events.size() >=
      max_events_per_thread_.load(std::memory_order_relaxed)) {
    ++buf.dropped;
    return;
  }
  TraceEvent event;
  event.phase = TraceEvent::Phase::kBegin;
  event.name.reserve(name.size() + (detail.empty() ? 0 : detail.size() + 1));
  event.name.assign(name);
  if (!detail.empty()) {
    event.name += ':';
    event.name += detail;
  }
  event.category.assign(category);
  event.ts_ns = now_ns();
  event.tid = buf.tid;
  buf.events.push_back(std::move(event));
  ++buf.open_recorded;
}

void Tracer::end_span(Json args) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  if (buf.depth == 0) return;  // unbalanced close; ScopedSpan never does this
  --buf.depth;
  // Begins are only dropped once the buffer is full, so dropped begins are
  // always the innermost open spans. This close belongs to a dropped begin
  // exactly when there are more open spans than recorded ones — drop the
  // end too so recorded events stay balanced. A close matching a recorded
  // begin is always recorded, even past the cap (bounded by open_recorded).
  if (buf.open_recorded < buf.depth + 1) {
    ++buf.dropped;
    return;
  }
  --buf.open_recorded;
  TraceEvent event;
  event.phase = TraceEvent::Phase::kEnd;
  event.ts_ns = now_ns();
  event.tid = buf.tid;
  event.args = std::move(args);
  buf.events.push_back(std::move(event));
}

void Tracer::instant(std::string_view name, Json args,
                     std::string_view category) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  if (buf.events.size() >=
      max_events_per_thread_.load(std::memory_order_relaxed)) {
    ++buf.dropped;
    return;
  }
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name.assign(name);
  event.category.assign(category);
  event.ts_ns = now_ns();
  event.tid = buf.tid;
  event.args = std::move(args);
  buf.events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  return all;
}

std::size_t Tracer::open_spans() const {
  std::size_t open = 0;
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    open += buf->depth;
  }
  return open;
}

std::size_t Tracer::dropped_events() const {
  std::size_t dropped = 0;
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    dropped += buf->dropped;
  }
  return dropped;
}

void Tracer::clear() {
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    buf->events.clear();
    buf->dropped = 0;
    // depth is left alone: open ScopedSpans will still close. Their begins
    // are gone, so zeroing open_recorded makes those closes drop too.
    buf->open_recorded = 0;
  }
}

Tracer& global_tracer() {
  // Leaked intentionally: worker threads and exit-time code may record into
  // it; a static destructor racing them would be worse than 200 bytes.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace obs
}  // namespace drapid
