#include "spe/spe.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string_view>

namespace drapid {

namespace {

/// Shortest-of-17-significant-digits formatting, matching what an
/// ostringstream with precision(17) (i.e. printf %.17g) produces — existing
/// persisted keys keep their exact spelling, and 17 digits round-trips any
/// double exactly.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  out.append(buf, res.ptr);
}

[[noreturn]] void malformed(const std::string& key) {
  throw std::runtime_error("malformed observation key: " + key);
}

double field_to_double(std::string_view field, const std::string& key) {
  double v = 0.0;
  const auto res = std::from_chars(field.data(), field.data() + field.size(),
                                   v, std::chars_format::general);
  if (res.ec != std::errc{} || res.ptr != field.data() + field.size()) {
    malformed(key);
  }
  // from_chars accepts "inf"/"nan" spellings and we never emit them: a
  // non-finite MJD or sky position is not a real observation, and NaN keys
  // would not even compare equal to themselves in the archive index.
  if (!std::isfinite(v)) malformed(key);
  return v;
}

}  // namespace

std::string ObservationId::key() const {
  // The key is '|'-delimited and used verbatim as an archive/RDD primary
  // key, so the dataset name must not smuggle in a delimiter or a NUL, and
  // the numeric fields must have a finite spelling that round-trips. Throws
  // std::runtime_error: bad ids usually arrive from parsed survey files, and
  // every parse-path failure in this codebase is a runtime_error (the format
  // fuzzers rely on it).
  if (dataset.find('|') != std::string::npos ||
      dataset.find('\0') != std::string::npos) {
    throw std::runtime_error(
        "observation dataset name contains '|' or NUL: " + dataset);
  }
  if (!std::isfinite(mjd) || !std::isfinite(ra_deg) || !std::isfinite(dec_deg)) {
    throw std::runtime_error(
        "observation id has a non-finite mjd/ra/dec field");
  }
  std::string out = dataset;
  out.reserve(out.size() + 80);
  out.push_back('|');
  append_double(out, mjd);
  out.push_back('|');
  append_double(out, ra_deg);
  out.push_back('|');
  append_double(out, dec_deg);
  out.push_back('|');
  char buf[16];
  const auto res = std::to_chars(buf, buf + sizeof(buf), beam);
  out.append(buf, res.ptr);
  return out;
}

ObservationId ObservationId::from_key(const std::string& key) {
  // Embedded NULs can never come from key() and would silently truncate the
  // key under any C-string handling downstream — reject outright.
  if (key.find('\0') != std::string::npos) malformed(key);
  std::array<std::string_view, 5> parts;
  const std::string_view view(key);
  std::size_t count = 0;
  std::size_t begin = 0;
  while (true) {
    const std::size_t bar = view.find('|', begin);
    const std::string_view part = view.substr(
        begin, bar == std::string_view::npos ? std::string_view::npos
                                             : bar - begin);
    if (count < parts.size()) parts[count] = part;
    ++count;
    if (bar == std::string_view::npos) break;
    begin = bar + 1;
  }
  if (count != parts.size()) malformed(key);
  ObservationId id;
  id.dataset = std::string(parts[0]);
  id.mjd = field_to_double(parts[1], key);
  id.ra_deg = field_to_double(parts[2], key);
  id.dec_deg = field_to_double(parts[3], key);
  const std::string_view beam = parts[4];
  const auto res = std::from_chars(beam.data(), beam.data() + beam.size(),
                                   id.beam);
  if (res.ec != std::errc{} || res.ptr != beam.data() + beam.size()) {
    malformed(key);
  }
  return id;
}

}  // namespace drapid
