// Property tests for the clustering substrate: invariances that must hold
// for any input the simulator can produce.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "clustering/dbscan.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

ObservationData random_observation(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  ObservationData obs;
  obs.id.dataset = "PROP";
  for (std::size_t i = 0; i < n; ++i) {
    SinglePulseEvent e;
    // Mixture: half clumped, half scattered.
    if (rng.chance(0.5)) {
      const double c_dm = rng.uniform(10.0, 90.0);
      const double c_t = rng.uniform(0.0, 50.0);
      e.dm = c_dm + rng.normal(0.0, 0.3);
      e.time_s = c_t + rng.normal(0.0, 0.01);
    } else {
      e.dm = rng.uniform(0.0, 100.0);
      e.time_s = rng.uniform(0.0, 50.0);
    }
    e.snr = 5.0 + rng.exponential(1.0);
    obs.events.push_back(e);
  }
  return obs;
}

/// Canonical form of a clustering: the set of member-index sets.
std::set<std::set<std::size_t>> canonical(const ClusteringResult& result) {
  std::set<std::set<std::size_t>> out;
  for (const auto& c : result.clusters) {
    out.insert(std::set<std::size_t>(c.members.begin(), c.members.end()));
  }
  return out;
}

class DbscanProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbscanProperties, EveryEventIsNoiseOrInExactlyOneCluster) {
  const auto obs = random_observation(GetParam(), 400);
  const DmGrid grid({{0.0, 100.0, 0.1}});
  const auto result = dbscan_cluster(obs, grid, {});
  std::map<std::size_t, int> memberships;
  for (const auto& c : result.clusters) {
    for (std::size_t m : c.members) ++memberships[m];
  }
  for (const auto& [event, count] : memberships) {
    EXPECT_EQ(count, 1) << "event " << event << " in " << count << " clusters";
  }
  for (std::size_t i = 0; i < obs.events.size(); ++i) {
    const bool member = memberships.count(i) > 0;
    EXPECT_EQ(member, result.labels[i] >= 0);
  }
}

TEST_P(DbscanProperties, InvariantUnderEventPermutation) {
  auto obs = random_observation(GetParam(), 300);
  const DmGrid grid({{0.0, 100.0, 0.1}});
  const auto base = dbscan_cluster(obs, grid, {});

  // Permute events; map results back through the permutation.
  Rng rng(GetParam() ^ 0xabcdef);
  std::vector<std::size_t> perm(obs.events.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  ObservationData shuffled;
  shuffled.id = obs.id;
  shuffled.events.resize(obs.events.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    shuffled.events[i] = obs.events[perm[i]];
  }
  const auto permuted = dbscan_cluster(shuffled, grid, {});

  // Canonicalize the permuted result back into original indices.
  std::set<std::set<std::size_t>> remapped;
  for (const auto& c : permuted.clusters) {
    std::set<std::size_t> members;
    for (std::size_t m : c.members) members.insert(perm[m]);
    remapped.insert(std::move(members));
  }
  EXPECT_EQ(remapped, canonical(base));
}

TEST_P(DbscanProperties, MergePassNeverSplitsClusters) {
  // Merging can only coarsen the partition: every unmerged cluster must be
  // wholly contained in some merged cluster.
  const auto obs = random_observation(GetParam(), 400);
  const DmGrid grid({{0.0, 100.0, 0.1}});
  DbscanParams merged_params;
  DbscanParams unmerged_params;
  unmerged_params.merge_fragments = false;
  const auto merged = dbscan_cluster(obs, grid, merged_params);
  const auto unmerged = dbscan_cluster(obs, grid, unmerged_params);
  EXPECT_LE(merged.clusters.size(), unmerged.clusters.size());
  for (const auto& fragment : unmerged.clusters) {
    ASSERT_FALSE(fragment.members.empty());
    const int target = merged.labels[fragment.members.front()];
    for (std::size_t m : fragment.members) {
      EXPECT_EQ(merged.labels[m], target)
          << "fragment split across merged clusters";
    }
  }
}

TEST_P(DbscanProperties, RecordsMatchMembership) {
  const auto obs = random_observation(GetParam(), 350);
  const DmGrid grid({{0.0, 100.0, 0.1}});
  const auto result = dbscan_cluster(obs, grid, {});
  const auto records = make_cluster_records(obs, result);
  ASSERT_EQ(records.size(), result.clusters.size());
  std::set<int> ranks;
  for (std::size_t c = 0; c < records.size(); ++c) {
    EXPECT_EQ(records[c].num_spes, result.clusters[c].members.size());
    for (std::size_t m : result.clusters[c].members) {
      const auto& e = obs.events[m];
      EXPECT_GE(e.dm, records[c].dm_min);
      EXPECT_LE(e.dm, records[c].dm_max);
      EXPECT_GE(e.time_s, records[c].time_min);
      EXPECT_LE(e.time_s, records[c].time_max);
      EXPECT_LE(e.snr, records[c].snr_max);
    }
    ranks.insert(records[c].rank);
  }
  // Ranks are a permutation of 1..k.
  EXPECT_EQ(ranks.size(), records.size());
  if (!records.empty()) {
    EXPECT_EQ(*ranks.begin(), 1);
    EXPECT_EQ(*ranks.rbegin(), static_cast<int>(records.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanProperties,
                         ::testing::Values(1, 7, 42, 99, 1234));

}  // namespace
}  // namespace drapid
