// Renders a single-pulse search candidate as ASCII art, in the spirit of the
// paper's Figure 1: an SNR-vs-DM panel (top) and a DM-vs-time panel
// (bottom), with the SPEs belonging to identified single pulses highlighted.
//
//   ./examples/candidate_plot [--seed N]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <set>

#include "clustering/dbscan.hpp"
#include "rapid/multithreaded.hpp"
#include "synth/survey.hpp"
#include "util/options.hpp"

using namespace drapid;

namespace {

/// Scatter plot on a character grid: '.' = SPE, '#' = SPE inside an
/// identified single pulse, 'o' = a brighter highlighted SPE.
void scatter(const std::string& title, const std::vector<double>& x,
             const std::vector<double>& y, const std::vector<bool>& highlight,
             int width = 78, int height = 18) {
  std::cout << title << '\n';
  if (x.empty()) return;
  const auto [xmin_it, xmax_it] = std::minmax_element(x.begin(), x.end());
  const auto [ymin_it, ymax_it] = std::minmax_element(y.begin(), y.end());
  const double xmin = *xmin_it, xspan = std::max(1e-9, *xmax_it - *xmin_it);
  const double ymin = *ymin_it, yspan = std::max(1e-9, *ymax_it - *ymin_it);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto col = static_cast<std::size_t>((x[i] - xmin) / xspan * (width - 1));
    const auto row = static_cast<std::size_t>(
        (1.0 - (y[i] - ymin) / yspan) * (height - 1));
    char& cell = grid[row][col];
    const char mark = highlight[i] ? '#' : '.';
    if (cell == ' ' || (cell == '.' && mark == '#')) cell = mark;
  }
  for (const auto& line : grid) std::cout << '|' << line << "|\n";
  std::cout << ' ' << *xmin_it << std::string(static_cast<std::size_t>(width - 16), ' ')
            << *xmax_it << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, {{"seed", "11"}});

  // A bright pulsar reminiscent of B1853+01 (DM ~ 96).
  SurveyConfig survey = SurveyConfig::gbt350drift();
  survey.obs_length_s = 30.0;
  survey.noise_events_per_second = 12.0;
  SurveySimulator sim(survey, static_cast<std::uint64_t>(opts.integer("seed")));
  SyntheticSource src;
  src.name = "B1853+01";
  src.dm = 96.0;
  src.period_s = 5.0;
  src.width_ms = 15.0;
  src.median_snr = 22.0;
  src.emission_rate = 0.9;
  ObservationId id;
  id.dataset = survey.name;
  const auto obs = sim.simulate(id, {src});

  // Identify single pulses.
  const auto clustering = dbscan_cluster(obs.data, *survey.grid, {});
  const auto items = make_work_items(obs.data, clustering);
  const auto found =
      run_rapid_multithreaded(items, RapidParams{}, *survey.grid, 2);

  // Mark the SPEs of identified single pulses: an SPE is highlighted when it
  // falls inside an identified pulse's DM span and its cluster's time box.
  std::vector<bool> highlight(obs.data.events.size(), false);
  std::size_t highlighted_pulses = 0;
  for (const auto& p : found) {
    if (p.features[kSnrMax] < 10.0) continue;
    ++highlighted_pulses;
    for (std::size_t i = 0; i < obs.data.events.size(); ++i) {
      const auto& e = obs.data.events[i];
      if (e.dm >= p.features[kSnrPeakDm] - p.features[kDmRange] &&
          e.dm <= p.features[kSnrPeakDm] + p.features[kDmRange] &&
          e.time_s >= p.cluster.time_min && e.time_s <= p.cluster.time_max) {
        highlight[i] = true;
      }
    }
  }

  std::vector<double> dm, snr, t;
  for (const auto& e : obs.data.events) {
    dm.push_back(e.dm);
    snr.push_back(e.snr);
    t.push_back(e.time_s);
  }
  std::cout << "single pulse search candidate for " << src.name << " ("
            << obs.data.events.size() << " SPEs, " << found.size()
            << " identified pulses, " << highlighted_pulses
            << " bright ones highlighted '#')\n\n";
  scatter("SNR vs DM", dm, snr, highlight);
  scatter("DM vs Time", t, dm, highlight);
  return 0;
}
