// Job-lifetime worker pool with partition-resident shuffles (PR 10).
//
// The fork-per-stage ProcessExecutor (PR 7) pays two taxes the paper's
// cluster never would: a fork+teardown per stage, and a full ship-up of every
// stage's output partitions to the coordinator. WorkerPool replaces both:
// the pool forks its N workers once — lazily, inside the first pooled stage —
// and drives them through a multi-stage dispatch protocol over the same
// DRASPIPC framed sockets (wire.hpp kinds kStageBegin..kShutdown).
//
// What makes a persistent pool possible at all: a worker forked at job start
// can only see parent state that existed at fork time, and stage closures are
// created later. Pooled stages therefore never run the body closure in the
// child. Each transformation ships *code by address* (a PoolKernelFn — valid
// across fork, same binary) plus *state by bytes* (a trivially-copyable
// closure object and serialized inputs), and the worker keeps the serialized
// output partition **resident** under a set id instead of shipping it up.
// The next stage's task is placed on the worker that already holds its input,
// so a narrow chain's steady-state IPC is task-assign and result-metric
// frames, not data.
//
// Wide stages (partition_by) shuffle worker-to-worker, parent-brokered: each
// source task routes its records into per-target segments, keeps segments
// whose target it owns (target % workers == slot), and pushes the rest as
// kShufflePush frames that the parent relays verbatim to the owning worker.
// At kStageEnd each owner concatenates its staged segments in source order —
// byte-identical to the local backend's placement pass — and keeps the result
// resident. Per-socket FIFO ordering makes the barrier trivial: a relayed
// push always arrives before the kStageEnd that follows it on the same
// socket.
//
// Failure model: worker death (EOF / corrupt frame) charges one attempt to
// each unfinished task it held — identical accounting to the fork-per-stage
// path and to an injected task kill under the local backend — and a
// replacement is forked at incarnation + 1. Partitions that were resident on
// the dead worker are *not* re-shipped: the parent registry stores each set's
// lineage (kernel, closure, and the chain-head input bytes), so a lost
// partition is rebuilt on demand by re-running kernels in the parent. Lineage
// rebuilds consume no fault draws and charge no attempts (they are the PR 1
// recomputation path, not retries), which keeps attempt accounting equal to
// the local backend's.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataflow/executor.hpp"
#include "dataflow/ipc/wire.hpp"

namespace drapid {

class Engine;
class WorkerPool;

namespace pooldetail {

/// One resident partition as the parent tracks it.
struct PartState {
  static constexpr int kNone = -1;  ///< not on any live worker
  int owner = kNone;                ///< worker slot, or kNone (dead/unbuilt)
  std::string parent_bytes;         ///< parent-side copy (fetched or rebuilt)
  std::size_t bytes = 0;            ///< serialized payload size
  std::size_t records = 0;          ///< records_out reported by the producer
};

/// A lineage input of one task: either another set's partition or stored
/// chain-head bytes (kept so the chain is rebuildable after its source Rdd
/// died in the parent).
struct StoredInput {
  std::uint64_t set = 0;  ///< 0 = inline bytes below
  std::size_t partition = 0;
  std::string bytes;
};

/// Parent-side state of one resident set: where each partition lives plus
/// everything needed to re-execute its producing stage.
struct SetState {
  PoolStagePlan::Kind kind = PoolStagePlan::Kind::kNarrow;
  PoolKernelFn kernel = nullptr;
  std::string closure;
  std::size_t num_targets = 0;  ///< wide only
  std::vector<std::vector<StoredInput>> task_inputs;  ///< per task / source
  std::vector<PartState> parts;
};

}  // namespace pooldetail

/// Parent-side residency registry. Owned (shared) by the WorkerPool; PoolSet
/// handles reference it weakly so Rdds outliving the engine degrade
/// gracefully instead of dangling.
class PoolRegistryCore {
 public:
  /// Fetches partition bytes: parent copy, live worker, or lineage rebuild.
  std::string fetch(std::uint64_t set, std::size_t partition);
  std::size_t set_bytes(std::uint64_t set) const;
  std::size_t set_records(std::uint64_t set, std::size_t partition) const;
  /// Drops a set (from a PoolSet destructor); notifies workers.
  void release(std::uint64_t set);

 private:
  friend class WorkerPool;
  std::string rebuild(std::uint64_t set, std::size_t partition);

  WorkerPool* pool_ = nullptr;  ///< nulled when the pool dies first
  std::unordered_map<std::uint64_t, pooldetail::SetState> sets_;
  std::uint64_t next_id_ = 1;
};

/// The job-lifetime pool. One per ProcessExecutor in PoolMode::kJob.
class WorkerPool : public PoolResidency {
 public:
  WorkerPool(Engine& engine, std::size_t workers);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t workers() const { return nworkers_; }

  /// Runs one pooled stage (run.plan != nullptr, tasks nonempty) through the
  /// pool, forking it first if this is the job's first pooled stage. Fills
  /// run.plan->out with the stage's resident output set.
  void run_pooled_stage(StageRun run);

  const std::shared_ptr<PoolRegistryCore>& core() const { return core_; }

 private:
  friend class PoolRegistryCore;

  struct PoolWorker {
    pid_t pid = -1;
    int fd = -1;
    std::size_t slot = 0;
    std::size_t incarnation = 0;
    bool ever_spawned = false;
    bool alive = false;
    std::string inbuf;
    std::string outbuf;  ///< pending bytes (nonblocking sends)
    std::size_t outpos = 0;
  };

  struct StageCtx;
  struct Fetch {
    std::uint64_t set = 0;
    std::size_t partition = 0;
    std::size_t slot = 0;  ///< worker the kFetch went to
    bool done = false;
    bool failed = false;  ///< holder died before replying
    std::string bytes;
  };

  void ensure_spawned(StageMetrics* stage);
  void spawn(PoolWorker& w);
  void retire(PoolWorker& w);
  void handle_death(PoolWorker& w);
  void enqueue(PoolWorker& w, std::string bytes);
  void flush(PoolWorker& w);
  /// One poll round: flush pending sends, read, decode, dispatch frames.
  /// Re-entered only from top-level waits (fetches), never from inside a
  /// frame handler — death recovery defers reassignment to drain_reassign.
  void pump();
  void read_and_dispatch(PoolWorker& w);
  void dispatch_frame(PoolWorker& w, const ipc::TaskFrame& frame,
                      const char* raw, std::size_t consumed);
  /// Fetches (set, partition) bytes from the worker holding it; false when
  /// the holder died first (caller falls back to lineage rebuild).
  bool fetch_from_worker(std::size_t slot, std::uint64_t set,
                         std::size_t partition, std::string& out);
  void send_stage_begin(PoolWorker& w);
  void send_assign(PoolWorker& w, std::size_t task, std::size_t attempt_base,
                   bool die_before);
  void send_stage_end(PoolWorker& w);
  /// Re-dispatches the pending tasks of slots respawned since the last call.
  void drain_reassign();
  /// Tells every live worker to drop a released set's resident bytes.
  void release_on_workers(std::uint64_t set);
  void kill_all() noexcept;
  void shutdown() noexcept;
  void update_gauge() const;
  void count_ipc(std::size_t bytes);

  Engine& engine_;
  std::size_t nworkers_;
  std::vector<PoolWorker> workers_;
  bool spawned_ = false;
  std::shared_ptr<PoolRegistryCore> core_;
  StageCtx* ctx_ = nullptr;  ///< current pooled stage, null between stages
  std::vector<Fetch*> fetches_;  ///< outstanding kFetch waits (stack order)
};

}  // namespace drapid
