#include "util/text_table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace drapid {

std::string format_number(double value, int digits) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << value;
  std::string s = out.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::size_t cols = 0;
  for (const auto& row : rows) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < cols; ++c) {
        out << std::string(widths[c], '-') << "  ";
      }
      out << '\n';
    }
  }
  return out.str();
}

std::string render_boxplots(const std::string& title,
                            const std::vector<BoxplotRow>& rows, int width) {
  std::ostringstream out;
  out << title << '\n';
  if (rows.empty()) return out.str();
  double lo = rows.front().summary.min;
  double hi = rows.front().summary.max;
  std::size_t label_width = 0;
  for (const auto& row : rows) {
    lo = std::min(lo, row.summary.min);
    hi = std::max(hi, row.summary.max);
    label_width = std::max(label_width, row.label.size());
  }
  if (hi <= lo) hi = lo + 1.0;
  const auto col = [&](double v) {
    const double t = (v - lo) / (hi - lo);
    return static_cast<int>(std::round(t * (width - 1)));
  };
  for (const auto& row : rows) {
    const Summary& s = row.summary;
    std::string plot(static_cast<std::size_t>(width), ' ');
    const int cmin = col(s.min), cq1 = col(s.q1), cmed = col(s.median),
              cq3 = col(s.q3), cmax = col(s.max);
    for (int i = cmin; i <= cmax; ++i) plot[static_cast<std::size_t>(i)] = '-';
    for (int i = cq1; i <= cq3; ++i) plot[static_cast<std::size_t>(i)] = '=';
    plot[static_cast<std::size_t>(cmin)] = '|';
    plot[static_cast<std::size_t>(cmax)] = '|';
    plot[static_cast<std::size_t>(cmed)] = 'M';
    out << row.label << std::string(label_width - row.label.size() + 1, ' ')
        << '[' << plot << "]  med=" << format_number(s.median)
        << " iqr=" << format_number(s.iqr()) << '\n';
  }
  out << std::string(label_width + 1, ' ') << ' ' << format_number(lo)
      << std::string(static_cast<std::size_t>(std::max(1, width - 12)), ' ')
      << format_number(hi) << '\n';
  return out.str();
}

std::string render_series(const std::string& title,
                          const std::vector<std::string>& x_labels,
                          const std::vector<Series>& series) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{title};
  header.insert(header.end(), x_labels.begin(), x_labels.end());
  rows.push_back(std::move(header));
  for (const auto& s : series) {
    std::vector<std::string> row{s.label};
    for (double v : s.values) row.push_back(format_number(v));
    rows.push_back(std::move(row));
  }
  return render_table(rows);
}

}  // namespace drapid
