// Discrete-event cost model of the paper's two testbeds.
//
// The build machine for this reproduction has a single core, so a real
// wall-clock measurement cannot exhibit the parallel speedups of Figure 4.
// Instead, the engine executes the workload for real and records *measured
// work* per task (compute units, shuffle bytes, spill bytes) in JobMetrics;
// this model then prices that work against a hardware specification and
// computes the schedule makespan by event simulation over executor core
// slots. Mechanisms, not magic numbers, produce the paper's curve shapes:
// the one-executor cliff comes from recorded spill bytes, the knee at five
// executors from task-granularity limits and per-task overheads, and the
// D-RAPID-vs-multithreaded gap from total core-GHz and the workstation's
// serial disk scan.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dataflow/metrics.hpp"

namespace drapid {

/// One physical machine's relevant capabilities.
struct MachineSpec {
  std::string name;
  double clock_ghz = 3.2;
  std::size_t physical_cores = 4;
  /// Throughput multiplier available from SMT when threads oversubscribe
  /// physical cores (1.0 = no SMT benefit).
  double smt_throughput = 1.25;
  double memory_gb = 8.0;
  double disk_mbps = 120.0;  ///< sequential disk bandwidth, MB/s
  double net_mbps = 110.0;   ///< usable network bandwidth, MB/s (≈ GbE)
};

/// A Spark-on-YARN style cluster built from identical data nodes.
struct ClusterSpec {
  std::string name;
  MachineSpec node;
  std::size_t num_executors = 20;
  std::size_t cores_per_executor = 2;
  double executor_memory_mb = 2560.0;

  // Cost calibration (documented in DESIGN.md; shapes, not absolutes):
  /// Nanoseconds one compute unit (≈ one record through a JVM-grade parse /
  /// search step) takes on a 1 GHz core.
  double ns_per_compute_unit = 2500.0;
  /// Fixed per-task cost: scheduling, serialization, result pickup.
  double per_task_overhead_ms = 3.0;
  /// Fixed per-stage cost: stage barrier + DAG scheduling.
  double per_stage_overhead_s = 0.25;
  /// Base delay before the first reattempt of a failed task; each further
  /// reattempt doubles it (Spark-style exponential backoff). Priced per
  /// task as backoff_ms * (2^retries - 1), alongside the wasted attempts'
  /// compute (TaskMetrics::retry_cost) and rescheduling overhead.
  double retry_backoff_ms = 50.0;

  /// The paper's testbed (§6.1): 15 Fairmont State data nodes (mix of
  /// 3.2 GHz quad i5-3470 and 3.33 GHz Core2 Duo), executors with 2 vcores
  /// and 2,560 MB each.
  static ClusterSpec paper_beowulf(std::size_t num_executors);

  /// The paper's multithreaded baseline host: i7-7800K overclocked to
  /// 4.5 GHz, 16 GB RAM.
  static MachineSpec paper_workstation();
};

struct StageSimResult {
  std::string name;
  double seconds = 0.0;
};

struct SimResult {
  double total_seconds = 0.0;
  std::vector<StageSimResult> stages;
};

/// Prices a measured job against a cluster spec. Tasks of each stage are
/// list-scheduled onto num_executors * cores_per_executor slots in recorded
/// order (earliest-available slot first, as Spark's dynamic task dispatch
/// does); stages run back to back.
SimResult simulate_cluster(const JobMetrics& job, const ClusterSpec& spec);

/// Prices a multithreaded single-machine run: `task_costs` are per-cluster
/// compute units, `input_bytes` is the file scan the workstation performs
/// serially before (and overlapped with) processing. Effective parallelism
/// is min(threads, cores * smt_throughput); memory pressure beyond
/// `memory_gb` adds swap traffic at disk speed.
SimResult simulate_workstation(const std::vector<std::size_t>& task_costs,
                               std::size_t input_bytes,
                               std::size_t resident_bytes,
                               const MachineSpec& machine, std::size_t threads,
                               double ns_per_compute_unit = 2500.0);

/// Scales every task's counters by `factor` — used by benches to model the
/// measured work profile at the paper's full data volume (e.g. a 300 MB
/// synthetic run extrapolated to the 10.2 GB PALFA subset).
JobMetrics scale_metrics(const JobMetrics& job, double factor);

/// Measured-vs-modeled makespan comparison. Before PR 7 the model's output
/// could only be eyeballed against the paper's figures; with the process
/// backend actually running stages concurrently, Engine::run_stage stamps a
/// real wall clock per stage (StageMetrics::wall_seconds) that the priced
/// schedule can be validated against.
struct MakespanValidation {
  /// Sum of engine-stamped stage wall clocks (0 when nothing was stamped,
  /// e.g. metrics rebuilt from a serialized report).
  double measured_seconds = 0.0;
  double modeled_seconds = 0.0;  ///< the cost model's priced makespan
  /// modeled / measured; 0 when unmeasured. The model prices the paper's
  /// 15-node testbed, not this host, so the interesting signal is this
  /// ratio staying stable across backends and worker counts — a drifting
  /// ratio means the model mis-prices concurrency, not that the host is
  /// slow.
  double ratio = 0.0;
};

MakespanValidation validate_makespan(const JobMetrics& measured,
                                     const SimResult& modeled);

}  // namespace drapid
