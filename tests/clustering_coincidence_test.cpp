// Multi-beam coincidence rejection: hand-built pointings with known
// coincident/unique events, cell-edge straddling via the 3×3 neighbourhood,
// parameter validation, the archive-level serve wrapper, and an end-to-end
// precision/recall run over a simulated multi-beam pointing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "clustering/coincidence.hpp"
#include "serve/archive.hpp"
#include "serve/coincidence.hpp"
#include "spe/dm_grid.hpp"
#include "synth/survey.hpp"

namespace drapid {
namespace {

namespace fs = std::filesystem;

DmGrid unit_grid() { return DmGrid({{0.0, 200.0, 1.0}}); }

ObservationId beam_id(int beam) {
  ObservationId id;
  id.dataset = "COINC";
  id.mjd = 56000.0;
  id.beam = beam;
  return id;
}

SinglePulseEvent event_at(double dm, double time_s, double snr = 8.0) {
  SinglePulseEvent e;
  e.dm = dm;
  e.time_s = time_s;
  e.snr = snr;
  e.sample = static_cast<std::int64_t>(time_s * 1000.0);
  return e;
}

std::vector<const ObservationData*> views(
    const std::vector<ObservationData>& beams) {
  std::vector<const ObservationData*> out;
  for (const ObservationData& b : beams) out.push_back(&b);
  return out;
}

TEST(Coincidence, EventInEnoughBeamsIsRejected) {
  const DmGrid grid = unit_grid();
  std::vector<ObservationData> beams(4);
  for (int b = 0; b < 4; ++b) {
    beams[b].id = beam_id(b);
    if (b < 3) beams[b].events.push_back(event_at(50.0, 10.0));  // coincident
  }
  beams[0].events.push_back(event_at(120.0, 42.0));  // unique: a real pulse
  const CoincidenceResult result = coincidence_reject(views(beams), grid);
  EXPECT_EQ(result.num_events, 4u);
  EXPECT_EQ(result.num_rejected, 3u);
  EXPECT_TRUE(result.rejected[0][0]);
  EXPECT_TRUE(result.rejected[1][0]);
  EXPECT_TRUE(result.rejected[2][0]);
  EXPECT_FALSE(result.rejected[0][1]);
  EXPECT_TRUE(result.rejected[3].empty());
}

TEST(Coincidence, TwoBeamsIsNotEnoughByDefault) {
  const DmGrid grid = unit_grid();
  std::vector<ObservationData> beams(3);
  for (int b = 0; b < 3; ++b) beams[b].id = beam_id(b);
  beams[0].events.push_back(event_at(50.0, 10.0));
  beams[1].events.push_back(event_at(50.0, 10.0));  // beam-overlap pulse
  const CoincidenceResult result = coincidence_reject(views(beams), grid);
  EXPECT_EQ(result.num_rejected, 0u);
}

TEST(Coincidence, CellEdgeStraddlersStillCoincide) {
  const DmGrid grid = unit_grid();
  CoincidenceParams params;
  params.time_window_s = 0.05;
  params.dm_window_trials = 8.0;
  params.min_beams = 3;
  std::vector<ObservationData> beams(3);
  for (int b = 0; b < 3; ++b) beams[b].id = beam_id(b);
  // Times straddle the 10.00 s cell edge and DMs straddle a DM-cell edge;
  // the pairs are within one window of each other but land in adjacent
  // cells, which only the 3×3 neighbourhood union catches.
  beams[0].events.push_back(event_at(55.5, 9.99));
  beams[1].events.push_back(event_at(56.5, 10.01));
  beams[2].events.push_back(event_at(55.0, 10.03));
  const CoincidenceResult result =
      coincidence_reject(views(beams), grid, params);
  EXPECT_EQ(result.num_rejected, 3u);
}

TEST(Coincidence, DistantEventsDoNotCoincide) {
  const DmGrid grid = unit_grid();
  std::vector<ObservationData> beams(3);
  for (int b = 0; b < 3; ++b) {
    beams[b].id = beam_id(b);
    // Same DM but seconds apart — and same time but far apart in DM.
    beams[b].events.push_back(event_at(50.0, 10.0 + 3.0 * b));
    beams[b].events.push_back(event_at(30.0 + 40.0 * b, 80.0));
  }
  const CoincidenceResult result = coincidence_reject(views(beams), grid);
  EXPECT_EQ(result.num_rejected, 0u);
}

TEST(Coincidence, FilterDropsFlaggedEvents) {
  const DmGrid grid = unit_grid();
  std::vector<ObservationData> beams(3);
  for (int b = 0; b < 3; ++b) {
    beams[b].id = beam_id(b);
    beams[b].events.push_back(event_at(50.0, 10.0));
  }
  beams[0].events.push_back(event_at(150.0, 99.0, 12.0));
  const CoincidenceResult result = coincidence_reject(views(beams), grid);
  const std::vector<SinglePulseEvent> kept =
      coincidence_filter(beams[0], 0, result);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].dm, 150.0);
  EXPECT_TRUE(coincidence_filter(beams[1], 1, result).empty());
}

TEST(Coincidence, ValidatesParameters) {
  const DmGrid grid = unit_grid();
  std::vector<ObservationData> beams(2);
  beams[0].id = beam_id(0);
  beams[1].id = beam_id(1);
  CoincidenceParams params;
  params.time_window_s = 0.0;
  EXPECT_THROW(coincidence_reject(views(beams), grid, params),
               std::invalid_argument);
  params = CoincidenceParams{};
  params.dm_window_trials = -1.0;
  EXPECT_THROW(coincidence_reject(views(beams), grid, params),
               std::invalid_argument);
  params = CoincidenceParams{};
  params.min_beams = 1;
  EXPECT_THROW(coincidence_reject(views(beams), grid, params),
               std::invalid_argument);
}

TEST(Coincidence, RejectsMoreThan64Beams) {
  const DmGrid grid = unit_grid();
  std::vector<ObservationData> beams(65);
  for (int b = 0; b < 65; ++b) beams[b].id = beam_id(b);
  EXPECT_THROW(coincidence_reject(views(beams), grid), std::invalid_argument);
}

// --- archive-level wrapper ---------------------------------------------------

struct TempDir {
  fs::path path;
  TempDir() {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("drapid_coinc_") + info->test_suite_name() + "_" +
            info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

TEST(ServeCoincidence, RejectsAcrossArchivedBeams) {
  TempDir dir;
  serve::CandidateArchive archive(dir.str());
  const DmGrid grid = unit_grid();
  const std::vector<ObservationId> beams = {beam_id(0), beam_id(1),
                                            beam_id(2)};
  for (int b = 0; b < 3; ++b) {
    archive.append(beams[b], event_at(50.0, 10.0));  // sidelobe RFI
    archive.append(beams[b], event_at(20.0 + 50.0 * b, 60.0));  // unique
  }
  archive.seal();
  const serve::MultiBeamFilterResult result =
      serve::reject_multibeam_rfi(archive, beams, grid);
  EXPECT_EQ(result.num_candidates, 6u);
  EXPECT_EQ(result.num_rejected, 3u);
  ASSERT_EQ(result.kept.size(), 3u);
  for (int b = 0; b < 3; ++b) {
    ASSERT_EQ(result.kept[b].size(), 1u) << "beam " << b;
    EXPECT_EQ(result.kept[b][0].event.dm, 20.0 + 50.0 * b);
  }
}

// --- end-to-end on a simulated multi-beam pointing --------------------------

TEST(MultiBeamCoincidence, SharedRfiRejectedPulsesSurvive) {
  SurveyConfig cfg = SurveyConfig::ska_mid();
  SurveySimulator sim(cfg, 17);
  SyntheticSource src;
  src.name = "J1819-1458";
  src.type = SourceType::kRrat;
  src.dm = 180.0;
  src.width_ms = 10.0;
  src.median_snr = 25.0;
  src.snr_sigma = 0.1;
  src.emission_rate = 900.0;  // ~15 bursts/min
  ObservationId id;
  id.dataset = cfg.name;

  std::size_t pulse_events = 0, pulse_rejected = 0;
  std::size_t total_rejected = 0;
  for (int trial = 0; trial < 4; ++trial) {
    id.mjd = 56000.0 + trial;
    const MultiBeamObservation pointing =
        sim.simulate_multibeam(id, {src}, 7, /*shared_rfi_fraction=*/1.0);
    std::vector<const ObservationData*> beams;
    for (const SimulatedObservation& obs : pointing.beams) {
      beams.push_back(&obs.data);
    }
    const CoincidenceResult result =
        coincidence_reject(beams, *cfg.grid);
    total_rejected += result.num_rejected;

    // Events the sweep attributed to the injected RRAT live in beam 0 near
    // its true DM; count how many the spatial filter wrongly flags.
    const SimulatedObservation& on_source = pointing.beams[0];
    for (std::size_t i = 0; i < on_source.data.events.size(); ++i) {
      const SinglePulseEvent& e = on_source.data.events[i];
      bool from_pulse = false;
      for (const GroundTruthPulse& gt : on_source.truth) {
        if (std::abs(e.dm - gt.dm) < 10.0 &&
            std::abs(e.time_s - gt.time_s) < 0.5) {
          from_pulse = true;
          break;
        }
      }
      if (!from_pulse) continue;
      ++pulse_events;
      pulse_rejected += result.rejected[0][i] != 0;
    }
  }
  ASSERT_GT(pulse_events, 0u);
  // The filter catches shared interference without eating the pulsar.
  EXPECT_GT(total_rejected, 0u);
  const double pulse_survival =
      1.0 - static_cast<double>(pulse_rejected) /
                static_cast<double>(pulse_events);
  EXPECT_GE(pulse_survival, 0.9) << pulse_rejected << " of " << pulse_events
                                 << " pulse events rejected";
}

}  // namespace
}  // namespace drapid
