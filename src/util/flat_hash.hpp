// Open-addressing hash containers for the shuffle/aggregation hot path.
//
// The dataflow transformations build one hash table per partition per stage
// (aggregate_by_key's combine and merge, the join's build side), so table
// construction cost is on the critical path of every shuffle. std::unordered_map
// pays a node allocation per key and chases a pointer per probe;
// FlatHashMap stores entries contiguously in insertion order and resolves
// keys through a power-of-two open-addressing index of 32-bit entry
// references:
//
//   * probing is linear from a stable_hash-derived slot, so lookups touch
//     one cache line of the index in the common case;
//   * the index holds entry-index+1 values (0 = empty) instead of
//     pointers — half the size of a pointer table and rebuildable in place;
//   * there is no erase and therefore no tombstones: the per-partition
//     tables are build-then-drain, so deletion support would only slow the
//     probe loop down. Growth rebuilds the index from the dense entries
//     (the entries themselves never move on rehash — only the index does).
//
// Determinism: iteration order is first-encounter order of the keys, a pure
// function of the input sequence — independent of hash quality, capacity,
// growth history, and platform. That is what lets the RDD layer swap this in
// for std::unordered_map without perturbing results across thread counts.
//
// FlatHashMultiMap layers duplicate-key support on top via per-key intrusive
// chains (head/tail entry references), preserving insertion order within a
// key — the property the join needs to emit matches deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace drapid {

// --- Stable hashing (independent of std::hash, for reproducible layouts) ----

inline std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t stable_hash(const std::string& key) {
  return fnv1a64(key.data(), key.size());
}

template <typename T>
  requires std::is_integral_v<T>
std::uint64_t stable_hash(T key) {
  auto x = static_cast<std::uint64_t>(key);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Functor over the stable_hash overload set (default hash for the tables).
struct StableHash {
  template <typename K>
  std::uint64_t operator()(const K& key) const {
    return stable_hash(key);
  }
};

/// Insertion-ordered open-addressing map. See file header for the design;
/// grows at 7/8 load factor, no erase, iteration = first-encounter order.
template <typename K, typename V, typename Hash = StableHash>
class FlatHashMap {
 public:
  using Entry = std::pair<K, V>;

  FlatHashMap() = default;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Pre-sizes both the entry store and the index for `n` keys so the build
  /// loop neither reallocates entries nor rehashes the index.
  void reserve(std::size_t n) {
    entries_.reserve(n);
    // Smallest power of two keeping n keys under 7/8 load.
    std::size_t cap = kMinCapacity;
    while (n + n / 7 >= cap - cap / 8) cap <<= 1;
    if (cap > index_.size()) rebuild_index(cap);
  }

  /// Inserts `key` with a value constructed from `args` unless present.
  /// Returns the entry and whether it was inserted. The returned pointer is
  /// invalidated by the next insertion (the entry store is a vector).
  template <typename... Args>
  std::pair<Entry*, bool> try_emplace(const K& key, Args&&... args) {
    if (entries_.size() + 1 > index_.size() - index_.size() / 8) {
      rebuild_index(index_.empty() ? kMinCapacity : index_.size() * 2);
    }
    std::size_t slot = hash_(key) & mask_;
    while (true) {
      const std::uint32_t ref = index_[slot];
      if (ref == 0) {
        entries_.emplace_back(std::piecewise_construct,
                              std::forward_as_tuple(key),
                              std::forward_as_tuple(std::forward<Args>(args)...));
        index_[slot] = static_cast<std::uint32_t>(entries_.size());
        return {&entries_.back(), true};
      }
      if (entries_[ref - 1].first == key) return {&entries_[ref - 1], false};
      slot = (slot + 1) & mask_;
    }
  }

  /// Value for `key`, or nullptr. Never allocates.
  V* find(const K& key) {
    if (index_.empty()) return nullptr;
    std::size_t slot = hash_(key) & mask_;
    while (true) {
      const std::uint32_t ref = index_[slot];
      if (ref == 0) return nullptr;
      if (entries_[ref - 1].first == key) return &entries_[ref - 1].second;
      slot = (slot + 1) & mask_;
    }
  }
  const V* find(const K& key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Moves the dense entry store out (first-encounter order) — the drain
  /// step of the build-then-drain pattern. The map is empty afterwards.
  std::vector<Entry> take_entries() {
    index_.clear();
    mask_ = 0;
    return std::move(entries_);
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void rebuild_index(std::size_t capacity) {
    index_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t slot = hash_(entries_[i].first) & mask_;
      while (index_[slot] != 0) slot = (slot + 1) & mask_;
      index_[slot] = static_cast<std::uint32_t>(i + 1);
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> index_;  // entry index + 1; 0 = empty
  std::size_t mask_ = 0;
  [[no_unique_address]] Hash hash_;
};

/// Duplicate-key companion: values for one key form an intrusive chain in
/// insertion order. Built once, probed many times (the join build side).
template <typename K, typename V, typename Hash = StableHash>
class FlatHashMultiMap {
 public:
  void reserve(std::size_t n) {
    heads_.reserve(n);
    nodes_.reserve(n);
  }

  std::size_t size() const { return nodes_.size(); }

  void emplace(const K& key, V value) {
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{std::move(value), kEnd});
    auto [entry, inserted] = heads_.try_emplace(key, Chain{idx, idx});
    if (!inserted) {
      nodes_[entry->second.tail].next = idx;
      entry->second.tail = idx;
    }
  }

  /// Calls fn(value) for every value of `key` in insertion order; returns
  /// whether the key was present.
  template <typename Fn>
  bool for_each(const K& key, Fn&& fn) const {
    const Chain* chain = heads_.find(key);
    if (chain == nullptr) return false;
    for (std::uint32_t i = chain->head; i != kEnd; i = nodes_[i].next) {
      fn(nodes_[i].value);
    }
    return true;
  }

 private:
  static constexpr std::uint32_t kEnd = static_cast<std::uint32_t>(-1);
  struct Chain {
    std::uint32_t head;
    std::uint32_t tail;
  };
  struct Node {
    V value;
    std::uint32_t next;
  };

  FlatHashMap<K, Chain, Hash> heads_;
  std::vector<Node> nodes_;
};

}  // namespace drapid
