// Microbenchmarks for the identification path: linear regression, Equation 1,
// Algorithm 1 over realistic cluster sizes, feature extraction, and the
// customized DBSCAN.
#include <benchmark/benchmark.h>

#include "micro_support.hpp"

#include "clustering/dbscan.hpp"
#include "rapid/features.hpp"
#include "rapid/search.hpp"
#include "synth/dispersion.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace drapid {
namespace {

std::vector<SinglePulseEvent> synthetic_cluster(std::size_t size,
                                                std::uint64_t seed) {
  Rng rng(seed);
  const double dm0 = 50.0;
  const double peak = 20.0;
  const double width = 5.0;
  const double half = dm_width_at_level(0.25, width, 350.0, 100.0);
  const double step = 2.5 * half / static_cast<double>(size);
  std::vector<SinglePulseEvent> events;
  for (double dm = dm0 - 1.2 * half; events.size() < size; dm += step) {
    SinglePulseEvent e;
    e.dm = dm;
    e.snr = std::max(5.0, peak * snr_degradation(dm - dm0, width, 350.0,
                                                 100.0) +
                              rng.normal(0.0, 0.3));
    e.time_s = 1.0 + rng.normal(0.0, 1e-3);
    events.push_back(e);
  }
  return events;
}

void BM_LinearRegression(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear_regression(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LinearRegression)->Arg(8)->Arg(64)->Arg(1024);

void BM_ComputeBinSize(benchmark::State& state) {
  RapidParams params;
  std::size_t n = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_bin_size(n, params));
    n = (n * 7 + 3) % 5000 + 1;
  }
}
BENCHMARK(BM_ComputeBinSize);

void BM_RapidSearch(benchmark::State& state) {
  const auto events =
      synthetic_cluster(static_cast<std::size_t>(state.range(0)), 3);
  RapidParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rapid_search(events, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RapidSearch)->Arg(19)->Arg(100)->Arg(500)->Arg(3500);

void BM_ExtractFeatures(benchmark::State& state) {
  const auto events =
      synthetic_cluster(static_cast<std::size_t>(state.range(0)), 5);
  const auto pulses = rapid_search(events, {});
  if (pulses.empty()) {
    state.SkipWithError("no pulse found");
    return;
  }
  ClusterRecord cluster;
  cluster.rank = 1;
  cluster.num_spes = static_cast<std::uint32_t>(events.size());
  const DmGrid grid = DmGrid::gbt350drift();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extract_features(events, pulses[0], cluster, grid, 1));
  }
}
BENCHMARK(BM_ExtractFeatures)->Arg(100)->Arg(1000);

void BM_Dbscan(benchmark::State& state) {
  Rng rng(7);
  ObservationData obs;
  obs.id.dataset = "BM";
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    SinglePulseEvent e;
    e.dm = rng.uniform(0.0, 500.0);
    e.snr = 5.0 + rng.exponential(1.0);
    e.time_s = rng.uniform(0.0, 120.0);
    obs.events.push_back(e);
  }
  const DmGrid grid = DmGrid::gbt350drift();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbscan_cluster(obs, grid, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Dbscan)->Arg(1000)->Arg(10000);

void BM_SnrDegradation(benchmark::State& state) {
  double err = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snr_degradation(err, 5.0, 1400.0, 300.0));
    err += 0.01;
    if (err > 50.0) err = 0.0;
  }
}
BENCHMARK(BM_SnrDegradation);

}  // namespace
}  // namespace drapid

DRAPID_MICRO_MAIN("bench_micro_rapid",
                  "Micro-benchmarks for the RAPID single-pulse search path: DBSCAN, peak search, feature extraction.")
