// Integration tests spanning every subsystem: survey simulation through
// D-RAPID search through ALM classification, plus failure injection on the
// file formats the driver consumes.
#include <gtest/gtest.h>

#include <sstream>

#include "drapid/pipeline.hpp"
#include "exp/trial_runner.hpp"
#include "ml/random_forest.hpp"

namespace drapid {
namespace {

EngineConfig small_engine() {
  EngineConfig cfg;
  cfg.num_executors = 3;
  cfg.worker_threads = 2;
  cfg.partitions_per_core = 2;
  return cfg;
}

TEST(Integration, SurveyToClassificationRoundTrip) {
  // Stages 1-3: simulate, cluster, search — via the distributed driver.
  Engine engine(small_engine());
  BlockStore store(15);
  PipelineConfig pipeline;
  pipeline.survey = SurveyConfig::gbt350drift();
  pipeline.survey.obs_length_s = 50.0;
  pipeline.num_observations = 6;
  pipeline.visibility = 0.12;
  pipeline.seed = 404;
  const auto run = run_full_pipeline(engine, store, pipeline);
  ASSERT_GT(run.result.records.size(), 50u);

  // Stage 4: train on the driver's own labeled output.
  std::vector<LabeledPulse> pulses;
  for (const auto& rec : run.result.records) {
    LabeledPulse lp;
    lp.features = rec.features;
    lp.is_pulsar = !rec.truth_label.empty();
    lp.is_rrat = rec.truth_label == "rrat";
    pulses.push_back(lp);
  }
  std::size_t positives = 0;
  for (const auto& p : pulses) positives += p.is_pulsar;
  if (positives < 30) GTEST_SKIP() << "seed produced too few positives";

  TrialSpec spec;
  spec.scheme = ml::AlmScheme::kBinary;
  spec.learner = ml::LearnerType::kRandomForest;
  const auto result = run_trial(pulses, spec);
  EXPECT_GT(result.recall, 0.5);
  EXPECT_GT(result.f_measure, 0.5);
}

TEST(Integration, MlFileOnStoreParsesBackToSameRecords) {
  Engine engine(small_engine());
  BlockStore store(15);
  PipelineConfig pipeline;
  pipeline.survey = SurveyConfig::gbt350drift();
  pipeline.survey.obs_length_s = 40.0;
  pipeline.num_observations = 3;
  pipeline.seed = 11;
  const auto run = run_full_pipeline(engine, store, pipeline);
  std::istringstream in(store.get("GBT350Drift.ml.csv"));
  const auto parsed = read_ml_file(in);
  ASSERT_EQ(parsed.size(), run.result.records.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].obs, run.result.records[i].obs);
    EXPECT_EQ(parsed[i].cluster_id, run.result.records[i].cluster_id);
    EXPECT_DOUBLE_EQ(parsed[i].features[kSnrMax],
                     run.result.records[i].features[kSnrMax]);
  }
}

TEST(Integration, DriverRejectsMalformedDataFile) {
  Engine engine(small_engine());
  BlockStore store(4);
  store.put("bad.csv", "header\nnot,enough,fields\n");
  store.put("clusters.csv", std::string(kClusterFileHeader) + "\n");
  const DmGrid grid = DmGrid::gbt350drift();
  EXPECT_THROW(
      run_drapid(engine, store, "bad.csv", "clusters.csv", "", grid, {}),
      std::runtime_error);
}

TEST(Integration, DriverRejectsMissingInputFile) {
  Engine engine(small_engine());
  BlockStore store(4);
  const DmGrid grid = DmGrid::gbt350drift();
  EXPECT_THROW(run_drapid(engine, store, "absent.csv", "also-absent.csv", "",
                          grid, {}),
               std::runtime_error);
}

TEST(Integration, DriverRejectsCorruptNumericField) {
  Engine engine(small_engine());
  BlockStore store(4);
  store.put("d.csv", std::string(kDataFileHeader) +
                         "\nGBT,56000,1,2,0,abc,6.0,1.0,100,2\n");
  store.put("c.csv",
            std::string(kClusterFileHeader) +
                "\nGBT,56000,1,2,0,0,3,10,11,0.9,1.1,8.0,1\n");
  const DmGrid grid = DmGrid::gbt350drift();
  EXPECT_THROW(run_drapid(engine, store, "d.csv", "c.csv", "", grid, {}),
               std::runtime_error);
}

TEST(Integration, EmptyInputsProduceEmptyOutput) {
  Engine engine(small_engine());
  BlockStore store(4);
  store.put("d.csv", std::string(kDataFileHeader) + "\n");
  store.put("c.csv", std::string(kClusterFileHeader) + "\n");
  const DmGrid grid = DmGrid::gbt350drift();
  const auto result =
      run_drapid(engine, store, "d.csv", "c.csv", "out.csv", grid, {});
  EXPECT_TRUE(result.records.empty());
  EXPECT_TRUE(store.exists("out.csv"));
}

TEST(Integration, ClustersWithoutDataAreHandled) {
  // Left outer join semantics: a cluster whose observation has no SPE rows
  // yields null and is skipped by the search.
  Engine engine(small_engine());
  BlockStore store(4);
  store.put("d.csv", std::string(kDataFileHeader) + "\n");
  ClusterRecord rec;
  rec.obs.dataset = "X";
  rec.cluster_id = 1;
  rec.num_spes = 5;
  std::ostringstream clusters;
  write_cluster_file(clusters, {rec});
  store.put("c.csv", clusters.str());
  const DmGrid grid = DmGrid::gbt350drift();
  const auto result = run_drapid(engine, store, "d.csv", "c.csv", "", grid, {});
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.clusters_searched, 1u);
}

TEST(Integration, ParallelForestMatchesSerialForest) {
  // The future-work extension: tree-parallel training must be bit-identical
  // to serial training.
  Engine engine(small_engine());
  BlockStore store(15);
  PipelineConfig pipeline;
  pipeline.survey = SurveyConfig::gbt350drift();
  pipeline.survey.obs_length_s = 40.0;
  pipeline.num_observations = 4;
  pipeline.visibility = 0.12;
  pipeline.seed = 77;
  const auto run = run_full_pipeline(engine, store, pipeline);
  std::vector<LabeledPulse> pulses;
  for (const auto& rec : run.result.records) {
    LabeledPulse lp;
    lp.features = rec.features;
    lp.is_pulsar = !rec.truth_label.empty();
    pulses.push_back(lp);
  }
  const auto data = make_alm_dataset(pulses, ml::AlmScheme::kBinary);
  ml::ForestParams serial;
  serial.num_trees = 8;
  ml::ForestParams parallel = serial;
  parallel.training_threads = 4;
  ml::RandomForest a(serial, 5), b(parallel, 5);
  a.train(data);
  b.train(data);
  EXPECT_EQ(a.total_nodes(), b.total_nodes());
  for (std::size_t i = 0; i < data.num_instances(); i += 7) {
    ASSERT_EQ(a.predict(data.instance(i)), b.predict(data.instance(i)));
  }
}

}  // namespace
}  // namespace drapid
