// Phases 2–3 of a single-pulse search (§3): dedispersion and matched-filter
// detection — the PRESTO `single_pulse_search.py` stand-in that produces
// the SPE lists the rest of the pipeline consumes.
//
// Dedispersion shifts each filterbank channel by its dispersion delay at a
// trial DM and sums across channels. The summed series is normalized and
// convolved with boxcars of increasing width (matched filtering for pulses
// wider than one sample); every local maximum above the S/N threshold
// becomes a SinglePulseEvent at that trial DM.
#pragma once

#include <cstddef>
#include <vector>

#include "dedisp/filterbank.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe.hpp"

namespace drapid {

/// Dedisperses at one trial DM: per-channel integer-sample shifts relative
/// to the highest-frequency channel, summed. The result has num_samples()
/// entries; trailing samples where channels ran out of data are summed over
/// fewer channels (and normalized accordingly by the caller via detection).
std::vector<double> dedisperse(const Filterbank& fb, double dm);

struct SinglePulseSearchParams {
  double snr_threshold = 5.0;
  /// Boxcar widths in samples (PRESTO's downfacts).
  std::vector<int> boxcar_widths = {1, 2, 4, 8, 16, 32};
  /// Trial stride over the grid (1 = every trial; larger = faster scans).
  std::size_t dm_stride = 1;
};

/// Matched-filter detection on one dedispersed series: the series is
/// standardized (median/robust sigma), each boxcar width is scanned, and
/// local maxima above threshold are reported with the best width. Events
/// closer than the detecting boxcar width are merged (highest S/N wins).
std::vector<SinglePulseEvent> detect_events(
    const std::vector<double>& series, double dm, double sample_time_ms,
    const SinglePulseSearchParams& params);

/// The full phase-2+3 search: dedisperse at every (strided) grid trial and
/// collect events. Output is sorted by (dm, time) like the survey
/// simulator's SPE lists, ready for DBSCAN + RAPID.
std::vector<SinglePulseEvent> single_pulse_search(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params = {});

}  // namespace drapid
