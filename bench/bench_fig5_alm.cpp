// Figure 5 (RQ3, RQ5): classification and execution performance of the six
// Table 5 learners under the ALM labeling schemes of Table 3, on both
// survey benchmarks.
//
//   (a) Recall and F-Measure boxplots per scheme (collapsed to
//       pulsar/non-pulsar for cross-scheme comparability, §5.2.4);
//   (b) training-time boxplots per scheme.
//
// Scale note: the paper used 100k-negative benchmarks and 3,600 trials;
// defaults here use smaller benchmarks and the 600-trial no-FS slice
// (5 schemes × 6 learners × 5 folds × 2 datasets, + SMOTE with --smote).
// Grow with --positives/--negatives.
#include <iostream>
#include <map>

#include "exp/trial_runner.hpp"
#include "obs/bench.hpp"
#include "util/text_table.hpp"

using namespace drapid;

namespace {

std::vector<LabeledPulse> build(const std::string& name,
                                const SurveyConfig& survey,
                                std::size_t positives, std::size_t negatives,
                                std::uint64_t seed) {
  BenchmarkConfig cfg;
  cfg.survey = survey;
  cfg.survey.obs_length_s = 70.0;
  cfg.target_positives = positives;
  cfg.target_negatives = negatives;
  cfg.visibility = 0.10;
  cfg.seed = seed;
  std::cerr << "building " << name << " benchmark (" << positives << "+"
            << negatives << ")...\n";
  return build_benchmark_pulses(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchOptions bench(
      "bench_fig5_alm", argc, argv,
      {{"positives", "250"}, {"negatives", "1500"}, {"smote", "false"}},
      "Figure 5: recall/F-measure/training-time of learners x ALM schemes.");
  if (bench.help()) return 0;
  const Options& opts = bench.opts();
  std::cout << "=== Figure 5: ALM schemes x learners ===\n";

  const auto seed = static_cast<std::uint64_t>(bench.seed());
  const auto positives =
      static_cast<std::size_t>(bench.scaled(opts.integer("positives")));
  const auto negatives =
      static_cast<std::size_t>(bench.scaled(opts.integer("negatives")));
  std::map<std::string, std::vector<LabeledPulse>> datasets;
  datasets["GBT350Drift"] = build("GBT350Drift", SurveyConfig::gbt350drift(),
                                  positives, negatives, seed);
  datasets["PALFA"] =
      build("PALFA", SurveyConfig::palfa(), positives, negatives, seed + 1);

  for (const auto& [dataset_name, pulses] : datasets) {
    std::size_t pos = 0;
    for (const auto& p : pulses) pos += p.is_pulsar;
    std::cout << "\n--- data set: " << dataset_name << " (" << pos
              << " positives, " << pulses.size() - pos << " negatives) ---\n";
    for (ml::AlmScheme scheme : ml::all_alm_schemes()) {
      std::vector<BoxplotRow> recall_rows, f_rows, time_rows;
      for (ml::LearnerType learner : ml::all_learner_types()) {
        TrialSpec spec;
        spec.scheme = scheme;
        spec.learner = learner;
        spec.smote = opts.flag("smote");
        spec.seed = seed;
        const TrialResult r = run_trial(pulses, spec);
        obs::Json row = obs::Json::object();
        row.set("dataset", dataset_name);
        row.set("trial", spec.describe());
        row.set("recall", r.recall);
        row.set("f_measure", r.f_measure);
        row.set("train_seconds", r.train_seconds);
        row.set("test_seconds", r.test_seconds);
        row.set("transform_seconds", r.transform_seconds);
        bench.report().add_result(std::move(row));
        recall_rows.push_back(
            {ml::learner_name(learner), summarize(r.fold_recalls)});
        f_rows.push_back(
            {ml::learner_name(learner), summarize(r.fold_f_measures)});
        time_rows.push_back(
            {ml::learner_name(learner), summarize(r.fold_train_seconds)});
      }
      const std::string panel =
          dataset_name + " scheme " + ml::alm_scheme_name(scheme);
      std::cout << '\n'
                << render_boxplots("Fig5a Recall   | " + panel, recall_rows)
                << render_boxplots("Fig5a F-Measure| " + panel, f_rows)
                << render_boxplots("Fig5b train(s) | " + panel, time_rows);
    }
  }
  std::cout << "\n(paper: scheme 4* poorest; ALM schemes within ~2% of "
               "binary Recall/F for most learners; RF best overall; J48/PART "
               "fastest; SMO training inflates with class count)\n";
  bench.finish();
  return 0;
}
