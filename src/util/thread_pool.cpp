#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace drapid {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, thread_count() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace drapid
