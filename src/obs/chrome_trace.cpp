#include "obs/chrome_trace.hpp"

#include <fstream>
#include <map>
#include <stdexcept>

namespace drapid {
namespace obs {

Json chrome_trace_json(const std::vector<TraceEvent>& events) {
  Json trace_events = Json::array();
  for (const TraceEvent& e : events) {
    Json row = Json::object();
    row.set("ph", std::string(1, static_cast<char>(e.phase)));
    if (!e.name.empty()) row.set("name", e.name);
    if (!e.category.empty()) row.set("cat", e.category);
    row.set("ts", static_cast<double>(e.ts_ns) / 1000.0);
    row.set("pid", 1);
    row.set("tid", static_cast<std::int64_t>(e.tid));
    if (e.phase == TraceEvent::Phase::kInstant) row.set("s", "t");
    if (!e.args.is_null()) row.set("args", e.args);
    trace_events.push_back(std::move(row));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open trace output file: " + path);
  }
  out << chrome_trace_json(events).dump(1) << '\n';
  if (!out) {
    throw std::runtime_error("failed writing trace output file: " + path);
  }
}

std::string validate_chrome_trace(const Json& trace) {
  const Json* events = trace.find("traceEvents");
  if (!events) return "missing traceEvents";
  if (!events->is_array()) return "traceEvents is not an array";

  struct Frame {
    std::string name;
    double ts = 0.0;
  };
  std::map<std::int64_t, std::vector<Frame>> stacks;
  std::size_t index = 0;
  for (const Json& e : events->as_array()) {
    const std::string where = "event " + std::to_string(index++);
    if (!e.is_object()) return where + ": not an object";
    const Json* ph = e.find("ph");
    if (!ph || !ph->is_string() || ph->as_string().size() != 1) {
      return where + ": missing or malformed ph";
    }
    const Json* ts = e.find("ts");
    if (!ts || !ts->is_number()) return where + ": missing ts";
    const Json* tid = e.find("tid");
    if (!tid || !tid->is_number()) return where + ": missing tid";
    auto& stack = stacks[tid->as_int()];

    switch (ph->as_string()[0]) {
      case 'B': {
        const Json* name = e.find("name");
        if (!name || !name->is_string()) return where + ": B without name";
        if (!stack.empty() && ts->as_double() < stack.back().ts) {
          return where + ": B timestamp precedes enclosing span \"" +
                 stack.back().name + "\"";
        }
        stack.push_back({name->as_string(), ts->as_double()});
        break;
      }
      case 'E': {
        if (stack.empty()) {
          return where + ": E with no open span on tid " +
                 std::to_string(tid->as_int());
        }
        if (ts->as_double() < stack.back().ts) {
          return where + ": E before its B (\"" + stack.back().name + "\")";
        }
        stack.pop_back();
        break;
      }
      case 'i':
        break;
      default:
        return where + ": unknown phase '" + ph->as_string() + "'";
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) {
      return "tid " + std::to_string(tid) + ": " +
             std::to_string(stack.size()) + " unclosed span(s), innermost \"" +
             stack.back().name + "\"";
    }
  }
  return "";
}

}  // namespace obs
}  // namespace drapid
