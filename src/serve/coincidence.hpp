// Archive-level multi-beam coincidence rejection.
//
// The survey service ingests each beam of a multi-beam pointing as its own
// observation. This wrapper pulls one pointing's beams back out of the
// candidate archive, runs the spatial coincidence filter over them
// (clustering/coincidence.hpp), and returns the per-beam survivors — the
// candidate lists downstream clustering and classification should consume.
// Emits a `serve.coincidence` span plus `serve.coincidence_rejected` /
// `serve.coincidence_kept` counters.
#pragma once

#include <cstddef>
#include <vector>

#include "clustering/coincidence.hpp"
#include "serve/archive.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe.hpp"

namespace drapid {
namespace serve {

struct MultiBeamFilterResult {
  /// kept[b]: beam b's candidates with coincident interference removed,
  /// in the archive's canonical order.
  std::vector<std::vector<CandidateRecord>> kept;
  std::size_t num_candidates = 0;
  std::size_t num_rejected = 0;
};

/// Queries each beam id's candidates and rejects detections coincident in
/// >= params.min_beams beams. Beams must all be ingested (and sealed)
/// before calling; at most 64 beams per pointing.
MultiBeamFilterResult reject_multibeam_rfi(
    const CandidateArchive& archive, const std::vector<ObservationId>& beams,
    const DmGrid& grid, const CoincidenceParams& params = {});

}  // namespace serve
}  // namespace drapid
