#include "spe/dm_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace drapid {
namespace {

TEST(DmGrid, RejectsMalformedPlans) {
  EXPECT_THROW(DmGrid({}), std::invalid_argument);
  EXPECT_THROW(DmGrid({{0.0, 10.0, -0.1}}), std::invalid_argument);
  EXPECT_THROW(DmGrid({{0.0, 10.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(DmGrid({{10.0, 5.0, 0.1}}), std::invalid_argument);
  // Gap between segments.
  EXPECT_THROW(DmGrid({{0.0, 10.0, 0.1}, {20.0, 30.0, 0.1}}),
               std::invalid_argument);
}

TEST(DmGrid, TrialsAreStrictlyIncreasing) {
  const DmGrid grid = DmGrid::gbt350drift();
  for (std::size_t i = 1; i < grid.size(); ++i) {
    ASSERT_LT(grid.dm_at(i - 1), grid.dm_at(i)) << "at index " << i;
  }
}

TEST(DmGrid, IndexOfFindsNearestTrial) {
  const DmGrid grid({{0.0, 1.0, 0.1}});
  EXPECT_EQ(grid.index_of(0.0), 0u);
  EXPECT_EQ(grid.index_of(0.34), 3u);
  EXPECT_EQ(grid.index_of(0.36), 4u);
  // Clamped at the ends.
  EXPECT_EQ(grid.index_of(-5.0), 0u);
  EXPECT_EQ(grid.index_of(99.0), grid.size() - 1);
}

TEST(DmGrid, SpacingMatchesPaperEnvelope) {
  // §5.1.3: "increases from 0.01 for low DM values to 2.00 for very high DM".
  for (const DmGrid& grid : {DmGrid::gbt350drift(), DmGrid::palfa()}) {
    EXPECT_DOUBLE_EQ(grid.spacing_at(1.0), 0.01);
    EXPECT_DOUBLE_EQ(grid.spacing_at(grid.max_dm()), 2.00);
  }
}

TEST(DmGrid, SpacingIsMonotoneNonDecreasingInDm) {
  const DmGrid grid = DmGrid::palfa();
  double prev = 0.0;
  for (double dm = 0.0; dm < grid.max_dm(); dm += 10.0) {
    const double s = grid.spacing_at(dm);
    ASSERT_GE(s, prev);
    prev = s;
  }
}

TEST(DmGrid, IndexAndDmAtAreConsistent) {
  const DmGrid grid = DmGrid::gbt350drift();
  for (std::size_t i = 0; i < grid.size(); i += 97) {
    EXPECT_EQ(grid.index_of(grid.dm_at(i)), i);
  }
}

TEST(DmGrid, SurveysCoverExpectedRanges) {
  const DmGrid gbt = DmGrid::gbt350drift();
  EXPECT_DOUBLE_EQ(gbt.min_dm(), 0.0);
  EXPECT_GT(gbt.max_dm(), 900.0);
  const DmGrid palfa = DmGrid::palfa();
  EXPECT_GT(palfa.max_dm(), 2000.0);
  EXPECT_GT(palfa.size(), 5000u);
}

TEST(DmGridPrefix, IsExactTrialPrefix) {
  const DmGrid grid = DmGrid::gbt350drift();
  const DmGrid cut = grid.prefix(150.0);
  ASSERT_LT(cut.size(), grid.size());
  for (std::size_t i = 0; i < cut.size(); ++i) {
    ASSERT_EQ(cut.dm_at(i), grid.dm_at(i)) << "trial " << i;
  }
  EXPECT_LT(cut.max_dm(), 150.0);
  // The next trial of the full grid is at/above the clip edge.
  EXPECT_GE(grid.dm_at(cut.size()), 150.0);
}

TEST(DmGridPrefix, KeepsTrialLandingExactlyOnClipEdge) {
  // The off-by-one this pins: when dm_end sits exactly on (or within one
  // ulp above) a trial value, re-deriving the count from segment arithmetic
  // with a 1e-9 slack dropped that last trial. The prefix must be resolved
  // against the materialized trials: every trial strictly below dm_end
  // survives, including one exactly 1 ulp below.
  const DmGrid grid({{0.0, 10.0, 0.1}});
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double edge = grid.dm_at(i);
    const DmGrid at_edge = grid.prefix(edge);
    ASSERT_EQ(at_edge.size(), i) << "edge on trial " << i;
    ASSERT_EQ(at_edge.max_dm(), grid.dm_at(i - 1));
    const DmGrid just_above =
        grid.prefix(std::nextafter(edge, std::numeric_limits<double>::max()));
    ASSERT_EQ(just_above.size(), i + 1) << "edge 1 ulp above trial " << i;
    ASSERT_EQ(just_above.max_dm(), edge);
  }
}

TEST(DmGridPrefix, SurveyPlanEdgesKeepEveryTrialBelowTheClip) {
  // The same pin over the real survey plans, where accumulated floating
  // point (begin + i*step across many segments) makes the edge cases live.
  for (const DmGrid& grid : {DmGrid::gbt350drift(), DmGrid::palfa()}) {
    for (std::size_t i = 1; i < grid.size(); i += 137) {
      const double edge =
          std::nextafter(grid.dm_at(i), std::numeric_limits<double>::max());
      const DmGrid cut = grid.prefix(edge);
      ASSERT_EQ(cut.size(), i + 1) << "edge above trial " << i;
      ASSERT_EQ(cut.max_dm(), grid.dm_at(i));
    }
  }
}

TEST(DmGridPrefix, ClippedPlanSegmentsStayConsistent) {
  const DmGrid grid = DmGrid::palfa();
  const DmGrid cut = grid.prefix(500.0);
  // spacing_at keeps working on the clipped plan, and matches the parent.
  for (double dm : {0.5, 50.0, 250.0, cut.max_dm()}) {
    EXPECT_DOUBLE_EQ(cut.spacing_at(dm), grid.spacing_at(dm)) << dm;
  }
  EXPECT_LE(cut.plan().back().dm_end, 500.0);
}

TEST(DmGridPrefix, EmptyPrefixThrows) {
  const DmGrid grid({{1.0, 2.0, 0.1}});
  EXPECT_THROW(grid.prefix(1.0), std::invalid_argument);
  EXPECT_THROW(grid.prefix(0.5), std::invalid_argument);
}

class DmGridRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DmGridRoundTrip, NearestTrialWithinLocalSpacing) {
  const DmGrid grid = DmGrid::palfa();
  const double dm = GetParam();
  const double nearest = grid.dm_at(grid.index_of(dm));
  EXPECT_LE(std::abs(nearest - dm), grid.spacing_at(dm) / 2 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dms, DmGridRoundTrip,
                         ::testing::Values(0.5, 3.17, 24.99, 57.3, 119.9,
                                           200.0, 333.3, 599.0, 765.4,
                                           1500.0, 2399.0));

}  // namespace
}  // namespace drapid
