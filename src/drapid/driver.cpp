#include "drapid/driver.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <sstream>

#include "dataflow/rdd.hpp"
#include "dataflow/spill.hpp"
#include "obs/trace.hpp"
#include "spe/spe_io.hpp"
#include "util/stopwatch.hpp"

namespace drapid {

namespace {

using StringRdd = Rdd<std::string, std::string>;

/// Splits a CSV data/cluster row into the observation-descriptor key (the
/// first five fields, verbatim) and the per-record remainder — the KVP
/// mapping of Figure 3's "Map to KVPRDD" phase.
std::pair<std::string, std::string> split_key_value(const std::string& line) {
  std::size_t pos = 0;
  int commas = 0;
  for (; pos < line.size(); ++pos) {
    if (line[pos] == ',' && ++commas == 5) break;
  }
  if (commas < 5) {
    throw std::runtime_error("row with fewer than 6 fields: " + line);
  }
  return {line.substr(0, pos), line.substr(pos + 1)};
}

/// Pooled load kernel: the task input is the raw chunk text (partition 0
/// starts with the CSV header), the output the encoded key/value partition,
/// which stays resident in the worker. Metrics mirror the local load body.
std::string load_chunk_kernel(const PoolTaskCtx& ctx) {
  const std::string& chunk = *ctx.inputs.at(0);
  auto& task = *ctx.metrics;
  task.bytes_in = chunk.size();
  std::vector<std::pair<std::string, std::string>> records;
  std::istringstream in(chunk);
  std::string line;
  bool first_line_of_file = (ctx.partition == 0);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first_line_of_file) {
      first_line_of_file = false;  // drop the CSV header
      continue;
    }
    records.push_back(split_key_value(line));
    ++task.records_in;
  }
  task.compute_cost = task.records_in + task.bytes_in / 32;
  detail::record_output(task, records);
  return ipc::encode_payload(records);
}

/// Loads a keyed CSV file from the block store as one RDD partition per
/// block chunk (data locality granularity), stripping the header.
/// `stage_prefix` distinguishes lineage-recomputation reloads from the
/// original load in the recorded metrics.
StringRdd load_keyed_file(Engine& engine, BlockStore& store,
                          const std::string& name,
                          const std::string& stage_prefix = {}) {
  const auto chunks = store.line_chunks(name);
  StringRdd rdd;
  rdd.partitions.resize(chunks.size());
  auto& stage =
      engine.begin_stage(stage_prefix + "load:" + name, chunks.size());
  if (engine.pool_residency() != nullptr && !chunks.empty()) {
    // Ship the raw chunk text to the pool; the parsed partitions never
    // travel back — downstream stages consume them worker-resident.
    PoolStagePlan plan;
    plan.kernel = &load_chunk_kernel;
    plan.inputs = [&chunks](std::size_t task) {
      std::vector<PoolInputRef> refs(1);
      refs[0].inline_bytes = chunks[task];
      return refs;
    };
    engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
    rdd.resident = std::move(plan.out);
    return rdd;
  }
  engine.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t c = ctx.partition();
    auto& task = ctx.metrics();
    task.bytes_in = chunks[c].size();
    std::istringstream in(chunks[c]);
    std::string line;
    bool first_line_of_file = (c == 0);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (first_line_of_file) {
        first_line_of_file = false;  // drop the CSV header
        continue;
      }
      rdd.partitions[c].push_back(split_key_value(line));
      ++task.records_in;
    }
    // Parsing dominates the load stage: a per-record cost plus a per-byte
    // scan cost (the cluster cost model prices these as CPU work).
    task.compute_cost = task.records_in + task.bytes_in / 32;
    detail::record_output(task, rdd.partitions[c]);
  }, detail::vector_io(rdd.partitions));
  return rdd;
}

/// Joins per-key record lines into one blob ("Aggregate" phase of Figure 3).
StringRdd aggregate_lines(Engine& engine, const StringRdd& in,
                          const HashPartitioner& part,
                          const std::string& name) {
  return aggregate_by_key(
      engine, in, std::string{},
      [](std::string& agg, const std::string& line) {
        if (!agg.empty()) agg.push_back('\n');
        agg += line;
      },
      [](std::string& agg, std::string&& other) {
        if (other.empty()) return;
        if (!agg.empty()) agg.push_back('\n');
        agg += other;
      },
      part, name);
}

std::vector<std::string> split_lines(const std::string& blob) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= blob.size()) {
    const auto nl = blob.find('\n', start);
    if (nl == std::string::npos) {
      if (start < blob.size()) lines.push_back(blob.substr(start));
      break;
    }
    lines.push_back(blob.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Search phase: runs Algorithm 1 for every cluster against the SPEs
/// colocated with it by the join, emitting ML-file rows.
std::vector<std::pair<std::string, std::string>> search_key(
    const std::string& key, const std::vector<std::string>& cluster_lines,
    const std::string& spe_blob, const DmGrid& grid,
    const RapidParams& params, std::size_t& cost) {
  std::vector<std::pair<std::string, std::string>> out;
  // Parse and DM-sort the observation's SPEs once per *pair*. With key
  // aggregation on, that is once per observation; without it, every cluster
  // drags its own copy of the blob through this parse — the measured cost
  // of the duplicate-key join inflation the paper warns about.
  std::vector<SinglePulseEvent> events;
  ObservationId obs;
  for (const auto& line : split_lines(spe_blob)) {
    SinglePulseEvent spe;
    parse_data_row(parse_csv_line(key + ',' + line), obs, spe);
    events.push_back(spe);
  }
  cost += events.size() + spe_blob.size() / 32;
  std::sort(events.begin(), events.end(),
            [](const SinglePulseEvent& a, const SinglePulseEvent& b) {
              if (a.dm != b.dm) return a.dm < b.dm;
              return a.time_s < b.time_s;
            });

  for (const auto& cluster_line : cluster_lines) {
    const ClusterRecord rec =
        parse_cluster_row(parse_csv_line(key + ',' + cluster_line));
    // Select the SPEs inside the cluster's bounding box: binary-search the
    // DM range, filter the time range.
    const auto lo = std::lower_bound(
        events.begin(), events.end(), rec.dm_min - 1e-9,
        [](const SinglePulseEvent& e, double dm) { return e.dm < dm; });
    std::vector<SinglePulseEvent> selected;
    for (auto it = lo; it != events.end() && it->dm <= rec.dm_max + 1e-9;
         ++it) {
      if (it->time_s >= rec.time_min - 1e-9 &&
          it->time_s <= rec.time_max + 1e-9) {
        selected.push_back(*it);
      }
    }
    cost += rapid_search_cost(selected.size());
    const auto pulses = rapid_search(selected, params);
    // PulseRank: 1 = brightest peak of this cluster.
    std::vector<std::size_t> order(pulses.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return selected[pulses[a].peak].snr > selected[pulses[b].peak].snr;
    });
    std::vector<int> rank(pulses.size());
    for (std::size_t r = 0; r < order.size(); ++r) {
      rank[order[r]] = static_cast<int>(r + 1);
    }
    for (std::size_t p = 0; p < pulses.size(); ++p) {
      MlRecord ml;
      ml.obs = rec.obs;
      ml.cluster_id = rec.cluster_id;
      ml.pulse_index = static_cast<int>(p);
      ml.features = extract_features(selected, pulses[p], rec, grid, rank[p]);
      out.emplace_back(key, format_csv_row(format_ml_row(ml)));
    }
  }
  return out;
}

/// Pooled search kernel. The closure string carries RapidParams as raw bytes
/// followed by the encoded DM plan; the worker rebuilds the grid (DmGrid
/// construction from a plan is deterministic, so extracted features match
/// the driver's grid bit for bit). Shipping the plan by value — never a
/// pointer — keeps the kernel valid in workers forked before this grid
/// existed. Metrics mirror flat_map_metered's local body.
std::string search_stage_kernel(const PoolTaskCtx& ctx) {
  RapidParams params;
  std::memcpy(&params, ctx.closure->data(), sizeof(params));
  ipc::WireReader reader(ctx.closure->data() + sizeof(params),
                         ctx.closure->size() - sizeof(params));
  std::vector<DmPlanSegment> plan;
  ipc::decode_value(reader, plan);
  const DmGrid grid(std::move(plan));

  using JoinedPair =
      std::pair<std::string,
                std::pair<std::string, std::optional<std::string>>>;
  const auto part = ipc::decode_payload<JoinedPair>(*ctx.inputs.at(0));
  auto& task = *ctx.metrics;
  detail::record_input(task, part);
  task.compute_cost = 0;
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& kv : part) {
    std::size_t cost = 0;
    const auto& v = kv.second;
    if (v.second && !v.second->empty() && !v.first.empty()) {
      auto produced =
          search_key(kv.first, split_lines(v.first), *v.second, grid, params,
                     cost);
      for (auto& item : produced) out.push_back(std::move(item));
    }
    task.compute_cost += cost;
  }
  detail::record_output(task, out);
  return ipc::encode_payload(out);
}

}  // namespace

DrapidResult run_drapid(Engine& engine, BlockStore& store,
                        const std::string& data_file,
                        const std::string& cluster_file,
                        const std::string& output_file, const DmGrid& grid,
                        const DrapidConfig& config) {
  Stopwatch watch;
  engine.reset_metrics();
  DrapidResult result;

  // One span per Figure-3 phase, all nested under the driver span; the
  // per-stage/task spans the engine records nest inside whichever phase is
  // open. `phase` is an optional so each emplace closes the previous phase
  // before opening the next.
  obs::ScopedSpan run_span(engine.tracer(), "drapid", data_file, "driver");
  std::optional<obs::ScopedSpan> phase;

  // Apply the engine's fault plan to the storage layer: kill the planned
  // data nodes before any read, so block access exercises replica failover.
  for (const int node : engine.faults().dead_nodes(store.num_nodes())) {
    store.mark_node_dead(node);
  }

  const std::size_t num_partitions = config.num_partitions != 0
                                         ? config.num_partitions
                                         : engine.config().default_partitions();
  // The shared partitioner the join runs under. With copartitioning on,
  // every upstream stage lays data out with it, so the join is local; with
  // it off, upstream stages use an incompatible layout (different salt) and
  // the join must shuffle both sides again — the traffic the paper's
  // "uniform partitioning" eliminates.
  const HashPartitioner join_part{num_partitions};
  const HashPartitioner upstream_part =
      config.copartition ? join_part
                         : HashPartitioner{num_partitions, 0x5ca1ab1edeadbeefULL};

  // Stage 1 & 2: load and prepare the two input files.
  phase.emplace(engine.tracer(), "phase", "load", "driver");
  StringRdd data_kvp = load_keyed_file(engine, store, data_file);
  StringRdd cluster_kvp = load_keyed_file(engine, store, cluster_file);

  // Stage 3a: uniform partitioning (Figure 3 "Partition" phase).
  phase.emplace(engine.tracer(), "phase", "partition", "driver");
  if (config.copartition) {
    data_kvp = partition_by(engine, data_kvp, join_part, "partition:data");
    cluster_kvp =
        partition_by(engine, cluster_kvp, join_part, "partition:clusters");
  }

  // Stage 3b: key aggregation. The data side is always aggregated (one SPE
  // blob per observation); the cluster side only when the optimization is
  // on — turning it off reproduces the duplicate-key join inflation the
  // paper warns about, measurably.
  phase.emplace(engine.tracer(), "phase", "aggregate", "driver");
  StringRdd data_agg =
      aggregate_lines(engine, data_kvp, upstream_part, "aggregate:data");
  data_kvp = StringRdd{};  // drop local partitions and any pool residency

  StringRdd cluster_side =
      config.aggregate_before_join
          ? aggregate_lines(engine, cluster_kvp, upstream_part,
                            "aggregate:clusters")
          : std::move(cluster_kvp);

  // The big SPE RDD is cached under the executor-memory budget; if it does
  // not fit it spills to disk here and is read back for the join — the
  // Figure 4 one-executor mechanism. The producer closure records the
  // RDD's lineage: a spill partition later found corrupt or missing is
  // recomputed by re-running the deterministic load→partition→aggregate
  // chain (recorded under "recompute:" stages, so recovery work is priced
  // into the makespan) and keeping only the lost partition.
  auto recompute_data_partition =
      [&engine, &store, data_file, join_part, upstream_part,
       copartition = config.copartition](std::size_t p) {
        StringRdd kvp =
            load_keyed_file(engine, store, data_file, "recompute:");
        if (copartition) {
          kvp = partition_by(engine, kvp, join_part,
                             "recompute:partition:data");
        }
        StringRdd agg = aggregate_lines(engine, kvp, upstream_part,
                                        "recompute:aggregate:data");
        if (agg.resident) {
          return ipc::decode_payload<std::pair<std::string, std::string>>(
              pool_fetch(agg.resident, p));
        }
        return std::move(agg.partitions.at(p));
      };
  phase.emplace(engine.tracer(), "phase", "cache", "driver");
  CachedStringRdd cached_data(engine, std::move(data_agg), "data",
                              recompute_data_partition);
  // Borrow, don't copy: in-memory caches hand out a const reference in
  // O(1); spilled caches are read back (through checksum validation and,
  // if needed, lineage recovery) exactly once.
  const StringRdd& data_for_join = cached_data.borrow();

  // Stage 3c: the co-located left outer join.
  phase.emplace(engine.tracer(), "phase", "join", "driver");
  auto joined = left_outer_join(engine, cluster_side, data_for_join, join_part,
                                "join:clusters+data");

  // Stage 3d: the search phase.
  phase.emplace(engine.tracer(), "phase", "search", "driver");
  const RapidParams rapid_params = config.rapid;
  StringRdd ml_rows;
  if (engine.pool_residency() != nullptr && joined.num_partitions() > 0) {
    // The generic flat_map gate must not see this closure: it captures the
    // grid by pointer, which a pool worker forked earlier cannot follow.
    // Ship the grid's plan by value instead and rebuild it in the worker.
    ml_rows.partitions.resize(joined.num_partitions());
    auto& stage = engine.begin_stage("search", joined.num_partitions());
    PoolStagePlan plan;
    plan.kernel = &search_stage_kernel;
    plan.closure.assign(reinterpret_cast<const char*>(&rapid_params),
                        sizeof(rapid_params));
    plan.closure += ipc::encode_payload(grid.plan());
    plan.inputs = detail::pool_inputs(joined);
    engine.run_stage(stage, detail::unpooled_body(), {}, &plan);
    ml_rows.resident = std::move(plan.out);
  } else {
    const DmGrid* grid_ptr = &grid;
    ml_rows = flat_map_metered(
        engine, joined,
        [grid_ptr, &rapid_params](
            const std::string& key,
            const std::pair<std::string, std::optional<std::string>>& v,
            std::size_t& cost)
            -> std::vector<std::pair<std::string, std::string>> {
          if (!v.second || v.second->empty() || v.first.empty()) return {};
          return search_key(key, split_lines(v.first), *v.second, *grid_ptr,
                            rapid_params, cost);
        },
        "search");
  }

  // Collect, order deterministically, and write the ML file back.
  phase.emplace(engine.tracer(), "phase", "collect", "driver");
  for (const auto& [key, row] : ml_rows.collect()) {
    result.records.push_back(parse_ml_row(parse_csv_line(row)));
  }
  std::sort(result.records.begin(), result.records.end(),
            [](const MlRecord& a, const MlRecord& b) {
              const auto ka = a.obs.key(), kb = b.obs.key();
              if (ka != kb) return ka < kb;
              if (a.cluster_id != b.cluster_id) {
                return a.cluster_id < b.cluster_id;
              }
              return a.pulse_index < b.pulse_index;
            });
  if (!output_file.empty()) {
    std::ostringstream out;
    write_ml_file(out, result.records);
    store.put(output_file, out.str());
  }

  for (const auto& stage : engine.metrics().stages) {
    if (stage.name == "search") {
      result.spes_scanned = stage.total_compute_cost();
    }
    if (stage.name.rfind("load:" + std::string(cluster_file), 0) == 0) {
      result.clusters_searched = stage.total_records_in();
    }
  }
  phase.reset();
  result.partitions_recovered = cached_data.partitions_recovered();
  result.replica_failovers = store.replica_failovers();
  result.metrics = engine.metrics();
  result.wall_seconds = watch.elapsed_seconds();
  run_span.arg("records", static_cast<std::int64_t>(result.records.size()));
  run_span.arg("spes_scanned",
               static_cast<std::int64_t>(result.spes_scanned));
  run_span.arg("partitions_recovered",
               static_cast<std::int64_t>(result.partitions_recovered));
  run_span.arg("replica_failovers",
               static_cast<std::int64_t>(result.replica_failovers));
  return result;
}

}  // namespace drapid
