#include "ml/random_forest.hpp"

#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace drapid {
namespace ml {

RandomForest::RandomForest(ForestParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void RandomForest::train(const Dataset& data) {
  if (data.num_instances() == 0) {
    throw std::invalid_argument("cannot train a forest on an empty dataset");
  }
  trees_.clear();
  num_classes_ = data.num_classes();
  TreeParams tree_params = params_.tree;
  if (tree_params.features_per_split == 0) {
    // Weka RandomForest default: log2(#features) + 1 per split.
    tree_params.features_per_split = static_cast<std::size_t>(
        std::log2(static_cast<double>(std::max<std::size_t>(
            2, data.num_features())))) + 1;
  }
  // Random trees grow unpruned on plain information gain (Weka RandomTree).
  tree_params.use_gain_ratio = false;

  // Draw every tree's bootstrap sample and seed up front so results are
  // identical whether trees then train serially or in parallel.
  Rng rng(seed_);
  std::vector<std::vector<std::size_t>> bootstraps(params_.num_trees);
  std::vector<std::uint64_t> tree_seeds(params_.num_trees);
  for (std::size_t t = 0; t < params_.num_trees; ++t) {
    bootstraps[t].resize(data.num_instances());
    for (auto& r : bootstraps[t]) r = rng.below(data.num_instances());
    tree_seeds[t] = rng.split()();
  }
  trees_.clear();
  for (std::size_t t = 0; t < params_.num_trees; ++t) {
    trees_.emplace_back(tree_params, tree_seeds[t]);
  }
  // One argsort of the shared data; every tree derives its bootstrap's
  // orderings from it instead of sorting (or copying) the sample.
  const PresortedColumns presorted(data);
  const auto train_one = [&](std::size_t t) {
    trees_[t].train_bootstrap(data, presorted, bootstraps[t]);
  };
  if (params_.training_threads > 1) {
    ThreadPool pool(params_.training_threads);
    pool.parallel_for(params_.num_trees, train_one);
  } else {
    for (std::size_t t = 0; t < params_.num_trees; ++t) train_one(t);
  }
}

int RandomForest::predict(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("forest not trained");
  std::vector<std::size_t> votes(num_classes_, 0);
  for (const auto& tree : trees_) {
    ++votes[static_cast<std::size_t>(tree.predict(x))];
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return static_cast<int>(best);
}

std::vector<int> RandomForest::predict_batch(const Dataset& data) const {
  if (trees_.empty()) throw std::logic_error("forest not trained");
  const std::size_t n = data.num_instances();
  // Instance-outermost: the row's features stay in L1 across all trees,
  // where a trees-outermost sweep re-streams the whole feature matrix once
  // per tree (measurably slower already at ~2k-row test sets). One vote
  // buffer reused across rows; same first-max tie-break as predict().
  std::vector<std::size_t> votes(num_classes_);
  std::vector<int> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(votes.begin(), votes.end(), 0);
    const auto x = data.instance(i);
    for (const auto& tree : trees_) {
      ++votes[static_cast<std::size_t>(tree.predict(x))];
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_classes_; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

std::size_t RandomForest::total_nodes() const {
  std::size_t total = 0;
  for (const auto& t : trees_) total += t.node_count();
  return total;
}

std::size_t RandomForest::total_split_evaluations() const {
  std::size_t total = 0;
  for (const auto& t : trees_) total += t.split_evaluations();
  return total;
}

}  // namespace ml
}  // namespace drapid
