// trace_check — validates observability artifacts written by the benches.
//
//   trace_check --report FILE   checks a run report against the v1 schema
//                               (including per-job totals == stage-row sums)
//   trace_check --trace FILE    checks a Chrome trace for balanced,
//                               strictly nested spans per thread
//
// Both flags may be given together (the bench_fig4 smoke test in ctest does
// exactly that). Exit 0 when every given file validates, 1 otherwise.
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/report.hpp"
#include "util/options.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using drapid::Options;
  namespace obs = drapid::obs;
  try {
    Options opts(argc, argv, {{"report", ""}, {"trace", ""}});
    if (opts.help_requested()) {
      std::cout << opts.usage("trace_check",
                              "Validates a run report (--report) and/or a "
                              "Chrome trace (--trace) written by a bench.");
      return 0;
    }
    if (opts.str("report").empty() && opts.str("trace").empty()) {
      std::cerr << "trace_check: give --report and/or --trace (see --help)\n";
      return 2;
    }

    bool ok = true;
    if (!opts.str("report").empty()) {
      const obs::Json doc = obs::Json::parse(read_file(opts.str("report")));
      const std::string error = obs::validate_run_report(doc);
      if (error.empty()) {
        std::cout << opts.str("report") << ": valid run report ("
                  << doc.at("jobs").size() << " jobs, "
                  << doc.at("results").size() << " result rows)\n";
      } else {
        std::cerr << opts.str("report") << ": INVALID: " << error << '\n';
        ok = false;
      }
    }
    if (!opts.str("trace").empty()) {
      const obs::Json doc = obs::Json::parse(read_file(opts.str("trace")));
      const std::string error = obs::validate_chrome_trace(doc);
      if (error.empty()) {
        std::cout << opts.str("trace") << ": valid Chrome trace ("
                  << doc.at("traceEvents").size() << " events)\n";
      } else {
        std::cerr << opts.str("trace") << ": INVALID: " << error << '\n';
        ok = false;
      }
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "trace_check: error: " << e.what() << '\n';
    return 1;
  }
}
