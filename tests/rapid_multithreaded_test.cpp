#include "rapid/multithreaded.hpp"

#include <gtest/gtest.h>

#include "synth/survey.hpp"

namespace drapid {
namespace {

/// End-to-end fixture: simulate an observation with bright pulsars, cluster
/// it, and build work items.
struct PipelineFixture {
  SurveyConfig config = SurveyConfig::gbt350drift();
  SimulatedObservation obs;
  std::vector<RapidWorkItem> items;

  explicit PipelineFixture(std::uint64_t seed = 77) {
    SurveySimulator sim(config, seed);
    SyntheticSource src;
    src.name = "BRIGHT";
    src.dm = 55.0;
    src.period_s = 4.0;
    src.width_ms = 8.0;
    src.median_snr = 22.0;
    src.snr_sigma = 0.15;
    src.emission_rate = 0.9;
    ObservationId id;
    id.dataset = config.name;
    obs = sim.simulate(id, {src});
    const auto clustering = dbscan_cluster(obs.data, *config.grid, {});
    items = make_work_items(obs.data, clustering);
  }
};

TEST(MakeWorkItems, OneItemPerClusterWithMatchingCounts) {
  PipelineFixture fx;
  ASSERT_FALSE(fx.items.empty());
  for (const auto& item : fx.items) {
    EXPECT_EQ(item.record.num_spes, item.events.size());
    EXPECT_GT(item.events.size(), 0u);
    // Events must arrive DM-sorted for Algorithm 1.
    for (std::size_t i = 1; i < item.events.size(); ++i) {
      ASSERT_LE(item.events[i - 1].dm, item.events[i].dm);
    }
  }
}

TEST(SearchWorkItem, RanksPulsesBySnr) {
  PipelineFixture fx;
  const DmGrid& grid = *fx.config.grid;
  for (const auto& item : fx.items) {
    const auto pulses = search_work_item(item, {}, grid);
    if (pulses.size() < 2) continue;
    // Rank 1 must be the brightest.
    double rank1_snr = 0.0, best_snr = 0.0;
    for (const auto& p : pulses) {
      const double snr = item.events[p.pulse.peak].snr;
      best_snr = std::max(best_snr, snr);
      if (p.pulse_rank == 1) rank1_snr = snr;
    }
    EXPECT_DOUBLE_EQ(rank1_snr, best_snr);
    // Ranks are a permutation of 1..k.
    std::vector<bool> seen(pulses.size() + 1, false);
    for (const auto& p : pulses) {
      ASSERT_GE(p.pulse_rank, 1);
      ASSERT_LE(p.pulse_rank, static_cast<int>(pulses.size()));
      ASSERT_FALSE(seen[static_cast<std::size_t>(p.pulse_rank)]);
      seen[static_cast<std::size_t>(p.pulse_rank)] = true;
    }
    return;  // one multi-pulse cluster is enough
  }
}

TEST(RunMultithreaded, ResultsIndependentOfThreadCount) {
  PipelineFixture fx;
  const DmGrid& grid = *fx.config.grid;
  const auto r1 = run_rapid_multithreaded(fx.items, {}, grid, 1);
  const auto r4 = run_rapid_multithreaded(fx.items, {}, grid, 4);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].cluster.cluster_id, r4[i].cluster.cluster_id);
    EXPECT_EQ(r1[i].pulse.begin, r4[i].pulse.begin);
    EXPECT_EQ(r1[i].pulse.peak, r4[i].pulse.peak);
    EXPECT_EQ(r1[i].pulse_rank, r4[i].pulse_rank);
  }
}

TEST(RunMultithreaded, StatsAccountAllWork) {
  PipelineFixture fx;
  RapidRunStats stats;
  const auto results =
      run_rapid_multithreaded(fx.items, {}, *fx.config.grid, 2, &stats);
  EXPECT_EQ(stats.clusters_processed, fx.items.size());
  EXPECT_EQ(stats.pulses_found, results.size());
  std::size_t spes = 0;
  for (const auto& item : fx.items) spes += item.events.size();
  EXPECT_EQ(stats.spes_scanned, spes);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(RunMultithreaded, RecoversInjectedPulses) {
  PipelineFixture fx;
  const auto results = run_rapid_multithreaded(fx.items, {}, *fx.config.grid, 2);
  ASSERT_FALSE(results.empty());
  // Count bright truth pulses recovered: an identified pulse whose peak DM
  // and cluster time window match the injection.
  std::size_t bright = 0, recovered = 0;
  for (const auto& gt : fx.obs.truth) {
    if (gt.peak_snr < 10.0 || gt.num_spes < 12) continue;
    ++bright;
    for (const auto& found : results) {
      const double peak_dm = found.features[kSnrPeakDm];
      if (std::abs(peak_dm - gt.dm) < 3.0 &&
          gt.time_s >= found.cluster.time_min - 0.2 &&
          gt.time_s <= found.cluster.time_max + 0.2) {
        ++recovered;
        break;
      }
    }
  }
  ASSERT_GT(bright, 5u);
  EXPECT_GE(recovered, bright * 8 / 10)
      << "recovered " << recovered << " of " << bright;
}

TEST(RunMultithreaded, FinerGranularityThanDpgSearch) {
  // §5.1: the single-pulse search finds many pulses where the DPG-era search
  // found one per observation. Expect strictly more pulses than clusters
  // containing them... at minimum, more than one pulse in the observation.
  PipelineFixture fx;
  const auto results = run_rapid_multithreaded(fx.items, {}, *fx.config.grid, 2);
  EXPECT_GT(results.size(), 10u);
}

}  // namespace
}  // namespace drapid
