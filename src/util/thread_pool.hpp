// Work-stealing worker pool used by the multithreaded RAPID baseline and the
// dataflow engine's executor backend.
//
// The pool mirrors the execution model the paper benchmarks against: a fixed
// number of threads running independent tasks. parallel_for provides the
// data-parallel "same operation over every cluster" pattern.
//
// Scheduling (PR 3 rewrite — the old pool paid one global mutex + condition
// variable per task and a 1 ms polling wait per join):
//
//   * every worker owns a Chase-Lev-style deque: the owner pushes and pops
//     its bottom end lock-free, idle workers steal from the top end with a
//     single CAS. Non-worker threads submit through a small mutex-protected
//     injection queue (submit is not the hot path).
//   * parallel_for is batched: the caller publishes one chunk *counter*, not
//     one queue entry per chunk. Workers that join the loop (via at most
//     thread_count() stolen "tickets") claim chunks with a fetch_add, and
//     the caller itself claims chunks directly — so a loop whose chunks are
//     all claimed costs zero queue traffic.
//   * chunk completion is lock-free except for the final chunk, which takes
//     the join mutex once to publish completion to a possibly-parked caller
//     (the old pool locked it for *every* chunk).
//   * out-of-work threads park on a condition variable after a steal sweep
//     comes up empty; producers wake them only when someone is actually
//     parked. Joins park on the loop's own condition variable instead of
//     polling every millisecond.
//
// parallel_for is reentrant: a task running on a pool worker may itself call
// parallel_for on the same pool. The calling thread always claims chunks of
// its own loop directly and then *helps* — running queued tasks instead of
// blocking — so nested data parallelism completes even on a 1-thread pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace drapid {

/// Monotonic scheduler event tallies. Snapshots are cheap (three relaxed
/// loads); the engine diffs them around each stage to attribute steals,
/// parks and lock-free completions to the stage that caused them.
struct SchedulerStats {
  /// Tasks executed by a thread other than the one that enqueued them.
  std::uint64_t tasks_stolen = 0;
  /// Times a thread slept (idle worker out of work, or a join waiting for
  /// its final chunk). Zero parks = the pool never blocked.
  std::uint64_t parks = 0;
  /// parallel_for chunk completions that took the lock-free fast path
  /// (every chunk but the last one of each loop).
  std::uint64_t fastpath_completions = 0;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_.size(); }

  /// Enqueues a task; the returned future reports completion/exceptions.
  /// Tasks still queued when the destructor runs are executed (on the
  /// destructing thread if the workers have already exited), so every
  /// returned future completes.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all done.
  /// Work is claimed in contiguous chunks from a shared counter to bound
  /// scheduling overhead; any exception from fn is rethrown (first one
  /// wins; remaining chunks of the loop are skipped once an error is
  /// recorded). Safe to call from inside a pool task: the waiting thread
  /// claims its own chunks and then runs other pending tasks itself.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Snapshot of the scheduler event counters (monotonic).
  SchedulerStats stats() const;

 private:
  struct Task;
  struct ClosureTask;
  struct Loop;
  struct TicketTask;
  struct Worker;

  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

  void worker_loop(std::size_t index);
  /// Claims chunks of `loop` until its counter is exhausted.
  void run_loop(Loop& loop);
  void finish_chunk(Loop& loop);
  /// Own deque -> injection queue -> steal sweep. `self` is kNoWorker for
  /// threads that do not own a deque in this pool.
  Task* find_task(std::size_t self);
  /// Runs one pending task if any is findable. Never throws (task errors
  /// land in futures / loop join state).
  bool run_one(std::size_t self);
  void enqueue(Task* task);
  void wake_workers();
  /// Index of the calling thread's worker in *this* pool, or kNoWorker.
  std::size_t self_index() const;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Injection queue for tasks enqueued by non-worker threads (and deque
  // overflow, which the fixed deque capacity makes effectively unreachable).
  std::mutex injection_mutex_;
  std::deque<Task*> injection_;

  // Idle lot. pending_ counts enqueued-but-unclaimed tasks; both it and
  // idle_waiters_ use seq_cst so a producer that observes no waiter is
  // guaranteed the waiter's own re-check observes the producer's task.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<int> idle_waiters_{0};
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> fastpath_{0};
};

}  // namespace drapid
