#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace drapid {
namespace obs {

namespace {

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw std::runtime_error(std::string("json: value is not ") + wanted +
                           " (type " + std::to_string(static_cast<int>(got)) +
                           ")");
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("a bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
  type_error("a number", type_);
}

double Json::as_double() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  type_error("a number", type_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("a string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("an array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("an object", type_);
  return object_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("an array", type_);
  array_.push_back(std::move(value));
  return array_.back();
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("an object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (!found) {
    throw std::out_of_range("json: missing object key \"" + std::string(key) +
                            "\"");
  }
  return *found;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error("an array", type_);
  if (index >= array_.size()) {
    throw std::out_of_range("json: array index " + std::to_string(index) +
                            " out of range");
  }
  return array_[index];
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through byte-wise
        }
    }
  }
  return out;
}

namespace {

void write_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no Inf/NaN; null is the conventional fallback
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: write_double(out, double_); break;
    case Type::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.write(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += json_escape(k);
        out += "\":";
        if (pretty) out += ' ';
        v.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// --- Parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("json parse error at byte " + std::to_string(pos_) +
                         ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs not recombined; BMP is plenty for
          // trace names and config values).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // fall through: out-of-range integers become doubles
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("invalid number \"" + std::string(token) + "\"");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace obs
}  // namespace drapid
