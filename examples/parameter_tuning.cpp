// Reproduces the §5.1.2 parameter-tuning experiment: sweep the bin-size
// weight w over 0.75–1.75 and the slope threshold M over 0.05–0.5, measure
// how many hard-to-identify injected pulses each combination recovers, and
// confirm the paper's selected combination (w = 0.75, M = 0.5) sits at or
// near the optimum.
//
//   ./examples/parameter_tuning [--pulses N] [--seed N]
#include <iostream>

#include "rapid/search.hpp"
#include "synth/dispersion.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

using namespace drapid;

namespace {

struct HardPulse {
  std::vector<SinglePulseEvent> events;
  double true_dm = 0.0;
};

/// "Difficult" pulses: faint, noisy, narrow, or sparsely sampled.
std::vector<HardPulse> make_hard_pulses(std::size_t count, Rng& rng) {
  std::vector<HardPulse> pulses;
  while (pulses.size() < count) {
    HardPulse hp;
    hp.true_dm = rng.uniform(20.0, 120.0);
    const double peak = rng.uniform(6.5, 11.0);   // faint
    const double width = rng.uniform(1.0, 6.0);   // narrow-ish
    const double step = rng.chance(0.5) ? 0.05 : 0.15;
    for (double dm = hp.true_dm - 10; dm <= hp.true_dm + 10; dm += step) {
      const double snr =
          peak * snr_degradation(dm - hp.true_dm, width, 350.0, 100.0) +
          rng.normal(0.0, 0.45);  // noisy
      if (snr >= 5.0) {
        SinglePulseEvent e;
        e.dm = dm;
        e.snr = snr;
        e.time_s = 1.0;
        hp.events.push_back(e);
      }
    }
    if (hp.events.size() >= 4) pulses.push_back(std::move(hp));
  }
  return pulses;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv, {{"pulses", "150"}, {"seed", "9"}});
  Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
  const auto hard =
      make_hard_pulses(static_cast<std::size_t>(opts.integer("pulses")), rng);
  std::cout << "tuning on " << hard.size() << " difficult synthetic pulses\n\n";

  const std::vector<double> weights = {0.75, 1.0, 1.25, 1.5, 1.75};
  const std::vector<double> thresholds = {0.05, 0.1, 0.2, 0.35, 0.5};

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"w \\ M"};
  for (double m : thresholds) header.push_back(format_number(m));
  rows.push_back(header);

  double best_rate = -1.0, best_w = 0, best_m = 0;
  for (double w : weights) {
    std::vector<std::string> row{format_number(w)};
    for (double m : thresholds) {
      RapidParams params;
      params.weight = w;
      params.slope_threshold = m;
      std::size_t recovered = 0, spurious = 0;
      for (const auto& hp : hard) {
        const auto found = rapid_search(hp.events, params);
        bool hit = false;
        for (const auto& p : found) {
          hit |= std::abs(hp.events[p.peak].dm - hp.true_dm) < 1.5;
        }
        recovered += hit;
        spurious += found.size() > (hit ? 1u : 0u);
      }
      // Score: recovery penalized by spurious extra pulses (which cost
      // manual inspection downstream).
      const double rate =
          (static_cast<double>(recovered) -
           0.25 * static_cast<double>(spurious)) /
          static_cast<double>(hard.size());
      row.push_back(format_number(rate, 3));
      if (rate > best_rate) {
        best_rate = rate;
        best_w = w;
        best_m = m;
      }
    }
    rows.push_back(std::move(row));
  }
  std::cout << render_table(rows);
  std::cout << "\nbest combination here: w=" << best_w << " M=" << best_m
            << " (paper selected w=0.75, M=0.5)\n";
  return 0;
}
