#include "dataflow/rdd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/rng.hpp"

namespace drapid {
namespace {

using StrPair = std::pair<std::string, std::string>;

EngineConfig test_config(std::size_t executors = 4) {
  EngineConfig cfg;
  cfg.num_executors = executors;
  cfg.cores_per_executor = 2;
  cfg.worker_threads = 2;
  cfg.partitions_per_core = 2;
  return cfg;
}

std::vector<StrPair> sample_pairs(std::size_t n, std::size_t distinct_keys) {
  std::vector<StrPair> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    pairs.emplace_back("key" + std::to_string(i % distinct_keys),
                       "value" + std::to_string(i));
  }
  return pairs;
}

template <typename K, typename V>
std::multiset<std::pair<K, V>> as_multiset(const Rdd<K, V>& rdd) {
  const auto all = rdd.collect();
  return {all.begin(), all.end()};
}

TEST(StableHash, DeterministicAndSpread) {
  EXPECT_EQ(stable_hash(std::string("abc")), stable_hash(std::string("abc")));
  EXPECT_NE(stable_hash(std::string("abc")), stable_hash(std::string("abd")));
  EXPECT_EQ(stable_hash(42), stable_hash(42));
  EXPECT_NE(stable_hash(42), stable_hash(43));
}

TEST(HashPartitioner, SameSpecSameLayout) {
  HashPartitioner a{8};
  HashPartitioner b{8};
  HashPartitioner c{16};
  EXPECT_EQ(a.id(), b.id());
  EXPECT_NE(a.id(), c.id());
  EXPECT_NE(a.id(), 0u);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(a.of(key), b.of(key));
    EXPECT_LT(a.of(key), 8u);
  }
}

TEST(Parallelize, PreservesAllPairsAcrossRequestedPartitions) {
  Engine engine(test_config());
  auto pairs = sample_pairs(100, 10);
  const auto expected = std::multiset<StrPair>(pairs.begin(), pairs.end());
  const auto rdd = parallelize(engine, std::move(pairs), 7);
  EXPECT_EQ(rdd.num_partitions(), 7u);
  EXPECT_EQ(rdd.size(), 100u);
  EXPECT_EQ(as_multiset(rdd), expected);
  EXPECT_EQ(rdd.partitioner_id, 0u);
}

TEST(MapValues, TransformsAndPreservesPartitioning) {
  Engine engine(test_config());
  auto rdd = parallelize(engine, sample_pairs(50, 5), 4);
  HashPartitioner part{4};
  auto partitioned = partition_by(engine, rdd, part);
  auto lengths = map_values(engine, partitioned, [](const std::string& v) {
    return v.size();
  });
  EXPECT_EQ(lengths.partitioner_id, part.id());
  EXPECT_EQ(lengths.size(), 50u);
  for (const auto& [k, len] : lengths.collect()) {
    EXPECT_GE(len, 6u);  // "valueN"
  }
}

TEST(MapPairs, KeyChangeDropsPartitioner) {
  Engine engine(test_config());
  HashPartitioner part{4};
  auto rdd = partition_by(engine, parallelize(engine, sample_pairs(20, 4), 4),
                          part);
  auto renamed = map_pairs(engine, rdd, [](const StrPair& kv) {
    return std::make_pair(kv.first + "x", kv.second);
  });
  EXPECT_EQ(renamed.partitioner_id, 0u);
}

TEST(Filter, KeepsOnlyMatchingPairs) {
  Engine engine(test_config());
  auto rdd = parallelize(engine, sample_pairs(100, 10), 5);
  auto filtered = filter_pairs(engine, rdd, [](const StrPair& kv) {
    return kv.first == "key3";
  });
  EXPECT_EQ(filtered.size(), 10u);
  for (const auto& [k, v] : filtered.collect()) EXPECT_EQ(k, "key3");
}

TEST(PartitionBy, EveryKeyLandsOnItsHashPartition) {
  Engine engine(test_config());
  HashPartitioner part{6};
  auto rdd = partition_by(engine, parallelize(engine, sample_pairs(200, 37), 3),
                          part);
  EXPECT_EQ(rdd.num_partitions(), 6u);
  EXPECT_EQ(rdd.partitioner_id, part.id());
  EXPECT_EQ(rdd.size(), 200u);
  for (std::size_t p = 0; p < rdd.num_partitions(); ++p) {
    for (const auto& [k, v] : rdd.partitions[p]) {
      EXPECT_EQ(part.of(k), p);
    }
  }
}

TEST(PartitionBy, RecordsShuffleBytes) {
  Engine engine(test_config(/*executors=*/4));
  auto rdd = parallelize(engine, sample_pairs(500, 97), 8);
  engine.reset_metrics();
  partition_by(engine, rdd, HashPartitioner{8});
  ASSERT_EQ(engine.metrics().stages.size(), 1u);
  // With 97 keys hashed across 8 partitions on 4 executors, most records
  // move between executors.
  EXPECT_GT(engine.metrics().total_shuffle_bytes(), 0u);
}

TEST(AggregateByKey, CountsMatchReference) {
  Engine engine(test_config());
  auto pairs = sample_pairs(300, 23);
  std::map<std::string, std::size_t> expected;
  for (const auto& [k, v] : pairs) ++expected[k];
  auto rdd = parallelize(engine, std::move(pairs), 5);
  auto counts = aggregate_by_key(
      engine, rdd, std::size_t{0},
      [](std::size_t& agg, const std::string&) { ++agg; },
      [](std::size_t& agg, std::size_t&& other) { agg += other; },
      HashPartitioner{4});
  std::map<std::string, std::size_t> actual;
  for (const auto& [k, c] : counts.collect()) actual[k] = c;
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(counts.partitioner_id, HashPartitioner{4}.id());
}

TEST(AggregateByKey, GroupValuesMatchesReferenceRegardlessOfOrder) {
  Engine engine(test_config());
  auto pairs = sample_pairs(120, 11);
  std::map<std::string, std::multiset<std::string>> expected;
  for (const auto& [k, v] : pairs) expected[k].insert(v);
  auto rdd = parallelize(engine, std::move(pairs), 6);
  auto grouped = aggregate_by_key(
      engine, rdd, std::vector<std::string>{},
      [](std::vector<std::string>& agg, const std::string& v) {
        agg.push_back(v);
      },
      [](std::vector<std::string>& agg, std::vector<std::string>&& other) {
        agg.insert(agg.end(), std::make_move_iterator(other.begin()),
                   std::make_move_iterator(other.end()));
      },
      HashPartitioner{4});
  std::map<std::string, std::multiset<std::string>> actual;
  for (const auto& [k, vs] : grouped.collect()) {
    actual[k] = {vs.begin(), vs.end()};
  }
  EXPECT_EQ(actual, expected);
}

TEST(AggregateByKey, PrePartitionedInputNeedsNoShuffle) {
  Engine engine(test_config());
  HashPartitioner part{4};
  auto rdd = partition_by(engine, parallelize(engine, sample_pairs(200, 13), 4),
                          part);
  engine.reset_metrics();
  aggregate_by_key(
      engine, rdd, std::size_t{0},
      [](std::size_t& agg, const std::string&) { ++agg; },
      [](std::size_t& agg, std::size_t&& other) { agg += other; }, part);
  EXPECT_EQ(engine.metrics().total_shuffle_bytes(), 0u);
}

TEST(ReduceByKey, MaxPerKey) {
  Engine engine(test_config());
  std::vector<std::pair<std::string, int>> pairs;
  Rng rng(3);
  std::map<std::string, int> expected;
  for (int i = 0; i < 200; ++i) {
    const std::string k = "k" + std::to_string(i % 17);
    const int v = static_cast<int>(rng.below(1000));
    pairs.emplace_back(k, v);
    auto it = expected.find(k);
    if (it == expected.end()) expected[k] = v;
    else it->second = std::max(it->second, v);
  }
  auto rdd = parallelize(engine, std::move(pairs), 5);
  auto maxed = reduce_by_key(
      engine, rdd, [](int a, int b) { return std::max(a, b); },
      HashPartitioner{4});
  std::map<std::string, int> actual;
  for (const auto& [k, v] : maxed.collect()) actual[k] = v;
  EXPECT_EQ(actual, expected);
}

TEST(LeftOuterJoin, MatchesReferenceSemantics) {
  Engine engine(test_config());
  std::vector<std::pair<std::string, int>> left_pairs{
      {"a", 1}, {"b", 2}, {"c", 3}, {"a", 4}};
  std::vector<std::pair<std::string, std::string>> right_pairs{
      {"a", "x"}, {"a", "y"}, {"b", "z"}};
  auto left = parallelize(engine, std::move(left_pairs), 3);
  auto right = parallelize(engine, std::move(right_pairs), 2);
  auto joined = left_outer_join(engine, left, right, HashPartitioner{4});
  // Reference: a:1 joins x and y; a:4 joins x and y; b:2 joins z; c:3 -> null.
  std::multiset<std::string> flat;
  for (const auto& [k, vw] : joined.collect()) {
    flat.insert(k + ":" + std::to_string(vw.first) + ":" +
                (vw.second ? *vw.second : "<null>"));
  }
  const std::multiset<std::string> expected{
      "a:1:x", "a:1:y", "a:4:x", "a:4:y", "b:2:z", "c:3:<null>"};
  EXPECT_EQ(flat, expected);
}

TEST(LeftOuterJoin, CopartitionedInputsShuffleNothing) {
  Engine engine(test_config());
  HashPartitioner part{8};
  auto left = partition_by(
      engine, parallelize(engine, sample_pairs(300, 29), 4), part);
  auto right = partition_by(
      engine, parallelize(engine, sample_pairs(150, 29), 4), part);
  engine.reset_metrics();
  auto joined = left_outer_join(engine, left, right, part);
  EXPECT_EQ(engine.metrics().total_shuffle_bytes(), 0u);
  EXPECT_EQ(joined.partitioner_id, part.id());
  EXPECT_GT(joined.size(), 0u);
}

TEST(LeftOuterJoin, UnpartitionedInputsDoShuffle) {
  Engine engine(test_config());
  auto left = parallelize(engine, sample_pairs(300, 29), 4);
  auto right = parallelize(engine, sample_pairs(150, 29), 4);
  engine.reset_metrics();
  left_outer_join(engine, left, right, HashPartitioner{8});
  EXPECT_GT(engine.metrics().total_shuffle_bytes(), 0u);
}

TEST(FlatMapMetered, EmitsManyAndAccumulatesCost) {
  Engine engine(test_config());
  auto rdd = parallelize(engine, sample_pairs(10, 10), 2);
  engine.reset_metrics();
  auto out = flat_map_metered(
      engine, rdd,
      [](const std::string& k, const std::string& v, std::size_t& cost) {
        cost = 7;
        std::vector<std::pair<std::string, std::string>> result;
        result.emplace_back(k, v + "-1");
        result.emplace_back(k, v + "-2");
        return result;
      });
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(engine.metrics().total_compute_cost(), 70u);
}

TEST(Metrics, SummaryMentionsEveryStage) {
  Engine engine(test_config());
  auto rdd = parallelize(engine, sample_pairs(10, 3), 2);
  partition_by(engine, rdd, HashPartitioner{2}, "my_shuffle");
  const std::string text = engine.metrics().summary();
  EXPECT_NE(text.find("parallelize"), std::string::npos);
  EXPECT_NE(text.find("my_shuffle"), std::string::npos);
}

// Determinism property: the full pipeline gives identical layouts across
// runs and worker-thread counts.
class PipelineDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineDeterminism, LayoutIndependentOfThreads) {
  const auto run = [&](std::size_t threads) {
    EngineConfig cfg = test_config();
    cfg.worker_threads = threads;
    Engine engine(cfg);
    HashPartitioner part{8};
    auto rdd = partition_by(
        engine, parallelize(engine, sample_pairs(500, 41), 4), part);
    auto counts = aggregate_by_key(
        engine, rdd, std::size_t{0},
        [](std::size_t& agg, const std::string&) { ++agg; },
        [](std::size_t& agg, std::size_t&& other) { agg += other; }, part);
    // Sort within partitions for comparison (unordered_map iteration order
    // may differ, which is allowed; the *set* per partition must match).
    std::vector<std::vector<std::pair<std::string, std::size_t>>> parts;
    for (auto p : counts.partitions) {
      std::sort(p.begin(), p.end());
      parts.push_back(std::move(p));
    }
    return parts;
  };
  EXPECT_EQ(run(1), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Threads, PipelineDeterminism,
                         ::testing::Values(2, 3, 8));

}  // namespace
}  // namespace drapid
