#include "obs/report.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace drapid {
namespace obs {

namespace {

// Field table shared by the writer and the validator so they cannot drift.
struct StageField {
  const char* name;
  bool is_double;
};
constexpr StageField kStageFields[] = {
    {"tasks", false},         {"records_in", false},
    {"bytes_in", false},      {"records_out", false},
    {"bytes_out", false},     {"shuffle_bytes", false},
    {"spill_bytes", false},   {"compute_cost", true},
    {"retries", false},       {"retry_cost", true},
    {"tasks_stolen", false},  {"parks", false},
    {"fastpath_completions", false},
    {"workers_used", false},  {"worker_deaths", false},
    {"ipc_bytes", false},     {"pool_reuses", false},
    {"resident_bytes", false},
    {"worker_respawns", false},
    {"wall_seconds", true},
};

double stage_field(const StageReport& s, const char* name) {
  const std::string_view f(name);
  if (f == "tasks") return static_cast<double>(s.tasks);
  if (f == "records_in") return static_cast<double>(s.records_in);
  if (f == "bytes_in") return static_cast<double>(s.bytes_in);
  if (f == "records_out") return static_cast<double>(s.records_out);
  if (f == "bytes_out") return static_cast<double>(s.bytes_out);
  if (f == "shuffle_bytes") return static_cast<double>(s.shuffle_bytes);
  if (f == "spill_bytes") return static_cast<double>(s.spill_bytes);
  if (f == "compute_cost") return s.compute_cost;
  if (f == "retries") return static_cast<double>(s.retries);
  if (f == "tasks_stolen") return static_cast<double>(s.tasks_stolen);
  if (f == "parks") return static_cast<double>(s.parks);
  if (f == "fastpath_completions") {
    return static_cast<double>(s.fastpath_completions);
  }
  if (f == "workers_used") return static_cast<double>(s.workers_used);
  if (f == "worker_deaths") return static_cast<double>(s.worker_deaths);
  if (f == "ipc_bytes") return static_cast<double>(s.ipc_bytes);
  if (f == "pool_reuses") return static_cast<double>(s.pool_reuses);
  if (f == "resident_bytes") return static_cast<double>(s.resident_bytes);
  if (f == "worker_respawns") return static_cast<double>(s.worker_respawns);
  if (f == "wall_seconds") return s.wall_seconds;
  return s.retry_cost;
}

}  // namespace

Json StageReport::to_json() const {
  Json row = Json::object();
  row.set("name", name);
  row.set("tasks", tasks);
  row.set("records_in", records_in);
  row.set("bytes_in", bytes_in);
  row.set("records_out", records_out);
  row.set("bytes_out", bytes_out);
  row.set("shuffle_bytes", shuffle_bytes);
  row.set("spill_bytes", spill_bytes);
  row.set("compute_cost", compute_cost);
  row.set("retries", retries);
  row.set("retry_cost", retry_cost);
  row.set("tasks_stolen", tasks_stolen);
  row.set("parks", parks);
  row.set("fastpath_completions", fastpath_completions);
  row.set("workers_used", workers_used);
  row.set("worker_deaths", worker_deaths);
  row.set("ipc_bytes", ipc_bytes);
  row.set("pool_reuses", pool_reuses);
  row.set("resident_bytes", resident_bytes);
  row.set("worker_respawns", worker_respawns);
  row.set("wall_seconds", wall_seconds);
  return row;
}

Json ObsEvent::to_json() const {
  Json row = Json::object();
  row.set("kind", kind);
  if (!stage.empty()) row.set("stage", stage);
  if (partition >= 0) row.set("partition", partition);
  row.set("count", count);
  return row;
}

Json JobReport::to_json() const {
  Json job = Json::object();
  job.set("label", label);
  Json stage_rows = Json::array();
  Json totals = Json::object();
  for (const StageField& field : kStageFields) {
    double sum = 0.0;
    for (const StageReport& s : stages) sum += stage_field(s, field.name);
    if (field.is_double) {
      totals.set(field.name, sum);
    } else {
      totals.set(field.name, static_cast<std::int64_t>(sum));
    }
  }
  for (const StageReport& s : stages) stage_rows.push_back(s.to_json());
  job.set("stages", std::move(stage_rows));
  job.set("totals", std::move(totals));
  Json event_rows = Json::array();
  for (const ObsEvent& e : events) event_rows.push_back(e.to_json());
  job.set("events", std::move(event_rows));
  return job;
}

RunReport::RunReport(std::string tool) : tool_(std::move(tool)) {}

void RunReport::set_config(std::string key, Json value) {
  config_.set(std::move(key), std::move(value));
}

void RunReport::add_metric(std::string name, Json value) {
  metrics_.set(std::move(name), std::move(value));
}

void RunReport::add_result(Json row) { results_.push_back(std::move(row)); }

void RunReport::add_job(JobReport job) { jobs_.push_back(std::move(job)); }

void RunReport::capture_counters(const CounterRegistry& registry) {
  counters_ = registry.counters_snapshot();
  gauges_ = registry.gauges_snapshot();
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema_version", kSchemaVersion);
  doc.set("tool", tool_);
  doc.set("config", config_);
  doc.set("wall_seconds", wall_seconds_);
  Json counters = Json::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  doc.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, value] : gauges_) gauges.set(name, value);
  doc.set("gauges", std::move(gauges));
  doc.set("metrics", metrics_);
  doc.set("results", results_);
  Json jobs = Json::array();
  for (const JobReport& job : jobs_) jobs.push_back(job.to_json());
  doc.set("jobs", std::move(jobs));
  return doc;
}

void RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open report output file: " + path);
  }
  out << to_json().dump(2) << '\n';
  if (!out) {
    throw std::runtime_error("failed writing report output file: " + path);
  }
}

std::string validate_run_report(const Json& report) {
  if (!report.is_object()) return "report is not an object";
  const Json* version = report.find("schema_version");
  if (!version || !version->is_number()) return "missing schema_version";
  if (version->as_int() != RunReport::kSchemaVersion) {
    return "schema_version " + std::to_string(version->as_int()) +
           " != expected " + std::to_string(RunReport::kSchemaVersion);
  }
  const Json* tool = report.find("tool");
  if (!tool || !tool->is_string() || tool->as_string().empty()) {
    return "missing tool name";
  }
  const Json* config = report.find("config");
  if (!config || !config->is_object()) return "missing config object";
  const Json* wall = report.find("wall_seconds");
  if (!wall || !wall->is_number()) return "missing wall_seconds";
  for (const char* key : {"counters", "gauges", "metrics"}) {
    const Json* section = report.find(key);
    if (!section || !section->is_object()) {
      return std::string("missing ") + key + " object";
    }
  }
  const Json* results = report.find("results");
  if (!results || !results->is_array()) return "missing results array";
  const Json* jobs = report.find("jobs");
  if (!jobs || !jobs->is_array()) return "missing jobs array";

  std::size_t job_index = 0;
  for (const Json& job : jobs->as_array()) {
    const std::string where = "job " + std::to_string(job_index++);
    if (!job.is_object()) return where + ": not an object";
    const Json* label = job.find("label");
    if (!label || !label->is_string()) return where + ": missing label";
    const Json* stages = job.find("stages");
    if (!stages || !stages->is_array()) return where + ": missing stages";
    const Json* totals = job.find("totals");
    if (!totals || !totals->is_object()) return where + ": missing totals";
    const Json* events = job.find("events");
    if (!events || !events->is_array()) return where + ": missing events";

    for (const StageField& field : kStageFields) {
      double sum = 0.0;
      std::size_t stage_index = 0;
      for (const Json& stage : stages->as_array()) {
        const std::string stage_where =
            where + " stage " + std::to_string(stage_index++);
        if (!stage.is_object()) return stage_where + ": not an object";
        const Json* name = stage.find("name");
        if (!name || !name->is_string()) return stage_where + ": missing name";
        const Json* value = stage.find(field.name);
        if (!value || !value->is_number()) {
          return stage_where + ": missing " + field.name;
        }
        sum += value->as_double();
      }
      const Json* total = totals->find(field.name);
      if (!total || !total->is_number()) {
        return where + ": totals missing " + field.name;
      }
      const double tolerance = 1e-9 * (1.0 + std::fabs(sum));
      if (std::fabs(total->as_double() - sum) > tolerance) {
        return where + ": totals." + field.name + " = " +
               std::to_string(total->as_double()) +
               " but stage rows sum to " + std::to_string(sum);
      }
    }

    std::size_t event_index = 0;
    for (const Json& event : events->as_array()) {
      const std::string event_where =
          where + " event " + std::to_string(event_index++);
      if (!event.is_object()) return event_where + ": not an object";
      const Json* kind = event.find("kind");
      if (!kind || !kind->is_string()) return event_where + ": missing kind";
      const std::string& k = kind->as_string();
      if (k != "retry" && k != "recover" && k != "failover" &&
          k != "worker_death" && k != "worker_respawn") {
        return event_where + ": unknown kind \"" + k + "\"";
      }
      const Json* count = event.find("count");
      if (!count || !count->is_number() || count->as_int() < 1) {
        return event_where + ": missing positive count";
      }
    }
  }
  return "";
}

}  // namespace obs
}  // namespace drapid
