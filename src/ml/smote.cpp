#include "ml/smote.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace drapid {
namespace ml {

namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

/// Indices (into `members`) of the k nearest same-class neighbours of
/// members[self].
std::vector<std::size_t> k_nearest(const Dataset& data,
                                   const std::vector<std::size_t>& members,
                                   std::size_t self, std::size_t k) {
  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(members.size() - 1);
  const auto x = data.instance(members[self]);
  for (std::size_t j = 0; j < members.size(); ++j) {
    if (j == self) continue;
    distances.emplace_back(squared_distance(x, data.instance(members[j])), j);
  }
  k = std::min(k, distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<long>(k),
                    distances.end());
  std::vector<std::size_t> result;
  result.reserve(k);
  for (std::size_t i = 0; i < k; ++i) result.push_back(distances[i].second);
  return result;
}

}  // namespace

Dataset apply_smote(const Dataset& data, const SmoteParams& params, Rng& rng) {
  Dataset out(data.feature_names(), data.class_names());
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    out.add(data.instance(i), data.label(i));
  }
  const auto counts = data.class_counts();
  const std::size_t majority =
      *std::max_element(counts.begin(), counts.end());
  const auto target = static_cast<std::size_t>(
      std::ceil(params.target_ratio * static_cast<double>(majority)));

  std::vector<double> synthetic(data.num_features());
  for (std::size_t c = 0; c < data.num_classes(); ++c) {
    // A target_ratio above 1 pushes `target` past the majority size, which
    // used to sweep the majority class itself into the oversampling loop.
    // The majority is the reference, never a minority: any class already at
    // majority size is skipped no matter the ratio.
    if (counts[c] == 0 || counts[c] >= target || counts[c] >= majority) {
      continue;
    }
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < data.num_instances(); ++i) {
      if (data.label(i) == static_cast<int>(c)) members.push_back(i);
    }
    // Neighbour lists are a pure function of the fold data, so compute each
    // member's list once on first use instead of per synthetic sample
    // (members are typically drawn many times when the class is far below
    // target). k_nearest consumes no randomness: lazy caching leaves the
    // RNG stream — and with it every synthetic sample — unchanged.
    std::vector<std::vector<std::size_t>> neighbour_cache(members.size());
    const std::size_t needed = target - counts[c];
    for (std::size_t s = 0; s < needed; ++s) {
      const std::size_t self = rng.below(members.size());
      const auto x = data.instance(members[self]);
      if (members.size() < 2) {
        out.add(x, static_cast<int>(c));  // cannot interpolate a singleton
        continue;
      }
      std::vector<std::size_t>& neighbours = neighbour_cache[self];
      if (neighbours.empty()) {
        neighbours = k_nearest(data, members, self, params.k);
      }
      const auto pick = neighbours[rng.below(neighbours.size())];
      const auto y = data.instance(members[pick]);
      const double gap = rng.uniform();
      for (std::size_t f = 0; f < data.num_features(); ++f) {
        synthetic[f] = x[f] + gap * (y[f] - x[f]);
      }
      out.add(synthetic, static_cast<int>(c));
    }
  }
  return out;
}

}  // namespace ml
}  // namespace drapid
