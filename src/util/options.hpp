// Tiny command-line option parser for the bench/example binaries.
//
// Supports "--name value" and "--name=value"; unknown flags raise an error so
// a typo in a sweep script fails loudly rather than silently running the
// default experiment.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace drapid {

class Options {
 public:
  /// `spec` maps option name -> default value; every recognized option must
  /// be declared there. Throws std::runtime_error on unknown or malformed
  /// arguments. "--help" is always accepted (declared implicitly); check
  /// help_requested() and print usage() before doing any work.
  Options(int argc, const char* const argv[],
          std::map<std::string, std::string> spec);

  const std::string& str(const std::string& name) const;
  double number(const std::string& name) const;
  long long integer(const std::string& name) const;
  bool flag(const std::string& name) const;  // "1"/"true"/"yes" are true

  /// True when the user explicitly supplied the option.
  bool provided(const std::string& name) const;

  /// All declared options with their resolved values (defaults applied).
  const std::map<std::string, std::string>& items() const { return values_; }

  /// Renders "--name default  (current)" lines for --help output.
  std::string describe() const;

  /// True when the user passed --help.
  bool help_requested() const { return help_requested_; }

  /// Full --help text: "usage: <tool> [options]", an optional one-line
  /// summary, then describe(). Every bench/tool main prints this and exits 0
  /// when help_requested().
  std::string usage(const std::string& tool,
                    const std::string& summary = "") const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> provided_;
  bool help_requested_ = false;
};

}  // namespace drapid
