// Checksummed task-result framing for the process executor.
//
// A worker child ships each completed task back to the coordinator as one
// frame over its Unix-domain socket. The format deliberately reuses the
// spill-file integrity scheme (util/checksum.hpp, PR 1): a leading 8-byte
// magic, fixed u64 header words, a length-prefixed payload, and a trailing
// FNV-1a checksum folded over every byte between magic and checksum. The
// coordinator distinguishes three outcomes per buffered frame — complete
// and valid, incomplete (keep reading), corrupt (treat the worker as dead)
// — so a worker SIGKILLed mid-write is indistinguishable from socket EOF
// and recovers through the same retry path.
//
// The header also carries the task's TaskMetrics counters: bodies run in
// the child, so the counters they mutate live in the child's copy-on-write
// heap and must ride the wire back with the payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "dataflow/metrics.hpp"

namespace drapid::ipc {

/// "DRASPIPC" — same family as the spill magic, distinct stream type.
inline constexpr std::uint64_t kWireMagic = 0x4350495053415244ULL;

/// Frames claiming a payload larger than this are corrupt, not pending: a
/// single flipped length bit must not make the coordinator wait forever for
/// bytes that will never arrive. No real stage partition approaches 1 GiB.
inline constexpr std::uint64_t kMaxWirePayload = 1ull << 30;

/// Thrown by decoders on malformed value payloads (truncated vectors,
/// length overruns). The process executor converts it into a worker death.
struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class FrameKind : std::uint64_t {
  kResult = 0,  ///< task completed; payload = StageIO::serialize output
  kError = 1,   ///< body threw; payload = exception message

  // Pool-mode frames (PR 10). The 14-word header layout is unchanged; any
  // kind-specific metadata (set ids, source indices, stage names) rides
  // inside the payload through the value codecs below.
  kStageBegin = 2,   ///< parent -> worker: stage name, kind, kernel, closure
  kTaskAssign = 3,   ///< parent -> worker: one task with resolved inputs
  kShufflePush = 4,  ///< worker -> parent -> owner: one routed segment
  kStageEnd = 5,     ///< parent -> worker: barrier; wide stages assemble now
  kAck = 6,          ///< worker -> parent: stage-end barrier reply
  kFetch = 7,        ///< parent -> worker: send resident partition bytes
  kData = 8,         ///< worker -> parent: kFetch reply
  kRelease = 9,      ///< parent -> worker: drop a resident set
  kShutdown = 10,    ///< parent -> worker: drain and exit cleanly
};

/// Highest kind a well-formed frame may carry; greater values are corruption
/// (a flipped bit), not a protocol from the future.
inline constexpr std::uint64_t kMaxFrameKind =
    static_cast<std::uint64_t>(FrameKind::kShutdown);

/// Exception type carried by a kError frame, so the coordinator rethrows
/// what the body actually threw.
enum class WireErrorKind : std::uint64_t {
  kRuntime = 0,      ///< std::exception -> std::runtime_error
  kTaskFailure = 1,  ///< TaskFailure (attempt budget exhausted in the child)
};

/// One task result (or error) as it crosses the socket.
struct TaskFrame {
  FrameKind kind = FrameKind::kResult;
  std::uint64_t partition = 0;
  WireErrorKind error_kind = WireErrorKind::kRuntime;
  TaskMetrics metrics;  // partition/records/bytes/attempts/retry_cost
  std::string payload;
};

enum class DecodeStatus {
  kOk,          ///< frame decoded; `consumed` bytes may be discarded
  kIncomplete,  ///< prefix of a valid frame; read more bytes
  kCorrupt,     ///< bad magic, absurd length, or checksum mismatch
};

/// Serializes one frame (magic + header + payload + checksum).
std::string encode_frame(const TaskFrame& frame);

/// One span of payload bytes for the vectored send path.
struct FrameSpan {
  const char* data = nullptr;
  std::size_t size = 0;
};

/// Header and trailer for a frame whose payload is supplied as spans, so a
/// sender can writev([header][span...][trailer]) without first copying the
/// payload into one contiguous buffer. `frame.payload` is ignored; the
/// payload is the concatenation of the spans. The byte stream produced by
/// writing header + spans + trailer is identical to encode_frame on a
/// TaskFrame whose payload equals that concatenation (the checksum is folded
/// across the spans in order — checksum_fold chains byte-for-byte).
struct FrameParts {
  std::string header;   ///< magic + 13 header words
  std::string trailer;  ///< the 8-byte checksum word
};
FrameParts encode_frame_parts(const TaskFrame& frame, const FrameSpan* spans,
                              std::size_t num_spans);

/// Attempts to decode one frame from the front of `data`. On kOk fills
/// `out` and sets `consumed` to the frame's full encoded size; otherwise
/// leaves both untouched.
DecodeStatus try_decode_frame(const char* data, std::size_t size,
                              TaskFrame& out, std::size_t& consumed);

// ---------------------------------------------------------------------------
// Value codecs: the vocabulary StageIO contracts are built from. Every
// codec is an exact round-trip (decode(encode(x)) == x, byte for byte),
// which is what makes process-backend stage outputs byte-identical to
// locally-computed ones.

class WireWriter {
 public:
  void put_u64(std::uint64_t v) {
    buffer_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void put_bytes(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string take() { return std::move(buffer_); }
  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

class WireReader {
 public:
  WireReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  std::uint64_t get_u64() {
    std::uint64_t v;
    need(sizeof(v));
    std::memcpy(&v, data_ + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }
  const char* get_bytes(std::size_t size) {
    need(size);
    const char* p = data_ + pos_;
    pos_ += size;
    return p;
  }
  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t size) const {
    if (size_ - pos_ < size) {
      throw WireError("wire payload truncated: need " + std::to_string(size) +
                      " bytes, have " + std::to_string(size_ - pos_));
    }
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

inline void encode_value(WireWriter& w, const std::string& v) {
  w.put_u64(v.size());
  w.put_bytes(v.data(), v.size());
}
inline void decode_value(WireReader& r, std::string& v) {
  const std::uint64_t n = r.get_u64();
  if (n > r.remaining()) {
    throw WireError("wire string length exceeds payload");
  }
  v.assign(r.get_bytes(static_cast<std::size_t>(n)),
           static_cast<std::size_t>(n));
}

/// Arithmetic types and trivially-copyable aggregates (the typed-RDD record
/// structs) ship as raw in-memory bytes: both ends are the same binary.
template <typename T,
          typename = std::enable_if_t<std::is_trivially_copyable_v<T> &&
                                      !std::is_same_v<T, std::string>>>
inline void encode_value(WireWriter& w, const T& v) {
  w.put_bytes(&v, sizeof(T));
}
template <typename T,
          typename = std::enable_if_t<std::is_trivially_copyable_v<T> &&
                                      !std::is_same_v<T, std::string>>>
inline void decode_value(WireReader& r, T& v) {
  std::memcpy(&v, r.get_bytes(sizeof(T)), sizeof(T));
}

template <typename A, typename B>
inline void encode_value(WireWriter& w, const std::pair<A, B>& v) {
  encode_value(w, v.first);
  encode_value(w, v.second);
}
template <typename A, typename B>
inline void decode_value(WireReader& r, std::pair<A, B>& v) {
  decode_value(r, v.first);
  decode_value(r, v.second);
}

template <typename T>
inline void encode_value(WireWriter& w, const std::optional<T>& v) {
  w.put_u64(v.has_value() ? 1 : 0);
  if (v.has_value()) encode_value(w, *v);
}
template <typename T>
inline void decode_value(WireReader& r, std::optional<T>& v) {
  const std::uint64_t has = r.get_u64();
  if (has > 1) throw WireError("wire optional tag out of range");
  if (has) {
    T value{};
    decode_value(r, value);
    v = std::move(value);
  } else {
    v.reset();
  }
}

template <typename T>
inline void encode_value(WireWriter& w, const std::vector<T>& v) {
  w.put_u64(v.size());
  for (const auto& item : v) encode_value(w, item);
}
template <typename T>
inline void decode_value(WireReader& r, std::vector<T>& v) {
  const std::uint64_t n = r.get_u64();
  // Every element costs at least one byte on the wire, so a count beyond
  // the remaining bytes can only come from corruption.
  if (n > r.remaining()) {
    throw WireError("wire vector length exceeds payload");
  }
  v.clear();
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    T item{};
    decode_value(r, item);
    v.push_back(std::move(item));
  }
}

/// Convenience: encode a whole vector as a standalone payload string.
template <typename T>
inline std::string encode_payload(const std::vector<T>& v) {
  WireWriter w;
  encode_value(w, v);
  return w.take();
}
/// Decodes a standalone payload produced by encode_payload; requires the
/// payload to be fully consumed (trailing garbage is corruption).
template <typename T>
inline std::vector<T> decode_payload(const std::string& bytes) {
  WireReader r(bytes);
  std::vector<T> v;
  decode_value(r, v);
  if (!r.done()) throw WireError("wire payload has trailing bytes");
  return v;
}

}  // namespace drapid::ipc
