// RQ4: does ALM improve classification of rare / hard instances?
//
// The paper listed every positive instance with the classifiers that got it
// right, took the 20 most mis-classified ones (missed by 90–99 % of all
// classifiers), and found ALM classifiers more than twice as likely to
// classify them correctly than binary classifiers (3× on the 75–99 % band);
// RF accounted for more correct calls on them than all other learners
// combined. This bench repeats that analysis: all six learners × all five
// schemes on one benchmark, same folds everywhere.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "exp/trial_runner.hpp"
#include "obs/bench.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  obs::BenchOptions bench(
      "bench_rq4_rare_events", argc, argv,
      {{"positives", "250"}, {"negatives", "1500"}},
      "RQ4: rare-event classification, binary vs ALM schemes.");
  if (bench.help()) return 0;
  const Options& opts = bench.opts();
  std::cout << "=== RQ4: rare-event classification, binary vs ALM ===\n";

  BenchmarkConfig cfg;
  cfg.survey = SurveyConfig::gbt350drift();
  cfg.survey.obs_length_s = 70.0;
  cfg.target_positives =
      static_cast<std::size_t>(bench.scaled(opts.integer("positives")));
  cfg.target_negatives =
      static_cast<std::size_t>(bench.scaled(opts.integer("negatives")));
  cfg.visibility = 0.10;
  cfg.seed = static_cast<std::uint64_t>(bench.seed());
  std::cerr << "building benchmark...\n";
  const auto pulses = build_benchmark_pulses(cfg);

  struct Outcome {
    TrialSpec spec;
    std::vector<bool> correct;  // aligned across trials (same folds/seed)
  };
  // Both imbalance treatments, as in the paper's trial grid: SMOTE helps
  // ALM specifically (rare subclasses gain synthetic support).
  std::vector<Outcome> outcomes;
  std::vector<int> labels;  // binary truth of the CV rows
  for (const bool smote : {false, true}) {
    for (ml::AlmScheme scheme : ml::all_alm_schemes()) {
      for (ml::LearnerType learner : ml::all_learner_types()) {
        TrialSpec spec;
        spec.scheme = scheme;
        spec.learner = learner;
        spec.smote = smote;
        spec.seed = static_cast<std::uint64_t>(bench.seed());
        TrialResult r = run_trial(pulses, spec);
        if (labels.empty()) {
          labels.reserve(r.cv_labels.size());
          for (int l : r.cv_labels) labels.push_back(l != 0 ? 1 : 0);
        }
        outcomes.push_back({spec, std::move(r.correct)});
      }
    }
  }

  // Per-positive-instance miss rates across every classifier.
  std::vector<std::size_t> positive_rows;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) positive_rows.push_back(i);
  }
  std::vector<double> miss_rate(labels.size(), 0.0);
  for (std::size_t row : positive_rows) {
    std::size_t missed = 0;
    for (const auto& o : outcomes) missed += !o.correct[row];
    miss_rate[row] =
        static_cast<double>(missed) / static_cast<double>(outcomes.size());
  }

  // The analysis bands the paper uses.
  const auto analyse = [&](double lo, double hi, const char* band) {
    std::vector<std::size_t> hard;
    for (std::size_t row : positive_rows) {
      if (miss_rate[row] >= lo && miss_rate[row] <= hi) hard.push_back(row);
    }
    if (hard.empty()) {
      std::cout << "band " << band << ": no instances\n";
      return;
    }
    double binary_hits = 0, binary_chances = 0, alm_hits = 0, alm_chances = 0;
    double rf_hits = 0, other_hits = 0;
    for (const auto& o : outcomes) {
      const bool is_binary = o.spec.scheme == ml::AlmScheme::kBinary;
      for (std::size_t row : hard) {
        const double hit = o.correct[row] ? 1.0 : 0.0;
        (is_binary ? binary_hits : alm_hits) += hit;
        (is_binary ? binary_chances : alm_chances) += 1.0;
        if (o.spec.learner == ml::LearnerType::kRandomForest) rf_hits += hit;
        else other_hits += hit;
      }
    }
    const double binary_rate =
        binary_chances > 0 ? binary_hits / binary_chances : 0.0;
    const double alm_rate = alm_chances > 0 ? alm_hits / alm_chances : 0.0;
    std::cout << "band " << band << ": " << hard.size()
              << " hard positives | binary correct-rate "
              << format_number(binary_rate * 100, 1) << "%, ALM correct-rate "
              << format_number(alm_rate * 100, 1) << "% ("
              << format_number(binary_rate > 0 ? alm_rate / binary_rate : 0.0,
                               2)
              << "x) | RF correct calls " << format_number(rf_hits, 0)
              << " vs all other learners " << format_number(other_hits, 0)
              << '\n';
  };

  std::cout << '\n';
  analyse(0.90, 0.99, "missed by 90-99% (paper: ALM >2x binary)");
  analyse(0.75, 0.99, "missed by 75-99% (paper: ALM >3x binary)");
  analyse(0.00, 0.10, "easy (sanity: both near 100%)");

  // The paper's top-20 most mis-classified list.
  std::vector<std::size_t> order = positive_rows;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return miss_rate[a] > miss_rate[b];
  });
  order.resize(std::min<std::size_t>(20, order.size()));
  double binary20 = 0, alm20 = 0, b_n = 0, a_n = 0;
  for (const auto& o : outcomes) {
    const bool is_binary = o.spec.scheme == ml::AlmScheme::kBinary;
    for (std::size_t row : order) {
      (is_binary ? binary20 : alm20) += o.correct[row] ? 1.0 : 0.0;
      (is_binary ? b_n : a_n) += 1.0;
    }
  }
  std::cout << "top-20 most mis-classified: binary "
            << format_number(b_n > 0 ? binary20 / b_n * 100 : 0, 1)
            << "% vs ALM " << format_number(a_n > 0 ? alm20 / a_n * 100 : 0, 1)
            << "% correct\n";
  obs::Json row = obs::Json::object();
  row.set("top20_binary_correct_rate", b_n > 0 ? binary20 / b_n : 0.0);
  row.set("top20_alm_correct_rate", a_n > 0 ? alm20 / a_n : 0.0);
  bench.report().add_result(std::move(row));
  bench.finish();
  return 0;
}
