// Scalar kernel implementations and the runtime dispatcher.
//
// The scalar loops are written exactly like the pre-kernel code they replace
// (same operation per element, same order), so the scalar path is
// bit-identical to seed on every input. The AVX2 implementations live in
// kernels_avx2.cpp, compiled with -mavx2 in its own translation unit so no
// AVX2 instruction can leak into code that runs on non-AVX2 hosts.
#include "dedisp/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace drapid {
namespace kernels {

namespace scalar {

void accumulate_f32(double* out, const float* in, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += in[i];
}

void accumulate_f64(double* out, const double* in, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += in[i];
}

void combine_f64(double* out, const double* const* in, std::size_t ngroups,
                 std::size_t n) {
  if (ngroups == 0) {
    std::fill(out, out + n, 0.0);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = in[0][i];
    for (std::size_t g = 1; g < ngroups; ++g) acc += in[g][i];
    out[i] = acc;
  }
}

void abs_deviation(double* out, const double* in, std::size_t n,
                   double center) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::abs(in[i] - center);
}

double select_kth(double* v, double* scratch, std::size_t n, std::size_t k) {
  // Exact selection is algorithm-independent, so the scalar path just uses
  // the library's introselect — precisely what robust_stats called before.
  (void)scratch;
  std::nth_element(v, v + static_cast<long>(k), v + n);
  return v[k];
}

void certify_below(const double* prefix, std::size_t begin, std::size_t end,
                   std::size_t back, std::size_t ahead, double bound,
                   unsigned char* below) {
  for (std::size_t c = begin; c < end; ++c) {
    below[c] &=
        static_cast<unsigned char>(prefix[c + ahead] - prefix[c - back] <
                                   bound);
  }
}

}  // namespace scalar

namespace {

bool detect_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool resolve_use_avx2() {
  if (!detect_avx2()) return false;
  const char* force = std::getenv("DRAPID_FORCE_SCALAR");
  return !(force != nullptr && force[0] == '1' && force[1] == '\0');
}

}  // namespace

bool avx2_supported() {
  static const bool supported = detect_avx2();
  return supported;
}

bool using_avx2() {
  static const bool use = resolve_use_avx2();
  return use;
}

const char* dispatch_name() { return using_avx2() ? "avx2" : "scalar"; }

void accumulate_f32(double* out, const float* in, std::size_t n) {
  if (using_avx2()) {
    avx2::accumulate_f32(out, in, n);
  } else {
    scalar::accumulate_f32(out, in, n);
  }
}

void accumulate_f64(double* out, const double* in, std::size_t n) {
  if (using_avx2()) {
    avx2::accumulate_f64(out, in, n);
  } else {
    scalar::accumulate_f64(out, in, n);
  }
}

void combine_f64(double* out, const double* const* in, std::size_t ngroups,
                 std::size_t n) {
  if (using_avx2()) {
    avx2::combine_f64(out, in, ngroups, n);
  } else {
    scalar::combine_f64(out, in, ngroups, n);
  }
}

void abs_deviation(double* out, const double* in, std::size_t n,
                   double center) {
  if (using_avx2()) {
    avx2::abs_deviation(out, in, n, center);
  } else {
    scalar::abs_deviation(out, in, n, center);
  }
}

double select_kth(double* v, double* scratch, std::size_t n, std::size_t k) {
  return using_avx2() ? avx2::select_kth(v, scratch, n, k)
                      : scalar::select_kth(v, scratch, n, k);
}

void certify_below(const double* prefix, std::size_t begin, std::size_t end,
                   std::size_t back, std::size_t ahead, double bound,
                   unsigned char* below) {
  if (using_avx2()) {
    avx2::certify_below(prefix, begin, end, back, ahead, bound, below);
  } else {
    scalar::certify_below(prefix, begin, end, back, ahead, bound, below);
  }
}

#if !defined(__x86_64__) && !defined(__i386__)
// Non-x86 build: the AVX2 entry points exist so the dispatcher links, but
// avx2_supported() is always false and they are never reached.
namespace avx2 {
void accumulate_f32(double* out, const float* in, std::size_t n) {
  scalar::accumulate_f32(out, in, n);
}
void accumulate_f64(double* out, const double* in, std::size_t n) {
  scalar::accumulate_f64(out, in, n);
}
void combine_f64(double* out, const double* const* in, std::size_t ngroups,
                 std::size_t n) {
  scalar::combine_f64(out, in, ngroups, n);
}
void abs_deviation(double* out, const double* in, std::size_t n,
                   double center) {
  scalar::abs_deviation(out, in, n, center);
}
double select_kth(double* v, double* scratch, std::size_t n, std::size_t k) {
  return scalar::select_kth(v, scratch, n, k);
}
void certify_below(const double* prefix, std::size_t begin, std::size_t end,
                   std::size_t back, std::size_t ahead, double bound,
                   unsigned char* below) {
  scalar::certify_below(prefix, begin, end, back, ahead, bound, below);
}
}  // namespace avx2
#endif

}  // namespace kernels
}  // namespace drapid
