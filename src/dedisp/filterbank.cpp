#include "dedisp/filterbank.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "synth/dispersion.hpp"

namespace drapid {

Filterbank::Filterbank(FilterbankConfig config, std::size_t num_samples)
    : config_(config), num_samples_(num_samples) {
  if (config_.num_channels == 0 || config_.sample_time_ms <= 0.0 ||
      config_.bandwidth_mhz <= 0.0) {
    throw std::invalid_argument("invalid filterbank configuration");
  }
  if (num_samples_ == 0) {
    throw std::invalid_argument("observation shorter than one sample");
  }
  // Channel 0 at the top of the band, descending.
  const double chan_bw = config_.bandwidth_mhz /
                         static_cast<double>(config_.num_channels);
  channel_freqs_mhz_.resize(config_.num_channels);
  for (std::size_t c = 0; c < config_.num_channels; ++c) {
    channel_freqs_mhz_[c] = config_.center_freq_mhz +
                            config_.bandwidth_mhz / 2.0 -
                            (static_cast<double>(c) + 0.5) * chan_bw;
  }
  data_.assign(config_.num_channels * num_samples_, 0.0f);
}

Filterbank::Filterbank(FilterbankConfig config)
    : Filterbank(config,
                 config.obs_length_s > 0.0 && config.sample_time_ms > 0.0
                     ? static_cast<std::size_t>(config.obs_length_s * 1e3 /
                                                config.sample_time_ms)
                     : 0) {
  if (config_.obs_length_s <= 0.0) {
    throw std::invalid_argument("invalid filterbank configuration");
  }
}

void Filterbank::add_noise(Rng& rng, double sigma) {
  for (auto& v : data_) v += static_cast<float>(rng.normal(0.0, sigma));
}

void Filterbank::inject_pulse(double t0_s, double dm, double amplitude,
                              double width_ms) {
  const double sigma_s = std::max(1e-6, width_ms * 1e-3 / 2.355);  // FWHM→σ
  for (std::size_t c = 0; c < num_channels(); ++c) {
    const double arrival = t0_s + dispersion_delay_s(dm, channel_freq_mhz(c));
    // Paint the profile over ±4σ around the arrival time.
    const double t_lo = arrival - 4.0 * sigma_s;
    const double t_hi = arrival + 4.0 * sigma_s;
    const auto s_lo = static_cast<long>(t_lo * 1e3 / config_.sample_time_ms);
    const auto s_hi = static_cast<long>(t_hi * 1e3 / config_.sample_time_ms);
    for (long s = std::max(0l, s_lo);
         s <= s_hi && s < static_cast<long>(num_samples_); ++s) {
      const double t = static_cast<double>(s) * config_.sample_time_ms * 1e-3;
      const double d = (t - arrival) / sigma_s;
      at(c, static_cast<std::size_t>(s)) +=
          static_cast<float>(amplitude * std::exp(-0.5 * d * d));
    }
  }
}

void Filterbank::inject_rfi_tone(std::size_t channel, double amplitude,
                                 double t_begin_s, double t_end_s) {
  if (channel >= num_channels()) {
    throw std::invalid_argument("RFI channel out of range");
  }
  const auto s_lo = static_cast<long>(t_begin_s * 1e3 / config_.sample_time_ms);
  const auto s_hi = static_cast<long>(t_end_s * 1e3 / config_.sample_time_ms);
  for (long s = std::max(0l, s_lo);
       s <= s_hi && s < static_cast<long>(num_samples_); ++s) {
    at(channel, static_cast<std::size_t>(s)) += static_cast<float>(amplitude);
  }
}

void Filterbank::inject_broadband_impulse(double t0_s, double amplitude) {
  const auto s = static_cast<long>(t0_s * 1e3 / config_.sample_time_ms);
  if (s < 0 || s >= static_cast<long>(num_samples_)) return;
  for (std::size_t c = 0; c < num_channels(); ++c) {
    at(c, static_cast<std::size_t>(s)) += static_cast<float>(amplitude);
  }
}

// --- SIGPROC-style .fil I/O --------------------------------------------------
//
// Header grammar: a sequence of [u32 name-length][name][value] items between
// the HEADER_START and HEADER_END markers; values are little-endian i32,
// f64, or a length-prefixed string depending on the (fixed, well-known) key.
// Data follows as frames of nchans samples in time order.

namespace {

[[noreturn]] void fil_fail(const std::string& path, const std::string& why) {
  throw FilterbankError("filterbank file " + path + ": " + why);
}

void fil_write_string(std::ostream& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void fil_write_int(std::ostream& out, const std::string& name,
                   std::int32_t v) {
  fil_write_string(out, name);
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void fil_write_double(std::ostream& out, const std::string& name, double v) {
  fil_write_string(out, name);
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Reads one length-prefixed header token; header item names are short, so
/// anything outside (0, 80] means the stream is not a SIGPROC header (or the
/// length prefix is corrupt) and must not drive an allocation.
std::string fil_read_token(std::istream& in, const std::string& path) {
  std::uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in) fil_fail(path, "truncated header (EOF in item length)");
  if (len == 0 || len > 80) {
    fil_fail(path, "implausible header item length " + std::to_string(len));
  }
  std::string token(len, '\0');
  in.read(token.data(), static_cast<std::streamsize>(len));
  if (!in) fil_fail(path, "truncated header (EOF in item name)");
  return token;
}

std::int32_t fil_read_int(std::istream& in, const std::string& path,
                          const std::string& name) {
  std::int32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) fil_fail(path, "truncated header (EOF in value of " + name + ")");
  return v;
}

double fil_read_double(std::istream& in, const std::string& path,
                       const std::string& name) {
  double v = 0.0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) fil_fail(path, "truncated header (EOF in value of " + name + ")");
  return v;
}

bool fil_is_int_key(const std::string& k) {
  return k == "telescope_id" || k == "machine_id" || k == "data_type" ||
         k == "barycentric" || k == "pulsarcentric" || k == "nbits" ||
         k == "nchans" || k == "nifs" || k == "nsamples" || k == "ibeam" ||
         k == "nbeams";
}

bool fil_is_double_key(const std::string& k) {
  return k == "tsamp" || k == "tstart" || k == "fch1" || k == "foff" ||
         k == "az_start" || k == "za_start" || k == "src_raj" ||
         k == "src_dej" || k == "refdm" || k == "period";
}

bool fil_is_string_key(const std::string& k) {
  return k == "source_name" || k == "rawdatafile";
}

}  // namespace

void Filterbank::write_fil(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) fil_fail(path, "cannot open for writing");
  fil_write_string(out, "HEADER_START");
  fil_write_int(out, "nchans", static_cast<std::int32_t>(num_channels()));
  fil_write_int(out, "nbits", 32);
  fil_write_int(out, "nifs", 1);
  fil_write_int(out, "nsamples", static_cast<std::int32_t>(num_samples_));
  fil_write_double(out, "tsamp", config_.sample_time_ms * 1e-3);
  fil_write_double(out, "fch1", channel_freqs_mhz_.front());
  fil_write_double(out, "foff", -config_.bandwidth_mhz /
                                    static_cast<double>(num_channels()));
  fil_write_string(out, "HEADER_END");
  // Time-major frames: sample s of every channel, ascending channel — the
  // on-disk order a live receiver emits and a streaming ingester consumes.
  std::vector<float> frame(num_channels());
  for (std::size_t s = 0; s < num_samples_; ++s) {
    for (std::size_t c = 0; c < num_channels(); ++c) {
      frame[c] = at(c, s);
    }
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size() * sizeof(float)));
  }
  if (!out) fil_fail(path, "write failed");
}

Filterbank Filterbank::read_fil(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fil_fail(path, "cannot open");
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  if (fil_read_token(in, path) != "HEADER_START") {
    fil_fail(path, "missing HEADER_START (not a filterbank file)");
  }
  std::int32_t nchans = -1, nbits = -1, nifs = 1, nsamples = -1;
  double tsamp = 0.0, fch1 = 0.0, foff = 0.0;
  while (true) {
    const std::string key = fil_read_token(in, path);
    if (key == "HEADER_END") break;
    if (fil_is_int_key(key)) {
      const std::int32_t v = fil_read_int(in, path, key);
      if (key == "nchans") nchans = v;
      else if (key == "nbits") nbits = v;
      else if (key == "nifs") nifs = v;
      else if (key == "nsamples") nsamples = v;
    } else if (fil_is_double_key(key)) {
      const double v = fil_read_double(in, path, key);
      if (key == "tsamp") tsamp = v;
      else if (key == "fch1") fch1 = v;
      else if (key == "foff") foff = v;
    } else if (fil_is_string_key(key)) {
      (void)fil_read_token(in, path);
    } else {
      // An unknown key has an unknown value width: nothing after it can be
      // parsed reliably, so fail loudly instead of desynchronizing.
      fil_fail(path, "unknown header item \"" + key + "\"");
    }
  }
  const auto header_bytes = static_cast<std::uint64_t>(in.tellg());

  // Header consistency before any data is touched.
  if (nchans <= 0) {
    fil_fail(path, "nchans " + std::to_string(nchans) +
                       " (zero-channel files have no data layout)");
  }
  if (nbits != 32) {
    fil_fail(path, "nbits " + std::to_string(nbits) +
                       " unsupported (only 32-bit float samples)");
  }
  if (nifs != 1) {
    fil_fail(path, "nifs " + std::to_string(nifs) +
                       " unsupported (single-IF data only)");
  }
  if (!(tsamp > 0.0) || !std::isfinite(tsamp)) {
    fil_fail(path, "tsamp " + std::to_string(tsamp) + " must be positive");
  }
  if (!std::isfinite(fch1) || !std::isfinite(foff) || foff >= 0.0) {
    fil_fail(path, "fch1/foff must be finite with foff < 0 "
                   "(channel 0 at the top of the band)");
  }

  // Data-section consistency against the file size: no partial frames, no
  // disagreement with a declared nsamples, at least one full frame.
  const std::uint64_t data_bytes = file_size - header_bytes;
  const std::uint64_t frame_bytes =
      static_cast<std::uint64_t>(nchans) * sizeof(float);
  if (data_bytes % frame_bytes != 0) {
    fil_fail(path, "truncated data: " + std::to_string(data_bytes) +
                       " bytes is not a whole number of " +
                       std::to_string(frame_bytes) + "-byte frames");
  }
  const std::uint64_t frames = data_bytes / frame_bytes;
  if (frames == 0) fil_fail(path, "no sample frames after the header");
  if (nsamples >= 0 && static_cast<std::uint64_t>(nsamples) != frames) {
    fil_fail(path, "nsamples " + std::to_string(nsamples) +
                       " disagrees with the " + std::to_string(frames) +
                       " frames present in the file");
  }

  FilterbankConfig config;
  config.num_channels = static_cast<std::size_t>(nchans);
  config.sample_time_ms = tsamp * 1e3;
  config.obs_length_s = static_cast<double>(frames) * tsamp;
  const double chan_bw = -foff;
  config.bandwidth_mhz = chan_bw * static_cast<double>(nchans);
  config.center_freq_mhz =
      fch1 + 0.5 * chan_bw - config.bandwidth_mhz / 2.0;
  Filterbank fb(config, static_cast<std::size_t>(frames));
  // SIGPROC's channel grammar is the ladder fch1 + c*foff; adopt it verbatim
  // (rather than re-deriving from the band center) so the frequencies — and
  // therefore the dispersion shift plan — follow the file's own spelling.
  for (std::size_t c = 0; c < fb.num_channels(); ++c) {
    fb.channel_freqs_mhz_[c] = fch1 + static_cast<double>(c) * foff;
  }

  std::vector<float> frame(static_cast<std::size_t>(nchans));
  for (std::uint64_t s = 0; s < frames; ++s) {
    in.read(reinterpret_cast<char*>(frame.data()),
            static_cast<std::streamsize>(frame_bytes));
    if (!in) {
      fil_fail(path, "short read in frame " + std::to_string(s) +
                         " (file changed underneath?)");
    }
    for (std::size_t c = 0; c < fb.num_channels(); ++c) {
      fb.at(c, static_cast<std::size_t>(s)) = frame[c];
    }
  }
  return fb;
}

}  // namespace drapid
