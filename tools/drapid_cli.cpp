// drapid — command-line front end to the library.
//
//   drapid simulate --survey gbt350|palfa|fast_crafts|ska_mid
//                   --observations N --out DIR
//       writes DIR/data.csv, DIR/clusters.csv and DIR/truth.csv; the
//       fast_crafts and ska_mid presets include structured RFI
//       (burst trains, carriers, swept chirps) with ground-truth labels
//   drapid search --data FILE --clusters FILE --out FILE [--executors N]
//                 [--backend local|process] [--workers N] [--pool job|stage]
//                 [--fault-rate R] [--fault-seed S] [--max-attempts K]
//                 [--kill-worker STAGE:ID]
//       runs the D-RAPID job on real files and writes the ML file;
//       --backend=process executes stages in forked worker processes
//       (candidate output is byte-identical to --backend=local);
//       --fault-rate injects task kills, spill damage, and dead data nodes
//       at rate R and lets retry + lineage recovery absorb them;
//       --kill-worker SIGKILLs one process worker mid-stage
//   drapid classify --ml FILE [--scheme 2|4*|4|7|8] [--filter IG|GR|SU|Cor|1R]
//                   [--learner RF|J48|PART|JRip|SMO|MPN] [--smote]
//       5-fold cross-validates a labeled ML file and reports the scores
//   drapid sweep [--fil FILE] [--survey gbt350|palfa|fast_crafts|ska_mid]
//                [--sweep exact|subband] [--rfi off|zerodm|mask|both]
//                [--groups N] [--threads N] [--snr X] [--stride N]
//                [--dm-max X] [--out FILE]
//       dedisperses a SIGPROC .fil file (or a synthesized demo observation)
//       over the survey's DM grid and writes a PRESTO-style .singlepulse
//       file; --sweep=subband runs the two-stage subband method, whose
//       detected events are identical to the exact sweep; --rfi selects the
//       mitigation stage (zero-DM subtraction and/or robust channel masking)
//
// Every subcommand is deterministic for a given --seed.
#include <fstream>
#include <iostream>
#include <sstream>

#include "dataflow/cluster_model.hpp"
#include "dedisp/kernels.hpp"
#include "dedisp/rfi_mitigation.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "drapid/pipeline.hpp"
#include "exp/trial_runner.hpp"
#include "synth/filterbank_survey.hpp"
#include "synth/rfi.hpp"
#include "spe/spe_io.hpp"
#include "util/rng.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/text_table.hpp"

using namespace drapid;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << contents;
}

SurveyConfig survey_by_name(const std::string& name) {
  if (name == "gbt350") return SurveyConfig::gbt350drift();
  if (name == "palfa") return SurveyConfig::palfa();
  if (name == "fast_crafts") return SurveyConfig::fast_crafts();
  if (name == "ska_mid") return SurveyConfig::ska_mid();
  throw std::runtime_error(
      "unknown survey: " + name +
      " (expected gbt350, palfa, fast_crafts, or ska_mid)");
}

int cmd_simulate(int argc, const char* const argv[]) {
  Options opts(argc, argv,
               {{"survey", "gbt350"},
                {"observations", "8"},
                {"visibility", "0.06"},
                {"seed", "1"},
                {"out", "."}});
  if (opts.help_requested()) {
    std::cout << opts.usage("drapid simulate",
                            "Simulates survey observations and writes "
                            "data.csv, clusters.csv, truth.csv, catalog.csv "
                            "into --out.");
    return 0;
  }
  PipelineConfig config;
  config.survey = survey_by_name(opts.str("survey"));
  config.num_observations =
      static_cast<std::size_t>(opts.integer("observations"));
  config.visibility = opts.number("visibility");
  config.seed = static_cast<std::uint64_t>(opts.integer("seed"));
  const PipelineData data = prepare_pipeline_data(config);

  const std::string dir = opts.str("out");
  write_file(dir + "/data.csv", data.data_csv);
  write_file(dir + "/clusters.csv", data.cluster_csv);
  {
    // The known-source catalogue (the ATNF/RRATalog stand-in, §4).
    std::ostringstream cat;
    catalog_from_population(data.sources).save(cat);
    write_file(dir + "/catalog.csv", cat.str());
  }
  std::ostringstream truth;
  truth << "observation,source,type,time_s,dm,peak_snr,num_spes\n";
  for (const auto& obs : data.observations) {
    for (const auto& gt : obs.truth) {
      truth << obs.data.id.key() << ',' << gt.source_name << ','
            << (gt.type == SourceType::kRrat ? "rrat" : "pulsar") << ','
            << gt.time_s << ',' << gt.dm << ',' << gt.peak_snr << ','
            << gt.num_spes << '\n';
    }
  }
  write_file(dir + "/truth.csv", truth.str());
  std::cout << "wrote " << dir << "/data.csv (" << data.total_spes
            << " SPEs), clusters.csv (" << data.clusters.size()
            << " clusters), truth.csv, catalog.csv ("
            << data.sources.size() << " sources)\n";
  return 0;
}

int cmd_search(int argc, const char* const argv[]) {
  Options opts(argc, argv, {{"data", "data.csv"},
                            {"clusters", "clusters.csv"},
                            {"out", "ml.csv"},
                            {"truth", ""},
                            {"catalog", ""},
                            {"survey", "gbt350"},
                            {"executors", "4"},
                            {"threads", "2"},
                            {"backend", "local"},
                            {"workers", "0"},
                            {"pool", "job"},
                            {"kill-worker", ""},
                            {"fault-rate", "0"},
                            {"fault-seed", "24077"},
                            {"max-attempts", "4"}});
  if (opts.help_requested()) {
    std::cout << opts.usage(
        "drapid search",
        "Runs the D-RAPID dataflow job on --data and --clusters files and "
        "writes the ML file; --backend=process runs stages in --workers "
        "forked worker processes (0 = one per executor) with --pool=job "
        "keeping one pool alive for the whole job; --fault-rate "
        "injects recoverable faults and --kill-worker STAGE:ID SIGKILLs a "
        "process worker mid-stage.");
    return 0;
  }
  BlockStore store(15);
  store.put("data", read_file(opts.str("data")));
  store.put("clusters", read_file(opts.str("clusters")));

  EngineConfig engine_config;
  engine_config.num_executors =
      static_cast<std::size_t>(opts.integer("executors"));
  engine_config.worker_threads =
      static_cast<std::size_t>(opts.integer("threads"));
  engine_config.max_task_attempts =
      static_cast<std::size_t>(opts.integer("max-attempts"));
  engine_config.exec.backend = parse_exec_backend(opts.str("backend"));
  engine_config.exec.workers =
      static_cast<std::size_t>(opts.integer("workers"));
  // --pool=job keeps one worker pool alive for the whole job with output
  // partitions resident in the workers; --pool=stage is the PR 7
  // fork-per-stage path, preserved as the comparison oracle.
  engine_config.exec.pool = parse_pool_mode(opts.str("pool"));
  // --kill-worker STAGE:ID deterministically SIGKILLs process-backend worker
  // ID during the first stage whose name starts with STAGE (recovered via
  // the retry budget; the local backend ignores it).
  if (!opts.str("kill-worker").empty()) {
    const std::string& spec = opts.str("kill-worker");
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("--kill-worker expects STAGE:ID, got " + spec);
    }
    WorkerKill kill;
    kill.stage = spec.substr(0, colon);
    kill.worker = static_cast<std::size_t>(parse_int(spec.substr(colon + 1)));
    engine_config.faults.kill_workers.push_back(std::move(kill));
  }
  // --fault-rate R injects task kills, spill-file damage, and dead data
  // nodes at rate R (deterministic per --fault-seed); the job retries and
  // recovers, and the summary's retries column shows the cost.
  const double fault_rate = opts.number("fault-rate");
  if (fault_rate > 0.0) {
    engine_config.faults.seed =
        static_cast<std::uint64_t>(opts.integer("fault-seed"));
    engine_config.faults.task_failure_rate = fault_rate;
    engine_config.faults.spill_fault_rate = fault_rate;
    engine_config.faults.node_fault_rate = fault_rate;
  }
  Engine engine(engine_config);
  const DmGrid grid = *survey_by_name(opts.str("survey")).grid;
  auto result = run_drapid(engine, store, "data", "clusters", "ml", grid, {});

  // Optional ground truth (as written by `drapid simulate`): label the ML
  // records so `drapid classify` can train on them.
  if (!opts.str("truth").empty()) {
    std::map<std::string, std::vector<GroundTruthPulse>> truth;
    std::istringstream truth_in(read_file(opts.str("truth")));
    std::string line;
    std::getline(truth_in, line);  // header
    while (std::getline(truth_in, line)) {
      if (line.empty()) continue;
      const auto row = parse_csv_line(line);
      if (row.size() != 7) {
        throw std::runtime_error("malformed truth row: " + line);
      }
      GroundTruthPulse gt;
      gt.source_name = row[1];
      gt.type = row[2] == "rrat" ? SourceType::kRrat : SourceType::kPulsar;
      gt.time_s = parse_double(row[3]);
      gt.dm = parse_double(row[4]);
      gt.peak_snr = parse_double(row[5]);
      gt.num_spes = static_cast<std::uint32_t>(parse_int(row[6]));
      truth[row[0]].push_back(gt);
    }
    label_records(result.records, truth);
    std::ostringstream labeled;
    write_ml_file(labeled, result.records);
    store.put("ml", labeled.str());
    std::size_t positives = 0;
    for (const auto& rec : result.records) {
      positives += !rec.truth_label.empty();
    }
    std::cout << "labeled " << positives << " of " << result.records.size()
              << " records as pulsar/RRAT\n";
  }
  if (!opts.str("catalog").empty()) {
    std::istringstream cat_in(read_file(opts.str("catalog")));
    const auto catalog = SourceCatalog::load(cat_in);
    label_records_by_catalog(result.records, catalog);
    std::ostringstream labeled;
    write_ml_file(labeled, result.records);
    store.put("ml", labeled.str());
    std::size_t positives = 0;
    for (const auto& rec : result.records) {
      positives += !rec.truth_label.empty();
    }
    std::cout << "catalogue crossmatch labeled " << positives << " of "
              << result.records.size() << " records\n";
  }
  write_file(opts.str("out"), store.get("ml"));
  if (fault_rate > 0.0) {
    std::cout << "faults injected at rate " << fault_rate << ": "
              << result.metrics.total_retries() << " task retries, "
              << result.partitions_recovered
              << " spill partitions recomputed from lineage, "
              << result.replica_failovers << " replica failovers\n";
  }
  std::cout << "searched " << result.clusters_searched << " clusters ("
            << result.spes_scanned << " SPEs scanned), found "
            << result.records.size() << " single pulses in "
            << format_number(result.wall_seconds, 2) << " s\n"
            << "wrote " << opts.str("out") << '\n'
            << "\nmeasured work:\n"
            << result.metrics.summary();
  return 0;
}

int cmd_classify(int argc, const char* const argv[]) {
  Options opts(argc, argv, {{"ml", "ml.csv"},
                            {"scheme", "8"},
                            {"filter", "IG"},
                            {"learner", "RF"},
                            {"smote", "false"},
                            {"seed", "1"},
                            {"cv-threads", "1"}});
  if (opts.help_requested()) {
    std::cout << opts.usage("drapid classify",
                            "5-fold cross-validates a labeled ML file and "
                            "reports recall/precision/F-measure.");
    return 0;
  }
  std::ifstream in(opts.str("ml"));
  if (!in) throw std::runtime_error("cannot open " + opts.str("ml"));
  const auto records = read_ml_file(in);
  std::vector<LabeledPulse> pulses;
  for (const auto& rec : records) {
    LabeledPulse lp;
    lp.features = rec.features;
    lp.is_pulsar = !rec.truth_label.empty();
    lp.is_rrat = rec.truth_label == "rrat";
    pulses.push_back(lp);
  }

  TrialSpec spec;
  for (ml::AlmScheme s : ml::all_alm_schemes()) {
    if (ml::alm_scheme_name(s) == opts.str("scheme")) spec.scheme = s;
  }
  spec.filter.reset();
  for (ml::FilterMethod f : ml::all_filter_methods()) {
    if (ml::filter_abbreviation(f) == opts.str("filter")) spec.filter = f;
  }
  bool learner_found = false;
  for (ml::LearnerType l : ml::all_learner_types()) {
    if (ml::learner_name(l) == opts.str("learner")) {
      spec.learner = l;
      learner_found = true;
    }
  }
  if (!learner_found) {
    throw std::runtime_error("unknown learner: " + opts.str("learner"));
  }
  spec.smote = opts.flag("smote");
  spec.seed = static_cast<std::uint64_t>(opts.integer("seed"));
  // Folds run on the work-stealing pool; any thread count reports
  // byte-identical scores.
  spec.cv_threads = static_cast<std::size_t>(opts.integer("cv-threads"));

  const TrialResult result = run_trial(pulses, spec);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "Recall", "Precision", "F-Measure",
                  "train(s)", "test(s)"});
  rows.push_back({spec.describe(), format_number(result.recall),
                  format_number(result.precision),
                  format_number(result.f_measure),
                  format_number(result.train_seconds),
                  format_number(result.test_seconds)});
  std::cout << render_table(rows);
  return 0;
}

int cmd_sweep(int argc, const char* const argv[]) {
  Options opts(argc, argv, {{"fil", ""},
                            {"survey", "gbt350"},
                            {"sweep", "exact"},
                            {"rfi", "off"},
                            {"groups", "0"},
                            {"threads", "1"},
                            {"snr", "5"},
                            {"stride", "1"},
                            {"dm-max", "20"},
                            {"dm", "40"},
                            {"seed", "1"},
                            {"out", "events.singlepulse"}});
  if (opts.help_requested()) {
    std::cout << opts.usage(
        "drapid sweep",
        "Dedisperses --fil (SIGPROC format; without it, a synthesized demo "
        "observation in the --survey band with a pulse at --dm, plus the "
        "preset's structured-RFI scenario when it defines one) over the "
        "--survey DM grid up to "
        "--dm-max (0 = the full grid) and writes the detected events as a "
        "PRESTO-style .singlepulse file. --sweep=subband selects the "
        "two-stage subband method (identical detected events, groups picked "
        "by cost model unless --groups is set). --rfi=zerodm|mask|both runs "
        "the mitigation stage (zero-DM subtraction, robust channel masking) "
        "before the sweep.");
    return 0;
  }

  Filterbank fb = [&] {
    if (!opts.str("fil").empty()) return Filterbank::read_fil(opts.str("fil"));
    // Demo observation: the survey preset's band, noise, and one dispersed
    // pulse at --dm. Presets with structured-RFI rates (fast_crafts/ska_mid)
    // also get their scenario painted in, so --rfi has real work to do.
    const SurveyConfig survey = survey_by_name(opts.str("survey"));
    FilterbankConfig cfg;
    cfg.center_freq_mhz = survey.center_freq_mhz;
    cfg.bandwidth_mhz = survey.bandwidth_mhz;
    cfg.num_channels = 64;
    cfg.sample_time_ms = 2.0;
    cfg.obs_length_s = 10.0;
    Filterbank demo(cfg);
    Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
    demo.add_noise(rng, 1.0);
    demo.inject_pulse(3.0, opts.number("dm"), 3.0, 20.0);
    if (survey.has_structured_rfi()) {
      FilterbankSurveyOptions fopts;
      fopts.num_channels = cfg.num_channels;
      fopts.sample_time_ms = cfg.sample_time_ms;
      fopts.obs_length_s = cfg.obs_length_s;
      const RfiScenario scenario =
          draw_rfi_scenario(survey, cfg.obs_length_s, rng);
      render_rfi_filterbank(scenario, fopts, demo, rng);
    }
    return demo;
  }();

  DmGrid grid = *survey_by_name(opts.str("survey")).grid;
  if (opts.number("dm-max") > 0.0) grid = grid.prefix(opts.number("dm-max"));

  SinglePulseSearchParams params;
  params.method = parse_sweep_method(opts.str("sweep"));
  params.subband_groups = static_cast<std::size_t>(opts.integer("groups"));
  params.threads = static_cast<std::size_t>(opts.integer("threads"));
  params.snr_threshold = opts.number("snr");
  params.dm_stride = static_cast<std::size_t>(opts.integer("stride"));
  params.rfi.policy = parse_mitigation_policy(opts.str("rfi"));

  const auto events = single_pulse_search(fb, grid, params);
  std::ofstream out(opts.str("out"));
  if (!out) throw std::runtime_error("cannot write " + opts.str("out"));
  write_singlepulse(out, events);
  std::cout << "swept " << fb.num_channels() << " channels x "
            << fb.num_samples() << " samples over " << grid.size()
            << " trial DMs (" << sweep_method_name(params.method)
            << " sweep, " << kernels::dispatch_name() << " kernels, rfi="
            << mitigation_policy_name(params.rfi.policy) << ", "
            << params.threads << " thread(s))\n"
            << "wrote " << events.size() << " events to " << opts.str("out")
            << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: drapid <simulate|search|classify|sweep> [--options]\n"
                 "see the header of tools/drapid_cli.cpp for details\n";
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    std::cout << "usage: drapid <simulate|search|classify|sweep> [--options]\n"
                 "run `drapid <command> --help` for each command's flags\n";
    return 0;
  }
  try {
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "search") return cmd_search(argc - 1, argv + 1);
    if (command == "classify") return cmd_classify(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    std::cerr << "unknown command: " << command << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
