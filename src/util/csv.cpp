#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace drapid {

CsvRow parse_csv_line(std::string_view line, char delim) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == delim) {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      field.push_back(c);
    }
  }
  row.push_back(std::move(field));
  return row;
}

std::vector<CsvRow> read_csv(std::istream& in, char delim, bool skip_comments) {
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) continue;
    if (skip_comments && line[0] == '#') continue;
    rows.push_back(parse_csv_line(line, delim));
  }
  return rows;
}

std::vector<CsvRow> read_csv_file(const std::string& path, char delim,
                                  bool skip_comments) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  return read_csv(in, delim, skip_comments);
}

std::string format_csv_row(const CsvRow& row, char delim) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out.push_back(delim);
    const std::string& f = row[i];
    const bool needs_quote =
        f.find(delim) != std::string::npos || f.find('"') != std::string::npos;
    if (!needs_quote) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

void write_csv(std::ostream& out, const std::vector<CsvRow>& rows, char delim) {
  for (const auto& row : rows) out << format_csv_row(row, delim) << '\n';
}

void write_csv_file(const std::string& path, const std::vector<CsvRow>& rows,
                    char delim) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write CSV file: " + path);
  write_csv(out, rows, delim);
  if (!out) throw std::runtime_error("error while writing CSV file: " + path);
}

double parse_double(std::string_view text) {
  // Trim surrounding whitespace; survey files are space-padded.
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
    text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r'))
    text.remove_suffix(1);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::runtime_error("not a number: '" + std::string(text) + "'");
  }
  return value;
}

long long parse_int(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
    text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r'))
    text.remove_suffix(1);
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::runtime_error("not an integer: '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace drapid
