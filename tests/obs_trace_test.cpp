// The span tracer: balance under nested parallel_for, the Chrome-trace
// exporter/validator, buffer caps, and the counter registry.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "util/thread_pool.hpp"

namespace drapid {
namespace obs {
namespace {

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    ScopedSpan span(tracer, "work");
    EXPECT_FALSE(span.active());
    tracer.instant("point");
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(ObsTrace, SpansBalanceAndNest) {
  Tracer tracer;
  tracer.enable(true);
  {
    ScopedSpan outer(tracer, "outer", "detail", "cat");
    {
      ScopedSpan inner(tracer, "inner");
      inner.arg("n", 3);
      tracer.instant("tick", Json(), "cat");
    }
    EXPECT_EQ(tracer.open_spans(), 1u);
  }
  EXPECT_EQ(tracer.open_spans(), 0u);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 5u);  // B outer, B inner, i tick, E inner, E outer
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[0].name, "outer:detail");
  EXPECT_EQ(events[0].category, "cat");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kEnd);
  // inner's close carries the attached arg.
  ASSERT_TRUE(events[3].args.is_object());
  EXPECT_EQ(events[3].args.at("n").as_int(), 3);
  EXPECT_EQ(events[4].phase, TraceEvent::Phase::kEnd);
  // Timestamps are monotone within the thread.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(ObsTrace, BalancedUnderNestedParallelFor) {
  Tracer tracer;
  tracer.enable(true);
  ThreadPool pool(4);
  {
    ScopedSpan root(tracer, "root");
    pool.parallel_for(16, [&](std::size_t i) {
      ScopedSpan outer(tracer, "outer", std::to_string(i));
      // Nested parallel_for on the same pool: the waiting thread helps run
      // inner chunks, so inner spans from *other* tasks can interleave on
      // this thread — each thread's stream must still balance.
      pool.parallel_for(4, [&](std::size_t j) {
        ScopedSpan inner(tracer, "inner", std::to_string(j));
        tracer.instant("leaf");
      });
    });
  }
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);

  // 1 root + 16 outer + 16*4 inner spans, each B+E, plus 64 instants.
  const auto events = tracer.events();
  std::size_t begins = 0, ends = 0, instants = 0;
  for (const auto& e : events) {
    if (e.phase == TraceEvent::Phase::kBegin) ++begins;
    if (e.phase == TraceEvent::Phase::kEnd) ++ends;
    if (e.phase == TraceEvent::Phase::kInstant) ++instants;
  }
  EXPECT_EQ(begins, 1u + 16u + 64u);
  EXPECT_EQ(ends, begins);
  EXPECT_EQ(instants, 64u);

  // The exporter's validator checks per-thread strict nesting.
  EXPECT_EQ(validate_chrome_trace(chrome_trace_json(events)), "");
}

TEST(ObsTrace, BufferCapDropsWholeSpans) {
  Tracer tracer;
  tracer.enable(true);
  tracer.set_max_events_per_thread(4);
  {
    ScopedSpan a(tracer, "a");
    ScopedSpan b(tracer, "b");  // B a, B b recorded (2 events)
    {
      ScopedSpan c(tracer, "c");  // B c recorded (3)
      ScopedSpan d(tracer, "d");  // B d at the cap: dropped
      ScopedSpan e(tracer, "e");  // dropped
    }  // E e, E d dropped (their begins were); E c closes a recorded begin
  }    // E b, E a likewise close recorded begins — the cap never orphans a B
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_GT(tracer.dropped_events(), 0u);
  // Whatever survived must still validate as balanced and nested.
  EXPECT_EQ(validate_chrome_trace(chrome_trace_json(tracer.events())), "");
}

TEST(ObsTrace, ClearResetsBuffers) {
  Tracer tracer;
  tracer.enable(true);
  { ScopedSpan s(tracer, "before"); }
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  { ScopedSpan s(tracer, "after"); }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "after");
  EXPECT_EQ(validate_chrome_trace(chrome_trace_json(events)), "");
}

TEST(ObsChromeTrace, ExportShape) {
  Tracer tracer;
  tracer.enable(true);
  {
    ScopedSpan s(tracer, "stage", "load", "dataflow");
    Json args = Json::object();
    args.set("partition", 3);
    tracer.instant("retry", std::move(args), "fault");
  }
  const Json trace = chrome_trace_json(tracer.events());
  EXPECT_EQ(validate_chrome_trace(trace), "");
  const Json& events = trace.at("traceEvents");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.at(0).at("ph").as_string(), "B");
  EXPECT_EQ(events.at(0).at("name").as_string(), "stage:load");
  EXPECT_EQ(events.at(0).at("cat").as_string(), "dataflow");
  EXPECT_EQ(events.at(0).at("pid").as_int(), 1);
  EXPECT_EQ(events.at(1).at("ph").as_string(), "i");
  EXPECT_EQ(events.at(1).at("s").as_string(), "t");
  EXPECT_EQ(events.at(1).at("args").at("partition").as_int(), 3);
  EXPECT_EQ(events.at(2).at("ph").as_string(), "E");
  EXPECT_EQ(events.at(2).find("name"), nullptr);
  // Round-trips through text.
  EXPECT_EQ(validate_chrome_trace(Json::parse(trace.dump(1))), "");
}

TEST(ObsChromeTrace, ValidatorCatchesImbalance) {
  TraceEvent begin;
  begin.phase = TraceEvent::Phase::kBegin;
  begin.name = "open";
  begin.tid = 1;
  EXPECT_NE(validate_chrome_trace(chrome_trace_json({begin})), "");

  TraceEvent end;
  end.phase = TraceEvent::Phase::kEnd;
  end.tid = 1;
  EXPECT_NE(validate_chrome_trace(chrome_trace_json({end})), "");
}

TEST(ObsCounters, RegistryAddsAndSnapshots) {
  CounterRegistry registry;
  registry.add("tasks", 3);
  registry.add("tasks", 2);
  registry.counter("retries").add();
  registry.set_gauge("scale", 1.5);
  registry.set_gauge("scale", 2.5);  // last write wins

  const auto counters = registry.counters_snapshot();
  ASSERT_EQ(counters.size(), 2u);
  // Snapshots are name-sorted regardless of creation order.
  EXPECT_EQ(counters[0].first, "retries");
  EXPECT_EQ(counters[0].second, 1);
  EXPECT_EQ(counters[1].first, "tasks");
  EXPECT_EQ(counters[1].second, 5);
  const auto gauges = registry.gauges_snapshot();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].second, 2.5);

  registry.reset();
  EXPECT_EQ(registry.counter("tasks").value(), 0);
  EXPECT_TRUE(registry.gauges_snapshot().empty());
}

TEST(ObsCounters, ConcurrentAddsDoNotRace) {
  CounterRegistry registry;
  ThreadPool pool(4);
  pool.parallel_for(64, [&](std::size_t i) {
    registry.add("shared");
    registry.counter("mod" + std::to_string(i % 4)).add(2);
  });
  EXPECT_EQ(registry.counter("shared").value(), 64);
  std::int64_t mods = 0;
  for (const auto& [name, value] : registry.counters_snapshot()) {
    if (name.rfind("mod", 0) == 0) mods += value;
  }
  EXPECT_EQ(mods, 2 * 64);
}

}  // namespace
}  // namespace obs
}  // namespace drapid
