// Pluggable stage executors for the dataflow engine.
//
// Engine::run_stage keeps its TaskContext& callback shape, but task
// placement, the bounded retry loop, and failure recovery all route through
// an Executor so the scheduler drives every backend identically:
//
//   * LocalExecutor — the default: one task per partition on the engine's
//     in-process work-stealing pool, byte-identical to the pre-PR 7 engine
//     (same attempt loop, same spans, same counters).
//   * ProcessExecutor (dataflow/ipc/process_executor.hpp) — forks N worker
//     processes per stage and ships each task's declared output back over a
//     Unix-domain socket in checksummed frames; worker death is detected as
//     socket EOF and recovered through the same bounded-retry budget.
//
// A stage body is an arbitrary closure with in-memory side effects, which a
// child process cannot apply to the coordinator. Stages therefore declare an
// optional StageIO contract: serialize(p) captures task p's output where the
// body ran, absorb(p, bytes) applies it in the coordinator. Stages without a
// contract (spill I/O, in-memory bookkeeping) always execute in-process on
// every backend; all data-plane RDD stages (dataflow/rdd.hpp) declare one.
//
// Bodies routed to a process worker run sequentially on the child's only
// thread and must not touch the engine's thread pool (the pool's workers do
// not exist after fork). No engine stage body does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "dataflow/metrics.hpp"

namespace drapid {

class Engine;
class TaskContext;
struct StageMetrics;

/// Output contract of one stage: how a task's result leaves the process the
/// body ran in and re-enters the coordinator. serialize must be a pure
/// function of the body's completed effects for partition p; absorb(p,
/// serialize(p)) in the coordinator must leave the stage's outputs exactly
/// as if the body had run there — that equivalence is what makes process
/// and local backends byte-identical.
struct StageIO {
  std::function<std::string(std::size_t partition)> serialize;
  std::function<void(std::size_t partition, const std::string& bytes)> absorb;

  bool valid() const { return serialize != nullptr && absorb != nullptr; }
};

// ---------------------------------------------------------------------------
// Pool-mode stage plans (PR 10). A job-lifetime worker pool forks before most
// of a job's closures and data exist, so — unlike the fork-per-stage path — a
// pooled stage cannot run the body closure in the child. Instead the stage
// ships *code by address* (a kernel function pointer, valid across fork
// because parent and child are the same binary) plus *state by bytes* (a
// trivially-copyable closure object and serialized input partitions), and the
// worker keeps the serialized output resident for the next stage.

/// Type-erased context a pool kernel runs under in the worker (or in the
/// parent, when rebuilding a lost partition from lineage).
struct PoolTaskCtx {
  std::size_t partition = 0;  ///< task index within the stage
  /// The stage's closure object as raw bytes (see pool_closure_bytes).
  const std::string* closure = nullptr;
  /// One serialized payload per declared input (kernels define the format;
  /// data-plane kernels use ipc::encode_payload, the load kernel raw text).
  std::vector<const std::string*> inputs;
  TaskMetrics* metrics = nullptr;
  /// Wide kernels: output partition count to route into.
  std::size_t num_targets = 0;
};

/// A pooled stage kernel: consumes the ctx inputs, fills ctx.metrics exactly
/// as the local body would, and returns the serialized output — one
/// encode_payload for narrow stages, a per-target segment bundle (see
/// dataflow/ipc/pool.hpp) for wide ones.
using PoolKernelFn = std::string (*)(const PoolTaskCtx&);

/// Reconstructs a trivially-copyable closure object from its shipped bytes.
/// Lambdas with trivially-copyable captures are implicit-lifetime types, so
/// memcpy into aligned storage legitimately starts the object's lifetime.
template <typename Fn>
const Fn& pool_closure_cast(const std::string& bytes,
                            std::aligned_storage_t<sizeof(Fn), alignof(Fn)>&
                                storage) {
  static_assert(std::is_trivially_copyable_v<Fn>);
  std::memcpy(&storage, bytes.data(), sizeof(Fn));
  return *std::launder(reinterpret_cast<const Fn*>(&storage));
}

template <typename Fn>
std::string pool_closure_bytes(const Fn& fn) {
  static_assert(std::is_trivially_copyable_v<Fn>);
  return std::string(reinterpret_cast<const char*>(&fn), sizeof(Fn));
}

class PoolRegistryCore;

/// Handle to one worker-resident partition set. Rdds carry it via
/// shared_ptr; lineage parents are kept alive through `upstream` so a lost
/// partition can always be rebuilt. The destructor releases the set's
/// worker-side bytes (through the registry, if it still exists).
struct PoolSet {
  std::uint64_t id = 0;
  std::size_t partitions = 0;
  std::weak_ptr<PoolRegistryCore> core;
  std::vector<std::shared_ptr<PoolSet>> upstream;
  ~PoolSet();
};

/// Fetches one partition of a resident set as serialized bytes, rebuilding
/// from lineage if its owning worker died. Works without an Engine in hand
/// (collect() on a resident Rdd), as long as the producing engine is alive.
std::string pool_fetch(const std::shared_ptr<PoolSet>& set,
                       std::size_t partition);
/// Total resident payload bytes of the set (estimate for memory budgeting).
std::size_t pool_set_bytes(const std::shared_ptr<PoolSet>& set);
/// Records-out count of one partition as reported by the producing task.
std::size_t pool_set_records(const std::shared_ptr<PoolSet>& set,
                             std::size_t partition);

/// Where one pooled task input comes from.
struct PoolInputRef {
  /// Resident set (owned partition `partition`), or nullptr for inline.
  std::shared_ptr<PoolSet> set;
  std::size_t partition = 0;
  /// Inline payload, shipped down and recorded for lineage (chain heads).
  std::string inline_bytes;
};

/// Everything the pool needs to run one stage without the body closure.
struct PoolStagePlan {
  enum class Kind { kNarrow, kWide };
  Kind kind = Kind::kNarrow;
  PoolKernelFn kernel = nullptr;
  std::string closure;
  /// Wide stages: output partition count (narrow: outputs mirror tasks).
  std::size_t num_targets = 0;
  /// Called once per task at dispatch to name its input partitions.
  std::function<std::vector<PoolInputRef>(std::size_t task)> inputs;
  /// Filled by the executor on success: the stage's resident output set.
  std::shared_ptr<PoolSet> out;
};

/// Residency interface a pooled executor exposes; null on every other
/// backend. Transformations use its presence to decide whether to build a
/// PoolStagePlan at all.
class PoolResidency {
 public:
  virtual ~PoolResidency() = default;
};

/// One stage execution handed from Engine::run_stage to the executor.
struct StageRun {
  StageMetrics& stage;
  const std::function<void(TaskContext&)>& body;
  /// Output contract, or nullptr when the stage has none (in-process only).
  const StageIO* io = nullptr;
  /// Pool plan, or nullptr when the stage cannot ship (non-trivially-
  /// copyable closure, no contract). Only the job-pool backend reads it.
  PoolStagePlan* plan = nullptr;
};

/// A stage execution backend. Implementations own task placement and the
/// per-task attempt loop; the engine owns stage spans, scheduler-stat
/// attribution, and the metrics registry.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Backend name as spelled on --backend ("local" | "process").
  virtual const char* name() const = 0;
  /// OS processes running task bodies (1 for the in-process backend).
  virtual std::size_t workers() const = 0;

  /// Runs every task of `run.stage` to completion (with retries) or throws:
  /// TaskFailure once any task exhausts the engine's attempt budget, or the
  /// first body exception otherwise.
  virtual void run_stage_tasks(StageRun run) = 0;

  /// The partition-residency surface of a job-pool backend; nullptr
  /// everywhere else (local backend, fork-per-stage mode, TSan fallback).
  virtual PoolResidency* residency() { return nullptr; }
};

/// In-process backend: the pre-PR 7 execution path, verbatim. Tasks fan out
/// over the engine's work-stealing pool; injected failures kill an attempt
/// at launch and are retried with the wasted work recorded in
/// attempts/retry_cost. StageIO contracts are ignored (outputs are already
/// in place).
class LocalExecutor : public Executor {
 public:
  explicit LocalExecutor(Engine& engine) : engine_(engine) {}

  const char* name() const override { return "local"; }
  std::size_t workers() const override { return 1; }
  void run_stage_tasks(StageRun run) override;

 private:
  Engine& engine_;
};

}  // namespace drapid
