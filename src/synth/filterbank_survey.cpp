#include "synth/filterbank_survey.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dedisp/single_pulse_search.hpp"

namespace drapid {

namespace {

/// Per-channel peak amplitude that makes a Gaussian pulse of `width_ms` come
/// out of the matched boxcar at roughly `snr` (in units of the per-channel
/// noise sigma). The dedispersed series sums C channels, so its noise scale
/// is sigma*sqrt(C); a width-w boxcar gains another sqrt(w).
double amplitude_for_snr(double snr, double width_ms, double sigma,
                         std::size_t channels, double sample_time_ms) {
  const double w = std::max(1.0, width_ms / sample_time_ms);
  return snr * sigma /
         std::sqrt(static_cast<double>(channels) * w);
}

}  // namespace

SimulatedObservation simulate_filterbank_observation(
    const SurveyConfig& config, const ObservationId& id,
    const std::vector<SyntheticSource>& visible, Rng& rng,
    const FilterbankSurveyOptions& options) {
  if (!config.grid) {
    throw std::invalid_argument("survey config has no trial-DM grid");
  }
  FilterbankConfig fc;
  fc.num_channels = options.num_channels;
  fc.sample_time_ms = options.sample_time_ms;
  fc.obs_length_s = options.obs_length_s;
  fc.center_freq_mhz = config.center_freq_mhz;
  fc.bandwidth_mhz = config.bandwidth_mhz;
  Filterbank fb(fc);
  fb.add_noise(rng, options.noise_sigma);

  SimulatedObservation out;
  out.data.id = id;
  std::vector<GroundTruthPulse> injected;

  const auto inject = [&](const SyntheticSource& src, double t0, double snr0) {
    const double amplitude =
        options.amplitude_scale *
        amplitude_for_snr(snr0, src.width_ms, options.noise_sigma,
                          fc.num_channels, fc.sample_time_ms);
    fb.inject_pulse(t0, src.dm, amplitude, src.width_ms);
    GroundTruthPulse gt;
    gt.source_name = src.name;
    gt.type = src.type;
    gt.time_s = t0;
    gt.dm = src.dm;
    gt.width_ms = src.width_ms;
    injected.push_back(std::move(gt));
  };

  for (const auto& src : visible) {
    if (src.type == SourceType::kPulsar) {
      const auto rotations =
          static_cast<std::uint64_t>(options.obs_length_s / src.period_s);
      for (std::uint64_t r = 0; r < rotations; ++r) {
        if (!rng.chance(src.emission_rate)) continue;
        const double t0 =
            (static_cast<double>(r) + rng.uniform()) * src.period_s;
        const double snr0 =
            src.median_snr * std::exp(rng.normal(0.0, src.snr_sigma));
        if (snr0 < config.snr_threshold) continue;
        inject(src, t0, snr0);
      }
    } else {
      const auto bursts = rng.poisson(src.emission_rate *
                                      options.obs_length_s / 3600.0);
      for (std::uint64_t b = 0; b < bursts; ++b) {
        const double t0 = rng.uniform(0.0, options.obs_length_s);
        const double snr0 =
            src.median_snr * std::exp(rng.normal(0.0, src.snr_sigma));
        if (snr0 < config.snr_threshold) continue;
        inject(src, t0, snr0);
      }
    }
  }

  // Broadband RFI impulses: zero-DM spikes the sweep sees at every trial —
  // the real-data counterpart of add_rfi()'s flat SNR-vs-DM events.
  const auto bursts = rng.poisson(config.rfi_bursts_per_observation);
  for (std::uint64_t b = 0; b < bursts; ++b) {
    fb.inject_broadband_impulse(rng.uniform(0.0, options.obs_length_s),
                                options.noise_sigma * rng.uniform(2.0, 6.0));
  }

  SinglePulseSearchParams params;
  params.snr_threshold = config.snr_threshold;
  params.threads = options.threads;
  params.dm_stride = options.dm_stride;
  out.data.events = single_pulse_search(fb, *config.grid, params);

  // Attribute detected events back to the injected pulses by time proximity:
  // dedispersing at the wrong DM shifts the detection by the residual delay,
  // so the window grows with the pulse width plus a smearing allowance.
  for (auto& gt : injected) {
    const double window =
        std::max(0.1, 8.0 * gt.width_ms * 1e-3) + 4.0 * fc.sample_time_ms * 1e-3;
    for (const auto& e : out.data.events) {
      if (std::abs(e.time_s - gt.time_s) > window) continue;
      gt.peak_snr = std::max(gt.peak_snr, e.snr);
      ++gt.num_spes;
    }
    if (gt.num_spes > 0) out.truth.push_back(std::move(gt));
  }
  return out;
}

}  // namespace drapid
