#!/usr/bin/env bash
# CI-style concurrency check: builds the tree with ThreadSanitizer and runs
# the thread-pool, engine, spill, and fault-injection tests under it. These
# are the suites that exercise the helping parallel_for join, the mutex-
# protected stage registry, and concurrent spill I/O — the places a data
# race would live.
#
# Usage: tools/check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

TARGETS=(
  util_thread_pool_test
  dataflow_engine_test
  dataflow_spill_test
  dataflow_fault_test
  dataflow_rdd_test
)

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Debug -DDRAPID_TSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TARGETS[@]}"

# halt_on_error makes a race fail the script, not just print a report.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
for test in "${TARGETS[@]}"; do
  echo "=== $test (TSan) ==="
  "$BUILD_DIR/tests/$test"
done
echo "tsan check: all clean"
