// Synthetic sky-survey generator — the stand-in for GBT350Drift and PALFA.
//
// Generates the output of phases 1–3 of a single-pulse search (the paper's
// "raw data"): for each observation, a list of single pulse events across the
// survey's trial-DM grid, containing
//   * real single pulses from injected pulsars/RRATs, whose SNR-vs-DM shape
//     follows the Cordes & McLaughlin degradation curve (a peak at the true
//     DM) and whose DM-vs-time shape follows residual dispersion delays;
//   * broadband RFI bursts (flat SNR across wide DM ranges — no peak);
//   * low-DM terrestrial junk;
//   * threshold-crossing noise events.
// Unlike the real surveys, the simulator returns exact ground truth for every
// injected pulse, which is what the classification benchmarks label with.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "spe/catalog.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe_io.hpp"
#include "synth/population.hpp"
#include "util/rng.hpp"

namespace drapid {

/// Observing setup and nuisance rates for one survey.
struct SurveyConfig {
  std::string name;
  double center_freq_mhz = 350.0;
  double bandwidth_mhz = 100.0;
  double obs_length_s = 140.0;
  double sample_time_ms = 0.0819;  ///< native sampling
  double snr_threshold = 5.0;      ///< single-pulse search detection threshold
  /// Rate of spurious threshold crossings (events per second, whole grid).
  double noise_events_per_second = 25.0;
  /// Expected broadband RFI bursts per observation.
  double rfi_bursts_per_observation = 0.8;
  /// Rate of low-DM (terrestrial) junk events per second.
  double low_dm_events_per_second = 4.0;
  /// Expected localized noise clumps per observation — clusters of
  /// near-threshold events that DBSCAN groups and RAPID sometimes mistakes
  /// for faint pulses. These are the survey's "negative examples of single
  /// pulses from noise" (§4).
  double noise_clumps_per_observation = 40.0;
  /// Expected pulse-mimicking RFI artifacts per observation: peaked SNR
  /// structure in DM without the Cordes shape (sweeping/periodic RFI) —
  /// the "negative examples ... from RFI".
  double peaked_rfi_per_observation = 10.0;
  /// Upper bound on SPEs one pulse contributes. Real search pipelines bound
  /// the DM window they associate with a detection; without a cap, a bright
  /// low-DM pulse at 1.4 GHz (where the Cordes response is very wide) can
  /// emit tens of thousands of trials' worth of events.
  std::size_t max_spes_per_pulse = 1200;
  /// Beam radius for position-based visibility (degrees).
  double beam_radius_deg = 0.3;
  PopulationConfig population;
  std::shared_ptr<const DmGrid> grid;

  /// GBT 350 MHz drift-scan preset (Boyles et al. 2013): low frequency,
  /// 100 MHz band, short drift observations, nearby-pulsar population.
  static SurveyConfig gbt350drift();

  /// PALFA preset (Cordes et al. 2006): 1.4 GHz, 300 MHz band, Galactic
  /// plane, deeper DM distribution.
  static SurveyConfig palfa();
};

/// One injected (ground-truth) pulse.
struct GroundTruthPulse {
  std::string source_name;
  SourceType type = SourceType::kPulsar;
  double time_s = 0.0;    ///< arrival time at the true DM
  double dm = 0.0;        ///< the source's true DM
  double peak_snr = 0.0;  ///< brightest SPE actually emitted
  double width_ms = 0.0;
  std::uint32_t num_spes = 0;  ///< SPEs this pulse contributed
};

/// Simulator output for one observation.
struct SimulatedObservation {
  ObservationData data;                 ///< SPEs, sorted by (dm, time)
  std::vector<GroundTruthPulse> truth;  ///< injected pulses with ≥ 1 SPE
};

/// Builds the known-source catalogue for a synthetic population — the
/// ATNF/RRATalog equivalent the paper crossmatches against (§4).
SourceCatalog catalog_from_population(
    const std::vector<SyntheticSource>& sources);

class SurveySimulator {
 public:
  /// Deterministic for a given (config, seed) pair.
  SurveySimulator(SurveyConfig config, std::uint64_t seed);

  const SurveyConfig& config() const { return config_; }

  /// Draws a source population from the survey's PopulationConfig.
  std::vector<SyntheticSource> draw_sources();

  /// Simulates one observation. `visible` lists the sources inside this
  /// beam (often empty — most pointings see no pulsar).
  SimulatedObservation simulate(const ObservationId& id,
                                const std::vector<SyntheticSource>& visible);

  /// Convenience: simulates `count` observations. Each pointing targets a
  /// random source with probability min(1, visibility × #sources) — so
  /// `visibility` keeps its meaning of "chance a given source is observed"
  /// — and otherwise points at blank sky; the sources actually in beam are
  /// then selected *by position* (within beam_radius_deg), so catalogue
  /// crossmatching agrees with the injected truth.
  std::vector<SimulatedObservation> simulate_many(
      std::size_t count, const std::vector<SyntheticSource>& sources,
      double visibility);

 private:
  void inject_pulse(const SyntheticSource& src, double t0, double snr0,
                    std::vector<SinglePulseEvent>& events,
                    std::vector<GroundTruthPulse>& truth);
  void add_noise(std::vector<SinglePulseEvent>& events);
  void add_rfi(std::vector<SinglePulseEvent>& events);
  void add_noise_clumps(std::vector<SinglePulseEvent>& events);
  void add_peaked_rfi(std::vector<SinglePulseEvent>& events);

  SurveyConfig config_;
  Rng rng_;
};

}  // namespace drapid
