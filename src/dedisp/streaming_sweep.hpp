// Chunk-resumable DM sweep: the PR 5 shift-plan sweep fed in fixed-size
// sample blocks, for long-running survey ingestion.
//
// The one-shot single_pulse_search() needs the whole filterbank resident; a
// streaming service ingests data in bounded chunks as it arrives. The
// StreamingSweep accepts time-ordered sample blocks of any size, keeps an
// overlap carry of the last max_shift input samples per channel (the only
// history a dispersed output sample can still reference), and accumulates
// each unique shift plan's dedispersed series incrementally:
//
//   * an output sample s of a plan with per-channel shifts v_c reads inputs
//     s + v_c, so s is *complete* once s + max_shift < samples_pushed. Each
//     push flushes the newly-completed range [frontier, pushed - max_shift)
//     for every plan, summing channels in ascending order — the exact
//     addition sequence of dedisperse_plan(), so the accumulated series is
//     byte-identical to the one-shot sweep's no matter how the input was
//     chunked.
//   * tail normalization is applied exactly ONCE, at finalize, over the
//     fully-accumulated series. Normalizing per chunk would rescale the
//     overlap-carry samples once per chunk they straddle — the double-count
//     bug the boundary regression tests pin.
//   * detection (global median/MAD standardization + matched filtering)
//     runs at finalize per unique plan, and events merge in trial order via
//     the same helper as the one-shot path.
//
// The result of finalize() is therefore byte-identical to
// single_pulse_search() on the concatenated data, for any chunk size and
// any thread count.
//
// With params.method == SweepMethod::kSubband the stream accumulates the
// subband plan's coarse nodes (one partial series per distinct
// (group, residual-pattern)) instead of per-plan series, and finalize
// synthesizes each plan from its G offset partials before detection — the
// same two stages as subband_single_pulse_search(), so the result is
// byte-identical to the one-shot subband sweep. Stage 1 only ever looks
// back by a pattern residual, so the overlap carry shrinks from the
// full-band max shift to the subband plan's max residual (often an order
// of magnitude less history per channel).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "dedisp/filterbank.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "dedisp/subband_sweep.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe.hpp"

namespace drapid {

class ThreadPool;

class StreamingSweep {
 public:
  /// Plans the sweep for an observation of known geometry. The config fixes
  /// the channel count/band/sampling AND the total sample count (shift
  /// clamping and tail normalization depend on it), exactly like the
  /// one-shot sweep. `grid`/`params` as in single_pulse_search(); the grid
  /// is copied. With params.threads > 1 a worker pool fans the per-plan
  /// accumulation and detection out.
  StreamingSweep(const FilterbankConfig& config, const DmGrid& grid,
                 const SinglePulseSearchParams& params = {});
  ~StreamingSweep();

  StreamingSweep(const StreamingSweep&) = delete;
  StreamingSweep& operator=(const StreamingSweep&) = delete;

  /// Pushes `num_frames` time-major frames (frame = one sample of every
  /// channel, ascending channel order — the .fil on-disk layout, length
  /// num_channels floats each). Throws std::invalid_argument if the total
  /// would exceed the configured sample count.
  void push_frames(const float* frames, std::size_t num_frames);

  /// Pushes samples [begin, begin + count) of an in-memory filterbank (must
  /// match this sweep's geometry and continue exactly at samples_pushed()).
  /// A `count` past the observation end is clamped — a fixed block size
  /// naturally overshoots on the final chunk — and count 0 is a no-op.
  /// Convenience for tests and for ingesting synthesized observations.
  void push(const Filterbank& fb, std::size_t begin, std::size_t count);

  /// Total samples accepted so far / expected in the whole observation.
  std::size_t samples_pushed() const { return pushed_; }
  std::size_t total_samples() const { return total_samples_; }

  /// Overlap carried across chunk boundaries, clamped to the observation
  /// length: the largest per-channel shift of any plan (exact method), or
  /// the subband plan's largest residual shift (subband method) — the only
  /// input history stage 1 can still reference.
  std::size_t max_shift() const { return max_shift_; }

  std::size_t num_plans() const { return sweep_.plans.size(); }

  /// Runs detection over every plan's accumulated series and merges events
  /// in trial order — byte-identical to single_pulse_search() on the same
  /// data. All total_samples() samples must have been pushed; throws
  /// std::logic_error otherwise, or if called twice.
  std::vector<SinglePulseEvent> finalize();

 private:
  /// Lays out the input window for a `count`-sample block (carry samples
  /// first, block after) and returns the carry length; the caller fills the
  /// block region. Throws if the block would overrun the observation.
  std::size_t prepare_window(std::size_t count);
  /// Zero-DM subtraction over the freshly-filled block region of the window
  /// (no-op unless the policy asks for it). The subtraction is per-sample,
  /// so cleaning chunk by chunk matches the one-shot mitigated sweep bit
  /// for bit; the carry refresh then naturally holds cleaned samples.
  void clean_block(std::size_t carry_len, std::size_t count);
  /// Accumulates every plan's newly-completed output range from the window,
  /// then refreshes the overlap carry from the window's tail.
  void commit_block(std::size_t count);
  void accumulate_plan(std::size_t plan_index, std::size_t out_begin,
                       std::size_t out_end);
  /// Subband stage 1 for one coarse node's newly-completed range.
  void accumulate_node(std::size_t slot, std::size_t out_begin,
                       std::size_t out_end);
  template <typename Fn>
  void for_each(std::size_t count, const Fn& fn);

  bool subband() const { return params_.method == SweepMethod::kSubband; }

  FilterbankConfig config_;
  DmGrid grid_;
  SinglePulseSearchParams params_;
  SweepPlan sweep_;
  /// Groups × residual patterns decomposition (subband method only).
  SubbandPlan sub_;
  std::size_t total_samples_ = 0;
  std::size_t channels_ = 0;
  std::size_t max_shift_ = 0;

  std::size_t pushed_ = 0;    ///< input samples accepted
  std::size_t frontier_ = 0;  ///< output samples accumulated per plan
  /// Zero-DM subtraction enabled (params.rfi.policy includes it). Channel
  /// masking comes through params.channel_mask: the stream cannot estimate
  /// a mask from data it has not seen, so mask policies require an explicit
  /// mask (the survey service estimates one from the full observation
  /// before constructing the sweep) and the constructor throws otherwise.
  bool zero_dm_ = false;

  /// Channel-major input window: for each channel, the carry (up to
  /// max_shift_ samples ending at the previous push) followed by the block
  /// being flushed. Rebuilt per push; reads during a flush stay inside it.
  std::vector<float> window_;
  std::size_t window_len_ = 0;    ///< valid samples per channel row
  std::size_t window_start_ = 0;  ///< global index of the window's first sample
  std::size_t window_stride_ = 0; ///< row capacity (carry + block)

  /// Per-channel overlap carry: the last max_shift_ input samples, refreshed
  /// after each push (rows of max_shift_ floats, first carry-length valid).
  std::vector<float> carry_;

  /// One fully-accumulated dedispersed series per unique shift plan (exact
  /// method; empty under subband).
  std::vector<std::vector<double>> series_;

  /// One fully-accumulated partial series per coarse node, indexed by the
  /// flat slot id pattern_base[g] + p (subband method; empty under exact).
  /// Shared by every plan that uses the node, so none are freed until
  /// finalize has detected every plan.
  std::vector<std::vector<double>> partials_;

  std::unique_ptr<ThreadPool> pool_;
  bool finalized_ = false;
};

}  // namespace drapid
