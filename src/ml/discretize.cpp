#include "ml/discretize.hpp"

#include <algorithm>

namespace drapid {
namespace ml {

std::vector<double> equal_frequency_cuts(std::span<const double> values,
                                         std::size_t bins) {
  std::vector<double> cuts;
  if (values.empty() || bins < 2) return cuts;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t b = 1; b < bins; ++b) {
    const std::size_t idx = b * sorted.size() / bins;
    const double cut = sorted[std::min(idx, sorted.size() - 1)];
    // Bin of x = number of cuts ≤ x, so a cut is useful only when some
    // value lies strictly below it (a cut at the minimum separates nothing,
    // and constant features get no cuts at all).
    if (cut <= sorted.front()) continue;
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  return cuts;
}

std::vector<std::size_t> apply_cuts(std::span<const double> values,
                                    std::span<const double> cuts) {
  std::vector<std::size_t> bins;
  bins.reserve(values.size());
  for (double v : values) {
    const auto it = std::upper_bound(cuts.begin(), cuts.end(), v);
    bins.push_back(static_cast<std::size_t>(it - cuts.begin()));
  }
  return bins;
}

std::vector<std::vector<std::size_t>> contingency_table(
    std::span<const std::size_t> bins, std::span<const int> labels,
    std::size_t num_bins, std::size_t num_classes) {
  std::vector<std::vector<std::size_t>> table(
      num_bins, std::vector<std::size_t>(num_classes, 0));
  const std::size_t n = std::min(bins.size(), labels.size());
  for (std::size_t i = 0; i < n; ++i) {
    ++table[bins[i]][static_cast<std::size_t>(labels[i])];
  }
  return table;
}

}  // namespace ml
}  // namespace drapid
