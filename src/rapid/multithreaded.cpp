#include "rapid/multithreaded.hpp"

#include <algorithm>
#include <numeric>

#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace drapid {

std::vector<RapidWorkItem> make_work_items(const ObservationData& obs,
                                           const ClusteringResult& clusters) {
  const auto records = make_cluster_records(obs, clusters);
  std::vector<RapidWorkItem> items;
  items.reserve(records.size());
  for (std::size_t c = 0; c < clusters.clusters.size(); ++c) {
    RapidWorkItem item;
    item.record = records[c];
    item.events = cluster_events(obs, clusters.clusters[c]);
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<IdentifiedPulse> search_work_item(const RapidWorkItem& item,
                                              const RapidParams& params,
                                              const DmGrid& grid) {
  const auto pulses = rapid_search(item.events, params);
  // PulseRank (Table 1): peaks ordered by SNRMax, 1 = brightest.
  std::vector<std::size_t> order(pulses.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return item.events[pulses[a].peak].snr > item.events[pulses[b].peak].snr;
  });
  std::vector<int> rank(pulses.size());
  for (std::size_t r = 0; r < order.size(); ++r) {
    rank[order[r]] = static_cast<int>(r + 1);
  }
  std::vector<IdentifiedPulse> out;
  out.reserve(pulses.size());
  for (std::size_t p = 0; p < pulses.size(); ++p) {
    IdentifiedPulse ip;
    ip.cluster = item.record;
    ip.pulse = pulses[p];
    ip.pulse_rank = rank[p];
    ip.features =
        extract_features(item.events, pulses[p], item.record, grid, rank[p]);
    out.push_back(std::move(ip));
  }
  return out;
}

std::vector<IdentifiedPulse> run_rapid_multithreaded(
    const std::vector<RapidWorkItem>& items, const RapidParams& params,
    const DmGrid& grid, std::size_t threads, RapidRunStats* stats) {
  Stopwatch watch;
  std::vector<std::vector<IdentifiedPulse>> per_item(items.size());
  ThreadPool pool(threads);
  pool.parallel_for(items.size(), [&](std::size_t i) {
    per_item[i] = search_work_item(items[i], params, grid);
  });

  std::vector<IdentifiedPulse> results;
  std::size_t spes = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    spes += items[i].events.size();
    results.insert(results.end(),
                   std::make_move_iterator(per_item[i].begin()),
                   std::make_move_iterator(per_item[i].end()));
  }
  if (stats) {
    stats->clusters_processed = items.size();
    stats->spes_scanned = spes;
    stats->pulses_found = results.size();
    stats->wall_seconds = watch.elapsed_seconds();
  }
  return results;
}

}  // namespace drapid
