// Classification trial harness — the protocol behind Figures 5 and 6.
//
// One trial = (ALM scheme × feature-selection filter × learner × imbalance
// treatment) evaluated on one benchmark, following the paper's §6.2 setup:
// the benchmark splits into six stratified folds; the first is reserved for
// feature selection (top-10 features when a filter is chosen), and the
// remaining five run 5-fold cross-validation, optionally applying SMOTE to
// each training fold.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/benchmark_data.hpp"
#include "ml/classifier.hpp"
#include "ml/cross_validation.hpp"
#include "ml/feature_selection.hpp"

namespace drapid {

struct TrialSpec {
  ml::AlmScheme scheme = ml::AlmScheme::kBinary;
  std::optional<ml::FilterMethod> filter;  ///< nullopt = "None"
  ml::LearnerType learner = ml::LearnerType::kRandomForest;
  bool smote = false;
  /// Features kept when a filter is set (paper: top ten).
  std::size_t top_k = 10;
  std::uint64_t seed = 1;
  /// Worker threads for the 5-fold CV (folds are independent); results are
  /// byte-identical for any value.
  std::size_t cv_threads = 1;

  std::string describe() const;  // e.g. "RF scheme=8 fs=IG smote"
};

struct TrialResult {
  TrialSpec spec;
  /// Collapsed pulsar-vs-non-pulsar scores (the Figure 5(a) measures).
  double recall = 0.0;
  double precision = 0.0;
  double f_measure = 0.0;
  /// Training time summed over CV folds (the Figure 5(b)/6 measure) and
  /// per-fold values for the boxplots.
  double train_seconds = 0.0;
  /// Testing time summed over CV folds (the paper's Table 9 measure).
  double test_seconds = 0.0;
  /// Time in the SMOTE transform summed over CV folds (0 without SMOTE),
  /// kept separate from train_seconds.
  double transform_seconds = 0.0;
  std::vector<double> fold_train_seconds;
  std::vector<double> fold_test_seconds;
  std::vector<double> fold_recalls;
  std::vector<double> fold_f_measures;
  /// Per-instance outcome over the CV rows (aligned with the CV dataset):
  /// true where the collapsed prediction was correct. Drives RQ4.
  std::vector<bool> correct;
  /// True class labels (scheme space) of the CV rows, same alignment.
  std::vector<int> cv_labels;
};

/// Runs one trial on the benchmark pulses. The fold assignment derives from
/// `spec.seed`, so trials with equal seeds compare the same instance splits.
TrialResult run_trial(const std::vector<LabeledPulse>& pulses,
                      const TrialSpec& spec);

}  // namespace drapid
