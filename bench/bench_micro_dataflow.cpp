// Microbenchmarks for the dataflow substrate: partitioning, aggregation,
// the co-partitioned join fast path vs the shuffling slow path, and the
// spill round trip.
#include <benchmark/benchmark.h>

#include "micro_support.hpp"

#include "dataflow/rdd.hpp"
#include "dataflow/spill.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

EngineConfig bench_config() {
  EngineConfig cfg;
  cfg.num_executors = 4;
  cfg.exec = ExecPolicy::local(2);
  cfg.partitions_per_core = 4;
  return cfg;
}

std::vector<std::pair<std::string, std::string>> make_pairs(std::size_t n,
                                                            std::size_t keys) {
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(n);
  Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    pairs.emplace_back("key" + std::to_string(rng.below(keys)),
                       "value-" + std::to_string(i));
  }
  return pairs;
}

void BM_PartitionBy(benchmark::State& state) {
  Engine engine(bench_config());
  const auto rdd = parallelize(
      engine, make_pairs(static_cast<std::size_t>(state.range(0)), 100), 8);
  const HashPartitioner part{32};
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_by(engine, rdd, part));
    engine.reset_metrics();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PartitionBy)->Arg(10000)->Arg(100000);

void BM_AggregateByKey(benchmark::State& state) {
  Engine engine(bench_config());
  const auto rdd = parallelize(
      engine, make_pairs(static_cast<std::size_t>(state.range(0)), 100), 8);
  const HashPartitioner part{32};
  for (auto _ : state) {
    auto counts = aggregate_by_key(
        engine, rdd, std::size_t{0},
        [](std::size_t& agg, const std::string&) { ++agg; },
        [](std::size_t& agg, std::size_t&& other) { agg += other; }, part);
    benchmark::DoNotOptimize(counts);
    engine.reset_metrics();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AggregateByKey)->Arg(10000)->Arg(100000);

// The same shuffle through the process backend's fork-per-stage path: per
// iteration the engine forks workers, runs the hash stage in them, and
// ships the routing maps back over checksummed socket frames. The gap to
// BM_PartitionBy is the fork + IPC overhead fork-per-stage pays per stage.
void BM_ProcessShuffle(benchmark::State& state) {
  EngineConfig cfg = bench_config();
  cfg.exec = ExecPolicy::process(
      static_cast<std::size_t>(state.range(1)), 2, PoolMode::kStage);
  Engine engine(cfg);
  const auto rdd = parallelize(
      engine, make_pairs(static_cast<std::size_t>(state.range(0)), 100), 8);
  const HashPartitioner part{32};
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_by(engine, rdd, part));
    engine.reset_metrics();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProcessShuffle)->Args({10000, 2})->Args({10000, 4});

// The same shuffle through the job-lifetime worker pool, measured the way a
// mid-job shuffle actually runs: the source partitions are already resident
// in the workers (parked there by an earlier stage, outside the timed
// loop), so each iteration pays neither the per-stage fork tax nor the
// source bytes — only the genuinely shuffled segments cross the sockets.
// The gap to BM_ProcessShuffle is the pool's reason to exist.
void BM_PooledShuffle(benchmark::State& state) {
  EngineConfig cfg = bench_config();
  cfg.exec = ExecPolicy::process(
      static_cast<std::size_t>(state.range(1)), 2, PoolMode::kJob);
  Engine engine(cfg);
  const auto rdd = parallelize(
      engine, make_pairs(static_cast<std::size_t>(state.range(0)), 100), 8);
  // Park the source in the pool: after this shuffle the partitions live in
  // the workers and every timed iteration reads them in place.
  const auto resident = partition_by(engine, rdd, HashPartitioner{8});
  const HashPartitioner part{32};
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_by(engine, resident, part));
    engine.reset_metrics();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PooledShuffle)->Args({10000, 2})->Args({10000, 4});

void BM_JoinCopartitioned(benchmark::State& state) {
  Engine engine(bench_config());
  const HashPartitioner part{16};
  const auto left = partition_by(
      engine,
      parallelize(engine,
                  make_pairs(static_cast<std::size_t>(state.range(0)), 500), 8),
      part);
  const auto right = partition_by(
      engine, parallelize(engine, make_pairs(500, 500), 4), part);
  for (auto _ : state) {
    benchmark::DoNotOptimize(left_outer_join(engine, left, right, part));
    engine.reset_metrics();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_JoinCopartitioned)->Arg(10000)->Arg(50000);

void BM_JoinWithShuffle(benchmark::State& state) {
  Engine engine(bench_config());
  const HashPartitioner part{16};
  const auto left = parallelize(
      engine, make_pairs(static_cast<std::size_t>(state.range(0)), 500), 8);
  const auto right = parallelize(engine, make_pairs(500, 500), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(left_outer_join(engine, left, right, part));
    engine.reset_metrics();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_JoinWithShuffle)->Arg(10000)->Arg(50000);

void BM_SpillRoundTrip(benchmark::State& state) {
  EngineConfig cfg = bench_config();
  cfg.executor_memory_bytes = 1;  // force the spill
  cfg.num_executors = 1;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(cfg);
    auto rdd = parallelize(
        engine, make_pairs(static_cast<std::size_t>(state.range(0)), 100), 4);
    state.ResumeTiming();
    CachedStringRdd cached(engine, std::move(rdd), "bm");
    benchmark::DoNotOptimize(cached.materialize());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SpillRoundTrip)->Arg(10000);

// materialize() copies an in-memory cache; borrow() hands out a const
// reference in O(1). The pair documents why the driver borrows the cached
// SPE RDD instead of materializing it (same data, no deep copy).
void BM_MaterializeCopy(benchmark::State& state) {
  Engine engine(bench_config());
  CachedStringRdd cached(
      engine,
      parallelize(engine,
                  make_pairs(static_cast<std::size_t>(state.range(0)), 100), 4),
      "bm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cached.materialize());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MaterializeCopy)->Arg(10000)->Arg(100000);

void BM_BorrowInMemory(benchmark::State& state) {
  Engine engine(bench_config());
  CachedStringRdd cached(
      engine,
      parallelize(engine,
                  make_pairs(static_cast<std::size_t>(state.range(0)), 100), 4),
      "bm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(&cached.borrow());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BorrowInMemory)->Arg(10000)->Arg(100000);

void BM_StableHash(benchmark::State& state) {
  const std::string key = "PALFA|56000.01|213.77|15.22|3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(stable_hash(key));
  }
}
BENCHMARK(BM_StableHash);

}  // namespace
}  // namespace drapid

DRAPID_MICRO_MAIN("bench_micro_dataflow",
                  "Micro-benchmarks for the dataflow engine primitives: partition, aggregate, join, spill round-trips.")
