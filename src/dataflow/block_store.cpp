#include "dataflow/block_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "dataflow/rdd.hpp"  // stable_hash
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace drapid {

BlockStore::BlockStore(std::size_t num_nodes, std::size_t block_size,
                       std::size_t replication)
    : num_nodes_(std::max<std::size_t>(1, num_nodes)),
      block_size_(std::max<std::size_t>(1, block_size)),
      replication_(std::clamp<std::size_t>(replication, 1, num_nodes_)) {}

void BlockStore::put(const std::string& name, std::string contents) {
  File file;
  const std::size_t size = contents.size();
  file.contents = std::move(contents);
  // Deterministic replica placement: walk the node ring starting at a
  // position derived from (file, block index).
  const std::uint64_t base = stable_hash(name);
  for (std::size_t offset = 0; offset < size || offset == 0;
       offset += block_size_) {
    BlockInfo block;
    block.offset = offset;
    block.size = std::min(block_size_, size - offset);
    const auto start = static_cast<std::size_t>(
        (base + offset / block_size_) % num_nodes_);
    for (std::size_t r = 0; r < replication_; ++r) {
      block.replicas.push_back(static_cast<int>((start + r) % num_nodes_));
    }
    file.layout.push_back(std::move(block));
    if (size == 0) break;
  }
  files_[name] = std::move(file);
}

bool BlockStore::exists(const std::string& name) const {
  return files_.count(name) > 0;
}

void BlockStore::remove(const std::string& name) { files_.erase(name); }

std::vector<std::string> BlockStore::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  return names;
}

void BlockStore::mark_node_dead(int node) {
  if (node < 0 || static_cast<std::size_t>(node) >= num_nodes_) return;
  dead_nodes_.insert(node);
}

int BlockStore::live_replica_or_throw(const std::string& name,
                                      std::size_t block_index,
                                      const BlockInfo& block) const {
  for (std::size_t r = 0; r < block.replicas.size(); ++r) {
    const int node = block.replicas[r];
    if (dead_nodes_.count(node)) continue;
    if (r > 0) {
      failovers_.fetch_add(1);
      obs::global_counters().add("block_store.replica_failovers");
      if (obs::global_tracer().enabled()) {
        obs::Json args = obs::Json::object();
        args.set("file", name);
        args.set("block", static_cast<std::int64_t>(block_index));
        args.set("replica", static_cast<std::int64_t>(r));
        obs::global_tracer().instant("block_store.failover", std::move(args),
                                     "fault");
      }
    }
    return node;
  }
  std::string dead;
  for (const int node : block.replicas) {
    if (!dead.empty()) dead += ", ";
    dead += std::to_string(node);
  }
  throw std::runtime_error("block store: all replicas of " + name + " block " +
                           std::to_string(block_index) +
                           " live on dead nodes [" + dead + "]");
}

const BlockStore::File& BlockStore::file_or_throw(
    const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw std::runtime_error("block store: no such file: " + name);
  }
  return it->second;
}

const std::string& BlockStore::get(const std::string& name) const {
  return file_or_throw(name).contents;
}

std::size_t BlockStore::file_size(const std::string& name) const {
  return file_or_throw(name).contents.size();
}

const std::vector<BlockStore::BlockInfo>& BlockStore::blocks(
    const std::string& name) const {
  return file_or_throw(name).layout;
}

std::string BlockStore::read_block(const std::string& name,
                                   std::size_t block_index) const {
  const File& file = file_or_throw(name);
  if (block_index >= file.layout.size()) {
    throw std::runtime_error("block store: block index out of range for " +
                             name);
  }
  const BlockInfo& block = file.layout[block_index];
  live_replica_or_throw(name, block_index, block);
  return file.contents.substr(block.offset, block.size);
}

std::vector<std::string> BlockStore::line_chunks(
    const std::string& name) const {
  const File& file = file_or_throw(name);
  const std::string& text = file.contents;
  std::vector<std::string> chunks;
  std::size_t record_start = 0;  // first byte not yet assigned to a chunk
  for (std::size_t b = 0; b < file.layout.size(); ++b) {
    live_replica_or_throw(name, b, file.layout[b]);
    const std::size_t block_end = file.layout[b].offset + file.layout[b].size;
    if (record_start >= block_end && b + 1 < file.layout.size()) {
      chunks.emplace_back();  // a previous chunk consumed past this block
      continue;
    }
    std::size_t end;
    if (b + 1 == file.layout.size()) {
      end = text.size();
    } else {
      const std::size_t nl = text.find('\n', block_end - 1);
      end = (nl == std::string::npos) ? text.size() : nl + 1;
    }
    if (end < record_start) end = record_start;
    chunks.push_back(text.substr(record_start, end - record_start));
    record_start = end;
  }
  return chunks;
}

}  // namespace drapid
