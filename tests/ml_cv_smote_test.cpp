#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ml/cross_validation.hpp"
#include "ml/smote.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {
namespace {

Dataset imbalanced(std::size_t majority, std::size_t minority,
                   std::uint64_t seed) {
  Dataset d({"x", "y"}, {"neg", "pos"});
  Rng rng(seed);
  for (std::size_t i = 0; i < majority; ++i) {
    d.add(std::vector<double>{rng.normal(0, 1), rng.normal(0, 1)}, 0);
  }
  for (std::size_t i = 0; i < minority; ++i) {
    d.add(std::vector<double>{rng.normal(4, 0.5), rng.normal(4, 0.5)}, 1);
  }
  return d;
}

TEST(StratifiedFolds, EveryFoldPreservesClassRatios) {
  const Dataset d = imbalanced(200, 40, 3);
  Rng rng(1);
  const auto folds = stratified_folds(d, 5, rng);
  ASSERT_EQ(folds.size(), d.num_instances());
  for (int f = 0; f < 5; ++f) {
    const auto rows = rows_in_fold(folds, f, true);
    std::size_t pos = 0;
    for (auto r : rows) pos += (d.label(r) == 1);
    EXPECT_EQ(rows.size(), 48u);
    EXPECT_EQ(pos, 8u);  // 40 positives / 5 folds exactly
  }
}

TEST(StratifiedFolds, InAndOutOfFoldPartitionRows) {
  const Dataset d = imbalanced(50, 10, 5);
  Rng rng(2);
  const auto folds = stratified_folds(d, 3, rng);
  const auto in = rows_in_fold(folds, 1, true);
  const auto out = rows_in_fold(folds, 1, false);
  EXPECT_EQ(in.size() + out.size(), d.num_instances());
  std::set<std::size_t> all(in.begin(), in.end());
  all.insert(out.begin(), out.end());
  EXPECT_EQ(all.size(), d.num_instances());
}

TEST(StratifiedFolds, RejectsFewerThanTwoFolds) {
  const Dataset d = imbalanced(10, 5, 7);
  Rng rng(1);
  EXPECT_THROW(stratified_folds(d, 1, rng), std::invalid_argument);
}

TEST(CrossValidate, PooledMatrixCoversEveryInstanceOnce) {
  const Dataset d = imbalanced(150, 30, 11);
  Rng rng(4);
  const auto result = cross_validate(
      d, 5, [] { return std::make_unique<DecisionTree>(); }, rng);
  EXPECT_EQ(result.folds.size(), 5u);
  EXPECT_EQ(result.pooled.total(), d.num_instances());
  EXPECT_GE(result.total_train_seconds, 0.0);
  // Separable data: near-perfect pooled scores.
  EXPECT_GE(result.pooled_binary().recall(), 0.9);
  EXPECT_GE(result.pooled_binary().f_measure(), 0.9);
}

TEST(CrossValidate, TransformAppliesOnlyToTrainingFolds) {
  const Dataset d = imbalanced(60, 12, 13);
  Rng rng(5);
  std::size_t transform_calls = 0;
  std::vector<std::size_t> seen_sizes;
  const auto result = cross_validate(
      d, 3, [] { return std::make_unique<DecisionTree>(); }, rng,
      [&](const Dataset& train, Rng&) {
        ++transform_calls;
        seen_sizes.push_back(train.num_instances());
        return train;
      });
  EXPECT_EQ(transform_calls, 3u);
  for (auto s : seen_sizes) EXPECT_EQ(s, 48u);  // 2/3 of 72
  EXPECT_EQ(result.pooled.total(), d.num_instances());
}

TEST(Smote, BalancesMinorityClass) {
  const Dataset d = imbalanced(100, 10, 17);
  Rng rng(6);
  const Dataset balanced = apply_smote(d, {}, rng);
  const auto counts = balanced.class_counts();
  EXPECT_EQ(counts[0], 100u);
  EXPECT_EQ(counts[1], 100u);
}

TEST(Smote, SyntheticPointsInterpolateWithinClassHull) {
  const Dataset d = imbalanced(50, 8, 19);
  Rng rng(7);
  const Dataset balanced = apply_smote(d, {}, rng);
  // Minority cloud is N(4, 0.5)²: synthetic points must stay in its
  // bounding region (interpolation cannot extrapolate).
  for (std::size_t i = d.num_instances(); i < balanced.num_instances(); ++i) {
    EXPECT_EQ(balanced.label(i), 1);
    EXPECT_GT(balanced.instance(i)[0], 1.0);
    EXPECT_LT(balanced.instance(i)[0], 7.0);
  }
}

TEST(Smote, PartialTargetRatio) {
  const Dataset d = imbalanced(100, 10, 23);
  Rng rng(8);
  SmoteParams params;
  params.target_ratio = 0.5;
  const Dataset balanced = apply_smote(d, params, rng);
  EXPECT_EQ(balanced.class_counts()[1], 50u);
}

TEST(Smote, AlreadyBalancedDataUnchanged) {
  const Dataset d = imbalanced(40, 40, 29);
  Rng rng(9);
  const Dataset out = apply_smote(d, {}, rng);
  EXPECT_EQ(out.num_instances(), d.num_instances());
}

TEST(Smote, SingletonClassDuplicates) {
  Dataset d({"x"}, {"a", "b"});
  Rng rng(10);
  for (int i = 0; i < 20; ++i) d.add(std::vector<double>{double(i)}, 0);
  d.add(std::vector<double>{99.0}, 1);
  const Dataset out = apply_smote(d, {}, rng);
  EXPECT_EQ(out.class_counts()[1], 20u);
  for (std::size_t i = d.num_instances(); i < out.num_instances(); ++i) {
    EXPECT_DOUBLE_EQ(out.instance(i)[0], 99.0);  // pure duplication
  }
}

TEST(Smote, EmptyClassIsIgnored) {
  Dataset d({"x"}, {"a", "b", "ghost"});
  Rng rng(11);
  for (int i = 0; i < 10; ++i) d.add(std::vector<double>{double(i)}, 0);
  for (int i = 0; i < 4; ++i) d.add(std::vector<double>{double(i) + 20}, 1);
  const Dataset out = apply_smote(d, {}, rng);
  EXPECT_EQ(out.class_counts()[2], 0u);
  EXPECT_EQ(out.class_counts()[1], 10u);
}

}  // namespace
}  // namespace ml
}  // namespace drapid
