// Two-stage subband dedispersion (dedisp/subband_sweep.hpp) against the
// exact PR 5 sweep as oracle: detected-event-set identity on synthetic
// survey grids, per-series error bounds, plan-decomposition invariants,
// degenerate group counts, and thread-count determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dedisp/single_pulse_search.hpp"
#include "dedisp/subband_sweep.hpp"
#include "spe/dm_grid.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

Filterbank survey_filterbank(double center_mhz, double bandwidth_mhz,
                             std::size_t channels, std::uint64_t seed) {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = center_mhz;
  cfg.bandwidth_mhz = bandwidth_mhz;
  cfg.num_channels = channels;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 10.0;
  Filterbank fb(cfg);
  Rng rng(seed);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(2.0, 5.0, 3.0, 20.0);
  fb.inject_pulse(6.5, 3.2, 2.5, 30.0);
  fb.inject_broadband_impulse(8.0, 5.0);
  return fb;
}

bool events_identical(const std::vector<SinglePulseEvent>& a,
                      const std::vector<SinglePulseEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].dm != b[i].dm || a[i].snr != b[i].snr ||
        a[i].time_s != b[i].time_s || a[i].sample != b[i].sample ||
        a[i].downfact != b[i].downfact) {
      return false;
    }
  }
  return true;
}

std::vector<SinglePulseEvent> run(const Filterbank& fb, const DmGrid& grid,
                                  SweepMethod method, std::size_t groups = 0,
                                  std::size_t threads = 1) {
  SinglePulseSearchParams params;
  params.method = method;
  params.subband_groups = groups;
  params.threads = threads;
  return single_pulse_search(fb, grid, params);
}

TEST(SubbandSweep, EventSetIdenticalToOracleOnGbt350Survey) {
  const Filterbank fb = survey_filterbank(350.0, 100.0, 32, 3);
  const DmGrid grid = DmGrid::gbt350drift().prefix(8.0);
  const auto exact = run(fb, grid, SweepMethod::kExact);
  ASSERT_FALSE(exact.empty());
  EXPECT_TRUE(events_identical(run(fb, grid, SweepMethod::kSubband), exact));
  // An explicit non-auto group count must agree too.
  EXPECT_TRUE(
      events_identical(run(fb, grid, SweepMethod::kSubband, 4), exact));
}

TEST(SubbandSweep, EventSetIdenticalToOracleOnPalfaSurvey) {
  // PALFA geometry: 1.4 GHz, so per-channel delays are far smaller for the
  // same DM — a different residual-pattern census than the 350 MHz band.
  const Filterbank fb = survey_filterbank(1400.0, 300.0, 48, 5);
  const DmGrid grid = DmGrid::palfa().prefix(10.0);
  const auto exact = run(fb, grid, SweepMethod::kExact);
  ASSERT_FALSE(exact.empty());
  EXPECT_TRUE(events_identical(run(fb, grid, SweepMethod::kSubband), exact));
}

TEST(SubbandSweep, PerSeriesErrorStaysWithinDocumentedBound) {
  const Filterbank fb = survey_filterbank(350.0, 100.0, 32, 7);
  const DmGrid grid({{0.0, 10.0, 0.05}});
  const SweepPlan sweep = build_sweep_plan(fb, grid);
  const SubbandPlan sub =
      build_subband_plan(sweep, fb.num_channels(), fb.num_samples());
  ASSERT_GT(sub.total_patterns, 0u);

  // |subband - exact| per sample is bounded by the floating-point regrouping
  // of channel sums: ~2 (C-1) eps Σ|x| ≈ 1e-12 for unit noise over 32
  // channels. 1e-9 leaves two orders of headroom without ever letting a
  // detection-sized discrepancy through.
  DedispScratch exact_scratch;
  DedispScratch subband_scratch;
  double worst = 0.0;
  for (std::size_t p = 0; p < sweep.plans.size(); ++p) {
    // dedisperse_plan applies normalize_tail itself; subband_series applies
    // the same normalization after its combine, so both series are final.
    dedisperse_plan(fb, sweep.plans[p], exact_scratch);
    subband_series(fb, sweep, sub, p, subband_scratch);
    ASSERT_EQ(exact_scratch.series.size(), subband_scratch.series.size());
    for (std::size_t s = 0; s < exact_scratch.series.size(); ++s) {
      worst = std::max(worst, std::abs(exact_scratch.series[s] -
                                       subband_scratch.series[s]));
    }
  }
  EXPECT_LE(worst, 1e-9);
}

TEST(SubbandSweep, DecompositionReconstructsEveryShiftExactly) {
  const Filterbank fb = survey_filterbank(350.0, 100.0, 32, 9);
  const DmGrid grid = DmGrid::gbt350drift().prefix(5.0);
  const SweepPlan sweep = build_sweep_plan(fb, grid);
  const SubbandPlan sub =
      build_subband_plan(sweep, fb.num_channels(), fb.num_samples());

  ASSERT_FALSE(sub.groups.size() == 0);
  ASSERT_EQ(sub.pattern_base.size(), sub.groups.size() + 1);
  EXPECT_EQ(sub.pattern_base.back(), sub.total_patterns);
  EXPECT_EQ(sub.num_plans, sweep.plans.size());

  // Contiguous full-band coverage by the groups.
  EXPECT_EQ(sub.groups.front().begin, 0u);
  EXPECT_EQ(sub.groups.back().end, fb.num_channels());
  for (std::size_t g = 1; g < sub.groups.size(); ++g) {
    EXPECT_EQ(sub.groups[g].begin, sub.groups[g - 1].end);
  }

  // base_g + residual_c must recreate every channel's clamped shift — this
  // is what makes the subband coverage exact and normalize_tail applicable
  // unchanged.
  std::uint32_t max_residual = 0;
  for (std::size_t p = 0; p < sweep.plans.size(); ++p) {
    for (std::size_t g = 0; g < sub.groups.size(); ++g) {
      const SubbandEntry& entry = sub.entry(p, g);
      const SubbandPattern& pattern = sub.patterns[g][entry.pattern];
      ASSERT_EQ(pattern.residuals.size(), sub.groups[g].size());
      for (std::size_t i = 0; i < pattern.residuals.size(); ++i) {
        EXPECT_EQ(entry.offset + pattern.residuals[i],
                  sweep.plans[p].shifts[sub.groups[g].begin + i])
            << "plan " << p << " group " << g << " channel " << i;
        max_residual = std::max(max_residual, pattern.residuals[i]);
      }
    }
  }
  EXPECT_EQ(sub.max_residual, max_residual);
}

TEST(SubbandSweep, SingleChannelFilterbankDegenerate) {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 20.0;
  cfg.num_channels = 1;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 6.0;
  Filterbank fb(cfg);
  Rng rng(11);
  fb.add_noise(rng, 1.0);
  fb.inject_broadband_impulse(3.0, 6.0);
  const DmGrid grid({{0.0, 20.0, 0.5}});
  const auto exact = run(fb, grid, SweepMethod::kExact);
  EXPECT_TRUE(events_identical(run(fb, grid, SweepMethod::kSubband), exact));
}

TEST(SubbandSweep, DegenerateGroupCountsAllMatchOracle) {
  const Filterbank fb = survey_filterbank(350.0, 100.0, 16, 13);
  const DmGrid grid({{0.0, 15.0, 0.05}});
  const auto exact = run(fb, grid, SweepMethod::kExact);
  ASSERT_FALSE(exact.empty());
  // One group: patterns ≈ plans, no reuse but still correct. Groups ==
  // channels: every pattern is {0} and stage 2 is the whole dedispersion.
  // Oversized requests clamp to the channel count.
  for (const std::size_t groups :
       {std::size_t{1}, fb.num_channels(), fb.num_channels() * 10}) {
    EXPECT_TRUE(
        events_identical(run(fb, grid, SweepMethod::kSubband, groups), exact))
        << "groups=" << groups;
  }
}

TEST(SubbandSweep, ThreadCountDoesNotChangeOutput) {
  const Filterbank fb = survey_filterbank(350.0, 100.0, 32, 17);
  const DmGrid grid = DmGrid::gbt350drift().prefix(6.0);
  const auto one = run(fb, grid, SweepMethod::kSubband, 0, 1);
  ASSERT_FALSE(one.empty());
  EXPECT_TRUE(
      events_identical(run(fb, grid, SweepMethod::kSubband, 0, 2), one));
  EXPECT_TRUE(
      events_identical(run(fb, grid, SweepMethod::kSubband, 0, 8), one));
}

TEST(SubbandSweep, StridedGridMatchesOracle) {
  const Filterbank fb = survey_filterbank(350.0, 100.0, 32, 19);
  const DmGrid grid({{0.0, 8.0, 0.002}});
  SinglePulseSearchParams params;
  params.dm_stride = 3;
  params.method = SweepMethod::kExact;
  const auto exact = single_pulse_search(fb, grid, params);
  params.method = SweepMethod::kSubband;
  EXPECT_TRUE(events_identical(single_pulse_search(fb, grid, params), exact));
}

TEST(SweepMethodKnob, ParsesAndNames) {
  EXPECT_EQ(parse_sweep_method("exact"), SweepMethod::kExact);
  EXPECT_EQ(parse_sweep_method("subband"), SweepMethod::kSubband);
  EXPECT_THROW(parse_sweep_method("fdmt"), std::invalid_argument);
  EXPECT_STREQ(sweep_method_name(SweepMethod::kExact), "exact");
  EXPECT_STREQ(sweep_method_name(SweepMethod::kSubband), "subband");
}

}  // namespace
}  // namespace drapid
