// End-to-end tour of the streaming survey service: observations are
// submitted to a SurveyService, ingested in fixed-size chunks through the
// StreamingSweep, and their candidates sealed into a checksummed on-disk
// archive that answers DM-range / S/N / time-window / key queries while the
// writer is still busy.
//
//   ./examples/survey_service [--observations N] [--seed N] [--dir PATH]
#include <filesystem>
#include <iostream>

#include "serve/service.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

using namespace drapid;

namespace {

ObservationId beam_id(int beam) {
  ObservationId id;
  id.dataset = "DEMO";
  id.mjd = 60000.5;
  id.ra_deg = 83.6;
  id.dec_deg = 22.0;
  id.beam = beam;
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv,
               {{"observations", "3"}, {"seed", "11"}, {"dir", ""}});
  if (opts.help_requested()) {
    std::cout << opts.usage("survey_service",
                            "Streaming survey service demo: chunked ingest "
                            "into a queryable candidate archive.");
    return 0;
  }
  const int observations = static_cast<int>(opts.integer("observations"));
  const auto seed = static_cast<std::uint64_t>(opts.integer("seed"));
  std::string dir = opts.str("dir");
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "drapid_survey_demo")
              .string();
    std::filesystem::remove_all(dir);
  }

  serve::SurveyServiceConfig config;
  config.filterbank.num_channels = 32;
  config.filterbank.sample_time_ms = 2.0;
  config.filterbank.obs_length_s = 10.0;
  config.chunk_samples = 1024;
  const DmGrid grid({{0.0, 60.0, 0.25}});

  serve::SurveyService service(dir, grid, config);
  Rng rng(seed);
  for (int beam = 0; beam < observations; ++beam) {
    Filterbank fb(config.filterbank);
    fb.add_noise(rng, 1.0);
    // One dispersed pulse per beam, drifting in DM and arrival time.
    fb.inject_pulse(2.0 + beam, 20.0 + 10.0 * beam, 3.0, 18.0);
    service.submit(beam_id(beam), fb);
  }
  service.drain();

  std::cout << "archive: " << service.archive().dir() << "\n"
            << "observations ingested: " << service.observations_ingested()
            << ", sealed segments: " << service.archive().num_segments()
            << ", candidates: " << service.archive().size() << "\n\n";

  struct Shown {
    const char* label;
    serve::Query q;
  };
  std::vector<Shown> queries;
  queries.push_back({"all candidates", {}});
  serve::Query dm_band;
  dm_band.dm_min = 25.0;
  dm_band.dm_max = 35.0;
  queries.push_back({"DM in [25, 35)", dm_band});
  serve::Query bright;
  bright.min_snr = 8.0;
  queries.push_back({"S/N >= 8", bright});
  serve::Query window;
  window.time_min = 1.5;
  window.time_max = 4.5;
  queries.push_back({"t in [1.5s, 4.5s)", window});
  serve::Query one_beam;
  one_beam.key = beam_id(0).key();
  queries.push_back({"beam 0 only", one_beam});

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"query", "matches", "best S/N", "best DM"});
  for (const auto& shown : queries) {
    const auto out = service.query(shown.q);
    double best_snr = 0.0, best_dm = 0.0;
    for (const auto& rec : out) {
      if (rec.event.snr > best_snr) {
        best_snr = rec.event.snr;
        best_dm = rec.event.dm;
      }
    }
    rows.push_back({shown.label, std::to_string(out.size()),
                    out.empty() ? "-" : format_number(best_snr),
                    out.empty() ? "-" : format_number(best_dm)});
  }
  std::cout << render_table(rows) << "\n";

  // The archive is durable: reopen it cold and re-run the first query.
  serve::CandidateArchive reopened(dir);
  std::cout << "reopened archive sees " << reopened.size()
            << " candidates across " << reopened.num_segments()
            << " segments\n";
  return 0;
}
