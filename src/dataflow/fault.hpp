// Deterministic fault injection for the dataflow engine.
//
// Spark's resilience story — failed tasks are retried, lost partitions are
// recomputed from lineage, dead data nodes are routed around — is the reason
// the paper runs D-RAPID on Spark at all. To reproduce (and price) that
// story, the engine accepts a FaultPlan describing which faults to inject:
// task-attempt kills, spill-file corruption/loss, and dead block-store
// nodes. Every decision is a pure function of (plan seed, fault site), drawn
// through the splittable Rng, so a plan is bit-reproducible regardless of
// thread interleaving, and raising a rate strictly grows the set of injected
// faults (each site compares one fixed uniform draw against the rate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace drapid {

/// Thrown by the engine when an injected fault kills a task attempt (and by
/// the retry loop when a task exhausts its attempt budget).
struct TaskFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One planned worker-process kill: during any stage whose name starts with
/// `stage`, worker slot `worker` of the process backend SIGKILLs itself
/// before running its last assigned task. Only the slot's first incarnation
/// dies (replacement workers forked for recovery are spared), so the kill is
/// deterministic and the stage always completes within the attempt budget.
/// The local backend has no worker processes; it ignores these entries.
struct WorkerKill {
  std::string stage;
  std::size_t worker = 0;
};

/// What should happen to one freshly-written spill file.
enum class SpillFault {
  kNone,     ///< leave the file alone
  kCorrupt,  ///< flip one payload byte (caught by the checksum on read)
  kLose,     ///< delete the file (caught by the open on read)
};

/// Declarative description of the faults one engine run should inject.
/// Rates are per-site probabilities; the explicit lists force specific
/// sites deterministically (used by the fault-injection test suite).
struct FaultPlan {
  /// Root seed for every injection decision.
  std::uint64_t seed = 0x5eedULL;

  /// Probability that one task attempt is killed at launch.
  double task_failure_rate = 0.0;
  /// Rate-based kills only strike the first `max_injected_failures_per_task`
  /// attempts of a task, so a job with attempt budget above this always
  /// completes (Spark's spark.task.maxFailures plays the same role).
  std::size_t max_injected_failures_per_task = 1;
  /// Stage-name prefixes whose every task has its first attempt killed
  /// ("kill each task once" — the deterministic test plan).
  std::vector<std::string> fail_once_stages;

  /// Probability that one spill file is corrupted or lost after writing
  /// (which of the two is a coin flip from the same stream).
  double spill_fault_rate = 0.0;
  /// Partitions whose spill file is always corrupted / lost.
  std::vector<std::size_t> corrupt_spill_partitions;
  std::vector<std::size_t> lose_spill_partitions;

  /// Probability that one block-store data node is dead for the run.
  double node_fault_rate = 0.0;
  /// Nodes that are always dead.
  std::vector<int> dead_nodes;

  /// Worker processes killed mid-stage (process backend only) — the
  /// first-class injection point for real process deaths, replacing the
  /// ad-hoc task-kill-only plans for that backend.
  std::vector<WorkerKill> kill_workers;

  bool any() const {
    return task_failure_rate > 0.0 || spill_fault_rate > 0.0 ||
           node_fault_rate > 0.0 || !fail_once_stages.empty() ||
           !corrupt_spill_partitions.empty() ||
           !lose_spill_partitions.empty() || !dead_nodes.empty() ||
           !kill_workers.empty();
  }
};

/// Evaluates a FaultPlan. All queries are const, thread-safe, and
/// deterministic: the same plan answers the same way in any order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {});

  bool enabled() const { return plan_.any(); }
  const FaultPlan& plan() const { return plan_; }

  /// Should attempt `attempt` (0-based) of task `partition` of `stage` be
  /// killed at launch?
  bool fail_task(const std::string& stage, std::size_t partition,
                 std::size_t attempt) const;

  /// Fate of the spill file holding partition `partition` of cache `cache`.
  SpillFault spill_fault(const std::string& cache, std::size_t partition) const;

  /// The data nodes dead under this plan (explicit list plus rate draws).
  std::vector<int> dead_nodes(std::size_t num_nodes) const;

  /// Should worker slot `worker` (incarnation `incarnation`: 0 = the
  /// original fork, >0 = a replacement forked after a death) SIGKILL itself
  /// during `stage`? Matches kill_workers entries by stage-name prefix, the
  /// same convention as fail_once_stages; only incarnation 0 dies.
  bool kill_worker(const std::string& stage, std::size_t worker,
                   std::size_t incarnation) const;

 private:
  /// Uniform [0,1) draw for a fault site, independent of every other site.
  double site_draw(const char* kind, const std::string& name,
                   std::uint64_t a, std::uint64_t b) const;

  FaultPlan plan_;
};

}  // namespace drapid
