// Figure 6 (RQ6, RQ7): effect of the five Table 4 feature-selection filters
// on RF (panel a) and MPN (panel b) training times, across ALM schemes and
// both data sets. Also prints the Recall/F deltas behind RQ6 ("no
// significant benefit or detriment on classification performance").
//
// Expected shape: every filter cuts MPN training times sharply (the input
// layer shrinks 22 -> 10); InfoGain gives RF a consistent, modest cut.
#include <iostream>
#include <map>
#include <optional>

#include "exp/trial_runner.hpp"
#include "obs/bench.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  obs::BenchOptions bench(
      "bench_fig6_fs", argc, argv,
      {{"positives", "250"}, {"negatives", "1500"}, {"both-datasets", "true"}},
      "Figure 6: feature-selection filters x RF/MPN training time.");
  if (bench.help()) return 0;
  const Options& opts = bench.opts();
  std::cout << "=== Figure 6: feature selection x training time ===\n";
  const auto seed = static_cast<std::uint64_t>(bench.seed());

  std::map<std::string, std::vector<LabeledPulse>> datasets;
  const auto build = [&](const std::string& name, SurveyConfig survey,
                         std::uint64_t s) {
    BenchmarkConfig cfg;
    cfg.survey = std::move(survey);
    cfg.survey.obs_length_s = 70.0;
    cfg.target_positives =
        static_cast<std::size_t>(bench.scaled(opts.integer("positives")));
    cfg.target_negatives =
        static_cast<std::size_t>(bench.scaled(opts.integer("negatives")));
    cfg.visibility = 0.10;
    cfg.seed = s;
    std::cerr << "building " << name << " benchmark...\n";
    datasets[name] = build_benchmark_pulses(cfg);
  };
  build("GBT350Drift", SurveyConfig::gbt350drift(), seed);
  if (opts.flag("both-datasets")) {
    build("PALFA", SurveyConfig::palfa(), seed + 1);
  }

  const std::vector<ml::AlmScheme> schemes = {
      ml::AlmScheme::kBinary, ml::AlmScheme::kFour, ml::AlmScheme::kSeven,
      ml::AlmScheme::kEight};
  const std::vector<std::optional<ml::FilterMethod>> filters = {
      std::nullopt,
      ml::FilterMethod::kInfoGain,
      ml::FilterMethod::kGainRatio,
      ml::FilterMethod::kSymmetricalUncertainty,
      ml::FilterMethod::kCorrelation,
      ml::FilterMethod::kOneR};

  for (ml::LearnerType learner :
       {ml::LearnerType::kRandomForest, ml::LearnerType::kMpn}) {
    std::cout << "\n###### Figure 6 panel: " << ml::learner_name(learner)
              << " ######\n";
    for (const auto& [dataset_name, pulses] : datasets) {
      for (ml::AlmScheme scheme : schemes) {
        std::vector<BoxplotRow> time_rows;
        double none_time = 0.0, none_f = 0.0;
        std::vector<std::vector<std::string>> quality;
        quality.push_back({"filter", "Recall", "F-Measure", "train(s)",
                           "vs None"});
        for (const auto& filter : filters) {
          TrialSpec spec;
          spec.scheme = scheme;
          spec.learner = learner;
          spec.filter = filter;
          spec.seed = seed;
          const TrialResult r = run_trial(pulses, spec);
          obs::Json row = obs::Json::object();
          row.set("dataset", dataset_name);
          row.set("trial", spec.describe());
          row.set("recall", r.recall);
          row.set("f_measure", r.f_measure);
          row.set("train_seconds", r.train_seconds);
          row.set("test_seconds", r.test_seconds);
          row.set("transform_seconds", r.transform_seconds);
          bench.report().add_result(std::move(row));
          const std::string label =
              filter ? ml::filter_abbreviation(*filter) : "None";
          time_rows.push_back({label, summarize(r.fold_train_seconds)});
          if (!filter) {
            none_time = r.train_seconds;
            none_f = r.f_measure;
          }
          const double delta =
              none_time > 0.0
                  ? (1.0 - r.train_seconds / none_time) * 100.0
                  : 0.0;
          quality.push_back({label, format_number(r.recall),
                             format_number(r.f_measure),
                             format_number(r.train_seconds),
                             (filter ? format_number(delta, 1) + "%" : "-")});
        }
        (void)none_f;
        const std::string panel = ml::learner_name(learner) + " | " +
                                  dataset_name + " scheme " +
                                  ml::alm_scheme_name(scheme);
        std::cout << '\n'
                  << render_boxplots("Fig6 train(s) | " + panel, time_rows)
                  << render_table(quality);
      }
    }
  }
  std::cout << "\n(paper: all filters cut MPN times — IG binary MPN ~64% "
               "faster; IG consistently fastest for multiclass RF; "
               "classification performance unaffected by IG/GR/SU)\n";
  bench.finish();
  return 0;
}
