#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace drapid {

namespace {

LinearFit fit_from_sums(std::size_t n, double sx, double sy, double sxx,
                        double syy, double sxy) {
  LinearFit fit;
  fit.n = n;
  if (n < 2) {
    fit.intercept = (n == 1) ? sy : 0.0;
    return fit;
  }
  const double dn = static_cast<double>(n);
  const double sxx_c = sxx - sx * sx / dn;  // centered sum of squares of x
  const double syy_c = syy - sy * sy / dn;
  const double sxy_c = sxy - sx * sy / dn;
  if (sxx_c <= 0.0) {
    fit.intercept = sy / dn;
    return fit;
  }
  fit.slope = sxy_c / sxx_c;
  fit.intercept = (sy - fit.slope * sx) / dn;
  if (syy_c > 0.0) {
    fit.r_squared = (sxy_c * sxy_c) / (sxx_c * syy_c);
    fit.r_squared = std::clamp(fit.r_squared, 0.0, 1.0);
  }
  return fit;
}

}  // namespace

LinearFit linear_regression(std::span<const double> x,
                            std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  return fit_from_sums(n, sx, sy, sxx, syy, sxy);
}

LinearFit RunningFit::fit() const {
  return fit_from_sums(n_, sx_, sy_, sxx_, syy_, sxy_);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values, bool sample) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  const double denom = sample ? static_cast<double>(n - 1)
                              : static_cast<double>(n);
  return std::sqrt(ss / denom);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  s.n = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = at(0.25);
  s.median = at(0.5);
  s.q3 = at(0.75);
  s.mean = mean(values);
  s.stddev = stddev(values);
  return s;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double mx = mean(x.subspan(0, n));
  const double my = mean(y.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double skewness(std::span<const double> values) {
  const std::size_t n = values.size();
  if (n < 3) return 0.0;
  const double m = mean(values);
  double m2 = 0.0, m3 = 0.0;
  for (double v : values) {
    const double d = v - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double excess_kurtosis(std::span<const double> values) {
  const std::size_t n = values.size();
  if (n < 4) return 0.0;
  const double m = mean(values);
  double m2 = 0.0, m4 = 0.0;
  for (double v : values) {
    const double d = v - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double entropy_from_counts(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (auto c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace drapid
