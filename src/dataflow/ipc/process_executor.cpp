#include "dataflow/ipc/process_executor.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "dataflow/engine.hpp"
#include "dataflow/ipc/pool.hpp"
#include "dataflow/ipc/wire.hpp"

namespace drapid {

bool process_executor_supported() {
#if defined(__SANITIZE_THREAD__)
  return false;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
}

namespace {

/// Writes the whole buffer; false when the peer vanished (EPIPE & co).
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// One task on a worker's run list. attempt_base counts attempts already
/// charged to the task by earlier deaths of this worker slot; the child's
/// retry loop starts there, so fault draws and attempt counters line up
/// exactly with what the local backend would have recorded.
struct WorkerTask {
  std::size_t partition = 0;
  std::size_t attempt_base = 0;
};

struct Worker {
  pid_t pid = -1;
  int fd = -1;  ///< parent side of the socketpair (-1 once closed)
  std::size_t slot = 0;
  std::size_t incarnation = 0;
  std::vector<WorkerTask> pending;  ///< unfinished tasks, execution order
  std::string buffer;               ///< received bytes not yet decoded
  bool alive = false;
};

std::string permanent_failure_message(const std::string& stage,
                                      std::size_t partition,
                                      std::size_t attempts) {
  return "task failed permanently after " + std::to_string(attempts) +
         " attempts: stage=" + stage +
         " partition=" + std::to_string(partition);
}

}  // namespace

ProcessExecutor::ProcessExecutor(Engine& engine, std::size_t workers,
                                 PoolMode pool)
    : engine_(engine),
      workers_(std::max<std::size_t>(1, workers)),
      mode_(pool),
      local_(engine) {
  if (mode_ == PoolMode::kJob) {
    pool_ = std::make_unique<WorkerPool>(engine_, workers_);
  }
}

ProcessExecutor::~ProcessExecutor() = default;

PoolResidency* ProcessExecutor::residency() { return pool_.get(); }

void ProcessExecutor::run_stage_tasks(StageRun run) {
  if (mode_ == PoolMode::kJob) {
    // Job pool: stages that shipped a plan run on the persistent workers;
    // everything else (non-trivially-copyable closures, spill I/O, cache
    // bookkeeping) runs in-process — the transformation layer has already
    // localized any resident inputs such stages need. Fork-per-stage is not
    // an option here: a fresh fork would inherit the pool's sockets and the
    // stage closure would race the pool's resident state.
    if (run.plan != nullptr && run.plan->kernel != nullptr &&
        !run.stage.tasks.empty()) {
      pool_->run_pooled_stage(run);
    } else {
      local_.run_stage_tasks(run);
    }
    return;
  }
  run_stage_tasks_forked(run);
}

void ProcessExecutor::run_stage_tasks_forked(StageRun run) {
  StageMetrics& stage = run.stage;
  // No output contract means the stage's effects cannot cross a process
  // boundary (spill I/O, in-memory bookkeeping): run it where they land.
  if (run.io == nullptr || stage.tasks.empty()) {
    local_.run_stage_tasks(run);
    return;
  }

  const std::size_t max_attempts =
      std::max<std::size_t>(1, engine_.config_.max_task_attempts);
  const std::size_t nworkers = std::min(workers_, stage.tasks.size());

  std::vector<Worker> workers(nworkers);
  for (std::size_t i = 0; i < nworkers; ++i) workers[i].slot = i;
  for (std::size_t p = 0; p < stage.tasks.size(); ++p) {
    workers[p % nworkers].pending.push_back(WorkerTask{p, 0});
  }

  // Runs in the forked child only. Executes the slot's pending tasks
  // sequentially on the child's sole thread (the parent's pool workers do
  // not exist here) and ships each outcome as one wire frame. Never
  // returns; never calls exit() — _exit() skips atexit handlers and stdio
  // flushes that belong to the parent.
  const auto child_main = [&](const Worker& self, bool kill_before_last,
                              const std::vector<int>& close_fds) -> void {
    for (int fd : close_fds) ::close(fd);
    ::signal(SIGPIPE, SIG_IGN);
    // Child-local disabled tracer: spans die with the child, and growing
    // the parent's tracer buffers post-fork is not safe. The parent still
    // wraps the stage in its own span.
    obs::Tracer child_tracer;
    for (std::size_t i = 0; i < self.pending.size(); ++i) {
      if (kill_before_last && i + 1 == self.pending.size()) {
        // Planned death: vanish without a frame, mid-"write" as far as the
        // coordinator can tell. SIGKILL is unmaskable, like the real thing.
        ::kill(::getpid(), SIGKILL);
      }
      const WorkerTask wt = self.pending[i];
      auto& task = stage.tasks[wt.partition];  // the child's COW copy
      ipc::TaskFrame frame;
      frame.partition = wt.partition;
      try {
        obs::ScopedSpan task_span(child_tracer, "task", stage.name,
                                  "dataflow");
        TaskContext ctx(stage.name, wt.partition, task, task_span);
        for (std::size_t attempt = wt.attempt_base;; ++attempt) {
          ctx.attempt_ = attempt;
          task.attempts = attempt + 1;
          if (engine_.faults_.fail_task(stage.name, wt.partition, attempt)) {
            if (attempt + 1 >= max_attempts) {
              throw TaskFailure(permanent_failure_message(
                  stage.name, wt.partition, attempt + 1));
            }
            continue;  // the reattempt backoff is modeled, not slept
          }
          run.body(ctx);
          if (attempt > 0) {
            task.retry_cost += attempt * task.compute_cost;
          }
          break;
        }
        frame.kind = ipc::FrameKind::kResult;
        frame.metrics = task;
        frame.payload = run.io->serialize(wt.partition);
      } catch (const TaskFailure& failure) {
        frame.kind = ipc::FrameKind::kError;
        frame.error_kind = ipc::WireErrorKind::kTaskFailure;
        frame.metrics = task;
        frame.payload = failure.what();
      } catch (const std::exception& error) {
        frame.kind = ipc::FrameKind::kError;
        frame.error_kind = ipc::WireErrorKind::kRuntime;
        frame.metrics = task;
        frame.payload = error.what();
      }
      const std::string bytes = ipc::encode_frame(frame);
      if (!write_all(self.fd, bytes.data(), bytes.size())) ::_exit(1);
      if (frame.kind == ipc::FrameKind::kError) ::_exit(0);
    }
    ::_exit(0);
  };

  const auto spawn = [&](Worker& w) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw std::runtime_error(std::string("socketpair failed: ") +
                               std::strerror(errno));
    }
    // Everything the child must NOT hold open: the other live workers'
    // parent-side sockets (an inherited duplicate would mask a sibling's
    // EOF) and its own parent side.
    std::vector<int> close_fds;
    for (const auto& other : workers) {
      if (other.alive && other.fd >= 0) close_fds.push_back(other.fd);
    }
    close_fds.push_back(fds[0]);
    const bool kill_before_last =
        engine_.faults_.kill_worker(stage.name, w.slot, w.incarnation);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::runtime_error(std::string("fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      Worker self = w;
      self.fd = fds[1];
      child_main(self, kill_before_last, close_fds);
      ::_exit(0);  // unreachable; child_main always _exits
    }
    ::close(fds[1]);
    w.pid = pid;
    w.fd = fds[0];
    w.alive = true;
    w.buffer.clear();
    stage.workers_used += 1;
    engine_.workers_forked_counter_.add();
  };

  // Attempts charged to each partition by worker deaths (not by injected
  // task kills, which the child draws itself); used to split the attempt
  // counter back into retry kinds for the global counters.
  std::vector<std::size_t> death_attempts(stage.tasks.size(), 0);
  std::size_t completed = 0;

  const auto retire = [](Worker& w) {
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
    w.alive = false;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
  };

  // Worker death (EOF or corrupt frame): every unfinished task is charged
  // one attempt — the same price as an injected task kill — and, budget
  // permitting, a replacement incarnation is forked for the remainder.
  const auto handle_death = [&](Worker& w) {
    retire(w);
    if (w.pending.empty()) return;  // clean retirement, all tasks done
    stage.worker_deaths += 1;
    engine_.worker_deaths_counter_.add();
    if (engine_.tracer_.enabled()) {
      obs::Json args = obs::Json::object();
      args.set("stage", stage.name);
      args.set("worker", static_cast<std::int64_t>(w.slot));
      args.set("incarnation", static_cast<std::int64_t>(w.incarnation));
      args.set("tasks_lost", static_cast<std::int64_t>(w.pending.size()));
      engine_.tracer_.instant("worker.death", std::move(args), "fault");
    }
    for (auto& wt : w.pending) {
      wt.attempt_base += 1;
      death_attempts[wt.partition] += 1;
      engine_.retries_counter_.add();
      if (engine_.tracer_.enabled()) {
        obs::Json args = obs::Json::object();
        args.set("stage", stage.name);
        args.set("partition", static_cast<std::int64_t>(wt.partition));
        args.set("attempt", static_cast<std::int64_t>(wt.attempt_base - 1));
        engine_.tracer_.instant("task.retry", std::move(args), "fault");
      }
      if (wt.attempt_base >= max_attempts) {
        engine_.failures_counter_.add();
        throw TaskFailure(permanent_failure_message(stage.name, wt.partition,
                                                    wt.attempt_base));
      }
    }
    w.incarnation += 1;
    spawn(w);
  };

  const auto handle_frame = [&](Worker& w, const ipc::TaskFrame& frame,
                                std::size_t frame_bytes) {
    if (frame.kind == ipc::FrameKind::kError) {
      if (frame.error_kind == ipc::WireErrorKind::kTaskFailure) {
        engine_.failures_counter_.add();
        throw TaskFailure(frame.payload);
      }
      throw std::runtime_error(frame.payload);
    }
    const std::size_t p = static_cast<std::size_t>(frame.partition);
    const auto it =
        std::find_if(w.pending.begin(), w.pending.end(),
                     [&](const WorkerTask& t) { return t.partition == p; });
    if (p >= stage.tasks.size() || it == w.pending.end()) {
      throw std::runtime_error("process executor: worker " +
                               std::to_string(w.slot) +
                               " returned unassigned partition " +
                               std::to_string(p));
    }
    run.io->absorb(p, frame.payload);
    stage.tasks[p] = frame.metrics;
    stage.tasks[p].partition = p;
    stage.ipc_bytes += frame_bytes;
    engine_.ipc_bytes_counter_.add(static_cast<std::int64_t>(frame_bytes));
    engine_.tasks_counter_.add();
    // attempts = 1 clean run + death-charged attempts + injected kills the
    // child drew; credit the injected share to the retry counter (deaths
    // were credited when they happened).
    const std::size_t base = 1 + death_attempts[p];
    if (frame.metrics.attempts > base) {
      engine_.retries_counter_.add(
          static_cast<std::int64_t>(frame.metrics.attempts - base));
    }
    w.pending.erase(it);
    completed += 1;
  };

  try {
    for (auto& w : workers) spawn(w);
    while (completed < stage.tasks.size()) {
      std::vector<pollfd> fds;
      std::vector<Worker*> owners;
      for (auto& w : workers) {
        if (!w.alive) continue;
        fds.push_back(pollfd{w.fd, POLLIN, 0});
        owners.push_back(&w);
      }
      if (fds.empty()) {
        throw std::runtime_error(
            "process executor: all workers retired with tasks incomplete");
      }
      const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("poll failed: ") +
                                 std::strerror(errno));
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        Worker& w = *owners[i];
        char buf[64 * 1024];
        const ssize_t n = ::read(w.fd, buf, sizeof(buf));
        if (n < 0) {
          if (errno == EINTR) continue;
          handle_death(w);
          continue;
        }
        if (n == 0) {
          // EOF. Anything left in the buffer is a frame the worker died
          // mid-write; handle_death treats the remnant like the SIGKILL it
          // probably was.
          handle_death(w);
          continue;
        }
        w.buffer.append(buf, static_cast<std::size_t>(n));
        std::size_t offset = 0;
        bool corrupt = false;
        while (true) {
          ipc::TaskFrame frame;
          std::size_t consumed = 0;
          const auto status =
              ipc::try_decode_frame(w.buffer.data() + offset,
                                    w.buffer.size() - offset, frame, consumed);
          if (status == ipc::DecodeStatus::kOk) {
            handle_frame(w, frame, consumed);
            offset += consumed;
            continue;
          }
          if (status == ipc::DecodeStatus::kIncomplete) break;
          corrupt = true;
          break;
        }
        w.buffer.erase(0, offset);
        if (corrupt) {
          // A worker emitting garbage is as dead as one that vanished:
          // kill it for real, then recover through the same path.
          ::kill(w.pid, SIGKILL);
          handle_death(w);
        }
      }
    }
    // All tasks absorbed; retire workers that haven't EOF'd yet.
    for (auto& w : workers) {
      if (w.alive) retire(w);
    }
  } catch (...) {
    for (auto& w : workers) {
      if (!w.alive) continue;
      ::kill(w.pid, SIGKILL);
      retire(w);
    }
    throw;
  }
}

}  // namespace drapid
