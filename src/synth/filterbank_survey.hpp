// Filterbank-backed survey observations: phases 1–3 run for real.
//
// SurveySimulator::simulate() draws single pulse events from an *analytic*
// model of what a single-pulse search emits. This path instead synthesizes
// the raw filterbank (band noise, dispersed pulses, RFI) and runs the actual
// shift-plan DM sweep over the survey's trial grid, so the SPE lists carry
// whatever the detection pipeline really produces — boxcar widths, island
// merging, tail-normalization effects and all. It is the end-to-end exerciser
// for the dedispersion frontend; the analytic model remains the fast path
// for large classification datasets.
#pragma once

#include <cstddef>
#include <vector>

#include "dedisp/filterbank.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "synth/survey.hpp"
#include "util/rng.hpp"

namespace drapid {

/// Knobs for the synthesized filterbank. The survey's native resolution
/// (e.g. 0.0819 ms over 140 s) is far more data than tests and benches need,
/// so the defaults coarsen time while keeping the survey's band.
struct FilterbankSurveyOptions {
  std::size_t num_channels = 64;
  double sample_time_ms = 1.0;
  double obs_length_s = 10.0;
  double noise_sigma = 1.0;
  /// Per-channel amplitude of an injected pulse at S/N target `snr`, roughly
  /// snr * sqrt(width_samples) / sqrt(channels) scaled by this fudge.
  double amplitude_scale = 1.0;
  /// Passed through to the sweep.
  std::size_t threads = 1;
  std::size_t dm_stride = 1;
  /// RFI mitigation applied by the sweep (off by default, matching the
  /// historical behaviour). With kChannelMask/kBoth the mask is estimated
  /// from the observation's own band statistics.
  RfiMitigationParams rfi;
  /// Keep ground-truth pulses even when the sweep attributed zero events to
  /// them. Required for recall measurement — a missed pulse that vanishes
  /// from the truth list cannot be counted as missed.
  bool keep_undetected_truth = false;
};

/// Paints a structured-RFI scenario into the raw filterbank: burst trains as
/// undispersed broadband impulses at the train period, carriers as hot
/// channels over their time span, chirps as a single hot channel walking
/// through the band. Amplitudes are scaled from RfiInstance::strength
/// (event-level S/N units) into per-sample power so the sweep's response
/// lands near the analytic model's.
void render_rfi_filterbank(const RfiScenario& scenario,
                           const FilterbankSurveyOptions& options,
                           Filterbank& fb, Rng& rng);

/// Detection quality of one simulated observation against its ground truth.
/// Events are matched to truth pulses by the same time window the simulator
/// uses for attribution; everything unmatched is a false positive (noise,
/// RFI, or mitigation leftovers). Simulate with `keep_undetected_truth` so
/// missed pulses still count against recall. Truth whose dedispersed arrival
/// window extends past the end of the observation is excluded from
/// truth_total — no pipeline can recover a pulse that left the data.
struct DetectionEval {
  std::size_t truth_total = 0;     ///< injected pulses
  std::size_t truth_detected = 0;  ///< pulses with >= 1 matched event
  std::size_t events_total = 0;
  std::size_t events_matched = 0;  ///< events inside some pulse's window
  double recall() const {
    return truth_total == 0
               ? 1.0
               : static_cast<double>(truth_detected) /
                     static_cast<double>(truth_total);
  }
  double precision() const {
    return events_total == 0
               ? 1.0
               : static_cast<double>(events_matched) /
                     static_cast<double>(events_total);
  }
};

DetectionEval evaluate_detections(const SimulatedObservation& obs,
                                  const FilterbankSurveyOptions& options);

/// Simulates one observation end-to-end: builds a filterbank with band noise,
/// paints each visible source's pulses with their true dispersion sweep
/// (plus any configured broadband RFI bursts), then runs the shift-plan DM
/// sweep over `config.grid` at `config.snr_threshold`. Ground truth lists
/// every injected pulse; `num_spes`/`peak_snr` are measured from the events
/// the sweep attributed to the pulse's time window.
///
/// Draws from `rng` only — a caller-owned stream, so interleaving this with
/// SurveySimulator::simulate() does not perturb the simulator's sequence.
SimulatedObservation simulate_filterbank_observation(
    const SurveyConfig& config, const ObservationId& id,
    const std::vector<SyntheticSource>& visible, Rng& rng,
    const FilterbankSurveyOptions& options = {});

}  // namespace drapid
