// Common interface for the six supervised learners of Table 5.
//
//   MPN  — multilayer perceptron (artificial neural network)
//   SMO  — support vector machine via sequential minimal optimization
//   JRip — RIPPER-style rule learner
//   J48  — C4.5-style decision tree
//   PART — partial-tree rule learner (rule + tree)
//   RandomForest — bagged ensemble of random trees
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace drapid {
namespace ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `data`; implementations must be deterministic given their
  /// construction seed. Throws std::invalid_argument on an empty dataset.
  virtual void train(const Dataset& data) = 0;

  /// Predicts the class index of one instance (same feature layout as the
  /// training data).
  virtual int predict(std::span<const double> x) const = 0;

  /// Predicts every instance of `data`. The default loops predict();
  /// learners override it where a batched traversal is cheaper (e.g. the
  /// forest iterates trees outermost so each tree's nodes stay cache-hot).
  /// Overrides must return exactly what per-instance predict() would.
  virtual std::vector<int> predict_batch(const Dataset& data) const;

  virtual std::string name() const = 0;
};

enum class LearnerType { kJ48, kRandomForest, kPart, kJrip, kSmo, kMpn };

const std::vector<LearnerType>& all_learner_types();
std::string learner_name(LearnerType type);  // "J48", "RF", ...

/// Factory with each learner's default hyperparameters (documented in the
/// learner headers). `seed` feeds the stochastic learners (RF, MPN).
std::unique_ptr<Classifier> make_classifier(LearnerType type,
                                            std::uint64_t seed);

}  // namespace ml
}  // namespace drapid
