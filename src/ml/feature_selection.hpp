// The five feature-selection filters of Table 4.
//
// All five are *filters* (classifier-independent); each assigns every
// feature a relevance score, and the benchmark keeps the top-k. Following
// the paper's setup (§6.2), selection is computed on a held-out fold and the
// chosen columns are then applied to the training/testing folds.
//
//   InfoGain (IG)                 H(Y) − H(Y | X)        entropy
//   GainRatio (GR)                IG / H(X)              entropy
//   SymmetricalUncertainty (SU)   2·IG / (H(X) + H(Y))   entropy
//   Correlation (Cor)             |Pearson(X, 1[Y=c])| averaged over classes
//   OneR (1R)                     training accuracy of the best 1-feature rule
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace drapid {
namespace ml {

enum class FilterMethod {
  kInfoGain,
  kGainRatio,
  kSymmetricalUncertainty,
  kCorrelation,
  kOneR,
};

const std::vector<FilterMethod>& all_filter_methods();
std::string filter_name(FilterMethod method);         // "InfoGain", ...
std::string filter_abbreviation(FilterMethod method); // "IG", ...

/// Score of every feature under `method` (higher = more relevant). Entropy
/// filters discretize with `bins` equal-frequency bins.
std::vector<double> score_features(const Dataset& data, FilterMethod method,
                                   std::size_t bins = 10);

/// Indices of the `k` top-scoring features, in rank order (ties broken by
/// feature index for determinism).
std::vector<std::size_t> top_k_features(const Dataset& data,
                                        FilterMethod method, std::size_t k,
                                        std::size_t bins = 10);

}  // namespace ml
}  // namespace drapid
