// Work metrics recorded by the dataflow engine.
//
// Every transformation executed by the engine appends one StageMetrics with
// one TaskMetrics per partition. The counters are *measured from the real
// execution* (records moved, bytes shuffled between partitions, bytes spilled
// to disk, domain compute units) — the cluster cost model then prices this
// measured work against a hardware spec to obtain deterministic elapsed-time
// estimates for the paper's testbeds (see cluster_model.hpp).
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace drapid {

/// Counters for one task (one partition of one stage).
struct TaskMetrics {
  std::size_t partition = 0;
  std::size_t records_in = 0;
  std::size_t bytes_in = 0;
  std::size_t records_out = 0;
  std::size_t bytes_out = 0;
  /// Bytes that moved to a *different* partition during a shuffle (network
  /// traffic on a cluster; zero for narrow transformations).
  std::size_t shuffle_bytes = 0;
  /// Bytes written to + read back from disk due to memory pressure.
  std::size_t spill_bytes = 0;
  /// Domain compute units (defaults to records_in; the D-RAPID search stage
  /// reports SPEs scanned by Algorithm 1).
  std::size_t compute_cost = 0;
  /// Execution attempts this task took (1 = clean first run; >1 after
  /// injected failures or lineage recomputation). Zero only for tasks whose
  /// stage never executed.
  std::size_t attempts = 0;
  /// Compute units wasted on failed attempts (each failure is modeled as
  /// dying just before completion, so one full attempt's work per failure).
  /// The cluster cost model prices this plus an exponential reattempt
  /// backoff into the makespan.
  std::size_t retry_cost = 0;
};

struct StageMetrics {
  std::string name;
  std::vector<TaskMetrics> tasks;

  // Scheduler activity observed while this stage's parallel_for ran,
  // recorded as the delta of the pool's SchedulerStats across the stage.
  // Stage-level rather than per-task because the pool counters are global to
  // the pool; when lineage recomputation nests a stage inside a running one,
  // both stages observe the overlapping activity (attribution is by
  // wall-clock overlap, not causality).
  std::size_t tasks_stolen = 0;
  std::size_t parks = 0;
  std::size_t fastpath_completions = 0;

  // Process-backend activity for this stage (all zero under the local
  // backend or when the stage fell back to in-process execution).
  /// Worker processes forked for this stage, replacements included.
  std::size_t workers_used = 0;
  /// Worker processes that died (socket EOF / corrupt frame) mid-stage.
  std::size_t worker_deaths = 0;
  /// Frame bytes that crossed the worker sockets for this stage. Under the
  /// fork-per-stage path this counts result frames (the only traffic); the
  /// job pool counts both directions — task assigns, shuffle pushes and
  /// their relayed copies, fetches, results.
  std::size_t ipc_bytes = 0;
  /// Job-pool workers that served this stage without being freshly forked
  /// for it (the amortized fork tax; 0 under fork-per-stage).
  std::size_t pool_reuses = 0;
  /// Serialized bytes of this stage's output partitions left resident on
  /// the workers instead of being shipped to the coordinator.
  std::size_t resident_bytes = 0;
  /// Replacement workers forked after a mid-stage death (job pool).
  std::size_t worker_respawns = 0;

  /// Measured wall-clock seconds the stage's execution took (stamped by
  /// Engine::run_stage around the executor call; 0 for stages recorded
  /// without run_stage, e.g. parallelize and in-memory cache stages). This
  /// is what cluster_model's makespan validation compares the priced
  /// schedule against.
  double wall_seconds = 0.0;

  std::size_t total_records_in() const;
  std::size_t total_bytes_in() const;
  std::size_t total_shuffle_bytes() const;
  std::size_t total_spill_bytes() const;
  std::size_t total_compute_cost() const;
  /// Sum over tasks of attempts beyond the first (0 on a fault-free run).
  std::size_t total_retries() const;
  std::size_t total_retry_cost() const;
};

struct JobMetrics {
  /// Deque, not vector: begin_stage hands out references that must survive
  /// later begin_stage calls (lineage recomputation interleaves stages, so
  /// "transformations finish a stage before starting another" no longer
  /// holds). Deque never relocates existing elements on push_back.
  std::deque<StageMetrics> stages;

  std::size_t total_shuffle_bytes() const;
  std::size_t total_spill_bytes() const;
  std::size_t total_compute_cost() const;
  std::size_t total_retries() const;
  std::size_t total_retry_cost() const;
  std::size_t total_worker_deaths() const;
  std::size_t total_ipc_bytes() const;
  /// Measured wall-clock sum over stages (stages run back to back except
  /// nested lineage recomputation, which double-counts its parent's time).
  double total_wall_seconds() const;
  /// Human-readable per-stage summary table.
  std::string summary() const;
};

}  // namespace drapid
