#include "synth/filterbank_survey.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "synth/dispersion.hpp"

namespace drapid {

namespace {

/// Per-channel peak amplitude that makes a Gaussian pulse of `width_ms` come
/// out of the matched boxcar at roughly `snr` (in units of the per-channel
/// noise sigma). The dedispersed series sums C channels, so its noise scale
/// is sigma*sqrt(C); a width-w boxcar gains another sqrt(w).
double amplitude_for_snr(double snr, double width_ms, double sigma,
                         std::size_t channels, double sample_time_ms) {
  const double w = std::max(1.0, width_ms / sample_time_ms);
  return snr * sigma /
         std::sqrt(static_cast<double>(channels) * w);
}

void validate_options(const FilterbankSurveyOptions& options) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("FilterbankSurveyOptions: " + what);
  };
  if (options.num_channels == 0) {
    fail("num_channels must be >= 1 — zero-channel geometry");
  }
  if (!std::isfinite(options.sample_time_ms) || options.sample_time_ms <= 0.0) {
    fail("sample_time_ms must be positive and finite, got " +
         std::to_string(options.sample_time_ms));
  }
  if (!std::isfinite(options.obs_length_s) || options.obs_length_s <= 0.0) {
    fail("obs_length_s must be positive and finite, got " +
         std::to_string(options.obs_length_s));
  }
  if (options.obs_length_s * 1e3 < options.sample_time_ms) {
    fail("geometry yields zero samples: obs_length_s " +
         std::to_string(options.obs_length_s) + " s at sample_time_ms " +
         std::to_string(options.sample_time_ms));
  }
  if (!std::isfinite(options.noise_sigma) || options.noise_sigma < 0.0) {
    fail("noise_sigma must be finite and >= 0, got " +
         std::to_string(options.noise_sigma));
  }
}

/// Attribution/matching window around a truth pulse: residual-delay slant
/// plus a smearing allowance. Shared by truth attribution and DetectionEval
/// so precision/recall are measured against the exact same association.
double match_window_s(const GroundTruthPulse& gt, double sample_time_ms) {
  return std::max(0.1, 8.0 * gt.width_ms * 1e-3) + 4.0 * sample_time_ms * 1e-3;
}

/// Nearest channel index to a frequency, clamped into the band.
std::size_t channel_of(const Filterbank& fb, double freq_mhz) {
  const FilterbankConfig& fc = fb.config();
  const double top = fc.center_freq_mhz + fc.bandwidth_mhz / 2.0;
  const double chan_bw =
      fc.bandwidth_mhz / static_cast<double>(fc.num_channels);
  const double idx = (top - freq_mhz) / chan_bw - 0.5;
  const double clamped = std::clamp(
      idx, 0.0, static_cast<double>(fc.num_channels - 1));
  return static_cast<std::size_t>(std::lround(clamped));
}

}  // namespace

void render_rfi_filterbank(const RfiScenario& scenario,
                           const FilterbankSurveyOptions& options,
                           Filterbank& fb, Rng& rng) {
  const double sigma = options.noise_sigma;
  const double sqrt_channels =
      std::sqrt(static_cast<double>(fb.num_channels()));
  for (const RfiInstance& inst : scenario.instances) {
    switch (inst.family) {
      case RfiFamily::kPeriodicBroadband: {
        // One undispersed impulse per period; amplitude a per channel gives
        // a DM-0 dedispersed response of a*sqrt(C)/sigma, so divide the
        // target strength back out.
        const double amplitude = inst.strength * sigma / sqrt_channels;
        for (double t = inst.t_begin_s; t <= inst.t_end_s;
             t += inst.period_s) {
          fb.inject_broadband_impulse(
              t, amplitude * std::exp(rng.normal(0.0, 0.1)));
        }
        break;
      }
      case RfiFamily::kNarrowbandCarrier: {
        // Every channel whose center falls in the carrier's band runs hot
        // for the span — the mean/variance excess channel masking detects.
        const double f_lo =
            std::min(inst.freq_begin_mhz, inst.freq_end_mhz);
        const double f_hi =
            std::max(inst.freq_begin_mhz, inst.freq_end_mhz);
        const std::size_t c_lo = channel_of(fb, f_hi);  // freqs descend
        const std::size_t c_hi = channel_of(fb, f_lo);
        for (std::size_t c = c_lo; c <= c_hi; ++c) {
          fb.inject_rfi_tone(c, inst.strength * sigma, inst.t_begin_s,
                             inst.t_end_s);
        }
        break;
      }
      case RfiFamily::kSweptChirp: {
        // A carrier drifting through the band: at each sample of the span
        // exactly one channel is hot, walking from freq_begin to freq_end.
        const double duration = inst.t_end_s - inst.t_begin_s;
        if (duration <= 0.0) break;
        const double dt = options.sample_time_ms * 1e-3;
        for (double t = std::max(0.0, inst.t_begin_s); t <= inst.t_end_s;
             t += dt) {
          const auto s = static_cast<std::size_t>(t / dt);
          if (s >= fb.num_samples()) break;
          const double frac = (t - inst.t_begin_s) / duration;
          const std::size_t c = channel_of(
              fb, inst.freq_begin_mhz +
                      frac * (inst.freq_end_mhz - inst.freq_begin_mhz));
          fb.at(c, s) += static_cast<float>(inst.strength * sigma);
        }
        break;
      }
    }
  }
}

DetectionEval evaluate_detections(const SimulatedObservation& obs,
                                  const FilterbankSurveyOptions& options) {
  DetectionEval eval;
  eval.events_total = obs.data.events.size();
  std::vector<std::uint8_t> detected(obs.truth.size(), 0);
  for (const auto& e : obs.data.events) {
    bool matched = false;
    for (std::size_t i = 0; i < obs.truth.size(); ++i) {
      if (std::abs(e.time_s - obs.truth[i].time_s) <=
          match_window_s(obs.truth[i], options.sample_time_ms)) {
        matched = true;
        detected[i] = 1;
      }
    }
    if (matched) ++eval.events_matched;
  }
  // Recall is measured over the truth the observation could actually have
  // detected: a pulse whose dedispersed arrival (plus its matching window)
  // extends past the end of the data is unrecoverable by any pipeline, so
  // it neither counts against recall nor — having still been matched above —
  // turns its partial detections into false positives.
  for (std::size_t i = 0; i < obs.truth.size(); ++i) {
    const double window = match_window_s(obs.truth[i], options.sample_time_ms);
    if (obs.truth[i].time_s + window > options.obs_length_s) continue;
    ++eval.truth_total;
    eval.truth_detected += detected[i];
  }
  return eval;
}

SimulatedObservation simulate_filterbank_observation(
    const SurveyConfig& config, const ObservationId& id,
    const std::vector<SyntheticSource>& visible, Rng& rng,
    const FilterbankSurveyOptions& options) {
  config.validate();
  validate_options(options);
  if (!config.grid) {
    throw std::invalid_argument("survey config has no trial-DM grid");
  }
  FilterbankConfig fc;
  fc.num_channels = options.num_channels;
  fc.sample_time_ms = options.sample_time_ms;
  fc.obs_length_s = options.obs_length_s;
  fc.center_freq_mhz = config.center_freq_mhz;
  fc.bandwidth_mhz = config.bandwidth_mhz;
  Filterbank fb(fc);
  fb.add_noise(rng, options.noise_sigma);

  SimulatedObservation out;
  out.data.id = id;
  std::vector<GroundTruthPulse> injected;

  const auto inject = [&](const SyntheticSource& src, double t0, double snr0) {
    const double amplitude =
        options.amplitude_scale *
        amplitude_for_snr(snr0, src.width_ms, options.noise_sigma,
                          fc.num_channels, fc.sample_time_ms);
    fb.inject_pulse(t0, src.dm, amplitude, src.width_ms);
    GroundTruthPulse gt;
    gt.source_name = src.name;
    gt.type = src.type;
    // The sweep reports dedispersed arrivals referenced to the top-of-band
    // channel, so record the truth in the same frame — attribution and the
    // precision/recall eval compare like with like.
    gt.time_s = t0 + dispersion_delay_s(src.dm, fb.channel_freq_mhz(0));
    gt.dm = src.dm;
    gt.width_ms = src.width_ms;
    injected.push_back(std::move(gt));
  };

  for (const auto& src : visible) {
    if (src.type == SourceType::kPulsar) {
      const auto rotations =
          static_cast<std::uint64_t>(options.obs_length_s / src.period_s);
      for (std::uint64_t r = 0; r < rotations; ++r) {
        if (!rng.chance(src.emission_rate)) continue;
        const double t0 =
            (static_cast<double>(r) + rng.uniform()) * src.period_s;
        const double snr0 =
            src.median_snr * std::exp(rng.normal(0.0, src.snr_sigma));
        if (snr0 < config.snr_threshold) continue;
        inject(src, t0, snr0);
      }
    } else {
      const auto bursts = rng.poisson(src.emission_rate *
                                      options.obs_length_s / 3600.0);
      for (std::uint64_t b = 0; b < bursts; ++b) {
        const double t0 = rng.uniform(0.0, options.obs_length_s);
        const double snr0 =
            src.median_snr * std::exp(rng.normal(0.0, src.snr_sigma));
        if (snr0 < config.snr_threshold) continue;
        inject(src, t0, snr0);
      }
    }
  }

  // Broadband RFI impulses: zero-DM spikes the sweep sees at every trial —
  // the real-data counterpart of add_rfi()'s flat SNR-vs-DM events.
  const auto bursts = rng.poisson(config.rfi_bursts_per_observation);
  for (std::uint64_t b = 0; b < bursts; ++b) {
    fb.inject_broadband_impulse(rng.uniform(0.0, options.obs_length_s),
                                options.noise_sigma * rng.uniform(2.0, 6.0));
  }

  // Structured interference, rendered into the raw band. Guarded so presets
  // without structured rates consume no rng draws (byte-identical output).
  if (config.has_structured_rfi()) {
    RfiScenario scenario =
        draw_rfi_scenario(config, options.obs_length_s, rng);
    render_rfi_filterbank(scenario, options, fb, rng);
    out.rfi_truth = std::move(scenario.instances);
  }

  SinglePulseSearchParams params;
  params.snr_threshold = config.snr_threshold;
  params.threads = options.threads;
  params.dm_stride = options.dm_stride;
  params.rfi = options.rfi;
  out.data.events = single_pulse_search(fb, *config.grid, params);

  // Attribute detected events back to the injected pulses by time proximity:
  // dedispersing at the wrong DM shifts the detection by the residual delay,
  // so the window grows with the pulse width plus a smearing allowance.
  for (auto& gt : injected) {
    const double window = match_window_s(gt, fc.sample_time_ms);
    for (const auto& e : out.data.events) {
      if (std::abs(e.time_s - gt.time_s) > window) continue;
      gt.peak_snr = std::max(gt.peak_snr, e.snr);
      ++gt.num_spes;
    }
    if (gt.num_spes > 0 || options.keep_undetected_truth) {
      out.truth.push_back(std::move(gt));
    }
  }
  return out;
}

}  // namespace drapid
