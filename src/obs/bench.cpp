#include "obs/bench.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace drapid {
namespace obs {

namespace {

std::map<std::string, std::string> merged_spec(
    std::map<std::string, std::string> extra) {
  static const std::pair<const char*, const char*> kCore[] = {
      {"scale", "1"},      {"threads", "2"},  {"seed", "2018"},
      {"fault-rate", "0"}, {"backend", "local"}, {"workers", "0"},
      {"pool", "job"},     {"trace-out", ""},    {"json-out", ""},
  };
  for (const auto& [name, value] : kCore) extra.emplace(name, value);
  return extra;
}

/// Stores "1500" as 1500 and "0.05" as 0.05 so reports diff numerically;
/// anything else (paths, names, "true") stays a string.
Json typed_value(const std::string& text) {
  if (text.empty()) return Json(text);
  std::int64_t i = 0;
  auto [iptr, iec] = std::from_chars(text.data(), text.data() + text.size(), i);
  if (iec == std::errc() && iptr == text.data() + text.size()) return Json(i);
  double d = 0.0;
  auto [dptr, dec] = std::from_chars(text.data(), text.data() + text.size(), d);
  if (dec == std::errc() && dptr == text.data() + text.size()) return Json(d);
  return Json(text);
}

}  // namespace

BenchOptions::BenchOptions(std::string tool, int argc,
                           const char* const argv[],
                           std::map<std::string, std::string> extra_spec,
                           const std::string& summary)
    : tool_(std::move(tool)),
      opts_(argc, argv, merged_spec(std::move(extra_spec))),
      report_(tool_),
      start_(std::chrono::steady_clock::now()) {
  if (opts_.help_requested()) {
    std::fputs(opts_.usage(tool_, summary).c_str(), stdout);
    help_ = true;
    return;
  }
  parse_exec_backend(opts_.str("backend"));  // reject typos at startup
  parse_pool_mode(opts_.str("pool"));
  for (const auto& [name, value] : opts_.items()) {
    report_.set_config(name, typed_value(value));
  }
  if (tracing()) global_tracer().enable(true);
}

long long BenchOptions::scaled(long long base) const {
  const double s = scale();
  const long long scaled = std::llround(static_cast<double>(base) * s);
  return scaled < 1 ? 1 : scaled;
}

void BenchOptions::finish() {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  report_.set_wall_seconds(wall);
  report_.capture_counters(global_counters());
  if (const std::size_t dropped = global_tracer().dropped_events()) {
    report_.add_metric("trace_events_dropped",
                       static_cast<std::int64_t>(dropped));
  }
  if (!json_out().empty()) {
    report_.write_file(json_out());
    std::fprintf(stderr, "%s: wrote run report to %s\n", tool_.c_str(),
                 json_out().c_str());
  }
  if (tracing()) {
    write_chrome_trace(global_tracer().events(), trace_out());
    std::fprintf(stderr, "%s: wrote chrome trace to %s\n", tool_.c_str(),
                 trace_out().c_str());
  }
}

}  // namespace obs
}  // namespace drapid
