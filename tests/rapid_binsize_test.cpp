#include <gtest/gtest.h>

#include <cmath>

#include "rapid/search.hpp"

namespace drapid {
namespace {

TEST(BinSize, SmallClustersUseBinSizeOne) {
  // Equation 1: binsize = 1 when n < 12.
  RapidParams params;
  for (std::size_t n = 0; n < 12; ++n) {
    EXPECT_EQ(compute_bin_size(n, params), 1u) << "n=" << n;
  }
}

TEST(BinSize, DynamicBoundaryAtTwelve) {
  // The n < 12 guard is exclusive: n = 11 is the last cluster pinned to
  // binsize 1, and n = 12 is the first to consult Equation 1 — which, for
  // weights >= ~0.3, already exceeds 1, so the boundary is a real step.
  RapidParams params;  // dynamic, w = 0.75
  EXPECT_EQ(compute_bin_size(11, params), 1u);
  EXPECT_EQ(compute_bin_size(12, params),
            static_cast<std::size_t>(std::floor(0.75 * std::sqrt(12.0))));
  EXPECT_GT(compute_bin_size(12, params), 1u);
  // The guard applies only in dynamic mode: a static configuration keeps
  // its configured size on both sides of the boundary.
  RapidParams fixed;
  fixed.dynamic_bin_size = false;
  fixed.static_bin_size = 7;
  EXPECT_EQ(compute_bin_size(11, fixed), 7u);
  EXPECT_EQ(compute_bin_size(12, fixed), 7u);
}

TEST(BinSize, MatchesEquationOneAboveThreshold) {
  RapidParams params;  // w = 0.75
  EXPECT_EQ(compute_bin_size(12, params),
            static_cast<std::size_t>(std::floor(0.75 * std::sqrt(12.0))));
  EXPECT_EQ(compute_bin_size(100, params), 7u);   // floor(0.75*10)
  EXPECT_EQ(compute_bin_size(400, params), 15u);  // floor(0.75*20)
  EXPECT_EQ(compute_bin_size(3500, params),
            static_cast<std::size_t>(std::floor(0.75 * std::sqrt(3500.0))));
}

TEST(BinSize, WeightControlsGrowth) {
  RapidParams slow;
  slow.weight = 0.75;
  RapidParams fast;
  fast.weight = 1.75;
  for (std::size_t n : {20u, 100u, 1000u}) {
    EXPECT_LT(compute_bin_size(n, slow), compute_bin_size(n, fast));
  }
}

TEST(BinSize, NeverZeroEvenForTinyWeights) {
  RapidParams params;
  params.weight = 0.05;
  EXPECT_EQ(compute_bin_size(16, params), 1u);  // floor(0.05*4)=0 clamps to 1
}

TEST(BinSize, StaticModeIgnoresClusterSize) {
  RapidParams params;
  params.dynamic_bin_size = false;
  params.static_bin_size = 25;  // the DPG-era setting from [10]
  for (std::size_t n : {3u, 12u, 100u, 5000u}) {
    EXPECT_EQ(compute_bin_size(n, params), 25u);
  }
}

class BinSizeMonotone : public ::testing::TestWithParam<double> {};

TEST_P(BinSizeMonotone, NonDecreasingInClusterSize) {
  RapidParams params;
  params.weight = GetParam();
  std::size_t prev = 0;
  for (std::size_t n = 1; n < 5000; n += 13) {
    const std::size_t b = compute_bin_size(n, params);
    ASSERT_GE(b, prev) << "n=" << n;
    ASSERT_LE(b, n) << "bin cannot exceed cluster";
    prev = b;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperTuningRange, BinSizeMonotone,
                         ::testing::Values(0.75, 1.0, 1.25, 1.5, 1.75));

}  // namespace
}  // namespace drapid
