// report_diff — compares two run reports written with --json-out.
//
//   report_diff --a before.json --b after.json [--tolerance 0.05]
//               [--bench <tool>]
//
// Prints, side by side: config entries that differ, top-level metrics,
// counters, and each job's per-stage totals, flagging relative changes
// beyond --tolerance. Intended workflow: record a bench run before a
// change, record it again after, diff the two (see EXPERIMENTS.md).
// Exit 0 when nothing exceeds the tolerance, 1 when something does.
//
// --bench <tool> selects one report out of a baseline *bundle* — the
// {"schema_version": 1, "benches": {tool: report, ...}} shape written by
// tools/bench_baseline.sh — on either side; a side that is already a plain
// run report is used as-is, so a bundle can be diffed against a fresh
// --json-out file directly.
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "util/options.hpp"

namespace {

using drapid::obs::Json;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string scalar_text(const Json& value) { return value.dump(); }

/// Relative change b vs a; 0 when both are ~zero, infinity when only a is.
double relative_change(double a, double b) {
  if (std::abs(a) < 1e-12 && std::abs(b) < 1e-12) return 0.0;
  if (std::abs(a) < 1e-12) return std::numeric_limits<double>::infinity();
  return (b - a) / std::abs(a);
}

class Differ {
 public:
  explicit Differ(double tolerance) : tolerance_(tolerance) {}

  /// Compares one numeric quantity, printing a row when it changed.
  void numeric(const std::string& label, double a, double b) {
    const double rel = relative_change(a, b);
    if (a == b) return;
    const bool flagged = std::abs(rel) > tolerance_;
    if (flagged) ++flagged_count_;
    std::cout << "  " << (flagged ? "!! " : "   ") << label << ": " << a
              << " -> " << b;
    if (std::isfinite(rel)) {
      std::cout << "  (" << std::showpos << std::fixed << std::setprecision(1)
                << rel * 100.0 << std::noshowpos << "%)"
                << std::defaultfloat << std::setprecision(6);
    }
    std::cout << '\n';
  }

  /// Compares the members of two flat JSON objects (config, counters, ...).
  void objects(const std::string& section, const Json& a, const Json& b) {
    std::vector<std::string> lines;
    for (const auto& [key, value_a] : a.as_object()) {
      const Json* value_b = b.find(key);
      if (!value_b) {
        lines.push_back("   " + key + ": " + scalar_text(value_a) +
                        " -> (absent)");
      } else if (value_a.is_number() && value_b->is_number()) {
        const double da = value_a.as_double(), db = value_b->as_double();
        if (da != db) {
          const double rel = relative_change(da, db);
          const bool flagged = std::abs(rel) > tolerance_;
          if (flagged) ++flagged_count_;
          lines.push_back((flagged ? "!! " : "   ") + key + ": " +
                          scalar_text(value_a) + " -> " +
                          scalar_text(*value_b));
        }
      } else if (scalar_text(value_a) != scalar_text(*value_b)) {
        lines.push_back("   " + key + ": " + scalar_text(value_a) + " -> " +
                        scalar_text(*value_b));
      }
    }
    for (const auto& [key, value_b] : b.as_object()) {
      if (!a.find(key)) {
        lines.push_back("   " + key + ": (absent) -> " + scalar_text(value_b));
      }
    }
    if (lines.empty()) return;
    if (!section.empty()) std::cout << section << ":\n";
    for (const auto& line : lines) std::cout << "  " << line << '\n';
  }

  int flagged_count() const { return flagged_count_; }

 private:
  double tolerance_;
  int flagged_count_ = 0;
};

const Json* find_job(const Json& report, const std::string& label) {
  for (const auto& job : report.at("jobs").as_array()) {
    if (job.at("label").as_string() == label) return &job;
  }
  return nullptr;
}

/// Resolves one side of the diff: a baseline bundle yields its `bench`
/// entry, a plain run report passes through unchanged.
Json select_report(Json doc, const std::string& bench,
                   const std::string& path) {
  const Json* benches = doc.find("benches");
  if (!benches) return doc;  // plain run report
  if (bench.empty()) {
    throw std::runtime_error(path +
                             " is a baseline bundle; pick a report with "
                             "--bench <tool>");
  }
  const Json* entry = benches->find(bench);
  if (!entry) {
    throw std::runtime_error(path + " has no bench \"" + bench + "\"");
  }
  return *entry;
}

}  // namespace

int main(int argc, char** argv) {
  using drapid::Options;
  try {
    Options opts(argc, argv,
                 {{"a", ""},
                  {"b", ""},
                  {"tolerance", "0.05"},
                  {"bench", ""},
                  {"metrics-only", "0"}});
    if (opts.help_requested()) {
      std::cout << opts.usage(
          "report_diff",
          "Diffs two --json-out run reports; flags numeric changes whose "
          "relative magnitude exceeds --tolerance. --bench <tool> selects "
          "one report from a tools/bench_baseline.sh bundle; "
          "--metrics-only 1 restricts the diff to the named metrics "
          "(skipping wall clock, counters, and job totals — the sections "
          "that vary run to run even without a code change).");
      return 0;
    }
    if (opts.str("a").empty() || opts.str("b").empty()) {
      std::cerr << "report_diff: give --a and --b report files (see --help)\n";
      return 2;
    }
    const Json a = select_report(Json::parse(read_file(opts.str("a"))),
                                 opts.str("bench"), opts.str("a"));
    const Json b = select_report(Json::parse(read_file(opts.str("b"))),
                                 opts.str("bench"), opts.str("b"));
    for (const Json* doc : {&a, &b}) {
      const std::string error = drapid::obs::validate_run_report(*doc);
      if (!error.empty()) {
        std::cerr << "report_diff: invalid report: " << error << '\n';
        return 2;
      }
    }

    std::cout << "diff " << opts.str("a") << " (" << a.at("tool").as_string()
              << ") -> " << opts.str("b") << " (" << b.at("tool").as_string()
              << "), tolerance " << opts.number("tolerance") * 100 << "%\n";
    Differ diff(opts.number("tolerance"));
    if (opts.flag("metrics-only")) {
      diff.objects("metrics", a.at("metrics"), b.at("metrics"));
      if (diff.flagged_count() == 0) {
        std::cout << "no metric change exceeds the tolerance\n";
        return 0;
      }
      std::cout << diff.flagged_count()
                << " metric change(s) exceed the tolerance (rows marked !!)\n";
      return 1;
    }
    diff.objects("config", a.at("config"), b.at("config"));
    diff.objects("metrics", a.at("metrics"), b.at("metrics"));
    diff.objects("counters", a.at("counters"), b.at("counters"));
    diff.objects("gauges", a.at("gauges"), b.at("gauges"));
    std::cout << "wall clock:\n";
    diff.numeric("wall_seconds", a.at("wall_seconds").as_double(),
                 b.at("wall_seconds").as_double());

    for (const auto& job_a : a.at("jobs").as_array()) {
      const std::string& label = job_a.at("label").as_string();
      const Json* job_b = find_job(b, label);
      if (!job_b) {
        std::cout << "job \"" << label << "\": only in " << opts.str("a")
                  << '\n';
        continue;
      }
      std::cout << "job \"" << label << "\" totals:\n";
      diff.objects("", job_a.at("totals"), job_b->at("totals"));
    }
    for (const auto& job_b : b.at("jobs").as_array()) {
      if (!find_job(a, job_b.at("label").as_string())) {
        std::cout << "job \"" << job_b.at("label").as_string()
                  << "\": only in " << opts.str("b") << '\n';
      }
    }

    if (diff.flagged_count() == 0) {
      std::cout << "no numeric change exceeds the tolerance\n";
      return 0;
    }
    std::cout << diff.flagged_count()
              << " change(s) exceed the tolerance (rows marked !!)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "report_diff: error: " << e.what() << '\n';
    return 1;
  }
}
