#include "util/options.hpp"

#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace drapid {

Options::Options(int argc, const char* const argv[],
                 std::map<std::string, std::string> spec)
    : values_(std::move(spec)) {
  for (const auto& [name, _] : values_) provided_[name] = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected positional argument: " + arg);
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = values_.find(name);
      if (it == values_.end()) {
        throw std::runtime_error("unknown option: --" + name);
      }
      // Boolean-style flag if no value follows or the next token is a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    auto it = values_.find(name);
    if (it == values_.end()) {
      throw std::runtime_error("unknown option: --" + name);
    }
    it->second = value;
    provided_[name] = true;
  }
}

const std::string& Options::str(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::runtime_error("option not declared: --" + name);
  }
  return it->second;
}

double Options::number(const std::string& name) const {
  return parse_double(str(name));
}

long long Options::integer(const std::string& name) const {
  return parse_int(str(name));
}

bool Options::flag(const std::string& name) const {
  const std::string& v = str(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

bool Options::provided(const std::string& name) const {
  auto it = provided_.find(name);
  return it != provided_.end() && it->second;
}

std::string Options::describe() const {
  std::ostringstream out;
  for (const auto& [name, value] : values_) {
    out << "  --" << name << " = " << value << '\n';
  }
  return out.str();
}

std::string Options::usage(const std::string& tool,
                           const std::string& summary) const {
  std::ostringstream out;
  out << "usage: " << tool << " [--option value]...\n";
  if (!summary.empty()) out << summary << '\n';
  out << "options (showing current values):\n" << describe();
  out << "  --help\n";
  return out.str();
}

}  // namespace drapid
