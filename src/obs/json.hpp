// Minimal JSON value type for the observability layer.
//
// The tracer and run-report exporters need a writer, and the validation
// tooling (tools/trace_check, tools/report_diff, the obs test suite) needs a
// parser, so both live here. Objects preserve insertion order — run reports
// and trace events stay diffable with plain text tools.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace drapid {
namespace obs {

/// Thrown by Json::parse on malformed input (with a byte offset).
struct JsonParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kInt), int_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned long v) : type_(Type::kInt),
                          int_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned long long v) : type_(Type::kInt),
                               int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  ///< accepts kInt too
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Array/object element count; 0 for scalars.
  std::size_t size() const;

  /// Appends to an array (converts a null value into an empty array first).
  Json& push_back(Json value);

  /// Sets `key` in an object (converting null into an empty object first);
  /// an existing key is overwritten in place.
  Json& set(std::string key, Json value);

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Object member lookup; throws std::out_of_range when absent.
  const Json& at(std::string_view key) const;
  /// Array element; throws std::out_of_range when out of bounds.
  const Json& at(std::size_t index) const;

  /// Serializes. indent < 0 → compact one-line form; indent >= 0 →
  /// pretty-printed with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; throws JsonParseError on any
  /// malformed or trailing input.
  static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// JSON string escaping (quotes not included).
std::string json_escape(std::string_view s);

}  // namespace obs
}  // namespace drapid
