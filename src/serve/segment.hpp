// On-disk candidate-archive segments.
//
// A segment is one immutable, append-once batch of keyed candidates, sealed
// by the archive writer and never modified again. The byte layout mirrors
// the dataflow spill files (src/dataflow/spill.cpp) and shares their FNV
// checksum scheme (util/checksum.hpp):
//
//   u64 magic ("DRASSEG1") | u64 record count |
//   candidate records (spe_io.hpp binary encoding) | u64 checksum
//
// The trailing checksum covers every byte between the magic and itself, so
// a flipped bit anywhere — count, a key length, a payload double — fails
// validation. The archive treats a failing segment as quarantined data, not
// a crash (see archive.hpp).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "spe/spe_io.hpp"

namespace drapid {

struct ArchiveError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Writes one sealed segment. Throws ArchiveError on I/O failure.
void write_segment_file(const std::string& path,
                        const std::vector<CandidateRecord>& records);

/// Reads and validates one segment. Throws ArchiveError on a missing,
/// truncated, malformed or checksum-failing file.
std::vector<CandidateRecord> read_segment_file(const std::string& path);

}  // namespace drapid
