#!/usr/bin/env bash
# CI entry point: full build + ctest, then a ThreadSanitizer pass over the
# concurrency-heavy suites — the thread pool's helping parallel_for join,
# the engine's mutex-protected stage registry, concurrent spill I/O, the
# span tracer's per-thread buffers, and the survey service's single-writer/
# many-reader archive — the places a data race would live.
#
# Usage: tools/check.sh [tsan-build-dir]   (default: build-tsan)
# Set DRAPID_SKIP_TSAN=1 to stop after the regular build + ctest.
set -euo pipefail

cd "$(dirname "$0")/.."
TSAN_BUILD_DIR="${1:-build-tsan}"

echo "=== build + ctest ==="
cmake -S . -B build
cmake --build build -j "$(nproc)"
ctest --test-dir build -j "$(nproc)" --output-on-failure

# Opt-in micro-bench regression gate: re-record the pinned-seed bundle and
# flag any per-benchmark cpu time that moved >10% vs the committed baseline.
# Timing-noise sensitive, so it runs only when asked for (CI runs it as a
# non-blocking job; see .github/workflows/ci.yml).
if [[ "${DRAPID_BENCH_CHECK:-0}" == "1" ]]; then
  echo "=== micro-bench regression gate (vs BENCH_PR10.json) ==="
  cmake --build build -j "$(nproc)" --target bench_micro_dataflow \
    bench_micro_rapid bench_micro_dedisp bench_micro_ml bench_micro_cv \
    bench_serve bench_rfi report_diff
  current="$(mktemp)"
  trap 'rm -f "$current"' EXIT
  tools/bench_baseline.sh "$current"
  bench_status=0
  for bench in bench_micro_dataflow bench_micro_rapid bench_micro_dedisp \
               bench_micro_ml bench_micro_cv bench_serve bench_rfi; do
    echo "--- $bench ---"
    build/tools/report_diff --bench "$bench" --metrics-only 1 \
      --tolerance 0.10 --a BENCH_PR10.json --b "$current" || bench_status=1
  done
  if [[ "$bench_status" != "0" ]]; then
    echo "check: micro-bench gate flagged >10% changes (see rows above)"
    exit 1
  fi
fi

if [[ "${DRAPID_SKIP_TSAN:-0}" == "1" ]]; then
  echo "check: build + ctest clean (TSan pass skipped)"
  exit 0
fi

# Fork-based suites are safe to list here: fork() after threads exist is
# undefined under TSan, so process_executor_supported() reports false in
# TSan builds — the engine falls back to LocalExecutor and the fork-only
# tests GTEST_SKIP themselves instead of hanging the run. What remains
# (wire codecs, ExecPolicy shims, backend fallback) still runs under TSan.
TSAN_TARGETS=(
  util_thread_pool_test
  util_thread_pool_stress_test
  dataflow_engine_test
  dataflow_spill_test
  dataflow_fault_test
  dataflow_rdd_test
  dataflow_ipc_wire_test
  dataflow_process_executor_test
  obs_trace_test
  ml_tree_presort_test
  dedisp_sweep_test
  dedisp_streaming_test
  dedisp_subband_test
  dedisp_kernels_test
  dedisp_rfi_mitigation_test
  synth_rfi_test
  clustering_coincidence_test
  serve_torture_test
  serve_service_test
)

cmake -S . -B "$TSAN_BUILD_DIR" -DCMAKE_BUILD_TYPE=Debug -DDRAPID_TSAN=ON
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)" --target "${TSAN_TARGETS[@]}"

# halt_on_error makes a race fail the script, not just print a report.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
for test in "${TSAN_TARGETS[@]}"; do
  echo "=== $test (TSan) ==="
  "$TSAN_BUILD_DIR/tests/$test"
done
echo "check: build + ctest + tsan all clean"
