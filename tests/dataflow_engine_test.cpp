#include "dataflow/engine.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

namespace drapid {
namespace {

TEST(EngineConfig, DerivedQuantities) {
  EngineConfig cfg;
  cfg.num_executors = 5;
  cfg.cores_per_executor = 2;
  cfg.partitions_per_core = 32;
  cfg.executor_memory_bytes = 100;
  EXPECT_EQ(cfg.total_cores(), 10u);
  EXPECT_EQ(cfg.default_partitions(), 320u);  // the paper's 32-per-core scheme
  EXPECT_EQ(cfg.total_memory_bytes(), 500u);
}

TEST(Engine, BeginStageAllocatesTaskSlots) {
  EngineConfig cfg;
  cfg.worker_threads = 1;
  Engine engine(cfg);
  auto& stage = engine.begin_stage("s1", 4);
  EXPECT_EQ(stage.name, "s1");
  ASSERT_EQ(stage.tasks.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(stage.tasks[i].partition, i);
    EXPECT_EQ(stage.tasks[i].records_in, 0u);
  }
  EXPECT_EQ(engine.metrics().stages.size(), 1u);
}

TEST(Engine, ResetMetricsClearsStages) {
  EngineConfig cfg;
  cfg.worker_threads = 1;
  Engine engine(cfg);
  engine.begin_stage("a", 1);
  engine.begin_stage("b", 1);
  EXPECT_EQ(engine.metrics().stages.size(), 2u);
  engine.reset_metrics();
  EXPECT_TRUE(engine.metrics().stages.empty());
}

TEST(Engine, SpillPathsAreUniqueAndInsideTheEngineDir) {
  EngineConfig cfg;
  cfg.worker_threads = 1;
  Engine engine(cfg);
  std::set<std::string> paths;
  for (int i = 0; i < 50; ++i) {
    const auto path = engine.next_spill_path();
    EXPECT_TRUE(paths.insert(path).second) << "duplicate " << path;
    EXPECT_NE(path.find("drapid_spill"), std::string::npos);
  }
}

TEST(Engine, SpillDirectoryIsRemovedOnDestruction) {
  std::string dir;
  {
    EngineConfig cfg;
    cfg.worker_threads = 1;
    Engine engine(cfg);
    const auto path = engine.next_spill_path();
    dir = std::filesystem::path(path).parent_path().string();
    EXPECT_TRUE(std::filesystem::exists(dir));
  }
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(Engine, TwoEnginesUseSeparateSpillDirs) {
  EngineConfig cfg;
  cfg.worker_threads = 1;
  Engine a(cfg), b(cfg);
  const auto pa = std::filesystem::path(a.next_spill_path()).parent_path();
  const auto pb = std::filesystem::path(b.next_spill_path()).parent_path();
  EXPECT_NE(pa, pb);
}

// Regression: stages used to live in a std::vector, so a begin_stage nested
// inside a running stage (lineage recomputation does exactly this) could
// reallocate and invalidate the outer stage reference. Stages now live in a
// deque; references stay valid for the engine's lifetime.
TEST(Engine, StageReferenceSurvivesNestedStages) {
  EngineConfig cfg;
  cfg.worker_threads = 1;
  Engine engine(cfg);
  auto& outer = engine.begin_stage("outer", 2);
  outer.tasks[0].records_in = 42;
  // Enough nested stages to force a vector to reallocate several times.
  for (int i = 0; i < 100; ++i) {
    engine.begin_stage("nested" + std::to_string(i), 3);
  }
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.tasks[0].records_in, 42u);
  EXPECT_EQ(&outer, &engine.metrics().stages.front());
  EXPECT_EQ(engine.metrics().stages.size(), 101u);
}

TEST(StageMetrics, TotalsSumOverTasks) {
  StageMetrics stage;
  stage.name = "t";
  for (std::size_t i = 0; i < 3; ++i) {
    TaskMetrics task;
    task.records_in = 10 * (i + 1);
    task.bytes_in = 100;
    task.shuffle_bytes = 5;
    task.spill_bytes = 7;
    task.compute_cost = 2;
    stage.tasks.push_back(task);
  }
  EXPECT_EQ(stage.total_records_in(), 60u);
  EXPECT_EQ(stage.total_bytes_in(), 300u);
  EXPECT_EQ(stage.total_shuffle_bytes(), 15u);
  EXPECT_EQ(stage.total_spill_bytes(), 21u);
  EXPECT_EQ(stage.total_compute_cost(), 6u);
}

}  // namespace
}  // namespace drapid
