#include "dedisp/periodicity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace drapid {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> a(6);
  EXPECT_THROW(fft_inplace(a), std::invalid_argument);
}

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng(3);
  std::vector<std::complex<double>> a(256);
  for (auto& x : a) x = {rng.normal(), rng.normal()};
  const auto original = a;
  fft_inplace(a);
  fft_inplace(a, /*inverse=*/true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(a[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(5);
  std::vector<std::complex<double>> a(128);
  double time_energy = 0.0;
  for (auto& x : a) {
    x = {rng.normal(), 0.0};
    time_energy += std::norm(x);
  }
  fft_inplace(a);
  double freq_energy = 0.0;
  for (const auto& x : a) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(a.size()), time_energy, 1e-6);
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 512;
  std::vector<std::complex<double>> a(n);
  const std::size_t k = 37;
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = std::cos(2.0 * kPi * static_cast<double>(k * i) /
                    static_cast<double>(n));
  }
  fft_inplace(a);
  for (std::size_t bin = 1; bin < n / 2; ++bin) {
    if (bin == k) {
      EXPECT_GT(std::abs(a[bin]), 100.0);
    } else {
      EXPECT_LT(std::abs(a[bin]), 1e-6) << "leak at bin " << bin;
    }
  }
}

TEST(PowerSpectrum, SineFrequencyRecovered) {
  const double dt_ms = 1.0;
  const double f_hz = 25.0;
  std::vector<double> series;
  Rng rng(7);
  for (int i = 0; i < 4096; ++i) {
    const double t = i * dt_ms * 1e-3;
    series.push_back(std::sin(2.0 * kPi * f_hz * t) + rng.normal(0.0, 0.3));
  }
  const auto power = power_spectrum(series);
  std::size_t best = 0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[best]) best = k;
  }
  const double df = 1.0 / (4096.0 * dt_ms * 1e-3);
  EXPECT_NEAR(static_cast<double>(best + 1) * df, f_hz, df * 1.5);
}

std::vector<double> pulsar_train(double period_s, double duty, double amp,
                                 double dt_ms, std::size_t n,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> series(n);
  const double width_s = period_s * duty;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt_ms * 1e-3;
    const double phase = std::fmod(t, period_s);
    const double d = (phase - period_s / 2.0) / (width_s / 2.355);
    series[i] = amp * std::exp(-0.5 * d * d) + rng.normal(0.0, 1.0);
  }
  return series;
}

TEST(PeriodicitySearch, FindsPulsarPeriod) {
  const double period = 0.5;  // 2 Hz
  const auto series = pulsar_train(period, 0.05, 3.0, 1.0, 16384, 11);
  const auto candidates = periodicity_search(series, 1.0);
  ASSERT_FALSE(candidates.empty());
  // The top candidate's frequency should be the spin frequency (or its
  // exact harmonic relation is deduped away).
  EXPECT_NEAR(candidates[0].frequency_hz, 2.0, 0.15);
  EXPECT_GT(candidates[0].snr, 5.0);
}

TEST(PeriodicitySearch, HarmonicSummingBeatsSingleBinForNarrowPulses) {
  // A 2% duty cycle puts most power into high harmonics.
  const auto series = pulsar_train(0.25, 0.02, 2.0, 1.0, 16384, 13);
  const auto candidates = periodicity_search(series, 1.0);
  ASSERT_FALSE(candidates.empty());
  EXPECT_GT(candidates[0].harmonics, 1);
}

TEST(PeriodicitySearch, PureNoiseYieldsWeakOrNoCandidates) {
  Rng rng(17);
  std::vector<double> noise(8192);
  for (auto& v : noise) v = rng.normal();
  const auto candidates = periodicity_search(noise, 1.0);
  for (const auto& c : candidates) {
    EXPECT_LT(c.snr, 9.0);
  }
}

TEST(PeriodicitySearch, CandidatesAreHarmonicDeduplicated) {
  const auto series = pulsar_train(0.5, 0.05, 4.0, 1.0, 16384, 19);
  const auto candidates = periodicity_search(series, 1.0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      const double r = candidates[j].frequency_hz / candidates[i].frequency_hz;
      const double ratio = r >= 1.0 ? r : 1.0 / r;
      EXPECT_GT(std::abs(ratio - std::round(ratio)), 0.049)
          << "harmonically related candidates survived";
    }
  }
}

TEST(Fold, ProfilePeaksAtPulsePhase) {
  const auto series = pulsar_train(0.5, 0.05, 3.0, 1.0, 16384, 23);
  const auto profile = fold(series, 1.0, 0.5, 64);
  ASSERT_EQ(profile.size(), 64u);
  EXPECT_GT(profile_significance(profile), 4.0);
  // The injected pulse sits at phase 0.5.
  std::size_t best = 0;
  for (std::size_t b = 1; b < profile.size(); ++b) {
    if (profile[b] > profile[best]) best = b;
  }
  EXPECT_NEAR(static_cast<double>(best) / 64.0, 0.5, 0.06);
}

TEST(Fold, WrongPeriodSmearsTheProfile) {
  const auto series = pulsar_train(0.5, 0.05, 3.0, 1.0, 16384, 29);
  const auto right = fold(series, 1.0, 0.5, 64);
  const auto wrong = fold(series, 1.0, 0.5 * 1.061, 64);
  EXPECT_GT(profile_significance(right),
            2.0 * profile_significance(wrong));
}

TEST(Fold, RejectsBadArguments) {
  EXPECT_THROW(fold({1.0}, 1.0, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(fold({1.0}, 1.0, -1.0, 8), std::invalid_argument);
}

}  // namespace
}  // namespace drapid
