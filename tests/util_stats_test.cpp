#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace drapid {
namespace {

TEST(LinearRegression, PerfectLineRecovered) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i - 2.0);
  }
  const LinearFit fit = linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 50u);
}

TEST(LinearRegression, FlatLineHasZeroSlope) {
  std::vector<double> x{0, 1, 2, 3}, y{7, 7, 7, 7};
  const LinearFit fit = linear_regression(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 7.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
}

TEST(LinearRegression, DegenerateInputs) {
  EXPECT_EQ(linear_regression({}, {}).n, 0u);
  std::vector<double> one{1.0};
  const LinearFit single = linear_regression(one, one);
  EXPECT_EQ(single.n, 1u);
  EXPECT_DOUBLE_EQ(single.slope, 0.0);
  // All x identical: slope must stay 0 rather than blowing up.
  std::vector<double> x{2, 2, 2}, y{1, 5, 9};
  const LinearFit vertical = linear_regression(x, y);
  EXPECT_DOUBLE_EQ(vertical.slope, 0.0);
  EXPECT_NEAR(vertical.intercept, 5.0, 1e-12);
}

TEST(LinearRegression, NoisyLineApproximatelyRecovered) {
  Rng rng(42);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(i * 0.01);
    y.push_back(1.25 * x.back() + 0.5 + rng.normal(0.0, 0.05));
  }
  const LinearFit fit = linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 1.25, 0.01);
  EXPECT_NEAR(fit.intercept, 0.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(RunningFit, MatchesBatchFitUnderSlidingWindow) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.uniform(0, 10));
    y.push_back(rng.uniform(-5, 5));
  }
  RunningFit running;
  const std::size_t window = 25;
  for (std::size_t i = 0; i < x.size(); ++i) {
    running.add(x[i], y[i]);
    if (i >= window) running.remove(x[i - window], y[i - window]);
    const std::size_t begin = (i >= window) ? i - window + 1 : 0;
    const std::size_t n = i - begin + 1;
    const LinearFit batch = linear_regression(
        std::span(x).subspan(begin, n), std::span(y).subspan(begin, n));
    const LinearFit inc = running.fit();
    ASSERT_EQ(inc.n, batch.n);
    EXPECT_NEAR(inc.slope, batch.slope, 1e-8) << "at i=" << i;
    EXPECT_NEAR(inc.intercept, batch.intercept, 1e-8);
  }
}

TEST(Summary, KnownFiveNumberSummary) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 9u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.median, 5);
  EXPECT_DOUBLE_EQ(s.max, 9);
  EXPECT_DOUBLE_EQ(s.q1, 3);
  EXPECT_DOUBLE_EQ(s.q3, 7);
  EXPECT_DOUBLE_EQ(s.mean, 5);
}

TEST(Summary, EmptyInputIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0);
  EXPECT_DOUBLE_EQ(s.max, 0);
}

TEST(Quantile, InterpolatesBetweenValues) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Stddev, SampleAndPopulation) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(v, /*sample=*/false), 2.0, 1e-12);
  EXPECT_NEAR(stddev(v, /*sample=*/true), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(Pearson, PerfectAndAnticorrelated) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
  std::vector<double> flat{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
}

TEST(Moments, SymmetricDataHasZeroSkew) {
  std::vector<double> v{-2, -1, 0, 1, 2};
  EXPECT_NEAR(skewness(v), 0.0, 1e-12);
}

TEST(Moments, RightTailIsPositiveSkew) {
  std::vector<double> v{1, 1, 1, 1, 10};
  EXPECT_GT(skewness(v), 1.0);
}

TEST(Moments, GaussianSampleNearZeroExcessKurtosis) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.normal());
  EXPECT_NEAR(excess_kurtosis(v), 0.0, 0.15);
  EXPECT_NEAR(skewness(v), 0.0, 0.05);
}

TEST(Entropy, UniformAndDegenerate) {
  std::vector<std::size_t> uniform{10, 10, 10, 10};
  EXPECT_NEAR(entropy_from_counts(uniform), 2.0, 1e-12);
  std::vector<std::size_t> pure{42, 0, 0};
  EXPECT_DOUBLE_EQ(entropy_from_counts(pure), 0.0);
  EXPECT_DOUBLE_EQ(entropy_from_counts({}), 0.0);
}

// Property sweep: quantile(q) is monotone in q for random data.
class QuantileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotone, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> v;
  const int n = 1 + static_cast<int>(rng.below(200));
  for (int i = 0; i < n; ++i) v.push_back(rng.uniform(-100, 100));
  double prev = quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace drapid
