#include "dataflow/executor.hpp"

#include <algorithm>
#include <string>

#include "dataflow/engine.hpp"

namespace drapid {

// The pre-PR 7 Engine::run_stage task loop, moved here verbatim: same
// attempt semantics, same counters, same spans and instants, so the local
// backend stays byte-identical to the engine it was extracted from.
void LocalExecutor::run_stage_tasks(StageRun run) {
  Engine& engine = engine_;
  StageMetrics& stage = run.stage;
  const std::size_t max_attempts =
      std::max<std::size_t>(1, engine.config_.max_task_attempts);
  engine.pool_.parallel_for(stage.tasks.size(), [&](std::size_t p) {
    auto& task = stage.tasks[p];
    obs::ScopedSpan task_span(engine.tracer_, "task", stage.name, "dataflow");
    task_span.arg("partition", static_cast<std::int64_t>(p));
    TaskContext ctx(stage.name, p, task, task_span);
    for (std::size_t attempt = 0;; ++attempt) {
      ctx.attempt_ = attempt;
      task.attempts = attempt + 1;
      if (engine.faults_.fail_task(stage.name, p, attempt)) {
        engine.retries_counter_.add();
        if (engine.tracer_.enabled()) {
          obs::Json args = obs::Json::object();
          args.set("stage", stage.name);
          args.set("partition", static_cast<std::int64_t>(p));
          args.set("attempt", static_cast<std::int64_t>(attempt));
          engine.tracer_.instant("task.retry", std::move(args), "fault");
        }
        if (attempt + 1 >= max_attempts) {
          engine.failures_counter_.add();
          task_span.arg("failed", true);
          throw TaskFailure("task failed permanently after " +
                            std::to_string(attempt + 1) +
                            " attempts: stage=" + stage.name +
                            " partition=" + std::to_string(p));
        }
        continue;  // the reattempt backoff is modeled, not slept
      }
      run.body(ctx);
      engine.tasks_counter_.add();
      if (attempt > 0) {
        // Each failed attempt is modeled as dying just before completion:
        // one full attempt's compute is wasted per failure.
        task.retry_cost += attempt * task.compute_cost;
        task_span.arg("attempts", static_cast<std::int64_t>(task.attempts));
      }
      return;
    }
  });
}

}  // namespace drapid
