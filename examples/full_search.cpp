// The complete §3 pulsar-search pipeline, from raw telescope data:
//
//   phase 1  signal collection      — synthetic filterbank with an injected
//                                     pulsar, RFI tone and broadband impulse
//   phase 2  dedispersion           — trial-DM sweep over the filterbank
//   phase 3a single-pulse search    — matched-filter detection → SPE list
//   phase 3b periodicity search     — FFT + harmonic summing + folding
//   phase 4  candidate processing   — DBSCAN clustering + RAPID peak search
//
//   ./examples/full_search [--seed N] [--period S] [--dm X] [--threads T]
//                          [--sweep exact|subband] [--groups G]
//                          [--rfi off|zerodm|mask|both]
#include <iostream>

#include "clustering/dbscan.hpp"
#include "dedisp/periodicity.hpp"
#include "dedisp/rfi_mitigation.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "rapid/multithreaded.hpp"
#include "util/options.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  Options opts(argc, argv, {{"seed", "42"},
                            {"period", "1.2"},
                            {"dm", "48"},
                            {"threads", "1"},
                            {"sweep", "exact"},
                            {"groups", "0"},
                            {"rfi", "off"}});
  const double period = opts.number("period");
  const double dm = opts.number("dm");

  // Phase 1: raw data. A pulsar emitting every rotation, plus nuisances.
  FilterbankConfig fb_config;
  fb_config.center_freq_mhz = 350.0;
  fb_config.bandwidth_mhz = 100.0;
  fb_config.num_channels = 48;
  fb_config.sample_time_ms = 2.0;
  fb_config.obs_length_s = 30.0;
  Filterbank fb(fb_config);
  Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
  fb.add_noise(rng, 1.0);
  int pulses = 0;
  for (double t = 0.4; t < fb_config.obs_length_s - 1.0; t += period) {
    fb.inject_pulse(t, dm, rng.uniform(1.2, 2.8), 25.0);
    ++pulses;
  }
  fb.inject_rfi_tone(7, 1.5, 10.0, 12.0);
  fb.inject_broadband_impulse(21.0, 6.0);
  std::cout << "phase 1: filterbank " << fb.num_channels() << " channels x "
            << fb.num_samples() << " samples, " << pulses
            << " pulses injected (P=" << period << " s, DM=" << dm << ")\n";

  // Phases 2+3a: dedispersion sweep + matched-filter single-pulse search.
  // The sweep dedisperses once per *unique* shift plan (fine-step trials
  // whose per-channel shifts round identically share one plan) and can fan
  // unique plans out over a worker pool; output is identical at any count.
  const DmGrid grid({{0.0, 120.0, 1.0}});
  SinglePulseSearchParams sp_params;
  sp_params.threads = static_cast<std::size_t>(opts.integer("threads"));
  // --sweep=subband runs the two-stage subband dedispersion; the detected
  // event set is identical to the exact sweep, only faster.
  sp_params.method = parse_sweep_method(opts.str("sweep"));
  sp_params.subband_groups = static_cast<std::size_t>(opts.integer("groups"));
  // --rfi=zerodm|mask|both cleans the band before the sweep: zero-DM
  // subtraction removes the broadband impulse, channel masking the RFI tone.
  sp_params.rfi.policy = parse_mitigation_policy(opts.str("rfi"));
  const SweepPlan sweep = build_sweep_plan(fb, grid, sp_params.dm_stride);
  const auto events = single_pulse_search(fb, grid, sp_params);
  std::cout << "phase 2+3a: " << events.size()
            << " single pulse events across " << grid.size()
            << " trial DMs (" << sweep.plans.size()
            << " unique shift plans, "
            << sweep.num_trials - sweep.plans.size() << " dedup hits, "
            << sweep_method_name(sp_params.method) << " sweep, rfi="
            << mitigation_policy_name(sp_params.rfi.policy) << ", "
            << sp_params.threads << " thread(s))\n";

  // Phase 3b: periodicity search on the series dedispersed at the best DM.
  const auto series = dedisperse(fb, dm);
  const auto candidates = periodicity_search(series, fb_config.sample_time_ms);
  std::cout << "phase 3b: " << candidates.size()
            << " periodicity candidates\n";
  if (!candidates.empty()) {
    // Candidate inspection: incoherent summing can anchor on a harmonic, so
    // fold at small multiples of the candidate period and keep the best
    // profile (the usual sifting step).
    const auto& best = candidates.front();
    double best_period = best.period_s;
    double best_sig = 0.0;
    for (int k = 1; k <= 4; ++k) {
      const double p = best.period_s * k;
      const double sig = profile_significance(
          fold(series, fb_config.sample_time_ms, p, 32));
      if (sig > best_sig) {
        best_sig = sig;
        best_period = p;
      }
    }
    std::cout << "  top candidate: P=" << format_number(best_period, 4)
              << " s after fold-sifting (true " << period << "), snr="
              << format_number(best.snr, 1) << ", " << best.harmonics
              << " harmonics summed, folded-profile significance "
              << format_number(best_sig, 1) << '\n';
  }

  // Phase 4: cluster the SPEs and run Algorithm 1.
  ObservationData obs;
  obs.id.dataset = "FULLSEARCH";
  obs.events = events;
  DbscanParams db;
  db.eps_time_s = 0.2;  // coarse sampling: looser time neighbourhood
  const auto clustering = dbscan_cluster(obs, grid, db);
  const auto items = make_work_items(obs, clustering);
  const auto found = run_rapid_multithreaded(items, {}, grid, 2);
  std::size_t near_truth = 0;
  for (const auto& p : found) {
    near_truth += std::abs(p.features[kSnrPeakDm] - dm) < 5.0;
  }
  std::cout << "phase 4: " << clustering.clusters.size() << " clusters, "
            << found.size() << " single pulses identified, " << near_truth
            << " at the injected DM\n";
  return 0;
}
